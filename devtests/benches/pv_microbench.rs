//! Criterion microbenchmarks of the ZIV hardware-datapath stand-ins:
//! property-vector updates and the Algorithm 1 nextRS computation
//! (Fig 6's structures), plus the set-associative array hot paths.
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ziv_cache::{PropertyVector, SetAssocArray};
use ziv_common::{CacheGeometry, SimRng};

fn bench_pv(c: &mut Criterion) {
    let mut group = c.benchmark_group("property_vector");
    for sets in [128u32, 1024] {
        let mut pv = PropertyVector::new(sets);
        let mut rng = SimRng::seed_from_u64(1);
        for _ in 0..sets / 4 {
            pv.set(rng.below(sets as u64) as u32, true);
        }
        group.bench_function(format!("algorithm1_next_rs_{sets}_sets"), |b| {
            b.iter(|| black_box(pv.take_next_rs()))
        });
        group.bench_function(format!("set_bit_{sets}_sets"), |b| {
            let mut i = 0u32;
            b.iter(|| {
                i = (i + 7) % sets;
                pv.set(black_box(i), i.is_multiple_of(2));
            })
        });
    }
    group.finish();
}

fn bench_array(c: &mut Criterion) {
    let mut group = c.benchmark_group("set_assoc_array");
    let geom = CacheGeometry::new(1024, 16);
    let mut arr: SetAssocArray<u64> = SetAssocArray::new(geom);
    let mut rng = SimRng::seed_from_u64(2);
    for set in 0..1024u32 {
        for way in 0..16u8 {
            arr.fill(set, way, rng.next_u64() & 0xffff, 0);
        }
    }
    group.bench_function("lookup_16way", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            black_box(arr.lookup((i % 1024) as u32, i & 0xffff))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_pv, bench_array);
criterion_main!(benches);
