//! Criterion microbenchmark of the end-to-end hierarchy access path —
//! the simulator's hot loop (L1-hit, L2-hit, and LLC-miss costs).
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use ziv_common::config::SystemConfig;
use ziv_common::{Addr, CoreId};
use ziv_core::{Access, CacheHierarchy, HierarchyConfig, LlcMode, ZivProperty};

fn bench_access(c: &mut Criterion) {
    let mut group = c.benchmark_group("hierarchy_access");
    group.bench_function("l1_hit", |b| {
        let cfg = HierarchyConfig::new(SystemConfig::scaled());
        let mut h = CacheHierarchy::new(&cfg);
        let a = Access::read(CoreId::new(0), Addr::new(0x4000), 0x400);
        h.access(&a, 0, 0);
        let mut now = 1u64;
        b.iter(|| {
            now += 1;
            black_box(h.access(&a, now, now))
        })
    });
    group.bench_function("ziv_streaming_misses", |b| {
        let cfg = HierarchyConfig::new(SystemConfig::scaled())
            .with_mode(LlcMode::Ziv(ZivProperty::LikelyDead));
        let mut h = CacheHierarchy::new(&cfg);
        let mut line = 0u64;
        let mut now = 0u64;
        b.iter(|| {
            line += 1;
            now += 50;
            let a = Access::read(CoreId::new(0), Addr::new(line * 64), 0x400);
            black_box(h.access(&a, now, line))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_access);
criterion_main!(benches);
