//! Property-based cross-crate tests: under arbitrary access sequences,
//! every mode preserves its structural invariants, and every ZIV
//! variant is inclusion-victim-free.

use proptest::prelude::*;
use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(128 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// One step of an arbitrary access sequence.
#[derive(Debug, Clone, Copy)]
struct Step {
    core: usize,
    line: u64,
    write: bool,
}

fn step_strategy(cores: usize) -> impl Strategy<Value = Step> {
    (0..cores, 0u64..400, any::<bool>()).prop_map(|(core, line, write)| Step { core, line, write })
}

fn run_steps(mode: LlcMode, policy: PolicyKind, steps: &[Step]) -> CacheHierarchy {
    let cfg = HierarchyConfig::new(tiny(3))
        .with_mode(mode)
        .with_policy(policy);
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0u64;
    for (i, s) in steps.iter().enumerate() {
        let addr = Addr::new(s.line * 64);
        let a = if s.write {
            Access::write(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        } else {
            Access::read(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        };
        now += 1 + h.access(&a, now, i as u64);
    }
    h
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ziv_modes_never_generate_inclusion_victims(
        steps in prop::collection::vec(step_strategy(3), 200..1200),
        prop_idx in 0usize..3,
    ) {
        let prop_kind = [
            ZivProperty::NotInPrC,
            ZivProperty::LruNotInPrC,
            ZivProperty::LikelyDead,
        ][prop_idx];
        let h = run_steps(LlcMode::Ziv(prop_kind), PolicyKind::Lru, &steps);
        prop_assert_eq!(h.metrics().inclusion_victims, 0);
        prop_assert_eq!(h.metrics().ziv_guarantee_fallbacks, 0);
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }

    #[test]
    fn ziv_hawkeye_modes_never_generate_inclusion_victims(
        steps in prop::collection::vec(step_strategy(3), 200..1000),
        prop_idx in 0usize..2,
    ) {
        let prop_kind =
            [ZivProperty::MaxRrpvNotInPrC, ZivProperty::MaxRrpvLikelyDead][prop_idx];
        let h = run_steps(LlcMode::Ziv(prop_kind), PolicyKind::Hawkeye, &steps);
        prop_assert_eq!(h.metrics().inclusion_victims, 0);
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }

    #[test]
    fn all_modes_preserve_structural_invariants(
        steps in prop::collection::vec(step_strategy(3), 200..800),
        mode_idx in 0usize..5,
    ) {
        let mode = [
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::CharOnBase,
        ][mode_idx];
        let h = run_steps(mode, PolicyKind::Lru, &steps);
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }

    #[test]
    fn noninclusive_mode_never_back_invalidates_on_llc_eviction(
        steps in prop::collection::vec(step_strategy(2), 200..800),
    ) {
        let h = run_steps(LlcMode::NonInclusive, PolicyKind::Lru, &steps);
        prop_assert_eq!(h.metrics().inclusion_victims, 0);
    }

    #[test]
    fn zerodev_never_directory_back_invalidates(
        steps in prop::collection::vec(step_strategy(3), 200..800),
    ) {
        let cfg = HierarchyConfig::new(tiny(3).with_dir_ratio(DirRatio::Quarter))
            .with_mode(LlcMode::Ziv(ZivProperty::NotInPrC))
            .with_dir_mode(DirectoryMode::ZeroDev);
        let mut h = CacheHierarchy::new(&cfg);
        let mut now = 0u64;
        for (i, s) in steps.iter().enumerate() {
            let a = Access::read(CoreId::new(s.core), Addr::new(s.line * 64), 0x400);
            now += 1 + h.access(&a, now, i as u64);
        }
        prop_assert_eq!(h.metrics().directory_back_invalidations, 0);
        prop_assert_eq!(h.metrics().inclusion_victims, 0);
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }
}
