//! Property-based tests of the seqlock protocol behind the live
//! telemetry segment: for any interleaving of writer sections and
//! reader attempts, a reader either returns a payload written entirely
//! by one `write_words` section or refuses (`None`) — it never
//! returns a mix of two sections, and the sequence value it reports
//! always identifies the section it read.

use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use ziv_common::seqlock;

const WORDS: usize = 6;

/// The payload written by section `g`: every word a distinct affine
/// function of `g`, so any torn mix fails validation.
fn payload_for(g: u64) -> [u64; WORDS] {
    let mut p = [0u64; WORDS];
    for (i, w) in p.iter_mut().enumerate() {
        *w = g.wrapping_mul(1_000_003).wrapping_add(i as u64 * 97 + 1);
    }
    p
}

fn is_exactly(out: &[u64; WORDS], g: u64) -> bool {
    *out == payload_for(g)
}

proptest! {
    /// Sequential write/read round-trips: after N sections, a read
    /// returns section N's payload and an even sequence of 2N.
    #[test]
    fn read_after_writes_returns_the_last_section(sections in 1u64..200) {
        let seq = AtomicU64::new(0);
        let data: Vec<AtomicU64> = (0..WORDS).map(|_| AtomicU64::new(0)).collect();
        for g in 1..=sections {
            seqlock::write_words(&seq, &data, &payload_for(g));
        }
        let mut out = [0u64; WORDS];
        let got = seqlock::read_words(&seq, &data, &mut out).expect("no writer in flight");
        prop_assert_eq!(got, 2 * sections);
        prop_assert!(is_exactly(&out, sections));
    }

    /// A reader that starts while a write section is open refuses
    /// rather than returning the half-written payload, regardless of
    /// how many words the writer has stored so far.
    #[test]
    fn mid_section_reads_refuse(words_written in 0usize..=WORDS, prior in 0u64..50) {
        let seq = AtomicU64::new(0);
        let data: Vec<AtomicU64> = (0..WORDS).map(|_| AtomicU64::new(0)).collect();
        for g in 1..=prior {
            seqlock::write_words(&seq, &data, &payload_for(g));
        }
        // Open a section by hand and store a prefix of the next payload.
        let odd = seqlock::begin_write(&seq);
        let next = payload_for(prior + 1);
        for i in 0..words_written {
            data[i].store(next[i], Ordering::Relaxed);
        }
        let mut out = [0u64; WORDS];
        prop_assert_eq!(seqlock::read_words(&seq, &data, &mut out), None);
        // Closing the section makes the payload readable again.
        for i in words_written..WORDS {
            data[i].store(next[i], Ordering::Relaxed);
        }
        seqlock::end_write(&seq, odd);
        let got = seqlock::read_words(&seq, &data, &mut out).expect("section closed");
        prop_assert_eq!(got, 2 * (prior + 1));
        prop_assert!(is_exactly(&out, prior + 1));
    }

    /// The torn-read detector: a reader whose two sequence samples
    /// straddle any number of intervening write sections retries, and
    /// what it ultimately returns validates as exactly one section —
    /// modeled by interleaving whole sections between single-shot read
    /// attempts driven from a random schedule.
    #[test]
    fn interleaved_sections_never_leak_a_mix(
        schedule in prop::collection::vec(any::<bool>(), 1..120),
    ) {
        let seq = AtomicU64::new(0);
        let data: Vec<AtomicU64> = (0..WORDS).map(|_| AtomicU64::new(0)).collect();
        let mut g = 1u64;
        seqlock::write_words(&seq, &data, &payload_for(g));
        for &write in &schedule {
            if write {
                g += 1;
                seqlock::write_words(&seq, &data, &payload_for(g));
            } else {
                let mut out = [0u64; WORDS];
                match seqlock::read_words(&seq, &data, &mut out) {
                    None => prop_assert!(false, "no writer in flight, read must succeed"),
                    Some(s) => {
                        prop_assert_eq!(s, 2 * g, "sequence identifies the section");
                        prop_assert!(is_exactly(&out, g), "payload mixes sections");
                    }
                }
            }
        }
    }

    /// `read` with a closure observes the same refuse-or-consistent
    /// contract as `read_words`, and its bounded retry budget means a
    /// wedged writer (section never closed) cannot hang the reader.
    #[test]
    fn wedged_writer_cannot_hang_a_reader(prior in 0u64..20) {
        let seq = AtomicU64::new(0);
        let data = AtomicU64::new(0);
        for g in 1..=prior {
            seqlock::write_with(&seq, || data.store(g, Ordering::Relaxed));
        }
        let _odd = seqlock::begin_write(&seq); // never closed
        let r = seqlock::read(&seq, seqlock::MAX_READ_RETRIES, || {
            data.load(Ordering::Relaxed)
        });
        prop_assert_eq!(r, None, "bounded retries must give up on a wedged writer");
    }
}
