//! Property suites for the supervision primitives: the retry backoff
//! schedule and the cooperative cancellation token.
//!
//! The backoff contract (see `ziv_common::backoff`): for any
//! `(base, max, seed)` the delay sequence is monotone non-decreasing,
//! never exceeds the cap, and is a pure function of the seed — a
//! replayed campaign waits the identical schedule. The token contract
//! (see `ziv_core::cancel`): an access-deadline token never fires
//! before its deadline and always fires at or after it, and the first
//! cancellation reason wins and sticks.

use proptest::prelude::*;
use ziv_common::{BackoffSchedule, RetryPolicy, SimError};
use ziv_core::CancelToken;

proptest! {
    /// Later attempts never wait less, regardless of base/cap/seed.
    #[test]
    fn backoff_is_monotone_nondecreasing(
        base_ms in 0u64..10_000,
        max_ms in 0u64..1_000_000,
        seed in any::<u64>(),
    ) {
        let s = BackoffSchedule { base_ms, max_ms, seed };
        let mut prev = 0u64;
        for attempt in 1..=64u32 {
            let d = s.delay_ms(attempt);
            prop_assert!(
                d >= prev,
                "attempt {}: delay {} < previous {}", attempt, d, prev
            );
            prev = d;
        }
    }

    /// No delay ever exceeds the cap, even at saturating attempts.
    #[test]
    fn backoff_is_bounded_by_the_cap(
        base_ms in 0u64..10_000,
        max_ms in 0u64..1_000_000,
        seed in any::<u64>(),
        attempt in 1u32..=512,
    ) {
        let s = BackoffSchedule { base_ms, max_ms, seed };
        prop_assert!(s.delay_ms(attempt) <= max_ms);
        prop_assert!(s.delay_ms(u32::MAX) <= max_ms, "saturation stays capped");
    }

    /// The whole schedule is a pure function of the seed: same seed,
    /// same delays; and the jitter actually depends on the seed (two
    /// seeds agreeing on 32 consecutive draws would need the jitter
    /// span to be degenerate).
    #[test]
    fn backoff_is_deterministic_per_seed(
        base_ms in 2u64..10_000,
        seed in any::<u64>(),
        other_seed in any::<u64>(),
    ) {
        let max_ms = u64::MAX; // uncapped: every draw's jitter is visible
        let a = BackoffSchedule { base_ms, max_ms, seed };
        let b = BackoffSchedule { base_ms, max_ms, seed };
        let seq = |s: &BackoffSchedule| (1..=32u32).map(|n| s.delay_ms(n)).collect::<Vec<_>>();
        prop_assert_eq!(seq(&a), seq(&b));
        if other_seed != seed {
            let c = BackoffSchedule { base_ms, max_ms, seed: other_seed };
            // Not a hard guarantee per-draw, but 32 independent draws
            // from a 64-bit-mixed hash colliding across the whole
            // window is effectively impossible with span >= 2.
            prop_assert_ne!(seq(&a), seq(&c));
        }
    }

    /// The retry policy never retries deterministic errors and never
    /// exceeds its attempt budget, for any configuration.
    #[test]
    fn retry_policy_respects_transience_and_the_cap(
        retries in 0u32..8,
        seed in any::<u64>(),
        attempt in 1u32..16,
    ) {
        let p = RetryPolicy::with_retries(retries, seed);
        let io = SimError::io("write", "/tmp/x", std::io::Error::other("transient"));
        let cfg = SimError::Config("deterministic".into());
        prop_assert!(!p.should_retry(&cfg, attempt), "config errors never retry");
        prop_assert_eq!(
            p.should_retry(&io, attempt),
            attempt < retries + 1,
            "transient errors retry exactly while attempts remain"
        );
    }

    /// An access-deadline token never fires early and always fires at
    /// or after the deadline.
    #[test]
    fn cancel_token_fires_exactly_at_its_deadline(
        deadline in 0u64..1_000_000,
        below in 0u64..1_000_000,
        at_or_above in 0u64..1_000_000,
    ) {
        let t = CancelToken::with_access_deadline(deadline);
        if below < deadline {
            prop_assert!(t.fired(below).is_none(), "fired before the deadline");
        }
        let issued = deadline.saturating_add(at_or_above);
        prop_assert!(t.fired(issued).is_some(), "must fire at/after the deadline");
    }

    /// The first cancellation reason wins and sticks, no matter how
    /// many follow.
    #[test]
    fn cancel_reason_is_sticky_first_wins(
        reasons in prop::collection::vec("[a-z]{1,12}", 1..6),
        issued in any::<u64>(),
    ) {
        let t = CancelToken::new();
        for r in &reasons {
            t.cancel(r.clone());
        }
        let fired = t.fired(issued).expect("cancelled token always fires");
        prop_assert_eq!(fired, reasons[0].clone());
    }
}
