//! Property-based tests of the DRAM timing model.

use proptest::prelude::*;
use ziv_common::config::DramParams;
use ziv_common::LineAddr;
use ziv_dram::DramModel;

proptest! {
    /// Ready times never precede the request, and per-channel data-bus
    /// occupancy makes same-channel completions strictly ordered.
    #[test]
    fn ready_times_are_causal_and_serialized(
        reqs in prop::collection::vec((0u64..4096, 0u64..50, any::<bool>()), 1..200),
    ) {
        let mut m = DramModel::new(DramParams::ddr3_2133());
        let mut now = 0u64;
        let mut last_ready_per_channel = [0u64; 2];
        for (line, delta, write) in reqs {
            now += delta;
            let r = m.access(LineAddr::new(line), now, write);
            prop_assert!(r.ready_at > now, "data cannot be ready at issue time");
            let ch = (line % 2) as usize;
            prop_assert!(
                r.ready_at > last_ready_per_channel[ch],
                "same-channel bursts must serialize"
            );
            last_ready_per_channel[ch] = r.ready_at;
        }
    }

    /// The model is deterministic.
    #[test]
    fn model_is_deterministic(
        reqs in prop::collection::vec((0u64..1024, any::<bool>()), 1..100),
    ) {
        let mut a = DramModel::new(DramParams::ddr3_2133());
        let mut b = DramModel::new(DramParams::ddr3_2133());
        for (i, (line, write)) in reqs.iter().enumerate() {
            let ra = a.access(LineAddr::new(*line), i as u64 * 10, *write);
            let rb = b.access(LineAddr::new(*line), i as u64 * 10, *write);
            prop_assert_eq!(ra.ready_at, rb.ready_at);
            prop_assert_eq!(ra.row_hit, rb.row_hit);
        }
        prop_assert_eq!(a.total_energy_pj(), b.total_energy_pj());
    }

    /// Row-buffer hit rate of a sequential stream beats a random one.
    #[test]
    fn sequential_streams_hit_the_row_buffer_more(seed in 0u64..1000) {
        let mut seq_model = DramModel::new(DramParams::ddr3_2133());
        let mut rnd_model = DramModel::new(DramParams::ddr3_2133());
        let mut rng = ziv_common::SimRng::seed_from_u64(seed);
        let mut now = 0u64;
        for i in 0..400u64 {
            now += 100;
            seq_model.access(LineAddr::new(i), now, false);
            rnd_model.access(LineAddr::new(rng.below(1 << 20)), now, false);
        }
        prop_assert!(seq_model.row_hits() > rnd_model.row_hits());
    }

    /// Energy is monotonically accumulated and hits cost less.
    #[test]
    fn energy_accumulates_monotonically(
        lines in prop::collection::vec(0u64..256, 1..100),
    ) {
        let mut m = DramModel::new(DramParams::ddr3_2133());
        let mut last = 0.0f64;
        for (i, line) in lines.into_iter().enumerate() {
            m.access(LineAddr::new(line), i as u64 * 50, false);
            let e = m.total_energy_pj();
            prop_assert!(e > last);
            last = e;
        }
    }
}
