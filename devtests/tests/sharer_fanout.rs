//! Property-based coverage of the sharer-set fan-out edge cases: a
//! back-invalidation reaching *every* sharer of a fully shared line, an
//! ECI early-invalidate tearing out a single sharer, and the empty-set
//! no-op (evicting a line nobody caches privately touches no core) —
//! the exact boundary the leakage observatory's signal accounting sits
//! on.

use proptest::prelude::*;
use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};
use ziv_directory::SharerSet;

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(128 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// Flat LLC sets of the `tiny` machine: 2 banks × 16 sets.
const FLAT_SETS: u64 = 32;

fn hierarchy(cores: usize, mode: LlcMode) -> CacheHierarchy {
    let cfg = HierarchyConfig::new(tiny(cores))
        .with_mode(mode)
        .with_policy(PolicyKind::Lru);
    CacheHierarchy::new(&cfg)
}

fn read(h: &mut CacheHierarchy, now: &mut u64, seq: &mut u64, core: usize, line: u64) {
    let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400);
    *now += 1 + h.access(&a, *now, *seq);
    *seq += 1;
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The pure sharer-set algebra under arbitrary insert orders:
    /// membership is exact, double inserts are no-ops, iteration fans
    /// out to exactly the members, and removing every member restores
    /// the empty set (whose iteration is a no-op).
    #[test]
    fn sharer_set_membership_algebra(
        cores in prop::collection::btree_set(0usize..128, 0..16),
    ) {
        let mut s = SharerSet::EMPTY;
        prop_assert_eq!(s.iter().count(), 0, "empty set fans out to nobody");
        for &c in &cores {
            prop_assert!(s.insert(CoreId::new(c)), "first insert reports new");
            prop_assert!(!s.insert(CoreId::new(c)), "re-insert is a no-op");
        }
        prop_assert_eq!(s.count() as usize, cores.len());
        let fanned: Vec<usize> = s.iter().map(|c| c.index()).collect();
        let expected: Vec<usize> = cores.iter().copied().collect();
        prop_assert_eq!(fanned, expected, "fan-out targets = members, in order");
        for &c in &cores {
            prop_assert!(s.remove(CoreId::new(c)));
            prop_assert!(!s.remove(CoreId::new(c)), "double remove is a no-op");
        }
        prop_assert!(s.is_empty());
    }

    /// Full-sharer back-invalidation: when a line cached by *every*
    /// non-filler core is evicted from the inclusive LLC, the
    /// back-invalidation fans out to each sharer exactly once.
    #[test]
    fn full_sharer_eviction_fans_out_to_every_sharer(
        cores in 3usize..=7,
        line in 0u64..512,
    ) {
        let mut h = hierarchy(cores, LlcMode::Inclusive);
        let (mut now, mut seq) = (0u64, 0u64);
        let filler = cores - 1;
        for c in 0..filler {
            read(&mut h, &mut now, &mut seq, c, line);
        }
        let entry = h.directory().probe(Addr::new(line * 64).line());
        prop_assert_eq!(
            entry.map(|e| e.sharers.count() as usize),
            Some(filler),
            "every reader registered as a sharer"
        );
        // The filler floods the line's LLC set (4 ways) from its own
        // congruent region until the shared line is the LRU victim.
        for k in 1..=4u64 {
            read(&mut h, &mut now, &mut seq, filler, line + k * FLAT_SETS);
        }
        let m = h.metrics();
        for c in 0..filler {
            prop_assert_eq!(
                m.per_core[c].inclusion_victims_suffered, 1,
                "sharer {c} must be torn out exactly once"
            );
        }
        prop_assert!(m.inclusion_victims >= filler as u64);
        // The fan-out freed the directory entry: nobody holds the line.
        prop_assert!(!h.directory().is_privately_cached(Addr::new(line * 64).line()));
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }

    /// Single-sharer ECI: when the fill that evicts core 0's LRU line
    /// also ranks core 0's *other* (still privately cached) line as the
    /// next victim, TLA-ECI early-invalidates exactly that single
    /// sharer — so core 0 suffers twice: once through the ordinary
    /// back-invalidation of the victim and once through the ECI
    /// tear-out of the candidate.
    #[test]
    fn eci_early_invalidate_tears_out_the_single_sharer(
        line in 0u64..512,
    ) {
        let mut h = hierarchy(2, LlcMode::Eci);
        let (mut now, mut seq) = (0u64, 0u64);
        // Core 0 holds two congruent lines; both fit its 2-way private
        // sets, so both stay privately cached.
        read(&mut h, &mut now, &mut seq, 0, line);
        read(&mut h, &mut now, &mut seq, 0, line + FLAT_SETS);
        // Core 1 fills the remaining 2 ways, then overflows the set:
        // the fill evicts core 0's LRU line and surfaces its second
        // line as the ECI candidate — whose sole sharer is core 0.
        for k in 2..=4u64 {
            read(&mut h, &mut now, &mut seq, 1, line + k * FLAT_SETS);
        }
        let m = h.metrics();
        prop_assert_eq!(m.eci_early_invalidations, 1, "ECI fired exactly once");
        prop_assert!(
            m.inclusion_victims >= m.eci_early_invalidations,
            "every ECI invalidation is an inclusion victim"
        );
        prop_assert_eq!(
            m.per_core[0].inclusion_victims_suffered, 2,
            "core 0 loses the evicted line and the ECI candidate"
        );
        prop_assert_eq!(
            m.per_core[1].inclusion_victims_suffered, 0,
            "the flooding core never suffers"
        );
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }

    /// Empty-set no-op: if the owner's private copy is walked out of
    /// its own caches first (the attacker's flusher trick — same
    /// private sets, different LLC set), the line's later LLC eviction
    /// finds an empty sharer set and back-invalidates nobody.
    #[test]
    fn evicting_a_privately_unshared_line_is_a_no_op(
        line in 0u64..512,
    ) {
        let mut h = hierarchy(2, LlcMode::Inclusive);
        let (mut now, mut seq) = (0u64, 0u64);
        read(&mut h, &mut now, &mut seq, 0, line);
        // Flush: stride 4 preserves the tiny machine's L1 set (2 sets)
        // and L2 set (4 sets) but moves the LLC set, so core 0's copy
        // of `line` leaves its private caches and frees its directory
        // entry without touching the LLC set under test. (j stops well
        // before 8: stride 4 wraps back into `line`'s flat set there.)
        for j in 1..=4u64 {
            read(&mut h, &mut now, &mut seq, 0, line + j * 4);
        }
        prop_assert!(
            !h.directory().is_privately_cached(Addr::new(line * 64).line()),
            "flushers must free the directory entry"
        );
        let suffered_before = h.metrics().per_core[0].inclusion_victims_suffered;
        // Core 1 floods the line's LLC set until `line` is evicted.
        for k in 1..=4u64 {
            read(&mut h, &mut now, &mut seq, 1, line + k * FLAT_SETS);
        }
        prop_assert_eq!(
            h.metrics().per_core[0].inclusion_victims_suffered,
            suffered_before,
            "evicting an unshared line reaches into no core"
        );
        prop_assert!(h.verify_invariants().is_ok(), "{:?}", h.verify_invariants());
    }
}
