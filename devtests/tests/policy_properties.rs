//! Property-based tests of the replacement policies: the LRU stack
//! property, rank-order consistency across policies, and the MIN
//! oracle's optimality against brute force on a single set.

use proptest::prelude::*;
use std::rc::Rc;
use ziv_common::{CacheGeometry, CoreId, LineAddr};
use ziv_replacement::{
    AccessCtx, Lru, MinOracle, Nru, PolicyKind, PrecomputedFuture, ReplacementPolicy, Srrip,
};

fn ctx(line: u64, seq: u64) -> AccessCtx {
    AccessCtx::demand(
        LineAddr::new(line),
        0x400 + line % 7,
        CoreId::new(0),
        0,
        seq,
    )
}

/// Simulates a single fully-associative set of `ways` under a policy,
/// returning the miss count for an access sequence.
fn misses_under(policy: &mut dyn ReplacementPolicy, ways: u8, seq: &[u64]) -> usize {
    let mut resident: Vec<Option<u64>> = vec![None; ways as usize];
    let mut misses = 0;
    for (i, &line) in seq.iter().enumerate() {
        let c = ctx(line, i as u64);
        if let Some(way) = resident.iter().position(|&r| r == Some(line)) {
            policy.on_hit(0, way as u8, &c);
        } else {
            misses += 1;
            let way = match resident.iter().position(|r| r.is_none()) {
                Some(w) => w as u8,
                None => {
                    let v = policy.victim(0, &c);
                    policy.on_evict(0, v);
                    v
                }
            };
            resident[way as usize] = Some(line);
            policy.on_fill(0, way, &c);
        }
    }
    misses
}

/// Belady's optimal miss count on a single set, computed by brute force.
fn optimal_misses(ways: usize, seq: &[u64]) -> usize {
    let mut resident: Vec<u64> = Vec::new();
    let mut misses = 0;
    for (i, &line) in seq.iter().enumerate() {
        if resident.contains(&line) {
            continue;
        }
        misses += 1;
        if resident.len() < ways {
            resident.push(line);
        } else {
            // Evict the resident line with the furthest next use.
            let victim_idx = (0..resident.len())
                .max_by_key(|&ri| {
                    seq[i + 1..]
                        .iter()
                        .position(|&l| l == resident[ri])
                        .map(|d| d as u64)
                        .unwrap_or(u64::MAX)
                })
                .unwrap();
            resident[victim_idx] = line;
        }
    }
    misses
}

proptest! {
    /// LRU stack property: with identical access sequences, a larger
    /// LRU cache never misses more than a smaller one.
    #[test]
    fn lru_has_the_stack_property(
        seq in prop::collection::vec(0u64..24, 1..400),
    ) {
        let m4 = misses_under(&mut Lru::new(CacheGeometry::new(1, 4)), 4, &seq);
        let m8 = misses_under(&mut Lru::new(CacheGeometry::new(1, 8)), 8, &seq);
        prop_assert!(m8 <= m4, "8-way {m8} > 4-way {m4}");
    }

    /// The MIN oracle achieves exactly Belady's optimal miss count when
    /// given the set's own access stream as its future.
    #[test]
    fn min_oracle_is_optimal_on_a_single_set(
        seq in prop::collection::vec(0u64..16, 1..200),
    ) {
        let future = PrecomputedFuture::from_stream(
            seq.iter().enumerate().map(|(i, &l)| (i as u64, LineAddr::new(l))),
        );
        let mut min = MinOracle::new(CacheGeometry::new(1, 4), Rc::new(future));
        let got = misses_under(&mut min, 4, &seq);
        let optimal = optimal_misses(4, &seq);
        prop_assert_eq!(got, optimal);
    }

    /// No online policy beats MIN.
    #[test]
    fn no_policy_beats_min(
        seq in prop::collection::vec(0u64..16, 1..200),
        kind_idx in 0usize..3,
    ) {
        let optimal = optimal_misses(4, &seq);
        let geom = CacheGeometry::new(1, 4);
        let mut policy: Box<dyn ReplacementPolicy> = match kind_idx {
            0 => Box::new(Lru::new(geom)),
            1 => Box::new(Nru::new(geom)),
            _ => Box::new(Srrip::new(geom)),
        };
        let got = misses_under(policy.as_mut(), 4, &seq);
        prop_assert!(got >= optimal, "{} got {got} < optimal {optimal}", policy.name());
    }

    /// Every policy's rank is always a permutation with the victim first.
    #[test]
    fn rank_is_a_permutation_with_victim_first(
        seq in prop::collection::vec((0u32..4, 0u8..4), 1..100),
        kind_idx in 0usize..4,
    ) {
        let geom = CacheGeometry::new(4, 4);
        let kinds =
            [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Srrip, PolicyKind::Hawkeye];
        let mut policy = kinds[kind_idx].build(geom, 0);
        for (i, &(set, way)) in seq.iter().enumerate() {
            let c = ctx((set * 4 + way as u32) as u64, i as u64);
            if i % 3 == 0 {
                policy.on_fill(set, way, &c);
            } else {
                policy.on_hit(set, way, &c);
            }
            let mut order = Vec::new();
            policy.rank(set, &c, &mut order);
            let mut sorted = order.clone();
            sorted.sort_unstable();
            prop_assert_eq!(sorted, vec![0u8, 1, 2, 3]);
            prop_assert_eq!(order[0], policy.victim(set, &c));
        }
    }

    /// QBS-style protection must move a block off the victim slot (for
    /// every policy that can express it).
    #[test]
    fn protect_removes_block_from_victim_position(
        fills in prop::collection::vec(0u8..4, 4..20),
        kind_idx in 0usize..3,
    ) {
        let geom = CacheGeometry::new(1, 4);
        let kinds = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Hawkeye];
        let mut policy = kinds[kind_idx].build(geom, 0);
        for (i, &way) in fills.iter().enumerate() {
            policy.on_fill(0, way, &ctx(way as u64, i as u64));
        }
        let c = ctx(0, 1000);
        let victim = policy.victim(0, &c);
        policy.protect(0, victim);
        // After protection the way must be maximally protected: either
        // it is no longer the victim, or (RRPV ties at 0) it carries the
        // most-protected grade.
        let new_victim = policy.victim(0, &c);
        prop_assert!(
            new_victim != victim || policy.rrpv(0, victim) == Some(0),
            "{}: protect({victim}) left it an unprotected victim",
            policy.name()
        );
    }
}

#[test]
fn lru_equals_opt_when_working_set_fits() {
    let seq: Vec<u64> = (0..4u64).cycle().take(100).collect();
    let m = misses_under(&mut Lru::new(CacheGeometry::new(1, 4)), 4, &seq);
    assert_eq!(m, 4, "only cold misses");
    assert_eq!(optimal_misses(4, &seq), 4);
}

#[test]
fn lru_thrashes_on_circular_overflow_but_min_does_not() {
    // The classic: 5 blocks circulating in a 4-way set.
    let seq: Vec<u64> = (0..5u64).cycle().take(200).collect();
    let lru = misses_under(&mut Lru::new(CacheGeometry::new(1, 4)), 4, &seq);
    assert_eq!(lru, 200, "LRU misses every access");
    let optimal = optimal_misses(4, &seq);
    assert!(optimal < 60, "MIN salvages most accesses: {optimal}");
}
