//! Property-based tests of the confidence-interval machinery behind
//! the statistical sampling engine: Welford/Chan moments must agree
//! with the naive two-pass formulas, Student-t critical values must be
//! monotone in both arguments, and every reported interval must be
//! internally consistent (bracketing its mean, ordered across
//! confidence levels, `excludes_zero` agreeing with its bounds).

use proptest::prelude::*;
use ziv_common::stats::{student_t_two_sided, Confidence, RunningMoments};

proptest! {
    /// Welford's streaming update matches the naive two-pass mean and
    /// unbiased variance.
    #[test]
    fn running_moments_match_the_two_pass_formulas(
        values in prop::collection::vec(-1e6f64..1e6, 2..100),
    ) {
        let mut m = RunningMoments::new();
        for &v in &values {
            m.push(v);
        }
        let n = values.len() as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0);
        prop_assert_eq!(m.count(), values.len() as u64);
        let got_mean = m.mean().expect("non-empty");
        prop_assert!(
            (got_mean - mean).abs() <= 1e-6 * (1.0 + mean.abs()),
            "mean {got_mean} vs naive {mean}"
        );
        let got_var = m.sample_variance().expect("n >= 2");
        prop_assert!(
            (got_var - var).abs() <= 1e-5 * (1.0 + var.abs()),
            "variance {got_var} vs naive {var}"
        );
    }

    /// Chan's parallel merge is equivalent to pushing the concatenated
    /// sample — the law that makes per-interval moments combinable.
    #[test]
    fn merging_moments_equals_pushing_the_concatenation(
        a in prop::collection::vec(-1e6f64..1e6, 0..50),
        b in prop::collection::vec(-1e6f64..1e6, 0..50),
    ) {
        let mut left = RunningMoments::new();
        for &v in &a {
            left.push(v);
        }
        let mut right = RunningMoments::new();
        for &v in &b {
            right.push(v);
        }
        left.merge(&right);
        let mut whole = RunningMoments::new();
        for &v in a.iter().chain(&b) {
            whole.push(v);
        }
        prop_assert_eq!(left.count(), whole.count());
        if let (Some(x), Some(y)) = (left.mean(), whole.mean()) {
            prop_assert!((x - y).abs() <= 1e-6 * (1.0 + y.abs()), "mean {x} vs {y}");
        }
        if let (Some(x), Some(y)) = (left.sample_variance(), whole.sample_variance()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + y.abs()), "variance {x} vs {y}");
        }
    }

    /// Intervals bracket their mean, nest by confidence level, and
    /// `excludes_zero` is exactly "both bounds on one side of zero".
    #[test]
    fn confidence_intervals_are_nested_and_consistent(
        values in prop::collection::vec(-1e3f64..1e3, 2..60),
    ) {
        let mut m = RunningMoments::new();
        for &v in &values {
            m.push(v);
        }
        let c90 = m.confidence_interval(Confidence::P90).expect("n >= 2");
        let c95 = m.confidence_interval(Confidence::P95).expect("n >= 2");
        let c99 = m.confidence_interval(Confidence::P99).expect("n >= 2");
        prop_assert!(c90.half_width <= c95.half_width);
        prop_assert!(c95.half_width <= c99.half_width);
        for ci in [c90, c95, c99] {
            prop_assert!(ci.half_width >= 0.0);
            prop_assert!(ci.low() <= ci.mean && ci.mean <= ci.high());
            prop_assert!(ci.contains(ci.mean));
            prop_assert_eq!(
                ci.excludes_zero(),
                ci.low() > 0.0 || ci.high() < 0.0,
                "excludes_zero disagrees with bounds [{}, {}]",
                ci.low(),
                ci.high()
            );
        }
    }

    /// Non-finite samples are dropped without perturbing the moments —
    /// the streaming counterpart of `mean`'s NaN/Inf rejection.
    #[test]
    fn non_finite_samples_never_perturb_the_moments(
        values in prop::collection::vec(-1e6f64..1e6, 1..50),
        poison_at in 0usize..50,
    ) {
        let mut clean = RunningMoments::new();
        let mut poisoned = RunningMoments::new();
        for (i, &v) in values.iter().enumerate() {
            clean.push(v);
            poisoned.push(v);
            if i == poison_at % values.len() {
                poisoned.push(f64::NAN);
                poisoned.push(f64::INFINITY);
                poisoned.push(f64::NEG_INFINITY);
            }
        }
        prop_assert_eq!(clean, poisoned);
    }
}

/// The critical-value table: non-increasing in degrees of freedom (the
/// band selection for untabulated df is conservative, never narrower),
/// strictly ordered across confidence levels, and approaching the
/// normal quantiles asymptotically.
#[test]
fn student_t_critical_values_are_monotone() {
    for conf in [Confidence::P90, Confidence::P95, Confidence::P99] {
        let mut prev = f64::INFINITY;
        for df in 1..=2000 {
            let t = student_t_two_sided(conf, df);
            assert!(t <= prev, "{conf:?} df={df}: {t} > {prev}");
            prev = t;
        }
    }
    for df in [1, 5, 30, 100, 5000] {
        let t90 = student_t_two_sided(Confidence::P90, df);
        let t95 = student_t_two_sided(Confidence::P95, df);
        let t99 = student_t_two_sided(Confidence::P99, df);
        assert!(t90 < t95 && t95 < t99, "df={df}");
    }
    assert_eq!(student_t_two_sided(Confidence::P95, 10_000), 1.960);
}
