//! Model-based property tests: the set-associative array against a
//! hash-map reference model, and the relocation FIFO against a simple
//! queue model.

use proptest::prelude::*;
use std::collections::HashMap;
use ziv_cache::{RelocationFifo, RelocationRequest, SetAssocArray};
use ziv_common::{CacheGeometry, LineAddr};

#[derive(Debug, Clone)]
enum ArrayOp {
    Fill { set: u32, way: u8, tag: u64 },
    Invalidate { set: u32, way: u8 },
    Lookup { set: u32, tag: u64 },
    SetTag { set: u32, way: u8, tag: u64 },
}

fn array_op(sets: u32, ways: u8) -> impl Strategy<Value = ArrayOp> {
    prop_oneof![
        (0..sets, 0..ways, 0u64..32).prop_map(|(set, way, tag)| ArrayOp::Fill { set, way, tag }),
        (0..sets, 0..ways).prop_map(|(set, way)| ArrayOp::Invalidate { set, way }),
        (0..sets, 0u64..32).prop_map(|(set, tag)| ArrayOp::Lookup { set, tag }),
        (0..sets, 0..ways, 0u64..32).prop_map(|(set, way, tag)| ArrayOp::SetTag { set, way, tag }),
    ]
}

proptest! {
    #[test]
    fn array_matches_reference_model(
        ops in prop::collection::vec(array_op(8, 4), 0..300),
    ) {
        let mut arr: SetAssocArray<u32> = SetAssocArray::new(CacheGeometry::new(8, 4));
        // Model: (set, way) -> tag for valid slots.
        let mut model: HashMap<(u32, u8), u64> = HashMap::new();
        let mut counter = 0u32;
        for op in ops {
            match op {
                ArrayOp::Fill { set, way, tag } => {
                    counter += 1;
                    let old = arr.fill(set, way, tag, counter);
                    let model_old = model.insert((set, way), tag);
                    prop_assert_eq!(old.map(|(t, _)| t), model_old);
                }
                ArrayOp::Invalidate { set, way } => {
                    let out = arr.invalidate(set, way);
                    let model_out = model.remove(&(set, way));
                    prop_assert_eq!(out.map(|(t, _)| t), model_out);
                }
                ArrayOp::Lookup { set, tag } => {
                    let got = arr.lookup(set, tag);
                    // The model may hold duplicate tags in a set (the
                    // array permits it; the LLC controller never creates
                    // them for non-relocated blocks). Compare membership.
                    let expected = model
                        .iter()
                        .any(|(&(s, _), &t)| s == set && t == tag);
                    prop_assert_eq!(got.is_some(), expected);
                    if let Some(w) = got {
                        prop_assert_eq!(model.get(&(set, w)), Some(&tag));
                    }
                }
                ArrayOp::SetTag { set, way, tag } => {
                    if model.contains_key(&(set, way)) {
                        arr.set_tag(set, way, tag);
                        model.insert((set, way), tag);
                    }
                }
            }
            // Global occupancy always agrees.
            prop_assert_eq!(arr.total_valid(), model.len());
        }
    }

    #[test]
    fn fifo_matches_queue_model(
        pushes in prop::collection::vec((0u64..100, 0u64..1000), 0..40),
        pop_after in prop::collection::vec(any::<bool>(), 0..40),
    ) {
        let mut fifo = RelocationFifo::new();
        let mut model: std::collections::VecDeque<u64> = Default::default();
        for (i, &(line, at)) in pushes.iter().enumerate() {
            let req = RelocationRequest { line: LineAddr::new(line), requested_at: at };
            let ok = fifo.push(req).is_ok();
            prop_assert_eq!(ok, model.len() < 8, "push accept iff not full");
            if ok {
                model.push_back(line);
            }
            if pop_after.get(i).copied().unwrap_or(false) {
                let popped = fifo.complete_front(1);
                let model_pop = model.pop_front();
                prop_assert_eq!(popped.map(|(r, _)| r.line.raw()), model_pop);
            }
            prop_assert_eq!(fifo.len(), model.len());
        }
    }

    #[test]
    fn fifo_completion_times_are_monotonic(
        reqs in prop::collection::vec(0u64..10_000, 1..30),
    ) {
        let mut fifo = RelocationFifo::new();
        let mut last_done = 0u64;
        for (i, at) in reqs.into_iter().enumerate() {
            if fifo.push(RelocationRequest {
                line: LineAddr::new(i as u64),
                requested_at: at,
            }).is_err() {
                let (_, done) = fifo.complete_front(2).unwrap();
                prop_assert!(done >= last_done);
                last_done = done;
                fifo.push(RelocationRequest {
                    line: LineAddr::new(i as u64),
                    requested_at: at,
                }).unwrap();
            }
        }
        while let Some((_, done)) = fifo.complete_front(2) {
            prop_assert!(done >= last_done, "datapath serializes completions");
            last_done = done;
        }
    }
}
