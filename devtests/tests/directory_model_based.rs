//! Model-based property tests of the sparse directory: sharer tracking
//! against a hash-map reference model, under both MESI and ZeroDEV
//! eviction handling.

use proptest::prelude::*;
use std::collections::{HashMap, HashSet};
use ziv_common::config::{DirRatio, SystemConfig};
use ziv_common::{CoreId, LineAddr};
use ziv_directory::{DirectoryMode, RemovalOutcome, SparseDirectory};

#[derive(Debug, Clone, Copy)]
enum DirOp {
    Fill { line: u64, core: usize },
    Remove { line: u64, core: usize },
    Probe { line: u64 },
}

fn dir_op() -> impl Strategy<Value = DirOp> {
    prop_oneof![
        (0u64..200, 0usize..4).prop_map(|(line, core)| DirOp::Fill { line, core }),
        (0u64..200, 0usize..4).prop_map(|(line, core)| DirOp::Remove { line, core }),
        (0u64..200).prop_map(|line| DirOp::Probe { line }),
    ]
}

fn cfg() -> SystemConfig {
    // A deliberately small directory so evictions occur.
    SystemConfig::scaled().with_dir_ratio(DirRatio::Quarter)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Under ZeroDEV (no evictions ever escape tracking) the directory
    /// must agree exactly with a reference sharer model.
    #[test]
    fn zerodev_matches_reference_model(
        ops in prop::collection::vec(dir_op(), 0..400),
    ) {
        let mut dir = SparseDirectory::new(&cfg(), DirectoryMode::ZeroDev);
        let mut model: HashMap<u64, HashSet<usize>> = HashMap::new();
        for op in ops {
            match op {
                DirOp::Fill { line, core } => {
                    let ev = dir.record_fill(LineAddr::new(line), CoreId::new(core));
                    prop_assert!(ev.is_none(), "ZeroDEV never evicts");
                    model.entry(line).or_default().insert(core);
                }
                DirOp::Remove { line, core } => {
                    let out = dir.remove_sharer(LineAddr::new(line), CoreId::new(core));
                    let expected = match model.get_mut(&line) {
                        None => RemovalOutcomeKind::NotTracked,
                        Some(s) => {
                            // The directory removes the core even if it
                            // was not a sharer; mirror that.
                            s.remove(&core);
                            if s.is_empty() {
                                model.remove(&line);
                                RemovalOutcomeKind::LastCopy
                            } else {
                                RemovalOutcomeKind::StillShared
                            }
                        }
                    };
                    prop_assert_eq!(kind(out), expected);
                }
                DirOp::Probe { line } => {
                    let tracked = dir.is_privately_cached(LineAddr::new(line));
                    prop_assert_eq!(tracked, model.contains_key(&line));
                    if let Some(sharers) = model.get(&line) {
                        let st = dir.probe(LineAddr::new(line)).unwrap();
                        prop_assert_eq!(st.sharers.count() as usize, sharers.len());
                        for &c in sharers {
                            prop_assert!(st.sharers.contains(CoreId::new(c)));
                        }
                    }
                }
            }
            prop_assert_eq!(dir.occupancy(), model.len());
        }
    }

    /// Under MESI, evictions may drop entries — the directory's tracked
    /// set must always be a SUBSET of the reference model, and every
    /// tracked entry must agree on its sharers.
    #[test]
    fn mesi_is_a_subset_of_reference_model(
        ops in prop::collection::vec(dir_op(), 0..400),
    ) {
        let mut dir = SparseDirectory::new(&cfg(), DirectoryMode::Mesi);
        let mut model: HashMap<u64, HashSet<usize>> = HashMap::new();
        for op in ops {
            match op {
                DirOp::Fill { line, core } => {
                    if let Some(ev) = dir.record_fill(LineAddr::new(line), CoreId::new(core)) {
                        // The evicted entry's block leaves the model too
                        // (its sharers would be back-invalidated).
                        model.remove(&ev.line.raw());
                    }
                    model.entry(line).or_default().insert(core);
                }
                DirOp::Remove { line, core } => {
                    let out = dir.remove_sharer(LineAddr::new(line), CoreId::new(core));
                    if let Some(s) = model.get_mut(&line) {
                        s.remove(&core);
                        if s.is_empty() {
                            model.remove(&line);
                        }
                    }
                    // A NotTracked outcome for a modeled line means it
                    // was silently evicted earlier; drop it.
                    if matches!(out, RemovalOutcome::NotTracked) {
                        model.remove(&line);
                    }
                }
                DirOp::Probe { line } => {
                    if dir.is_privately_cached(LineAddr::new(line)) {
                        prop_assert!(
                            model.contains_key(&line),
                            "directory tracks a line the model does not"
                        );
                    }
                }
            }
            prop_assert!(dir.occupancy() <= model.len());
        }
    }
}

#[derive(Debug, PartialEq)]
enum RemovalOutcomeKind {
    NotTracked,
    StillShared,
    LastCopy,
}

fn kind(out: RemovalOutcome) -> RemovalOutcomeKind {
    match out {
        RemovalOutcome::NotTracked => RemovalOutcomeKind::NotTracked,
        RemovalOutcome::StillShared => RemovalOutcomeKind::StillShared,
        RemovalOutcome::LastCopy(_) => RemovalOutcomeKind::LastCopy,
    }
}
