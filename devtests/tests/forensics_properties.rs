//! Property-based tests of the causal forensics observatory: under
//! arbitrary access interleavings the blame matrix conserves exactly
//! against the hierarchy's `inclusion_victims` counter and the latency
//! observatory's refetch account, ZIV never opens a chain, and the
//! observatory's unit-level books balance under arbitrary
//! open / victim / close / take / refetch scripts.

use proptest::prelude::*;
use ziv::prelude::*;
use ziv_common::addr::LineAddr;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};
use ziv_core::observe::{FlightRecorder, ObserveConfig};
use ziv_core::{ChainKind, ForensicsObservatory, VictimReason};

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(128 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// One step of an arbitrary access sequence.
#[derive(Debug, Clone, Copy)]
struct Step {
    core: usize,
    line: u64,
    write: bool,
}

fn step_strategy(cores: usize) -> impl Strategy<Value = Step> {
    (0..cores, 0u64..400, any::<bool>()).prop_map(|(core, line, write)| Step { core, line, write })
}

/// Runs `steps` through a tiny hierarchy with the latency and forensics
/// observatories attached, returning the final counters and reports.
fn run_observed(
    mode: LlcMode,
    policy: PolicyKind,
    steps: &[Step],
) -> (u64, ziv_core::LatencyReport, ziv_core::ForensicsReport) {
    let sys = tiny(3);
    let banks = sys.llc.banks;
    let sets = sys.llc.bank_geometry.sets as usize;
    let cfg = HierarchyConfig::new(sys).with_mode(mode).with_policy(policy);
    let mut h = CacheHierarchy::new(&cfg);
    let observe = ObserveConfig {
        latency: true,
        forensics: true,
        ..ObserveConfig::disabled()
    };
    h.attach_recorder(FlightRecorder::new(&observe, 3, banks, sets).expect("recorder on"));
    let mut now = 0u64;
    for (i, s) in steps.iter().enumerate() {
        let addr = Addr::new(s.line * 64);
        let a = if s.write {
            Access::write(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        } else {
            Access::read(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        };
        now += 1 + h.access(&a, now, i as u64);
    }
    let victims = h.metrics().inclusion_victims;
    let (_, _, _, latency, _, forensics) = h.take_recorder().expect("recorder attached").finish();
    (
        victims,
        latency.expect("latency on"),
        forensics.expect("forensics on"),
    )
}

/// One scripted chain fed straight into a [`ForensicsObservatory`]:
/// which core instigates, which cores lose a private copy, and whether
/// a victim later re-fetches the line.
#[derive(Debug, Clone, Copy)]
struct ChainScript {
    eci: bool,
    instigator: usize,
    line: u64,
    victim_mask: u8, // low 3 bits: which of the 3 cores are victimized
    refetch_cycles: u64,
}

fn chain_strategy() -> impl Strategy<Value = ChainScript> {
    (any::<bool>(), 0usize..3, 0u64..96, 0u8..8, 0u64..500).prop_map(
        |(eci, instigator, line, victim_mask, refetch_cycles)| ChainScript {
            eci,
            instigator,
            line,
            victim_mask,
            refetch_cycles,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Under arbitrary interleavings, every inclusive mode's blame
    /// matrix holds exactly `Metrics::inclusion_victims` entries, its
    /// refetch cycles agree with the latency observatory's independent
    /// account, and the per-set/per-phase rollups partition the same
    /// population.
    #[test]
    fn blame_matrix_conserves_under_arbitrary_interleavings(
        steps in prop::collection::vec(step_strategy(3), 200..1200),
        mode_idx in 0usize..6,
    ) {
        let mode = [
            LlcMode::Inclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::CharOnBase,
            LlcMode::Eci,
            LlcMode::Ric,
        ][mode_idx];
        let (victims, latency, forensics) = run_observed(mode, PolicyKind::Lru, &steps);
        prop_assert_eq!(forensics.total_victims(), victims);
        prop_assert_eq!(
            forensics.total_refetch_cycles(),
            latency.inclusion_victim_refetch_cycles(),
            "refetch accounts disagree under {:?}", mode
        );
    }

    /// ZIV modes never open a chain, no matter the interleaving — the
    /// observatory-level restatement of the zero-inclusion-victim
    /// guarantee.
    #[test]
    fn ziv_opens_no_chains_under_arbitrary_interleavings(
        steps in prop::collection::vec(step_strategy(3), 200..1000),
        prop_idx in 0usize..3,
    ) {
        let prop_kind = [
            ZivProperty::NotInPrC,
            ZivProperty::LruNotInPrC,
            ZivProperty::LikelyDead,
        ][prop_idx];
        let (victims, _, forensics) =
            run_observed(LlcMode::Ziv(prop_kind), PolicyKind::Lru, &steps);
        prop_assert_eq!(victims, 0);
        prop_assert_eq!(forensics.chains_recorded, 0);
        prop_assert_eq!(forensics.total_victims(), 0);
        prop_assert!(forensics.chains.is_empty());
    }

    /// Unit-level bookkeeping: an arbitrary script of chains keeps the
    /// observatory's books balanced — the matrix total equals the
    /// victims fed in, victimless chains vanish, the ring keeps the
    /// last ≤256 chains in seq order, and each victimization explains
    /// at most one refetch.
    #[test]
    fn observatory_books_balance_under_arbitrary_chain_scripts(
        script in prop::collection::vec(chain_strategy(), 1..400),
    ) {
        let mut obs = ForensicsObservatory::new(3, 2, 4);
        let mut fed_victims = 0u64;
        let mut kept_chains = 0u64;
        let mut eci_kept = 0u64;
        let mut fed_refetch_cycles = 0u64;
        for (i, c) in script.iter().enumerate() {
            let kind = if c.eci { ChainKind::Eci } else { ChainKind::Inclusive };
            let line = LineAddr::new(c.line);
            obs.open_chain(
                kind,
                CoreId::new(c.instigator),
                i as u64,
                i as u64 * 10,
                line,
                VictimReason::Baseline,
            );
            for v in 0..3 {
                if c.victim_mask & (1 << v) != 0 {
                    obs.chain_victim(CoreId::new(v));
                    fed_victims += 1;
                }
            }
            obs.close_chain();
            if c.victim_mask & 7 != 0 {
                kept_chains += 1;
                if c.eci {
                    eci_kept += 1;
                }
            }
            // The first victimized core comes back for the line: the
            // take must name this chain, and a second take must miss
            // (one victimization explains at most one refetch).
            if let Some(v) = (0..3).find(|v| c.victim_mask & (1 << v) != 0) {
                let (instigator, seq) = obs
                    .take_victim(CoreId::new(v), line)
                    .expect("victimized line must be in the table");
                prop_assert_eq!(instigator.index(), c.instigator);
                obs.record_refetch(instigator, CoreId::new(v), seq, c.refetch_cycles);
                fed_refetch_cycles += c.refetch_cycles;
                prop_assert!(obs.take_victim(CoreId::new(v), line).is_none());
            }
        }
        let report = obs.finish();
        prop_assert_eq!(report.total_victims(), fed_victims);
        prop_assert_eq!(report.chains_recorded, kept_chains);
        prop_assert_eq!(report.eci_chains, eci_kept);
        prop_assert_eq!(report.inclusive_chains, kept_chains - eci_kept);
        prop_assert_eq!(report.total_refetch_cycles(), fed_refetch_cycles);
        prop_assert_eq!(
            report.chains.len() as u64,
            kept_chains.min(256),
            "the ring keeps the last ≤256 chains"
        );
        for pair in report.chains.windows(2) {
            prop_assert!(pair[0].seq < pair[1].seq, "ring stays in seq order");
        }
        let by_set: u64 = report.set_victims.iter().sum();
        let by_phase: u64 = report.phase_victims.iter().sum();
        prop_assert_eq!(by_set, fed_victims);
        prop_assert_eq!(by_phase, fed_victims);
    }
}
