//! Property-based auditor tests: under arbitrary access sequences, the
//! every-access invariant auditor stays silent in every LLC mode — the
//! auditor's checks hold on healthy hierarchies, so any report in a
//! campaign is a genuine model bug, not auditor noise.

use proptest::prelude::*;
use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};
use ziv_core::Auditor;

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(128 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// One step of an arbitrary access sequence.
#[derive(Debug, Clone, Copy)]
struct Step {
    core: usize,
    line: u64,
    write: bool,
}

fn step_strategy(cores: usize) -> impl Strategy<Value = Step> {
    (0..cores, 0u64..400, any::<bool>()).prop_map(|(core, line, write)| Step { core, line, write })
}

/// Runs `steps` through a fresh hierarchy, auditing the full invariant
/// set (structure + metric conservation) after every access.
fn run_audited(mode: LlcMode, policy: PolicyKind, steps: &[Step]) -> Result<(), TestCaseError> {
    let cfg = HierarchyConfig::new(tiny(3))
        .with_mode(mode)
        .with_policy(policy);
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0u64;
    for (i, s) in steps.iter().enumerate() {
        let addr = Addr::new(s.line * 64);
        let a = if s.write {
            Access::write(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        } else {
            Access::read(CoreId::new(s.core), addr, 0x400 + s.line % 32)
        };
        now += 1 + h.access(&a, now, i as u64);
        let audit = Auditor::check(&h, i as u64);
        prop_assert!(
            audit.is_ok(),
            "{} after access {i}: {}",
            mode.label(),
            audit.err().unwrap()
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn every_access_audit_is_silent_on_healthy_lru_modes(
        steps in prop::collection::vec(step_strategy(3), 200..800),
        mode_idx in 0usize..8,
    ) {
        let mode = [
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::CharOnBase,
            LlcMode::Ziv(ZivProperty::NotInPrC),
            LlcMode::Ziv(ZivProperty::LruNotInPrC),
            LlcMode::Ziv(ZivProperty::LikelyDead),
        ][mode_idx];
        run_audited(mode, PolicyKind::Lru, &steps)?;
    }

    #[test]
    fn every_access_audit_is_silent_on_healthy_rrpv_modes(
        steps in prop::collection::vec(step_strategy(3), 200..800),
        mode_idx in 0usize..2,
    ) {
        let mode = [
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
        ][mode_idx];
        run_audited(mode, PolicyKind::Hawkeye, &steps)?;
    }
}
