//! Property-based tests of [`Log2Histogram::percentile`]: under
//! arbitrary recorded populations, the bucket-interpolated percentile
//! must agree with the histogram's own CDF — asking for the exact
//! fraction of samples below a power-of-two threshold can never land
//! above that threshold — and must stay monotone and within the
//! recorded value range.

use proptest::prelude::*;
use ziv_common::stats::Log2Histogram;

fn histogram_of(values: &[u64]) -> Log2Histogram {
    let mut h = Log2Histogram::new();
    for &v in values {
        h.record(v);
    }
    h
}

proptest! {
    /// The CDF round-trip: `fraction_below_pow2(k)` is the exact share
    /// of samples strictly below `2^k`, so the interpolated percentile
    /// at that quantile is bounded by `2^k` (up to float slack).
    #[test]
    fn percentile_of_cdf_fraction_respects_the_threshold(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        k in 1usize..20,
    ) {
        let h = histogram_of(&values);
        let q = h.fraction_below_pow2(k);
        let p = h.percentile(q).expect("non-empty histogram");
        let threshold = (1u128 << k) as f64;
        prop_assert!(
            p <= threshold * (1.0 + 1e-9),
            "percentile({q}) = {p} exceeds 2^{k} = {threshold}"
        );
    }

    /// Percentiles never move down as the quantile moves up.
    #[test]
    fn percentile_is_monotone_in_the_quantile(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&values);
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let plo = h.percentile(lo).expect("non-empty");
        let phi = h.percentile(hi).expect("non-empty");
        prop_assert!(plo <= phi, "percentile({lo}) = {plo} > percentile({hi}) = {phi}");
    }

    /// `percentile(0.0)` is the infimum of the recorded value range —
    /// the lower edge of the lowest non-empty bucket, never a bare 0 —
    /// and lower-bounds every other quantile.
    #[test]
    fn percentile_zero_is_the_lower_edge_of_the_lowest_bucket(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&values);
        let p0 = h.percentile(0.0).expect("non-empty");
        let lowest = (0..64)
            .find(|&k| h.count_in_bucket(k) > 0)
            .expect("non-empty histogram has a non-empty bucket");
        let edge = if lowest == 0 { 0.0 } else { (1u64 << lowest) as f64 };
        prop_assert_eq!(p0, edge, "percentile(0.0) = {} but bucket {} opens at {}", p0, lowest, edge);
        prop_assert!(p0 <= h.percentile(q).expect("non-empty"));
    }

    /// Every percentile stays inside the recorded buckets' value range:
    /// at most one bucket above the largest sample, never below zero.
    #[test]
    fn percentile_is_bounded_by_the_bucket_holding_the_max(
        values in prop::collection::vec(0u64..1_000_000, 1..200),
        q in 0.0f64..=1.0,
    ) {
        let h = histogram_of(&values);
        let p = h.percentile(q).expect("non-empty");
        let top = h.max_bucket().expect("non-empty");
        let ceiling = (1u128 << (top + 1)) as f64;
        prop_assert!(p >= 0.0);
        prop_assert!(p <= ceiling, "percentile({q}) = {p} above bucket ceiling {ceiling}");
    }
}
