//! Model-based property test of the private hierarchy's presence and
//! eviction-notice protocol — the foundation the sparse directory's
//! exactness (and therefore every `NotInPrC` decision in the ZIV LLC)
//! rests on.
//!
//! The reference model tracks only *presence* (which lines the core
//! currently holds somewhere) by replaying the same operations; the
//! test asserts the hierarchy's presence, notice emission, and dirty
//! bits agree with it at every step.

use proptest::prelude::*;
use std::collections::HashMap;
use ziv::core::private::{EvictionNotice, PrivateHierarchy};
use ziv_common::{CacheGeometry, LineAddr};

#[derive(Debug, Clone, Copy)]
enum Op {
    Access { line: u64, instr: bool, write: bool },
    Fill { line: u64, write: bool },
    Invalidate { line: u64 },
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u64..64, any::<bool>(), any::<bool>()).prop_map(|(line, instr, write)| Op::Access {
            line,
            instr,
            write: write && !instr,
        }),
        (0u64..64, any::<bool>()).prop_map(|(line, write)| Op::Fill { line, write }),
        (0u64..64).prop_map(|line| Op::Invalidate { line }),
    ]
}

/// Reference presence model: line -> dirty.
#[derive(Debug, Default)]
struct Model {
    present: HashMap<u64, bool>,
}

impl Model {
    fn apply_notices(&mut self, notices: &[EvictionNotice], test_dirty: bool) {
        for n in notices {
            let was = self.present.remove(&n.line.raw());
            assert!(
                was.is_some(),
                "notice for a line the model did not hold: {n:?}"
            );
            if test_dirty {
                assert_eq!(
                    was.unwrap(),
                    n.dirty,
                    "notice dirty bit disagrees with the model for {n:?}"
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Presence according to the hierarchy equals presence according to
    /// the model: a line is held iff it was filled and no notice or
    /// invalidation has removed it since. (This is exactly the property
    /// the up-to-date sparse directory relies on.)
    #[test]
    fn presence_and_notices_match_reference_model(
        ops in prop::collection::vec(op(), 1..500),
    ) {
        let mut h = PrivateHierarchy::new(
            CacheGeometry::new(2, 2),
            CacheGeometry::new(2, 2),
            CacheGeometry::new(4, 2),
        );
        let mut model = Model::default();
        let mut notices = Vec::new();
        for o in ops {
            match o {
                Op::Access { line, instr, write } => {
                    let l = LineAddr::new(line);
                    let held_before = model.present.contains_key(&line);
                    let outcome = h.access(l, instr, write, &mut notices);
                    // A hit is only possible if the model holds the line.
                    if !held_before {
                        prop_assert!(
                            matches!(outcome, ziv::core::private::PrivLookup::Miss),
                            "hit on a line the model does not hold"
                        );
                    }
                    if write && held_before {
                        model.present.insert(line, true);
                    }
                    model.apply_notices(&notices, false);
                    notices.clear();
                }
                Op::Fill { line, write } => {
                    let l = LineAddr::new(line);
                    if !model.present.contains_key(&line) {
                        h.fill_from_shared(l, false, write, false, &mut notices);
                        model.present.insert(line, write);
                        model.apply_notices(&notices, false);
                        notices.clear();
                    }
                }
                Op::Invalidate { line } => {
                    let l = LineAddr::new(line);
                    let got = h.invalidate(l);
                    let expected = model.present.remove(&line);
                    prop_assert_eq!(
                        got.is_some(),
                        expected.is_some(),
                        "invalidate presence mismatch for line {}",
                        line
                    );
                }
            }
            // Presence agreement, every step, every line.
            for line in 0..64u64 {
                prop_assert_eq!(
                    h.contains(LineAddr::new(line)),
                    model.present.contains_key(&line),
                    "presence mismatch for line {}",
                    line
                );
            }
        }
    }

    /// Dirty data never vanishes silently: a line written and then
    /// forced out must leave as a dirty notice or dirty invalidation.
    #[test]
    fn dirty_data_always_leaves_loudly(
        fills in prop::collection::vec((0u64..32, any::<bool>()), 1..200),
    ) {
        let mut h = PrivateHierarchy::new(
            CacheGeometry::new(2, 2),
            CacheGeometry::new(2, 2),
            CacheGeometry::new(4, 2),
        );
        let mut dirty_in: std::collections::HashSet<u64> = Default::default();
        let mut notices = Vec::new();
        for (line, write) in fills {
            let l = LineAddr::new(line);
            if !h.contains(l) {
                h.fill_from_shared(l, false, write, false, &mut notices);
                if write {
                    dirty_in.insert(line);
                }
            } else if write {
                let _ = h.access(l, false, true, &mut notices);
                dirty_in.insert(line);
            }
            for n in notices.drain(..) {
                if dirty_in.remove(&n.line.raw()) {
                    prop_assert!(n.dirty, "dirty line {} left with a clean notice", n.line);
                }
            }
        }
        // Drain the rest through invalidation.
        for line in 0..32u64 {
            if let Some(was_dirty) = h.invalidate(LineAddr::new(line)) {
                if dirty_in.remove(&line) {
                    prop_assert!(was_dirty, "dirty line {line} invalidated clean");
                }
            }
        }
        prop_assert!(dirty_in.is_empty(), "dirty lines unaccounted for: {dirty_in:?}");
    }
}
