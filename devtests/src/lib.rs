//! Empty library target; the content of this crate is its `tests/`
//! (proptest suites) and `benches/` (criterion microbenchmarks), kept
//! out of the root workspace so the default build stays offline.
