//! `zivsim` — command-line driver for the ZIV LLC simulator.
//!
//! ```text
//! zivsim list                             # available modes, policies, apps, campaigns
//! zivsim run  [options]                   # one configuration, one workload
//! zivsim compare [options]                # every mode on one workload
//! zivsim export <file> [options]          # write the workload as a ziv-trace file
//! zivsim campaign <name> [options]        # run a named figure campaign end-to-end
//! zivsim replay <file>                    # re-run a failure repro record deterministically
//! zivsim trace [<mode>] [options]         # one traced run; drain the event ring as JSONL
//! zivsim profile [<mode>] [options]       # one run with the latency observatory + self-
//!                                         # profiler on; print the attribution tables
//! zivsim blame [<mode>] [options]         # one run with the forensics observatory on;
//!                                         # print the top causal chains (instigator
//!                                         # access → eviction → victimized cores →
//!                                         # refetch cost) and the instigator × victim
//!                                         # blame matrix, conservation-checked against
//!                                         # the metrics + latency observatories
//!                                         # (--out <FILE> also writes blame.csv)
//! zivsim attack [<scenario>] [options]    # one attack co-schedule (primeprobe | hammer)
//!                                         # under --mode with the leakage observatory on;
//!                                         # print the attacker-observable signal summary
//!                                         # (--sets <N> targeted LLC sets, default 8)
//! zivsim sample [<mode>] [options]        # paired interval-sampled run: the mode (default
//!                                         # ziv-likelydead) and an inclusive baseline
//!                                         # sample the same trace; report per-interval IPC
//!                                         # and whether the IPC delta's CI excludes zero
//! zivsim bench-throughput [options]       # time the smoke campaign end-to-end (accesses/s)
//! zivsim bench-compare <old.json> <new.json> [--threshold <pct>]
//!                                         # diff two bench reports; nonzero exit on
//!                                         # aggregate regressions beyond the threshold
//!                                         # (default 5%)
//! zivsim soak [options]                   # deterministic chaos-soak drill: run the soak
//!                                         # grid fault-free, re-run it with five seeded
//!                                         # injected faults under full supervision, audit
//!                                         # that every fault was isolated and every healthy
//!                                         # cell stayed byte-identical, then tear the
//!                                         # ledger mid-record and prove --resume recovery
//! zivsim watch <results-dir> [options]    # attach to a running campaign's live telemetry
//!                                         # segment (<dir>/telemetry.shm) and render a
//!                                         # refreshing progress view; exits 0 once the
//!                                         # campaign publishes its final state, 4 if the
//!                                         # writer dies without finishing
//!
//! exit codes:
//!   0  clean run, nothing failed
//!   1  command-specific failure (bench regression, replay non-repro, ...)
//!   2  configuration / usage error (bad flag, unknown name, malformed value)
//!   3  cell failures, all fault-isolated (campaign cells failed but the
//!      campaign completed; for `soak`, the expected chaos outcome)
//!   4  internal error: panic, ledger corruption, infrastructure I/O
//!      failure, or a violated supervision guarantee in `soak`
//!
//! bench-throughput options:
//!   --repeats <N>                         (timed repeats per cell, best-of; default 3)
//!   --out <FILE>                          (JSON report path; default BENCH_hotpath.json;
//!                                          parent directories are created as needed)
//!   --traced                              (run with the flight recorder fully enabled,
//!                                          for tracing-on vs tracing-off comparisons)
//!   --latency / --profile also apply (the BENCH_latency.json twin bounds
//!   the observatory's overhead). --cores/--seed also apply. The report
//!   is a recorded performance baseline, not a gate: wall-clock numbers
//!   vary with the machine.
//!
//! observability options (trace + profile + campaign):
//!   --epoch <N>                           (snapshot counter deltas every N accesses;
//!                                          campaigns export them as timeseries.csv)
//!   --events <all | k1,k2,...>            (event kinds to retain: fill, eviction,
//!                                          back-invalidation, relocation,
//!                                          directory-victim, audit-violation)
//!   --last <K>                            (event ring capacity; default 256)
//!   --heatmap                             (accumulate per-(bank, set) occupancy grids;
//!                                          campaigns export them as heatmap.csv)
//!   --latency                             (latency attribution observatory: per-core ×
//!                                          per-class component cycles + percentile
//!                                          histograms; campaigns export latency.csv)
//!   --profile                             (wall-clock self-profiler: per-subsystem
//!                                          simulator time; campaigns export profile.json)
//!   --leakage                             (leakage observatory: attacker-observable
//!                                          signal counters on attack workloads; campaigns
//!                                          export leakage.csv — forced on for the
//!                                          attack-eval campaign and `zivsim attack`)
//!   --forensics                           (causal forensics observatory: per-line fill
//!                                          provenance + back-invalidation causal chains
//!                                          + the instigator × victim blame matrix;
//!                                          campaigns export blame.csv — forced on for
//!                                          `zivsim blame` and by --perfetto)
//!   --perfetto                            (export a Chrome trace-event JSON document —
//!                                          profiler spans, epoch counter tracks, ring
//!                                          events, and causal chains as flow events —
//!                                          viewable at ui.perfetto.dev; campaigns write
//!                                          trace.json, `trace --perfetto` replaces the
//!                                          JSONL output; implies --forensics; honors
//!                                          --events as an event filter)
//!   trace always records events (default --events all) and writes them
//!   as JSONL to stdout, or to --out <FILE>. Observability never changes
//!   results: ledgers and grid CSVs stay byte-identical with it on.
//!
//! campaign options:
//!   --resume                              (reuse the ledger: skip completed cells)
//!   --results-dir <D>                     (default results/<name>)
//!   --threads <N>                         (default: available parallelism)
//!   --strict                              (stop claiming new cells after the first failure)
//!   --inject-fault <S:W:KIND:AT>          (testing aid: arm a deliberate fault in spec S,
//!                                          KIND = corrupt-directory|skip-back-invalidation|
//!                                          stall-core|hang-core|panic-core, at access AT;
//!                                          W is informational)
//!
//! robustness options (run + campaign):
//!   --audit <off|sampled|sampled:N|every-access>    (default off; invariant audit cadence)
//!   --cell-budget <CYCLES>                (per-core watchdog budget; default derived
//!                                          from the workload size)
//!
//! sampling options (campaign + sample):
//!   --sampling <spec>                     (interval-sampling plan: `auto`, `off`, or
//!                                          `interval=N,gap=N[,warmup=PCT][,confidence=
//!                                          90|95|99][,max=N]`; each period simulates
//!                                          `interval` timed accesses, fast-forwards the
//!                                          gap functionally, and re-warms timing state
//!                                          over the gap's last PCT%. Campaign estimates
//!                                          export as sampling.csv and never touch the
//!                                          result ledger)
//!   --validate                            (campaign only, requires --sampling: run the
//!                                          full campaign too and export validation.csv —
//!                                          per-cell IPC error, CI coverage, and the
//!                                          wall-clock speedup of the sampled pass)
//!
//! live telemetry options (campaign + sample + soak):
//!   --telemetry <off|on>                  (publish <results-dir>/telemetry.shm — the
//!                                          seqlock shared-memory segment `zivsim watch`
//!                                          attaches to; default off, and provably free
//!                                          when off: no thread, no mmap, no hot-path work)
//!   --progress <live|jsonl>               (live: the usual human progress lines, default;
//!                                          jsonl: one machine-readable heartbeat JSON line
//!                                          per ticker tick on stderr, for CI log scraping)
//!
//! watch options:
//!   --json                                (emit one JSONL snapshot per refresh instead of
//!                                          the live table)
//!   --once                                (exit 0 after the first consistent snapshot)
//!   --refresh <MS>                        (poll cadence; default 500)
//!   --stale-after <MS>                    (heartbeat-staleness window; a stale heartbeat
//!                                          whose writer PID is gone exits 4; default 5000)
//!
//! supervision options (campaign + soak):
//!   --retries <N>                         (re-attempt transiently failing cells up to N
//!                                          times with deterministic seeded backoff;
//!                                          default 0)
//!   --cell-timeout <MS>                   (wall-clock budget per cell attempt; the
//!                                          watchdog cancels and ledgers overruns as
//!                                          timeouts; default off for campaigns, 60000
//!                                          for soak)
//!   --stall-window <MS>                   (cancel a cell once it makes no forward
//!                                          progress for MS milliseconds; default off for
//!                                          campaigns, 750 for soak)
//!
//! options:
//!   --mode <inclusive|noninclusive|qbs|sharp|charonbase|
//!           ziv-notinprc|ziv-lrunotinprc|ziv-likelydead|
//!           ziv-mrnotinprc|ziv-mrlikelydead>        (default inclusive)
//!   --policy <lru|srrip|drrip|ship|hawkeye|min>     (default lru)
//!   --l2 <256|512|768|1024>                         (default 256, KB class)
//!   --workload <homo:APP | hetero:N | mt:NAME | file:PATH>  (default hetero:0)
//!   --accesses <N per core>                         (default 50000)
//!   --cores <N>                                     (default 8)
//!   --seed <N>                                      (default 2026)
//!   --prefetch                                      (enable stride prefetching)
//!   --paper-scale                                   (full Table I sizes)
//! ```

use std::process::ExitCode;
use ziv::prelude::*;

#[derive(Debug, Clone)]
struct Options {
    command: String,
    mode: LlcMode,
    mode_explicit: bool,
    policy: PolicyKind,
    l2: L2Size,
    workload: String,
    accesses: usize,
    cores: usize,
    seed: u64,
    seed_explicit: bool,
    paper_scale: bool,
    prefetch: bool,
    resume: bool,
    results_dir: Option<String>,
    threads: Option<usize>,
    audit: ziv::core::AuditCadence,
    strict: bool,
    cell_budget: Option<u64>,
    inject_fault: Option<(usize, usize, ziv::core::FaultInjection)>,
    retries: u32,
    cell_timeout_ms: Option<u64>,
    stall_window_ms: Option<u64>,
    repeats: usize,
    out: Option<String>,
    epoch: Option<u64>,
    events: Option<String>,
    last: Option<usize>,
    heatmap: bool,
    latency: bool,
    profile: bool,
    leakage: bool,
    forensics: bool,
    perfetto: bool,
    sets: u32,
    threshold: Option<f64>,
    traced: bool,
    sampling: Option<ziv::sim::SamplingPlan>,
    validate: bool,
    telemetry: bool,
    progress_jsonl: bool,
    json: bool,
    once: bool,
    refresh_ms: u64,
    stale_after_ms: u64,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            command: "help".into(),
            mode: LlcMode::Inclusive,
            mode_explicit: false,
            policy: PolicyKind::Lru,
            l2: L2Size::K256,
            workload: "hetero:0".into(),
            accesses: 50_000,
            cores: 8,
            seed: 2026,
            seed_explicit: false,
            paper_scale: false,
            prefetch: false,
            resume: false,
            results_dir: None,
            threads: None,
            audit: ziv::core::AuditCadence::Off,
            strict: false,
            cell_budget: None,
            inject_fault: None,
            retries: 0,
            cell_timeout_ms: None,
            stall_window_ms: None,
            repeats: 3,
            out: None,
            epoch: None,
            events: None,
            last: None,
            heatmap: false,
            latency: false,
            profile: false,
            leakage: false,
            forensics: false,
            perfetto: false,
            sets: 8,
            threshold: None,
            traced: false,
            sampling: None,
            validate: false,
            telemetry: false,
            progress_jsonl: false,
            json: false,
            once: false,
            refresh_ms: 500,
            stale_after_ms: 5000,
        }
    }
}

impl Options {
    /// The flight-recorder configuration the flags describe. `trace`
    /// always records events (defaulting to `all`); `profile` always
    /// runs the latency observatory and the self-profiler; elsewhere
    /// the recorder stays off unless the flags ask for it.
    fn observe_config(&self) -> Result<ziv::sim::ObserveConfig, String> {
        let events = if self.events.is_some() || self.last.is_some() || self.command == "trace" {
            let filter = match &self.events {
                Some(spec) => ziv::sim::EventFilter::parse(spec).map_err(|e| e.to_string())?,
                None => ziv::sim::EventFilter::all(),
            };
            let mut cfg = ziv::sim::EventTraceConfig {
                filter,
                ..Default::default()
            };
            if let Some(last) = self.last {
                cfg.capacity = last;
            }
            Some(cfg)
        } else {
            None
        };
        let profiling = self.command == "profile";
        let attacking = self.command == "attack";
        let blaming = self.command == "blame";
        Ok(ziv::sim::ObserveConfig {
            epoch: self.epoch,
            events,
            heatmap: self.heatmap,
            latency: self.latency || profiling || blaming,
            profile: self.profile || profiling,
            leakage: self.leakage || attacking,
            // A Perfetto export without chains would be blind to the
            // paper's causal story, so --perfetto arms forensics too.
            forensics: self.forensics || self.perfetto || blaming,
        })
    }
}

/// A command failure routed to the documented exit-code contract (see
/// the header): 1 command-specific, 2 usage, 3 isolated cell failures,
/// 4 internal.
#[derive(Debug)]
enum CliError {
    /// Exit 1 — a command-specific verdict (bench regression, replay
    /// that did not reproduce, a failing single run).
    Other(String),
    /// Exit 2 — a configuration or usage error: bad flag, unknown
    /// campaign/mode/workload name, malformed value.
    Usage(String),
    /// Exit 3 — campaign cells failed but every failure was isolated,
    /// ledgered, and left a repro record; the campaign itself finished.
    Cells(String),
    /// Exit 4 — an internal failure: panic, ledger corruption, results
    /// I/O, or a violated supervision guarantee in `soak`.
    Internal(String),
}

impl CliError {
    fn exit_code(&self) -> ExitCode {
        ExitCode::from(match self {
            CliError::Other(_) => 1u8,
            CliError::Usage(_) => 2,
            CliError::Cells(_) => 3,
            CliError::Internal(_) => 4,
        })
    }

    fn report(&self) {
        match self {
            CliError::Other(m) => eprintln!("error: {m}"),
            CliError::Usage(m) => {
                eprintln!("error: {m}");
                usage();
            }
            CliError::Cells(m) => eprintln!("{m}"),
            CliError::Internal(m) => eprintln!("internal error: {m}"),
        }
    }
}

/// Parses `--inject-fault S:W:KIND:AT` (spec index, workload index,
/// fault kind, trigger access).
fn parse_inject_fault(s: &str) -> Result<(usize, usize, ziv::core::FaultInjection), String> {
    let parts: Vec<&str> = s.split(':').collect();
    let [spec, workload, kind, at] = parts.as_slice() else {
        return Err(format!(
            "--inject-fault '{s}' must look like SPEC:WORKLOAD:KIND:AT_ACCESS"
        ));
    };
    let spec: usize = spec.parse().map_err(|e| format!("fault spec index: {e}"))?;
    let workload: usize = workload
        .parse()
        .map_err(|e| format!("fault workload index: {e}"))?;
    let at: u64 = at.parse().map_err(|e| format!("fault access index: {e}"))?;
    let fault = ziv::core::FaultInjection::from_parts(kind, at).ok_or_else(|| {
        format!(
            "unknown fault kind '{kind}' (corrupt-directory, \
             skip-back-invalidation, stall-core, hang-core, or panic-core)"
        )
    })?;
    Ok((spec, workload, fault))
}

fn parse_mode(s: &str) -> Result<LlcMode, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "inclusive" | "i" => LlcMode::Inclusive,
        "noninclusive" | "ni" => LlcMode::NonInclusive,
        "qbs" => LlcMode::Qbs,
        "sharp" => LlcMode::Sharp,
        "charonbase" => LlcMode::CharOnBase,
        "tlh" => LlcMode::Tlh { hint_one_in: 8 },
        "eci" => LlcMode::Eci,
        "ric" => LlcMode::Ric,
        "waypart" => LlcMode::WayPartitioned,
        "ziv-notinprc" => LlcMode::Ziv(ZivProperty::NotInPrC),
        "ziv-lrunotinprc" => LlcMode::Ziv(ZivProperty::LruNotInPrC),
        "ziv-likelydead" => LlcMode::Ziv(ZivProperty::LikelyDead),
        "ziv-mrnotinprc" => LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
        "ziv-mrlikelydead" => LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
        other => return Err(format!("unknown mode '{other}'")),
    })
}

fn parse_policy(s: &str) -> Result<PolicyKind, String> {
    Ok(match s.to_ascii_lowercase().as_str() {
        "lru" => PolicyKind::Lru,
        "srrip" => PolicyKind::Srrip,
        "drrip" => PolicyKind::Drrip,
        "ship" => PolicyKind::Ship,
        "hawkeye" => PolicyKind::Hawkeye,
        "min" => PolicyKind::Min,
        other => return Err(format!("unknown policy '{other}'")),
    })
}

fn parse_l2(s: &str) -> Result<L2Size, String> {
    Ok(match s {
        "128" => L2Size::K128,
        "256" => L2Size::K256,
        "512" => L2Size::K512,
        "768" => L2Size::K768,
        "1024" | "1m" | "1M" => L2Size::M1,
        other => {
            return Err(format!(
                "unknown L2 size '{other}' (use 128/256/512/768/1024)"
            ))
        }
    })
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options::default();
    let mut it = args.iter();
    opts.command = it.next().cloned().unwrap_or_else(|| "help".into());
    let mut positionals_allowed: usize = match opts.command.as_str() {
        "export" | "campaign" | "replay" | "trace" | "profile" | "blame" | "attack" | "sample"
        | "watch" => 1,
        "bench-compare" => 2,
        _ => 0,
    };
    while let Some(flag) = it.next() {
        if positionals_allowed > 0 && !flag.starts_with("--") {
            // The export file path / campaign name / bench report paths
            // (consumed from raw args by the command handlers).
            positionals_allowed -= 1;
            continue;
        }
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--mode" => {
                opts.mode = parse_mode(&value()?)?;
                opts.mode_explicit = true;
            }
            "--policy" => opts.policy = parse_policy(&value()?)?,
            "--l2" => opts.l2 = parse_l2(&value()?)?,
            "--workload" => opts.workload = value()?,
            "--accesses" => {
                opts.accesses = value()?.parse().map_err(|e| format!("--accesses: {e}"))?
            }
            "--cores" => opts.cores = value()?.parse().map_err(|e| format!("--cores: {e}"))?,
            "--seed" => {
                opts.seed = value()?.parse().map_err(|e| format!("--seed: {e}"))?;
                opts.seed_explicit = true;
            }
            "--paper-scale" => opts.paper_scale = true,
            "--prefetch" => opts.prefetch = true,
            "--resume" => opts.resume = true,
            "--results-dir" => opts.results_dir = Some(value()?),
            "--threads" => {
                opts.threads = Some(value()?.parse().map_err(|e| format!("--threads: {e}"))?)
            }
            "--audit" => opts.audit = ziv::core::AuditCadence::parse(&value()?)?,
            "--strict" => opts.strict = true,
            "--cell-budget" => {
                opts.cell_budget = Some(
                    value()?
                        .parse()
                        .map_err(|e| format!("--cell-budget: {e}"))?,
                )
            }
            "--inject-fault" => opts.inject_fault = Some(parse_inject_fault(&value()?)?),
            "--retries" => {
                opts.retries = value()?.parse().map_err(|e| format!("--retries: {e}"))?
            }
            "--cell-timeout" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--cell-timeout: {e}"))?;
                if ms == 0 {
                    return Err("--cell-timeout must be at least 1 millisecond".into());
                }
                opts.cell_timeout_ms = Some(ms);
            }
            "--stall-window" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--stall-window: {e}"))?;
                if ms == 0 {
                    return Err("--stall-window must be at least 1 millisecond".into());
                }
                opts.stall_window_ms = Some(ms);
            }
            "--repeats" => {
                opts.repeats = value()?.parse().map_err(|e| format!("--repeats: {e}"))?
            }
            "--out" => opts.out = Some(value()?),
            "--epoch" => {
                let n: u64 = value()?.parse().map_err(|e| format!("--epoch: {e}"))?;
                if n == 0 {
                    return Err("--epoch must be at least 1".into());
                }
                opts.epoch = Some(n);
            }
            "--events" => {
                let spec = value()?;
                // Reject bad filters up front, naming the offending token.
                ziv::sim::EventFilter::parse(&spec).map_err(|e| e.to_string())?;
                opts.events = Some(spec);
            }
            "--last" => {
                let k: usize = value()?.parse().map_err(|e| format!("--last: {e}"))?;
                if k == 0 {
                    return Err("--last must be at least 1".into());
                }
                let cap = ziv::core::observe::MAX_EVENT_CAPACITY;
                opts.last = Some(if k > cap {
                    eprintln!(
                        "warning: --last {k} exceeds the event-ring limit; clamping to {cap}"
                    );
                    cap
                } else {
                    k
                });
            }
            "--heatmap" => opts.heatmap = true,
            "--latency" => opts.latency = true,
            "--profile" => opts.profile = true,
            "--leakage" => opts.leakage = true,
            "--forensics" => opts.forensics = true,
            "--perfetto" => opts.perfetto = true,
            "--sets" => {
                let n: u32 = value()?.parse().map_err(|e| format!("--sets: {e}"))?;
                if n == 0 {
                    return Err("--sets must be at least 1".into());
                }
                opts.sets = n;
            }
            "--threshold" => {
                let pct: f64 = value()?.parse().map_err(|e| format!("--threshold: {e}"))?;
                if !pct.is_finite() || pct < 0.0 {
                    return Err("--threshold must be a non-negative percentage".into());
                }
                opts.threshold = Some(pct);
            }
            "--traced" => opts.traced = true,
            "--sampling" => {
                opts.sampling =
                    ziv::sim::SamplingPlan::parse(&value()?).map_err(|e| e.to_string())?
            }
            "--validate" => opts.validate = true,
            "--telemetry" => {
                opts.telemetry = match value()?.as_str() {
                    "on" => true,
                    "off" => false,
                    other => {
                        return Err(format!("--telemetry must be 'off' or 'on', not '{other}'"))
                    }
                }
            }
            "--progress" => {
                opts.progress_jsonl = match value()?.as_str() {
                    "jsonl" => true,
                    "live" => false,
                    other => {
                        return Err(format!(
                            "--progress must be 'live' or 'jsonl', not '{other}'"
                        ))
                    }
                }
            }
            "--json" => opts.json = true,
            "--once" => opts.once = true,
            "--refresh" => {
                let ms: u64 = value()?.parse().map_err(|e| format!("--refresh: {e}"))?;
                if ms == 0 {
                    return Err("--refresh must be at least 1 millisecond".into());
                }
                opts.refresh_ms = ms;
            }
            "--stale-after" => {
                let ms: u64 = value()?
                    .parse()
                    .map_err(|e| format!("--stale-after: {e}"))?;
                if ms == 0 {
                    return Err("--stale-after must be at least 1 millisecond".into());
                }
                opts.stale_after_ms = ms;
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(opts)
}

fn system_for(opts: &Options) -> SystemConfig {
    if opts.paper_scale {
        SystemConfig::paper_with_l2(opts.l2)
    } else {
        SystemConfig::scaled_with_l2(opts.l2)
    }
}

fn build_workload(opts: &Options) -> Result<Workload, String> {
    let sys = system_for(opts);
    let scale = ScaleParams::from_system(&sys);
    let (kind, arg) = opts.workload.split_once(':').ok_or_else(|| {
        format!(
            "workload '{}' must look like homo:APP / hetero:N / mt:NAME",
            opts.workload
        )
    })?;
    match kind {
        "homo" => {
            let app = apps::app_by_name(arg)
                .ok_or_else(|| format!("unknown app '{arg}' (see `zivsim list`)"))?;
            Ok(mixes::homogeneous(
                app,
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            ))
        }
        "hetero" => {
            let idx: usize = arg.parse().map_err(|e| format!("hetero index: {e}"))?;
            Ok(mixes::heterogeneous(
                idx,
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            ))
        }
        "file" => {
            let f =
                std::fs::File::open(arg).map_err(|e| format!("cannot open trace '{arg}': {e}"))?;
            ziv::workloads::trace_io::read_trace(f).map_err(|e| e.to_string())
        }
        "mt" => match arg {
            "canneal" => Ok(multithreaded::canneal(
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            )),
            "facesim" => Ok(multithreaded::facesim(
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            )),
            "vips" => Ok(multithreaded::vips(
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            )),
            "applu" => Ok(multithreaded::applu(
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            )),
            "tpce" => Ok(multithreaded::tpce(
                opts.cores,
                opts.accesses,
                opts.seed,
                scale,
            )),
            other => Err(format!("unknown multithreaded workload '{other}'")),
        },
        other => Err(format!("unknown workload kind '{other}'")),
    }
}

fn print_result(r: &ziv::sim::RunResult, baseline: Option<&ziv::sim::RunResult>) {
    let m = &r.metrics;
    println!("config: {}   workload: {}", r.label, r.workload);
    if let Some(b) = baseline {
        println!(
            "weighted speedup vs {}: {:.3}",
            b.label,
            r.weighted_speedup(b)
        );
    }
    println!(
        "LLC: {} accesses, {} hits ({} on relocated blocks), {} misses",
        m.llc_accesses, m.llc_hits, m.relocated_hits, m.llc_misses
    );
    println!(
        "inclusion victims: {}   directory back-invalidations: {}   coherence invalidations: {}",
        m.inclusion_victims, m.directory_back_invalidations, m.coherence_invalidations
    );
    println!(
        "relocations: {} ({:.1}% of LLC misses, {} cross-bank, {} in-set alternates)",
        m.relocations,
        100.0 * m.relocation_rate(),
        m.cross_bank_relocations,
        m.in_set_alternate_victims
    );
    println!(
        "DRAM: {} accesses   writebacks: {} (+{} relocated)   relocation EPI: {:.2} pJ",
        m.dram_accesses,
        m.llc_writebacks,
        m.relocated_writebacks,
        m.relocation_epi_pj()
    );
    let ipc: Vec<String> = r.cores.iter().map(|c| format!("{:.3}", c.ipc())).collect();
    println!("per-core IPC: [{}]", ipc.join(", "));
}

fn cmd_list() {
    println!("modes:");
    for m in [
        "inclusive",
        "noninclusive",
        "qbs",
        "sharp",
        "charonbase",
        "tlh",
        "eci",
        "ric",
        "waypart",
        "ziv-notinprc",
        "ziv-lrunotinprc",
        "ziv-likelydead",
        "ziv-mrnotinprc",
        "ziv-mrlikelydead",
    ] {
        println!("  {m}");
    }
    println!("policies: lru srrip drrip ship hawkeye min");
    println!("applications (homo:<name>):");
    for a in apps::APPS {
        println!("  {:<12} {:?}", a.name, a.class);
    }
    println!("multithreaded (mt:<name>): canneal facesim vips applu tpce");
    println!("campaigns (zivsim campaign <name>):");
    for (name, desc) in ziv::harness::campaigns::names() {
        println!("  {name:<24} {desc}");
    }
}

fn cmd_campaign(args: &[String], opts: &Options) -> Result<(), CliError> {
    use ziv::harness::{campaigns, run_campaign, CampaignParams, RunnerConfig, StderrProgress};
    let name = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| {
            let list: Vec<&str> = campaigns::names().iter().map(|(n, _)| *n).collect();
            CliError::Usage(format!(
                "campaign needs a name (one of: {})",
                list.join(", ")
            ))
        })?;
    let mut params = CampaignParams::from_env();
    if opts.seed_explicit {
        params.seed = opts.seed;
    }
    params.cores = opts.cores;
    let campaign = campaigns::by_name(name, &params).ok_or_else(|| {
        let list: Vec<&str> = campaigns::names().iter().map(|(n, _)| *n).collect();
        CliError::Usage(format!(
            "unknown campaign '{name}' (one of: {})",
            list.join(", ")
        ))
    })?;
    let mut campaign = campaign;
    if let Some((spec_index, _workload_index, fault)) = opts.inject_fault {
        let spec = campaign.specs.get(spec_index).ok_or_else(|| {
            CliError::Usage(format!(
                "--inject-fault: spec index {spec_index} out of range"
            ))
        })?;
        campaign.specs[spec_index] = spec.clone().with_fault(fault);
    }
    let mut observe = opts.observe_config().map_err(CliError::Usage)?;
    if name == "attack-eval" {
        // The security campaign is pointless blind: always measure
        // leakage. (Still never digested — cells stay byte-compatible
        // with an observatory-off run.)
        observe.leakage = true;
    }
    let cfg = RunnerConfig {
        threads: opts.threads.unwrap_or(params.effort.threads),
        resume: opts.resume,
        audit: opts.audit,
        strict: opts.strict,
        cell_budget: opts.cell_budget,
        cell_timeout: opts.cell_timeout_ms.map(std::time::Duration::from_millis),
        stall_window: opts.stall_window_ms.map(std::time::Duration::from_millis),
        retries: opts.retries,
        params: Some(params),
        observe,
        telemetry: opts.telemetry,
        progress_jsonl: opts.progress_jsonl,
        perfetto: opts.perfetto,
        ..RunnerConfig::new(
            opts.results_dir
                .clone()
                .unwrap_or_else(|| format!("results/{name}")),
        )
    };
    let results_dir = cfg.results_dir.clone();
    if opts.validate && opts.sampling.is_none() {
        return Err(CliError::Usage(
            "--validate compares a sampled pass against the full run; it needs --sampling".into(),
        ));
    }
    if let Some(plan) = opts.sampling {
        return cmd_campaign_sampled(&campaign, &cfg, plan, opts.validate, &results_dir);
    }
    // Errors out of the runner itself are infrastructure (results dir,
    // ledger, CSV I/O) — cell failures never surface here.
    let outcome = run_campaign(&campaign, &cfg, &StderrProgress)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    let rows =
        ziv::sim::speedup_summary(&outcome.grid, campaign.specs.len(), campaign.baseline_spec);
    println!("{}", rows.to_table("speedup"));
    println!("wrote {}", outcome.grid_csv.display());
    println!("wrote {}", outcome.summary_csv.display());
    if let Some(path) = &outcome.timeseries_csv {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.heatmap_csv {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.latency_csv {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.leakage_csv {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.profile_json {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.blame_csv {
        println!("wrote {}", path.display());
    }
    if let Some(path) = &outcome.trace_json {
        println!("wrote {}", path.display());
    }
    println!("ledger {}", outcome.ledger_path.display());
    if !outcome.failures.is_empty() {
        eprintln!("\n{} cell(s) FAILED:", outcome.failures.len());
        for f in &outcome.failures {
            let attempts = if f.attempts > 1 {
                format!(" after {} attempts", f.attempts)
            } else {
                String::new()
            };
            eprintln!(
                "  {} × {} [{}]: {}{attempts}",
                f.label,
                f.workload,
                f.digest.hex(),
                f.error
            );
            if let Some(path) = &f.record_path {
                eprintln!("    repro: zivsim replay {}", path.display());
            }
        }
        return Err(CliError::Cells(format!(
            "{} of {} cells failed, all isolated (ledger keeps them marked for \
             --resume; repro records under {}/failures/)",
            outcome.failures.len(),
            campaign.total_cells(),
            results_dir.display()
        )));
    }
    Ok(())
}

/// The sampled flavor of `zivsim campaign`: every cell runs under the
/// interval-sampling plan, per-interval estimates land in
/// `sampling.csv`, and nothing touches the result ledger. With
/// `--validate` the full campaign runs first (ledgered, exporting its
/// standard artifacts) and `validation.csv` compares the two passes.
fn cmd_campaign_sampled(
    campaign: &ziv::harness::Campaign,
    cfg: &ziv::harness::RunnerConfig,
    plan: ziv::sim::SamplingPlan,
    validate: bool,
    results_dir: &std::path::Path,
) -> Result<(), CliError> {
    use ziv::harness::{run_campaign_sampled, StderrProgress};
    let outcome = run_campaign_sampled(campaign, cfg, plan, validate, &StderrProgress)
        .map_err(|e| CliError::Internal(e.to_string()))?;
    println!(
        "sampled campaign '{}': {} cell(s) under plan '{plan}' (estimates only — not ledgered)",
        campaign.name,
        outcome.cells.len(),
    );
    for cell in &outcome.cells {
        let p = &cell.sampled.profile;
        let estimate = match cell.sampled.ipc_ci() {
            Some(ci) => format!("ipc {ci}"),
            None => match cell.sampled.ipc_estimate() {
                Some(m) => format!("ipc {m:.4} (no CI: a single interval closed)"),
                None => "no full interval closed (trace shorter than one period)".into(),
            },
        };
        println!(
            "  {:<28} × {:<16} {estimate}  [{} interval(s), {:.1}% simulated, stop: {}]",
            cell.label,
            cell.workload,
            p.intervals,
            100.0 * p.simulated_fraction(),
            p.stop.tag(),
        );
    }
    println!("wrote {}", outcome.sampling_csv.display());
    if let Some(v) = &outcome.validation {
        println!(
            "validation: {}/{} cell(s) landed the full-run IPC inside their sampled {} CI; \
             wall-clock speedup {:.2}x (Σ full / Σ sampled over cells timed in both passes)",
            v.cells_within_ci,
            v.rows.len(),
            plan.confidence,
            v.speedup,
        );
        println!("wrote {}", v.validation_csv.display());
    }
    if !outcome.failures.is_empty() {
        eprintln!("\n{} sampled cell(s) FAILED:", outcome.failures.len());
        for f in &outcome.failures {
            eprintln!(
                "  {} × {} [{}]: {}",
                f.label,
                f.workload,
                f.digest.hex(),
                f.error
            );
        }
        return Err(CliError::Cells(format!(
            "{} of {} sampled cells failed (results under {})",
            outcome.failures.len(),
            campaign.total_cells(),
            results_dir.display()
        )));
    }
    Ok(())
}

/// The `zivsim sample` telemetry probe: forwards everything to the
/// bus's solo worker record and mirrors each `cell_begin`/`cell_end`
/// pair into the campaign-level counters, so the paired session reads
/// as a two-cell campaign.
struct PairedSampleProbe<'a> {
    bus: &'a ziv::harness::CampaignBus,
    inner: ziv::harness::WorkerProbe,
}

impl ziv::sim::TelemetryProbe for PairedSampleProbe<'_> {
    fn cell_begin(
        &self,
        spec_index: u64,
        workload_index: u64,
        attempt: u64,
        expected_accesses: u64,
        label: &str,
        workload: &str,
    ) {
        self.bus.cell_started();
        self.inner.cell_begin(
            spec_index,
            workload_index,
            attempt,
            expected_accesses,
            label,
            workload,
        );
    }

    fn publish_progress(&self, snap: &ziv::sim::ProbeSnapshot) {
        self.inner.publish_progress(snap);
    }

    fn publish_sampling(&self, progress: &ziv::sim::SamplingProgress) {
        self.inner.publish_sampling(progress);
    }

    fn cell_end(&self) {
        self.inner.cell_end();
        self.bus.cell_finished(1);
    }
}

/// A paired interval-sampled run: the target mode and an inclusive
/// baseline sample the same trace, same-index intervals pair up, and
/// the run reports whether the ZIV-vs-inclusive IPC delta resolved —
/// its confidence interval excludes zero — before the interval budget
/// ran out.
fn cmd_sample(args: &[String], opts: &Options) -> Result<(), String> {
    // Optional positional mode spec: `zivsim sample ziv-likelydead ...`;
    // the default target is the paper's headline ZIV configuration.
    let mut opts = opts.clone();
    match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(mode) => opts.mode = parse_mode(mode)?,
        None if !opts.mode_explicit => opts.mode = LlcMode::Ziv(ZivProperty::LikelyDead),
        None => {}
    }
    let wl = build_workload(&opts)?;
    let sys = system_for(&opts);
    let baseline = RunSpec::new(format!("I-{}", opts.policy.label()), sys.clone())
        .with_policy(opts.policy)
        .with_seed(opts.seed);
    let target = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    let plan = opts.sampling.unwrap_or_else(ziv::sim::SamplingPlan::auto);
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: ziv::sim::ObserveConfig::disabled(),
        sampling: Some(plan),
    };
    // The paired session publishes like a two-cell campaign (spec 0 =
    // baseline, 1 = target) so `zivsim watch` can follow it.
    let results_dir = std::path::PathBuf::from(
        opts.results_dir
            .clone()
            .unwrap_or_else(|| "results/sample".into()),
    );
    let bus_opts = ziv::harness::BusOptions {
        telemetry: opts.telemetry,
        progress_jsonl: opts.progress_jsonl,
        ..Default::default()
    };
    let bus = ziv::harness::CampaignBus::start(&results_dir, 1, 2, 0, &bus_opts)
        .map_err(|e| e.to_string())?;
    let paired = bus.as_ref().and_then(|b| {
        b.solo_probe()
            .map(|inner| PairedSampleProbe { bus: b, inner })
    });
    let probe: Option<&dyn ziv::sim::TelemetryProbe> =
        paired.as_ref().map(|p| p as &dyn ziv::sim::TelemetryProbe);
    let report =
        ziv::sim::run_paired_sampled_instrumented(&baseline, &target, &wl, &run_opts, probe)
            .map_err(|e| e.to_string())?;
    drop(paired);
    if let Some(b) = bus {
        b.finish();
    }

    println!(
        "sample {} vs {} on {} (plan '{plan}'):",
        target.label, baseline.label, wl.name
    );
    println!(
        "{:<10} {:>12} {:>10} {:>10} {:>10}",
        "interval", "start", "base_ipc", "ipc", "delta"
    );
    for iv in &report.target.intervals {
        let base = report.baseline.intervals.get(iv.index as usize);
        let (base_ipc, delta) = match base {
            Some(b) => (format!("{:.4}", b.ipc), format!("{:+.4}", iv.ipc - b.ipc)),
            None => ("-".into(), "-".into()),
        };
        println!(
            "{:<10} {:>12} {:>10} {:>10.4} {:>10}",
            iv.index, iv.start_access, base_ipc, iv.ipc, delta
        );
    }
    for (label, run) in [("baseline", &report.baseline), ("target", &report.target)] {
        let p = &run.profile;
        let ipc = match run.ipc_ci() {
            Some(ci) => format!("ipc {ci}"),
            None => "too few intervals for a CI".into(),
        };
        println!(
            "{label:<9} {ipc}  [{} interval(s), {:.1}% simulated, stop: {}]",
            p.intervals,
            100.0 * p.simulated_fraction(),
            p.stop.tag(),
        );
    }
    match &report.delta_ci {
        Some(ci) if report.resolved => println!(
            "verdict: IPC delta {ci} excludes zero — resolved at {} confidence",
            plan.confidence
        ),
        Some(ci) => println!(
            "verdict: IPC delta {ci} still includes zero at the interval budget \
             (raise --sampling max=N or interval length to resolve)"
        ),
        None => println!("verdict: too few paired intervals to form a delta CI"),
    }
    Ok(())
}

/// The chaos-soak drill: [`ziv::harness::run_soak`] end-to-end, with
/// the fault plan and verdict printed. Exit code 3 is the *expected*
/// outcome — every injected fault isolated; 4 means a supervision
/// guarantee broke.
fn cmd_soak(opts: &Options) -> Result<(), CliError> {
    use ziv::harness::{run_soak, CampaignParams, SoakConfig, StderrProgress};
    let mut params = CampaignParams::from_env();
    if opts.seed_explicit {
        params.seed = opts.seed;
    }
    params.cores = opts.cores;
    let mut cfg = SoakConfig::new(
        opts.results_dir
            .clone()
            .unwrap_or_else(|| "results/soak".into()),
    );
    cfg.params = params;
    if let Some(threads) = opts.threads {
        cfg.threads = threads;
    }
    if let Some(ms) = opts.cell_timeout_ms {
        cfg.cell_timeout = std::time::Duration::from_millis(ms);
    }
    if let Some(ms) = opts.stall_window_ms {
        cfg.stall_window = std::time::Duration::from_millis(ms);
    }
    cfg.retries = opts.retries;
    cfg.telemetry = opts.telemetry;
    cfg.progress_jsonl = opts.progress_jsonl;
    let report = run_soak(&cfg, &StderrProgress).map_err(|e| CliError::Internal(e.to_string()))?;
    println!(
        "chaos plan (seed {:#x}): {} injected fault(s)",
        cfg.params.seed,
        report.fault_plan.len()
    );
    for (label, kind, at) in &report.fault_plan {
        println!("  {label:<28} {kind:<24} at access {at}");
    }
    println!(
        "passes: {} cells each; chaos failures isolated: {}; surviving rows \
         byte-identical to fault-free: {}",
        report.total_cells, report.chaos_failures, report.identical_rows
    );
    println!(
        "crash drill: torn tail detected = {}, {} cell(s) re-ran on resume",
        report.torn_tail_detected, report.resumed_cells
    );
    if !report.passed() {
        for v in &report.violations {
            eprintln!("violation: {v}");
        }
        return Err(CliError::Internal(format!(
            "{} supervision guarantee(s) violated",
            report.violations.len()
        )));
    }
    if report.chaos_failures > 0 {
        return Err(CliError::Cells(format!(
            "soak verdict: every guarantee held — {} injected fault(s) \
             ledgered as isolated failures, {} healthy cell(s) byte-identical, \
             crash recovery proven",
            report.chaos_failures, report.identical_rows
        )));
    }
    Ok(())
}

/// Worker-state / stratum tags for the watch views.
fn stratum_tag(stratum: u64) -> &'static str {
    use ziv::telemetry::layout as l;
    match stratum {
        l::STRATUM_HEAD => "head",
        l::STRATUM_SKIP => "skip",
        l::STRATUM_WARM => "warm",
        l::STRATUM_TIMED => "timed",
        _ => "full",
    }
}

/// Unicode sparkline of the per-refresh access deltas (the "is it
/// actually moving" strip of the watch table).
fn spark(deltas: &[u64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let max = deltas.iter().copied().max().unwrap_or(0);
    deltas
        .iter()
        .map(|&d| match (d * 7).checked_div(max) {
            Some(i) => BARS[i as usize],
            None => BARS[0],
        })
        .collect()
}

fn fmt_mmss(ms: u64) -> String {
    let s = ms / 1000;
    format!("{}:{:02}", s / 60, s % 60)
}

/// One machine-readable line per snapshot for `watch --json`.
fn snapshot_json(s: &ziv::telemetry::Snapshot) -> String {
    use ziv::common::json::JsonValue;
    let workers = s
        .workers
        .iter()
        .map(|w| {
            JsonValue::Obj(vec![
                ("state".into(), JsonValue::u64(w.state)),
                ("label".into(), JsonValue::str(&w.label)),
                ("workload".into(), JsonValue::str(&w.workload)),
                ("spec_index".into(), JsonValue::u64(w.spec_index)),
                ("workload_index".into(), JsonValue::u64(w.workload_index)),
                ("attempt".into(), JsonValue::u64(w.attempt)),
                ("access_index".into(), JsonValue::u64(w.access_index)),
                (
                    "expected_accesses".into(),
                    JsonValue::u64(w.expected_accesses),
                ),
                ("instructions".into(), JsonValue::u64(w.instructions)),
                ("cycles".into(), JsonValue::u64(w.cycles)),
                ("llc_accesses".into(), JsonValue::u64(w.llc_accesses)),
                ("llc_misses".into(), JsonValue::u64(w.llc_misses)),
                (
                    "inclusion_victims".into(),
                    JsonValue::u64(w.inclusion_victims),
                ),
                ("relocations".into(), JsonValue::u64(w.relocations)),
                ("stratum".into(), JsonValue::str(stratum_tag(w.stratum))),
                ("intervals".into(), JsonValue::u64(w.intervals)),
                ("ipc_mean".into(), JsonValue::f64(w.ipc_mean)),
                ("ipc_half_width".into(), JsonValue::f64(w.ipc_half_width)),
            ])
        })
        .collect();
    let c = &s.campaign;
    JsonValue::Obj(vec![
        ("type".into(), JsonValue::str("snapshot")),
        ("writer_pid".into(), JsonValue::u64(s.writer_pid)),
        ("tick".into(), JsonValue::u64(s.heartbeat.tick)),
        ("finished".into(), JsonValue::Bool(s.heartbeat.finished)),
        ("elapsed_ms".into(), JsonValue::u64(s.heartbeat.elapsed_ms)),
        ("total".into(), JsonValue::u64(c.total)),
        ("cached".into(), JsonValue::u64(c.cached)),
        ("done".into(), JsonValue::u64(c.done)),
        ("failed".into(), JsonValue::u64(c.failed)),
        ("retried".into(), JsonValue::u64(c.retried)),
        ("running".into(), JsonValue::u64(c.running)),
        (
            "eta_ms".into(),
            c.eta_ms.map_or(JsonValue::Null, JsonValue::u64),
        ),
        ("workers".into(), JsonValue::Arr(workers)),
    ])
    .to_string()
}

/// The human watch view: campaign counters + ETA, the access-rate
/// sparkline, and one line per worker slot.
fn render_snapshot(s: &ziv::telemetry::Snapshot, deltas: &[u64]) {
    use std::io::IsTerminal;
    use ziv::telemetry::layout as l;
    if std::io::stdout().is_terminal() {
        // Redraw in place on a real terminal; append when piped.
        print!("\x1b[2J\x1b[H");
    }
    let c = &s.campaign;
    println!(
        "cells {}/{} done ({} cached, {} failed, {} retried, {} running)   \
         elapsed {}   eta {}",
        c.done,
        c.total,
        c.cached,
        c.failed,
        c.retried,
        c.running,
        fmt_mmss(s.heartbeat.elapsed_ms),
        c.eta_ms.map_or("--:--".into(), fmt_mmss),
    );
    if deltas.len() > 1 {
        println!("rate  {}", spark(deltas));
    }
    for (i, w) in s.workers.iter().enumerate() {
        if w.generation == 0 {
            println!("  w{i}  idle");
            continue;
        }
        let state = match w.state {
            l::WORKER_RUNNING => "run ",
            l::WORKER_DONE => "done",
            _ => "idle",
        };
        let pct = if w.expected_accesses > 0 {
            format!(
                "{:5.1}%",
                100.0 * w.access_index as f64 / w.expected_accesses as f64
            )
        } else {
            "    ?".into()
        };
        let mut line = format!(
            "  w{i}  {state} {:<24} × {:<16} {:>9} acc {pct} [{}]",
            w.label,
            w.workload,
            w.access_index,
            stratum_tag(w.stratum),
        );
        if w.attempt > 1 {
            line.push_str(&format!(" attempt {}", w.attempt));
        }
        if w.intervals > 0 {
            line.push_str(&format!(
                "  {} iv, ipc {:.4} ±{:.4}",
                w.intervals, w.ipc_mean, w.ipc_half_width
            ));
        }
        println!("{line}");
    }
}

/// `zivsim watch <results-dir>`: attach to the `telemetry.shm` segment
/// a campaign started with `--telemetry on` is writing, and follow it.
///
/// Exit contract — watch never spins forever:
/// - **0** once the writer publishes its final (finished) state: every
///   result artifact is already on disk at that point. `--once` also
///   exits 0, after the first consistent snapshot.
/// - **4** when the heartbeat goes stale past `--stale-after` and the
///   writer PID is gone (the campaign died without finishing), or the
///   heartbeat stays wedged for 10× the staleness window with the
///   process still alive.
fn cmd_watch(args: &[String], opts: &Options) -> Result<(), CliError> {
    use std::time::{Duration, Instant};
    use ziv::telemetry::{TelemetryReader, SEGMENT_FILE};
    let dir = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or_else(|| {
            CliError::Usage(
                "watch needs the campaign's results directory \
             (the --results-dir of a run started with --telemetry on)"
                    .into(),
            )
        })?;
    let segment = std::path::Path::new(dir).join(SEGMENT_FILE);
    let refresh = Duration::from_millis(opts.refresh_ms);
    let stale_after = Duration::from_millis(opts.stale_after_ms);

    // The campaign may not have created the segment yet (watch was
    // started first): give it one staleness window to appear.
    let deadline = Instant::now() + stale_after;
    let reader = loop {
        match TelemetryReader::open(&segment) {
            Ok(r) => break r,
            Err(e) => {
                if Instant::now() >= deadline {
                    return Err(CliError::Other(format!(
                        "no telemetry segment at {} ({e}); was the campaign \
                         started with --telemetry on?",
                        segment.display()
                    )));
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    };

    let mut last_tick = u64::MAX;
    let mut last_beat = Instant::now();
    let mut prev_accesses: Option<u64> = None;
    let mut deltas: Vec<u64> = Vec::new();
    loop {
        // A torn snapshot (writer mid-update) is not an error — skip
        // the refresh and try again; the staleness clock still runs.
        if let Some(snap) = reader.snapshot() {
            if snap.heartbeat.tick != last_tick {
                last_tick = snap.heartbeat.tick;
                last_beat = Instant::now();
            }
            let accesses: u64 = snap.workers.iter().map(|w| w.access_index).sum();
            if let Some(prev) = prev_accesses {
                deltas.push(accesses.saturating_sub(prev));
                if deltas.len() > 32 {
                    deltas.remove(0);
                }
            }
            prev_accesses = Some(accesses);
            if opts.json {
                println!("{}", snapshot_json(&snap));
            } else {
                render_snapshot(&snap, &deltas);
            }
            if snap.heartbeat.finished {
                if !opts.json {
                    println!("campaign finished cleanly; artifacts are on disk");
                }
                return Ok(());
            }
            if opts.once {
                return Ok(());
            }
        }
        let stale = last_beat.elapsed();
        if stale >= stale_after && !reader.writer_alive() {
            return Err(CliError::Internal(format!(
                "telemetry writer (pid {}) is gone and the heartbeat stopped \
                 {:.1}s ago without final state — the campaign died",
                reader.writer_pid(),
                stale.as_secs_f64()
            )));
        }
        if stale >= stale_after * 10 {
            return Err(CliError::Internal(format!(
                "heartbeat wedged: no progress for {:.1}s (10x the staleness \
                 window) while pid {} is still alive",
                stale.as_secs_f64(),
                reader.writer_pid()
            )));
        }
        std::thread::sleep(refresh);
    }
}

fn cmd_bench_throughput(opts: &Options) -> Result<(), String> {
    use ziv::bench::{run_throughput_bench_with, throughput_per_mode, throughput_report_json};
    let mut params = ziv::harness::CampaignParams::from_env();
    if opts.seed_explicit {
        params.seed = opts.seed;
    }
    params.cores = opts.cores;
    let mut observe = if opts.traced {
        // The full-fat recorder: epoch slicing, an event ring, and
        // heatmaps, so `--traced` bounds the recorder's worst case.
        ziv::sim::ObserveConfig {
            epoch: Some(1_000),
            events: Some(ziv::sim::EventTraceConfig::default()),
            heatmap: true,
            ..ziv::sim::ObserveConfig::disabled()
        }
    } else {
        ziv::sim::ObserveConfig::disabled()
    };
    // `--latency` / `--profile` bound the observatory's own overhead
    // (recorded as BENCH_latency.json by CI, next to BENCH_hotpath.json).
    observe.latency = opts.latency;
    observe.profile = opts.profile;
    let samples = run_throughput_bench_with("smoke", &params, opts.repeats, observe);
    println!(
        "hot-path throughput (smoke campaign, best of {} repeat(s){}{}):",
        opts.repeats.max(1),
        if opts.traced {
            ", flight recorder ON"
        } else {
            ""
        },
        if opts.latency || opts.profile {
            ", latency observatory ON"
        } else {
            ""
        }
    );
    for s in throughput_per_mode(&samples) {
        println!(
            "  {:<28} {:>12.0} accesses/s  ({} accesses in {:.3}s)",
            s.label,
            s.accesses_per_sec(),
            s.accesses,
            s.wall_seconds
        );
    }
    let total_acc: u64 = samples.iter().map(|s| s.accesses).sum();
    let total_wall: f64 = samples.iter().map(|s| s.wall_seconds).sum();
    println!(
        "  {:<28} {:>12.0} accesses/s  ({} accesses in {:.3}s)",
        "(total)",
        if total_wall > 0.0 {
            total_acc as f64 / total_wall
        } else {
            0.0
        },
        total_acc,
        total_wall
    );
    let path = opts
        .out
        .clone()
        .unwrap_or_else(|| "BENCH_hotpath.json".into());
    let json = throughput_report_json("smoke", opts.repeats.max(1), &samples);
    ziv::common::fsutil::create_parent_dirs(&path).map_err(|e| e.to_string())?;
    std::fs::write(&path, json).map_err(|e| format!("cannot write '{path}': {e}"))?;
    println!("wrote {path}");
    Ok(())
}

/// One traced run of the configured spec × workload: drains the event
/// ring as JSONL (stdout, or `--out <FILE>`) and prints a trace summary
/// — counts per retained event kind, total recorded, the epoch count
/// when `--epoch` sliced, and per-bank directory occupancy — to stderr
/// so the JSONL stream stays clean.
fn cmd_trace(args: &[String], opts: &Options) -> Result<(), String> {
    use std::io::Write as _;
    // Optional positional mode spec: `zivsim trace ziv-likelydead ...`.
    let mut opts = opts.clone();
    if let Some(mode) = args.get(1).filter(|a| !a.starts_with("--")) {
        opts.mode = parse_mode(mode)?;
    }
    let wl = build_workload(&opts)?;
    let sys = system_for(&opts);
    let mut spec = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    if opts.prefetch {
        spec = spec.with_prefetch(ziv::core::prefetch::PrefetchConfig::default());
    }
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: opts.observe_config()?,
        sampling: None,
    };
    let (outcome, observations) = ziv::sim::run_one_traced(&spec, &wl, &run_opts);
    let obs = observations.ok_or("trace produced no observations (recorder disabled?)")?;

    // With --perfetto the export is one Chrome trace-event document
    // (load it at ui.perfetto.dev) instead of raw JSONL events; the
    // --events filter applies to both renderings.
    let jsonl = if opts.perfetto {
        let filter = match &opts.events {
            Some(spec) => ziv::sim::EventFilter::parse(spec).map_err(|e| e.to_string())?,
            None => ziv::sim::EventFilter::all(),
        };
        let cell = ziv::sim::ObservedCell {
            config: &spec.label,
            workload: &wl.name,
            observations: &obs,
        };
        format!(
            "{}\n",
            ziv::sim::perfetto_to_json(std::slice::from_ref(&cell), filter)
        )
    } else {
        let mut jsonl = String::new();
        for ev in &obs.events {
            jsonl.push_str(&ev.to_json().to_string());
            jsonl.push('\n');
        }
        jsonl
    };
    match &opts.out {
        Some(path) => {
            ziv::common::fsutil::create_parent_dirs(path).map_err(|e| e.to_string())?;
            std::fs::write(path, &jsonl).map_err(|e| format!("cannot write '{path}': {e}"))?;
            eprintln!("wrote {} event(s) to {path}", obs.events.len());
        }
        None => {
            let mut out = std::io::stdout().lock();
            out.write_all(jsonl.as_bytes())
                .and_then(|()| out.flush())
                .map_err(|e| format!("cannot write events to stdout: {e}"))?;
        }
    }

    eprintln!(
        "trace {} × {}: {} event(s) recorded, {} retained (ring capacity {})",
        spec.label,
        wl.name,
        obs.events_recorded,
        obs.events.len(),
        opts.last
            .unwrap_or(ziv::core::observe::DEFAULT_EVENT_CAPACITY),
    );
    for kind in ziv::sim::EventKind::ALL {
        let n = obs.events.iter().filter(|e| e.kind == kind).count();
        if n > 0 {
            eprintln!("  {:<18} {n}", kind.label());
        }
    }
    if !obs.epochs.is_empty() {
        eprintln!("  epochs sampled    {}", obs.epochs.len());
    }
    let occupancy: Vec<String> = obs
        .dir_slice_occupancy
        .iter()
        .map(|n| n.to_string())
        .collect();
    eprintln!("  directory occupancy per bank: [{}]", occupancy.join(", "));
    // A trace of a failing run still drains the ring (that is the whole
    // point of a flight recorder), but the run's failure is the verdict.
    outcome.map(|_| ()).map_err(|e| e.to_string())
}

/// One run with the latency observatory and the wall-clock self-profiler
/// forced on: prints the per-class attribution table (count, cycles,
/// share, tail percentiles), per-component cycle totals, the
/// inclusion-victim refetch cost, and per-subsystem simulator wall time.
/// `--out <FILE>` additionally writes the profiler report as JSON.
fn cmd_profile(args: &[String], opts: &Options) -> Result<(), String> {
    use ziv::sim::{AccessClass, LatencyComponent, ProfileSection};
    // Optional positional mode spec: `zivsim profile ziv-likelydead ...`.
    let mut opts = opts.clone();
    if let Some(mode) = args.get(1).filter(|a| !a.starts_with("--")) {
        opts.mode = parse_mode(mode)?;
    }
    let wl = build_workload(&opts)?;
    let sys = system_for(&opts);
    let mut spec = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    if opts.prefetch {
        spec = spec.with_prefetch(ziv::core::prefetch::PrefetchConfig::default());
    }
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: opts.observe_config()?,
        sampling: None,
    };
    let (outcome, observations) = ziv::sim::run_one_traced(&spec, &wl, &run_opts);
    let result = outcome.map_err(|e| e.to_string())?;
    let obs = observations.ok_or("profile produced no observations (observatory disabled?)")?;
    let report = obs
        .latency
        .ok_or("profile produced no latency report (observatory disabled?)")?;

    let total = report.total_cycles();
    println!("latency attribution: {} × {}", spec.label, wl.name);
    println!(
        "{:<26} {:>10} {:>14} {:>7} {:>9} {:>9} {:>9} {:>9}",
        "class", "count", "cycles", "share", "p50", "p95", "p99", "p999"
    );
    for class in AccessClass::ALL {
        let cells = report.class_total(class);
        if cells.count == 0 {
            continue;
        }
        let hist = report.histogram(class);
        let pctl = |q: f64| {
            hist.percentile(q)
                .map_or_else(|| "-".into(), |p| format!("{p:.1}"))
        };
        println!(
            "{:<26} {:>10} {:>14} {:>6.1}% {:>9} {:>9} {:>9} {:>9}",
            class.label(),
            cells.count,
            cells.cycles,
            if total > 0 {
                100.0 * cells.cycles as f64 / total as f64
            } else {
                0.0
            },
            pctl(0.50),
            pctl(0.95),
            pctl(0.99),
            pctl(0.999),
        );
    }
    println!("component cycles:");
    for comp in LatencyComponent::ALL {
        let cycles = report.component_total(comp);
        println!(
            "  {:<12} {:>14}  ({:.1}%)",
            comp.label(),
            cycles,
            if total > 0 {
                100.0 * cycles as f64 / total as f64
            } else {
                0.0
            }
        );
    }
    let refetch = report.class_total(AccessClass::InclusionVictimRefetch);
    println!(
        "inclusion-victim refetch cost: {} access(es), {} cycle(s) \
         ({} back-invalidated line(s) noted)",
        refetch.count, refetch.cycles, report.victims_noted
    );
    println!(
        "attributed {} cycle(s); aggregate access_latency_cycles {}",
        total, result.metrics.access_latency_cycles
    );

    let profile = obs
        .profile
        .ok_or("profile produced no self-profiler report")?;
    println!("simulator wall time by subsystem (hierarchy is inclusive of the rest):");
    for section in ProfileSection::ALL {
        println!(
            "  {:<12} {:>10.3} ms  ({} call(s))",
            section.label(),
            profile.nanos(section) as f64 / 1e6,
            profile.calls(section)
        );
    }
    if let Some(path) = &opts.out {
        use ziv::common::json::JsonValue;
        let doc = JsonValue::Obj(vec![
            ("config".into(), JsonValue::str(&spec.label)),
            ("workload".into(), JsonValue::str(&wl.name)),
            ("sections".into(), profile.to_json()),
        ]);
        ziv::common::fsutil::create_parent_dirs(path).map_err(|e| e.to_string())?;
        std::fs::write(path, format!("{doc}\n"))
            .map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("wrote {path}");
    }
    Ok(())
}

/// One run with the forensics observatory (and the latency observatory,
/// for the refetch-cycle cross-check) forced on: prints the top-K causal
/// chains — instigator access → eviction decision → victimized cores →
/// attributed refetch cost — and the instigator × victim blame matrix,
/// then asserts both conservation laws (victims vs
/// `Metrics::inclusion_victims`, refetch cycles vs the latency
/// observatory). `--out <FILE>` additionally writes the matrix as
/// blame.csv.
fn cmd_blame(args: &[String], opts: &Options) -> Result<(), String> {
    // Optional positional mode spec: `zivsim blame inclusive ...`.
    let mut opts = opts.clone();
    if let Some(mode) = args.get(1).filter(|a| !a.starts_with("--")) {
        opts.mode = parse_mode(mode)?;
    }
    let wl = build_workload(&opts)?;
    let sys = system_for(&opts);
    let mut spec = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    if opts.prefetch {
        spec = spec.with_prefetch(ziv::core::prefetch::PrefetchConfig::default());
    }
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: opts.observe_config()?,
        sampling: None,
    };
    let (outcome, observations) = ziv::sim::run_one_traced(&spec, &wl, &run_opts);
    let result = outcome.map_err(|e| e.to_string())?;
    let obs = observations.ok_or("blame produced no observations (observatory disabled?)")?;
    let report = obs
        .forensics
        .as_ref()
        .ok_or("blame produced no forensics report (observatory disabled?)")?;

    println!("causal forensics: {} × {}", spec.label, wl.name);
    println!(
        "chains: {} recorded ({} inclusive evictions, {} ECI tear-outs), last {} retained; \
         {} fill(s) stamped with provenance",
        report.chains_recorded,
        report.inclusive_chains,
        report.eci_chains,
        report.chains.len(),
        report.fills_stamped,
    );

    // Both conservation laws, checked live: the blame matrix must
    // account for every inclusion victim, and its refetch-cycle total
    // must agree with the latency observatory's independent accounting.
    let victims = report.total_victims();
    if victims != result.metrics.inclusion_victims {
        return Err(format!(
            "conservation violated: blame matrix holds {victims} victim(s) but \
             Metrics::inclusion_victims is {}",
            result.metrics.inclusion_victims
        ));
    }
    let refetch_cycles = report.total_refetch_cycles();
    if let Some(lat) = obs.latency.as_ref() {
        let independent = lat.inclusion_victim_refetch_cycles();
        if refetch_cycles != independent {
            return Err(format!(
                "conservation violated: blame matrix attributes {refetch_cycles} refetch \
                 cycle(s) but the latency observatory measured {independent}"
            ));
        }
    }
    println!(
        "conserved: {victims} victim(s) == Metrics::inclusion_victims; \
         {} refetch(es) costing {refetch_cycles} cycle(s) == latency observatory",
        report.total_refetches(),
    );

    if report.chains_recorded == 0 {
        println!(
            "no causal chains: this configuration never reached into a private cache \
             (ZIV's zero-inclusion-victim guarantee when the mode is ziv-*)"
        );
    } else {
        const TOP_K: usize = 10;
        println!("top {} chain(s) by damage:", TOP_K.min(report.chains.len()));
        println!(
            "  {:>6} {:<9} {:>10} {:>5} {:>12} {:<16} {:>7} {:>9} {:>12}  allocated-by",
            "seq", "kind", "access", "core", "line", "reason", "victims", "refetches", "cycles",
        );
        for c in report.top_chains(TOP_K) {
            let alloc = match &c.alloc {
                Some(a) => format!("core {} @ access {}", a.core.index(), a.access_index),
                None => "(stamp displaced)".into(),
            };
            println!(
                "  {:>6} {:<9} {:>10} {:>5} {:>#12x} {:<16} {:>7} {:>9} {:>12}  {alloc}",
                c.seq,
                c.kind.label(),
                c.instigator_access,
                c.instigator_core.index(),
                c.line.raw(),
                c.reason.label(),
                c.victim_count,
                c.refetches,
                c.refetch_cycles,
            );
        }
    }

    println!("blame matrix (rows instigate, columns pay; victims / refetch cycles):");
    print!("  {:>14}", "");
    for v in 0..report.cores {
        print!(" {:>16}", format!("core {v}"));
    }
    println!();
    for i in 0..report.cores {
        print!("  {:>14}", format!("core {i}"));
        for v in 0..report.cores {
            print!(
                " {:>16}",
                format!("{} / {}", report.victims(i, v), report.refetch_cycles(i, v))
            );
        }
        println!();
    }
    for i in 0..report.cores {
        let cross = report.cross_core_victims(i);
        if cross > 0 {
            println!("  core {i} victimized other cores {cross} time(s)");
        }
    }

    if let Some(path) = &opts.out {
        let cell = ziv::sim::ObservedCell {
            config: &spec.label,
            workload: &wl.name,
            observations: &obs,
        };
        ziv::sim::write_blame_csv(std::path::Path::new(path), std::slice::from_ref(&cell))
            .map_err(|e| e.to_string())?;
        println!("wrote {path}");
    }
    Ok(())
}

/// One attack co-schedule under the configured mode with the leakage
/// observatory forced on: builds the scenario's attacker/victim/noise
/// workload (`--sets` targeted LLC sets, `--cores`/`--accesses`/`--seed`
/// as usual), runs it, and prints the attacker-observable signal
/// summary — the per-defense numbers `zivsim campaign attack-eval`
/// sweeps into leakage.csv.
fn cmd_attack(args: &[String], opts: &Options) -> Result<(), String> {
    use ziv::workloads::attack::{self, AttackRecipe, AttackScenario};
    let scenario = match args.get(1).filter(|a| !a.starts_with("--")) {
        Some(name) => AttackScenario::by_name(name).ok_or_else(|| {
            let list: Vec<&str> = AttackScenario::ALL.iter().map(|s| s.name()).collect();
            format!(
                "unknown attack scenario '{name}' (one of: {})",
                list.join(", ")
            )
        })?,
        None => AttackScenario::PrimeProbe,
    };
    let recipe = AttackRecipe {
        scenario,
        target_sets: opts.sets,
    };
    let sys = system_for(opts);
    let scale = ScaleParams::from_system(&sys);
    let wl = attack::generate(recipe, opts.cores, opts.accesses, opts.seed, scale);
    let spec = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: opts.observe_config()?,
        sampling: None,
    };
    let (outcome, observations) = ziv::sim::run_one_traced(&spec, &wl, &run_opts);
    let result = outcome.map_err(|e| e.to_string())?;
    let report = observations
        .and_then(|o| o.leakage)
        .ok_or("attack run produced no leakage report (observatory disabled?)")?;

    let plan = wl.attack.as_ref().expect("attack workload carries a plan");
    println!(
        "attack {} × {}: attacker core(s) {:?}, victim core(s) {:?}, {} probed set(s)",
        spec.label, wl.name, plan.attacker_cores, plan.victim_cores, report.probed_sets
    );
    println!(
        "attacker-observable victim evictions: {} ({:.3} per Mcycle over {} cycles)",
        report.observable_victim_evictions(),
        report.observable_per_mcycle(),
        report.cycles
    );
    println!(
        "noise evictions in probed sets: {}   total back-invalidations: {} \
         (= metrics inclusion victims {})",
        report.noise_evictions(),
        report.total_back_invalidations(),
        result.metrics.inclusion_victims
    );
    println!(
        "attacker probes of probed sets: {} fast (line on chip), {} slow \
         (evicted; {:.1}% distinguishable)",
        report.probe_hits(),
        report.probe_evictions_seen(),
        100.0 * report.probe_eviction_rate()
    );
    println!("SHARP alarms: {}", report.sharp_alarms);
    Ok(())
}

/// Diffs two `bench-throughput` JSON reports and exits nonzero when any
/// aggregate row (a per-mode rate or the grand total) regressed by more
/// than the threshold. Per-cell rows are printed for context but never
/// gate: single cells are best-of-N wall clocks and too noisy to fail on.
fn cmd_bench_compare(args: &[String], opts: &Options) -> Result<(), String> {
    let grab = |ix: usize| {
        args.get(ix)
            .filter(|a| !a.starts_with("--"))
            .ok_or("bench-compare needs two report paths: <old.json> <new.json>")
    };
    let old_path = grab(1)?;
    let new_path = grab(2)?;
    let threshold = opts.threshold.unwrap_or(5.0);
    let old =
        std::fs::read_to_string(old_path).map_err(|e| format!("cannot read '{old_path}': {e}"))?;
    let new =
        std::fs::read_to_string(new_path).map_err(|e| format!("cannot read '{new_path}': {e}"))?;
    let cmp = ziv::bench::compare_throughput_reports(&old, &new)?;
    print!("{}", cmp.render(threshold));
    let regressions = cmp.regressions(threshold);
    if regressions.is_empty() {
        println!("no aggregate regression beyond {threshold:.1}%");
        Ok(())
    } else {
        Err(format!(
            "{} aggregate rate(s) regressed beyond {threshold:.1}% \
             (wall-clock benches are machine-dependent; re-run on a quiet \
             machine before trusting a marginal result)",
            regressions.len()
        ))
    }
}

fn cmd_replay(args: &[String]) -> Result<(), String> {
    use ziv::harness::{replay, FailureRecord};
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("replay needs a repro-record file (results/<name>/failures/<digest>.json)")?;
    let record = FailureRecord::load(std::path::Path::new(path)).map_err(|e| e.to_string())?;
    println!(
        "replaying {} × {} from campaign '{}' (audit {}, budget {} cycles)",
        record.label, record.workload, record.campaign, record.audit, record.budget_cycles
    );
    if record.events.is_empty() {
        // Records written before the tracer existed have no embedded
        // window; say so instead of silently printing nothing.
        eprintln!(
            "warning: record has no embedded flight-recorder events \
             (written before event embedding, or the ring was empty); \
             replaying without the pre-failure window"
        );
    } else {
        println!(
            "flight recorder: {} event(s) leading up to the failure:",
            record.events.len()
        );
        for ev in &record.events {
            println!("  {}", ev.to_json());
        }
    }
    let report = replay(&record).map_err(|e| e.to_string())?;
    println!("{}", report.note);
    if report.reproduced {
        Ok(())
    } else {
        Err("replay did NOT reproduce the recorded failure".into())
    }
}

fn cmd_run(opts: &Options) -> Result<(), String> {
    let wl = build_workload(opts)?;
    let sys = system_for(opts);
    let baseline_spec = RunSpec::new("I-LRU (baseline)", sys.clone());
    let mut spec = RunSpec::new(
        format!("{}-{}", opts.mode.label(), opts.policy.label()),
        sys,
    )
    .with_mode(opts.mode)
    .with_policy(opts.policy)
    .with_seed(opts.seed);
    if opts.prefetch {
        spec = spec.with_prefetch(ziv::core::prefetch::PrefetchConfig::default());
    }
    let run_opts = ziv::sim::RunOptions {
        audit: opts.audit,
        budget: opts.cell_budget.map(ziv::sim::CellBudget::Cycles),
        observe: opts.observe_config()?,
        sampling: None,
    };
    let baseline_opts = ziv::sim::RunOptions {
        observe: ziv::sim::ObserveConfig::disabled(),
        ..run_opts
    };
    let baseline = ziv::sim::run_one_checked(&baseline_spec, &wl, &baseline_opts)
        .map_err(|e| format!("baseline run: {e}"))?;
    let (outcome, observations) = ziv::sim::run_one_traced(&spec, &wl, &run_opts);
    let result = outcome.map_err(|e| format!("run: {e}"))?;
    print_result(&result, Some(&baseline));
    if let Some(f) = observations.as_ref().and_then(|o| o.forensics.as_ref()) {
        println!(
            "forensics: {} causal chain(s), {} private-copy victim(s), \
             {} attributed refetch cycle(s) (full tables: `zivsim blame`)",
            f.chains_recorded,
            f.total_victims(),
            f.total_refetch_cycles()
        );
    }
    Ok(())
}

fn cmd_compare(opts: &Options) -> Result<(), String> {
    let wl = build_workload(opts)?;
    let sys = system_for(opts);
    let modes: Vec<LlcMode> = if opts.policy.is_rrpv_based() {
        vec![
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
        ]
    } else {
        vec![
            LlcMode::Inclusive,
            LlcMode::NonInclusive,
            LlcMode::Qbs,
            LlcMode::Sharp,
            LlcMode::CharOnBase,
            LlcMode::Ziv(ZivProperty::NotInPrC),
            LlcMode::Ziv(ZivProperty::LruNotInPrC),
            LlcMode::Ziv(ZivProperty::LikelyDead),
        ]
    };
    let specs: Vec<RunSpec> = modes
        .into_iter()
        .map(|m| {
            let mut s = RunSpec::new(m.label(), sys.clone())
                .with_mode(m)
                .with_policy(opts.policy)
                .with_seed(opts.seed);
            if opts.prefetch {
                s = s.with_prefetch(ziv::core::prefetch::PrefetchConfig::default());
            }
            s
        })
        .collect();
    let grid = run_grid(
        &specs,
        std::slice::from_ref(&wl),
        Effort::from_env().threads,
    );
    let base = &grid[0].result;
    println!(
        "{:<18} {:>8} {:>12} {:>12} {:>12}",
        "mode", "speedup", "LLC misses", "incl.victims", "relocations"
    );
    for cell in &grid {
        let r = &cell.result;
        println!(
            "{:<18} {:>8.3} {:>12} {:>12} {:>12}",
            r.label,
            r.weighted_speedup(base),
            r.metrics.llc_misses,
            r.metrics.inclusion_victims,
            r.metrics.relocations
        );
    }
    Ok(())
}

fn cmd_export(args: &[String], opts: &Options) -> Result<(), String> {
    let path = args
        .get(1)
        .filter(|a| !a.starts_with("--"))
        .ok_or("export needs a file path")?;
    let wl = build_workload(opts)?;
    let f = std::fs::File::create(path).map_err(|e| format!("cannot create '{path}': {e}"))?;
    ziv::workloads::trace_io::write_trace(&wl, std::io::BufWriter::new(f))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {} accesses ({} cores) to {path}",
        wl.total_accesses(),
        wl.cores()
    );
    Ok(())
}

fn usage() {
    println!(
        "usage: zivsim <list|run|compare|export|campaign|replay|trace|profile|blame|attack|\
         sample|bench-throughput|bench-compare|soak|watch> \
         [options]   (see --help text in the source header; exit codes: \
         0 clean, 1 command failure, 2 usage, 3 isolated cell failures, 4 internal)"
    );
}

fn dispatch(args: &[String], opts: &Options) -> Result<(), CliError> {
    match opts.command.as_str() {
        "list" => {
            cmd_list();
            Ok(())
        }
        "run" => cmd_run(opts).map_err(CliError::Other),
        "compare" => cmd_compare(opts).map_err(CliError::Other),
        "export" => cmd_export(args, opts).map_err(CliError::Other),
        "campaign" => cmd_campaign(args, opts),
        "soak" => cmd_soak(opts),
        "watch" => cmd_watch(args, opts),
        "replay" => cmd_replay(args).map_err(CliError::Other),
        "trace" => cmd_trace(args, opts).map_err(CliError::Other),
        "profile" => cmd_profile(args, opts).map_err(CliError::Other),
        "blame" => cmd_blame(args, opts).map_err(CliError::Other),
        "attack" => cmd_attack(args, opts).map_err(CliError::Other),
        "sample" => cmd_sample(args, opts).map_err(CliError::Other),
        "bench-throughput" => cmd_bench_throughput(opts).map_err(CliError::Other),
        "bench-compare" => cmd_bench_compare(args, opts).map_err(CliError::Other),
        "help" | "--help" | "-h" => {
            usage();
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown command '{other}'"))),
    }
}

fn real_main(args: &[String]) -> ExitCode {
    let opts = match parse_args(args) {
        Ok(o) => o,
        Err(e) => {
            let e = CliError::Usage(e);
            e.report();
            return e.exit_code();
        }
    };
    match dispatch(args, &opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            e.report();
            e.exit_code()
        }
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Contain escaped panics so a bug in the simulator itself still
    // exits under the documented contract (4 = internal), never as an
    // unclassified abort. Worker panics are already caught per-cell by
    // the supervised pool; this is the last-resort backstop.
    match std::panic::catch_unwind(|| real_main(&args)) {
        Ok(code) => code,
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "non-string panic payload".into());
            eprintln!("internal error: panic: {msg}");
            ExitCode::from(4)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(|w| w.to_string()).collect()
    }

    #[test]
    fn parses_full_command_line() {
        let o = parse_args(&args(
            "run --mode ziv-likelydead --policy hawkeye --l2 512 \
             --workload homo:circset --accesses 1000 --cores 4 --seed 7",
        ))
        .unwrap();
        assert_eq!(o.command, "run");
        assert_eq!(o.mode, LlcMode::Ziv(ZivProperty::LikelyDead));
        assert_eq!(o.policy, PolicyKind::Hawkeye);
        assert_eq!(o.l2, L2Size::K512);
        assert_eq!(o.workload, "homo:circset");
        assert_eq!(o.accesses, 1000);
        assert_eq!(o.cores, 4);
        assert_eq!(o.seed, 7);
    }

    #[test]
    fn parses_campaign_flags() {
        let o = parse_args(&args(
            "campaign fig08-lru-perf --resume --results-dir out --threads 3",
        ))
        .unwrap();
        assert_eq!(o.command, "campaign");
        assert!(o.resume);
        assert_eq!(o.results_dir.as_deref(), Some("out"));
        assert_eq!(o.threads, Some(3));
        assert!(!o.seed_explicit);
        assert!(
            parse_args(&args("campaign smoke --seed 5"))
                .unwrap()
                .seed_explicit
        );
    }

    #[test]
    fn parses_telemetry_flags() {
        let o = parse_args(&args("campaign smoke --telemetry on --progress jsonl")).unwrap();
        assert!(o.telemetry);
        assert!(o.progress_jsonl);
        let o = parse_args(&args("campaign smoke --telemetry off --progress live")).unwrap();
        assert!(!o.telemetry);
        assert!(!o.progress_jsonl);
        assert!(parse_args(&args("campaign smoke --telemetry maybe")).is_err());
        assert!(parse_args(&args("campaign smoke --progress fancy")).is_err());
    }

    #[test]
    fn parses_watch_flags() {
        let o = parse_args(&args(
            "watch results/smoke --json --once --refresh 50 --stale-after 2000",
        ))
        .unwrap();
        assert_eq!(o.command, "watch");
        assert!(o.json);
        assert!(o.once);
        assert_eq!(o.refresh_ms, 50);
        assert_eq!(o.stale_after_ms, 2000);
        // Defaults.
        let o = parse_args(&args("watch results/smoke")).unwrap();
        assert!(!o.json && !o.once);
        assert_eq!(o.refresh_ms, 500);
        assert_eq!(o.stale_after_ms, 5000);
        assert!(parse_args(&args("watch d --refresh 0")).is_err());
        assert!(parse_args(&args("watch d --stale-after 0")).is_err());
    }

    #[test]
    fn watch_render_helpers() {
        assert_eq!(spark(&[0, 0, 0]), "▁▁▁");
        let s = spark(&[1, 4, 8]);
        assert_eq!(s.chars().count(), 3);
        assert!(s.ends_with('█'));
        assert_eq!(fmt_mmss(61_000), "1:01");
        assert_eq!(stratum_tag(ziv::telemetry::layout::STRATUM_TIMED), "timed");
        assert_eq!(stratum_tag(0), "full");
    }

    #[test]
    fn watch_json_snapshot_is_parseable() {
        let snap = ziv::telemetry::Snapshot {
            writer_pid: 42,
            heartbeat: ziv::telemetry::Heartbeat {
                seq: 2,
                tick: 7,
                finished: false,
                elapsed_ms: 1500,
            },
            campaign: ziv::telemetry::CampaignSnap {
                seq: 2,
                total: 6,
                cached: 1,
                done: 3,
                failed: 0,
                retried: 1,
                running: 2,
                eta_ms: None,
            },
            workers: vec![],
        };
        let v = ziv::common::json::parse(&snapshot_json(&snap)).unwrap();
        use ziv::common::json::JsonValue;
        assert_eq!(v.get("type").and_then(JsonValue::as_str), Some("snapshot"));
        assert_eq!(v.get("tick").and_then(JsonValue::as_u64), Some(7));
        assert_eq!(v.get("done").and_then(JsonValue::as_u64), Some(3));
        assert_eq!(v.get("finished").and_then(JsonValue::as_bool), Some(false));
        assert!(matches!(v.get("eta_ms"), Some(JsonValue::Null)));
    }

    #[test]
    fn parses_robustness_flags() {
        let o = parse_args(&args(
            "campaign smoke --audit every-access --strict --cell-budget 123456 \
             --inject-fault 0:1:corrupt-directory:200",
        ))
        .unwrap();
        assert_eq!(o.audit, ziv::core::AuditCadence::EveryAccess);
        assert!(o.strict);
        assert_eq!(o.cell_budget, Some(123_456));
        let (s, w, fault) = o.inject_fault.unwrap();
        assert_eq!((s, w), (0, 1));
        assert_eq!(
            fault,
            ziv::core::FaultInjection::CorruptDirectory { at_access: 200 }
        );

        let o = parse_args(&args("run --audit sampled:64")).unwrap();
        assert_eq!(o.audit, ziv::core::AuditCadence::Sampled { one_in: 64 });

        assert!(parse_args(&args("campaign smoke --audit bogus")).is_err());
        assert!(parse_args(&args("campaign smoke --inject-fault 0:0:nope:5")).is_err());
        assert!(parse_args(&args("campaign smoke --inject-fault lopsided")).is_err());

        // `replay` takes a positional file path like `export` does.
        let o = parse_args(&args("replay results/smoke/failures/abc.json")).unwrap();
        assert_eq!(o.command, "replay");
    }

    #[test]
    fn parses_supervision_flags() {
        let o = parse_args(&args(
            "campaign smoke --retries 2 --cell-timeout 5000 --stall-window 400",
        ))
        .unwrap();
        assert_eq!(o.retries, 2);
        assert_eq!(o.cell_timeout_ms, Some(5000));
        assert_eq!(o.stall_window_ms, Some(400));

        // Off by default: an unsupervised campaign stays unsupervised.
        let o = parse_args(&args("campaign smoke")).unwrap();
        assert_eq!(o.retries, 0);
        assert!(o.cell_timeout_ms.is_none() && o.stall_window_ms.is_none());

        // `soak` takes the same flags (plus the usual campaign knobs).
        let o = parse_args(&args(
            "soak --results-dir out --threads 2 --seed 9 --cell-timeout 60000",
        ))
        .unwrap();
        assert_eq!(o.command, "soak");
        assert_eq!(o.results_dir.as_deref(), Some("out"));
        assert!(o.seed_explicit);

        assert!(parse_args(&args("campaign smoke --cell-timeout 0")).is_err());
        assert!(parse_args(&args("campaign smoke --stall-window 0")).is_err());
        assert!(parse_args(&args("campaign smoke --retries nope")).is_err());
    }

    #[test]
    fn parses_hang_and_panic_fault_kinds() {
        let o = parse_args(&args("campaign soak --inject-fault 2:0:hang-core:150")).unwrap();
        let (s, _, fault) = o.inject_fault.unwrap();
        assert_eq!(s, 2);
        assert_eq!(
            fault,
            ziv::core::FaultInjection::HangCore { at_access: 150 }
        );
        let o = parse_args(&args("campaign soak --inject-fault 3:0:panic-core:99")).unwrap();
        let (_, _, fault) = o.inject_fault.unwrap();
        assert_eq!(
            fault,
            ziv::core::FaultInjection::PanicCore { at_access: 99 }
        );
    }

    #[test]
    fn cli_errors_carry_the_documented_exit_codes() {
        use std::process::ExitCode;
        let codes = [
            (CliError::Other("x".into()), ExitCode::from(1)),
            (CliError::Usage("x".into()), ExitCode::from(2)),
            (CliError::Cells("x".into()), ExitCode::from(3)),
            (CliError::Internal("x".into()), ExitCode::from(4)),
        ];
        for (err, want) in codes {
            assert_eq!(format!("{:?}", err.exit_code()), format!("{want:?}"));
        }
    }

    #[test]
    fn parses_attack_flags() {
        // `attack` takes a positional scenario like `trace` takes a mode.
        let o = parse_args(&args(
            "attack hammer --mode qbs --sets 4 --cores 4 --accesses 2000",
        ))
        .unwrap();
        assert_eq!(o.command, "attack");
        assert_eq!(o.mode, LlcMode::Qbs);
        assert_eq!(o.sets, 4);
        assert_eq!(o.cores, 4);
        // The attack command forces the leakage observatory on.
        assert!(o.observe_config().unwrap().leakage);
        assert!(!o.leakage, "the flag itself stays off");

        let o = parse_args(&args("attack")).unwrap();
        assert_eq!(o.sets, 8, "default targeted sets");

        // `--leakage` arms the observatory for campaigns too.
        let o = parse_args(&args("campaign attack-eval --leakage")).unwrap();
        assert!(o.leakage);
        assert!(o.observe_config().unwrap().leakage);
        assert!(parse_args(&args("attack --sets 0")).is_err());
        assert!(parse_args(&args("attack --sets nope")).is_err());
    }

    #[test]
    fn parses_bench_throughput_flags() {
        let o = parse_args(&args(
            "bench-throughput --repeats 5 --out /tmp/b.json --cores 4",
        ))
        .unwrap();
        assert_eq!(o.command, "bench-throughput");
        assert_eq!(o.repeats, 5);
        assert_eq!(o.out.as_deref(), Some("/tmp/b.json"));
        assert_eq!(o.cores, 4);

        let o = parse_args(&args("bench-throughput")).unwrap();
        assert_eq!(o.repeats, 3, "default repeats");
        assert!(o.out.is_none());
        assert!(!o.traced);
        assert!(parse_args(&args("bench-throughput --repeats nope")).is_err());

        assert!(
            parse_args(&args("bench-throughput --traced"))
                .unwrap()
                .traced
        );
    }

    #[test]
    fn parses_observability_flags() {
        let o = parse_args(&args(
            "campaign smoke --epoch 500 --events back-invalidation,relocation \
             --last 64 --heatmap",
        ))
        .unwrap();
        assert_eq!(o.epoch, Some(500));
        assert_eq!(o.events.as_deref(), Some("back-invalidation,relocation"));
        assert_eq!(o.last, Some(64));
        assert!(o.heatmap);
        let cfg = o.observe_config().unwrap();
        assert_eq!(cfg.epoch, Some(500));
        assert!(cfg.heatmap);
        let ev = cfg.events.unwrap();
        assert_eq!(ev.capacity, 64);
        assert!(ev.filter.contains(ziv::sim::EventKind::Relocation));
        assert!(!ev.filter.contains(ziv::sim::EventKind::Fill));

        // Malformed values are rejected at parse time.
        assert!(parse_args(&args("campaign smoke --epoch 0")).is_err());
        assert!(parse_args(&args("campaign smoke --last 0")).is_err());
        assert!(parse_args(&args("campaign smoke --events bogus")).is_err());

        // Flags alone never enable the recorder outside `trace`...
        let o = parse_args(&args("campaign smoke")).unwrap();
        assert!(!o.observe_config().unwrap().is_enabled());
        // ...while `trace` records events by default, with an optional
        // positional mode like `export`/`campaign` positionals.
        let o = parse_args(&args("trace ziv-likelydead --workload homo:circset")).unwrap();
        assert_eq!(o.command, "trace");
        let cfg = o.observe_config().unwrap();
        assert_eq!(
            cfg.events.unwrap().capacity,
            ziv::core::observe::DEFAULT_EVENT_CAPACITY
        );
    }

    #[test]
    fn parses_latency_and_profile_flags() {
        let o = parse_args(&args("campaign smoke --latency --profile")).unwrap();
        assert!(o.latency);
        assert!(o.profile);
        let cfg = o.observe_config().unwrap();
        assert!(cfg.latency);
        assert!(cfg.profile);
        assert!(cfg.is_enabled());

        // Off by default everywhere...
        let o = parse_args(&args("campaign smoke")).unwrap();
        assert!(!o.latency && !o.profile);
        let cfg = o.observe_config().unwrap();
        assert!(!cfg.latency && !cfg.profile);
        // ...except the `profile` command, which forces both on.
        let o = parse_args(&args("profile ziv-likelydead --accesses 100")).unwrap();
        assert_eq!(o.command, "profile");
        let cfg = o.observe_config().unwrap();
        assert!(cfg.latency);
        assert!(cfg.profile);
        // Forcing the observatory must not drag the event ring along.
        assert!(cfg.events.is_none());
    }

    #[test]
    fn parses_forensics_flags() {
        let o = parse_args(&args("campaign smoke --forensics")).unwrap();
        assert!(o.forensics);
        let cfg = o.observe_config().unwrap();
        assert!(cfg.forensics);
        assert!(cfg.is_enabled());

        // Off by default everywhere...
        let o = parse_args(&args("campaign smoke")).unwrap();
        assert!(!o.forensics && !o.perfetto);
        assert!(!o.observe_config().unwrap().forensics);
        // ...except the `blame` command, which forces forensics AND the
        // latency observatory (for the refetch-cycle conservation check).
        let o = parse_args(&args("blame ziv-likelydead --accesses 100")).unwrap();
        assert_eq!(o.command, "blame");
        let cfg = o.observe_config().unwrap();
        assert!(cfg.forensics);
        assert!(cfg.latency);
        assert!(!o.forensics, "the flag itself stays off");

        // --perfetto implies forensics: a trace without causal chains
        // would be blind to the paper's story.
        let o = parse_args(&args("campaign smoke --perfetto")).unwrap();
        assert!(o.perfetto);
        assert!(!o.forensics);
        assert!(o.observe_config().unwrap().forensics);
    }

    #[test]
    fn last_clamps_to_the_event_ring_limit() {
        let cap = ziv::core::observe::MAX_EVENT_CAPACITY;
        let o = parse_args(&args(&format!("trace --last {}", cap + 1))).unwrap();
        assert_eq!(o.last, Some(cap), "oversized --last clamps, not errors");
        let o = parse_args(&args(&format!("trace --last {cap}"))).unwrap();
        assert_eq!(o.last, Some(cap), "the limit itself is accepted verbatim");
    }

    #[test]
    fn parses_bench_compare_positionals_and_threshold() {
        let o = parse_args(&args("bench-compare old.json new.json --threshold 2.5")).unwrap();
        assert_eq!(o.command, "bench-compare");
        assert_eq!(o.threshold, Some(2.5));
        // Threshold defaults to None (the handler uses 5%).
        let o = parse_args(&args("bench-compare old.json new.json")).unwrap();
        assert!(o.threshold.is_none());
        assert!(parse_args(&args("bench-compare a b --threshold nope")).is_err());
        assert!(parse_args(&args("bench-compare a b --threshold -3")).is_err());
        // Only two positionals are tolerated.
        assert!(parse_args(&args("bench-compare a b c")).is_err());
    }

    #[test]
    fn parses_sampling_flags() {
        let o = parse_args(&args(
            "campaign smoke --sampling interval=64,gap=448,warmup=25,confidence=99,max=12 \
             --validate",
        ))
        .unwrap();
        let plan = o.sampling.unwrap();
        assert_eq!(plan.interval, 64);
        assert_eq!(plan.gap, 448);
        assert_eq!(plan.warmup_per_mille, 250);
        assert_eq!(plan.confidence, ziv::sim::Confidence::P99);
        assert_eq!(plan.max_intervals, 12);
        assert!(o.validate);

        // `auto` resolves per-workload at run time; `off` is explicit.
        assert!(parse_args(&args("campaign smoke --sampling auto"))
            .unwrap()
            .sampling
            .unwrap()
            .is_auto());
        assert!(parse_args(&args("campaign smoke --sampling off"))
            .unwrap()
            .sampling
            .is_none());
        // Malformed plans are usage errors at parse time.
        assert!(parse_args(&args("campaign smoke --sampling interval=0,gap=10")).is_err());
        assert!(parse_args(&args("campaign smoke --sampling confidence=80")).is_err());
        assert!(parse_args(&args("campaign smoke --sampling bogus=1")).is_err());

        // `sample` takes a positional mode like `trace` does, and
        // defaults to the paper's headline ZIV configuration —
        // unless --mode was given explicitly.
        let o = parse_args(&args("sample ziv-notinprc --accesses 500")).unwrap();
        assert_eq!(o.command, "sample");
        assert!(!o.mode_explicit);
        assert!(
            parse_args(&args("sample --mode qbs"))
                .unwrap()
                .mode_explicit
        );
    }

    #[test]
    fn rejects_unknown_flags_and_values() {
        assert!(parse_args(&args("run --mode bogus")).is_err());
        assert!(parse_args(&args("run --policy bogus")).is_err());
        assert!(parse_args(&args("run --l2 333")).is_err());
        assert!(parse_args(&args("run --frobnicate")).is_err());
        assert!(parse_args(&args("run --mode")).is_err());
    }

    #[test]
    fn builds_workloads_of_each_kind() {
        let mut o = Options {
            accesses: 50,
            cores: 2,
            ..Options::default()
        };
        o.workload = "homo:stream".into();
        assert_eq!(build_workload(&o).unwrap().cores(), 2);
        o.workload = "hetero:3".into();
        assert_eq!(build_workload(&o).unwrap().cores(), 2);
        o.workload = "mt:canneal".into();
        assert_eq!(build_workload(&o).unwrap().cores(), 2);
        o.workload = "mt:nope".into();
        assert!(build_workload(&o).is_err());
        o.workload = "nope".into();
        assert!(build_workload(&o).is_err());
    }

    #[test]
    fn every_listed_mode_parses() {
        for m in [
            "inclusive",
            "noninclusive",
            "qbs",
            "sharp",
            "charonbase",
            "tlh",
            "eci",
            "ric",
            "waypart",
            "ziv-notinprc",
            "ziv-lrunotinprc",
            "ziv-likelydead",
            "ziv-mrnotinprc",
            "ziv-mrlikelydead",
        ] {
            parse_mode(m).unwrap();
        }
    }
}
