//! # ziv — Zero Inclusion Victim LLC
//!
//! A from-scratch Rust reproduction of *"Zero Inclusion Victim:
//! Isolating Core Caches from Inclusive Last-level Cache Evictions"*
//! (Mainak Chaudhuri, ISCA 2021): an inclusive last-level cache design
//! that **guarantees freedom from inclusion victims** by relocating LLC
//! victims that are resident in private caches to globally selected
//! relocation sets, instead of back-invalidating them.
//!
//! This umbrella crate re-exports the whole workspace:
//!
//! - [`common`] — addresses, cache geometry, Table I configurations,
//!   deterministic RNG, statistics.
//! - [`replacement`] — LRU, NRU, SRRIP, Hawkeye (OPTgen + PC
//!   predictor), and the offline Belady MIN oracle.
//! - [`cache`] — set-associative arrays, the property-vector machinery
//!   with the paper's Algorithm 1, and the relocation FIFO.
//! - [`directory`] — the sparse coherence directory with the ZIV
//!   `Relocated` pointer state and a ZeroDEV mode.
//! - [`dram`] / [`noc`] — DDR3-2133-like memory timing/energy and the
//!   2D-mesh interconnect model.
//! - [`char_engine`] — CHAR dead-block inference with the paper's
//!   dynamic-threshold adaptation.
//! - [`core`] — the cache hierarchy with all seven LLC modes
//!   (inclusive, non-inclusive, QBS, SHARP, CHARonBase, and ZIV with
//!   its five relocation-set properties).
//! - [`workloads`] — synthetic SPEC / PARSEC / TPC-E stand-ins.
//! - [`sim`] — the trace driver, parallel experiment grids, reporting.
//! - [`harness`] — resumable experiment campaigns with a
//!   content-addressed result cache and run telemetry.
//! - [`telemetry`] — the live telemetry bus: a seqlock shared-memory
//!   segment written by running campaigns and tailed by
//!   `zivsim watch`.
//! - [`bench`] — figure-regeneration plumbing and the hot-path
//!   throughput baseline (`zivsim bench-throughput`).
//!
//! # Quick start
//!
//! ```
//! use ziv::prelude::*;
//!
//! let sys = SystemConfig::scaled();
//! let scale = ScaleParams::from_system(&sys);
//! let workload = mixes::heterogeneous(0, 8, 5_000, 42, scale);
//!
//! let baseline = run_one(&RunSpec::new("I-LRU", sys.clone()), &workload);
//! let ziv = run_one(
//!     &RunSpec::new("ZIV", sys).with_mode(LlcMode::Ziv(ZivProperty::LikelyDead)),
//!     &workload,
//! );
//! assert_eq!(ziv.metrics.inclusion_victims, 0); // the guarantee
//! # let _ = baseline;
//! ```

#![warn(missing_docs)]

pub use ziv_bench as bench;
pub use ziv_cache as cache;
pub use ziv_char as char_engine;
pub use ziv_common as common;
pub use ziv_core as core;
pub use ziv_directory as directory;
pub use ziv_dram as dram;
pub use ziv_harness as harness;
pub use ziv_noc as noc;
pub use ziv_replacement as replacement;
pub use ziv_sim as sim;
pub use ziv_telemetry as telemetry;
pub use ziv_workloads as workloads;

/// The most commonly used items, for `use ziv::prelude::*`.
pub mod prelude {
    pub use ziv_common::config::{DirRatio, L2Size, SystemConfig};
    pub use ziv_common::{Addr, CoreId, LineAddr};
    pub use ziv_core::{Access, CacheHierarchy, HierarchyConfig, LlcMode, ZivProperty};
    pub use ziv_directory::DirectoryMode;
    pub use ziv_replacement::PolicyKind;
    pub use ziv_sim::{run_grid, run_one, Effort, RunSpec};
    pub use ziv_workloads::{apps, mixes, multithreaded, ScaleParams, Workload};
}
