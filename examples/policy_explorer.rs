//! Explore the design space on one heterogeneous mix: every LLC mode ×
//! both baseline policies × the Table I L2 capacities, reported as
//! weighted speedup over I-LRU-256KB — a miniature of the paper's
//! Figs 8 and 11.
//!
//! Run with `cargo run --release --example policy_explorer`
//! (set `ZIV_FAST=1` for a quicker pass).

use ziv::prelude::*;

fn main() {
    let effort = Effort::from_env();
    let accesses = effort.accesses_per_core / 2;
    let base_sys = SystemConfig::scaled_with_l2(L2Size::K256);
    let scale = ScaleParams::from_system(&base_sys);
    let workload = mixes::heterogeneous(1, 8, accesses, 2026, scale);
    println!(
        "mix {}: {}",
        workload.name,
        workload
            .traces
            .iter()
            .map(|t| t.app_name)
            .collect::<Vec<_>>()
            .join(", ")
    );

    let mut specs = Vec::new();
    for l2 in L2Size::TABLE1 {
        let sys = SystemConfig::scaled_with_l2(l2);
        for (policy, policy_label) in [(PolicyKind::Lru, "LRU"), (PolicyKind::Hawkeye, "Hawkeye")] {
            let modes: Vec<LlcMode> = match policy {
                PolicyKind::Lru => vec![
                    LlcMode::Inclusive,
                    LlcMode::NonInclusive,
                    LlcMode::Qbs,
                    LlcMode::Sharp,
                    LlcMode::CharOnBase,
                    LlcMode::Ziv(ZivProperty::NotInPrC),
                    LlcMode::Ziv(ZivProperty::LruNotInPrC),
                    LlcMode::Ziv(ZivProperty::LikelyDead),
                ],
                _ => vec![
                    LlcMode::Inclusive,
                    LlcMode::NonInclusive,
                    LlcMode::Qbs,
                    LlcMode::Sharp,
                    LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
                    LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
                ],
            };
            for mode in modes {
                let label = format!("{}-{} {}", mode.label(), policy_label, l2.label());
                specs.push(
                    RunSpec::new(label, sys.clone())
                        .with_mode(mode)
                        .with_policy(policy),
                );
            }
        }
    }

    let grid = run_grid(&specs, std::slice::from_ref(&workload), effort.threads);
    let baseline = &grid[0].result; // I-LRU @ 256KB is spec 0
    println!(
        "{:<32} {:>8} {:>12} {:>12} {:>12}",
        "config", "speedup", "LLC misses", "incl.victims", "relocations"
    );
    for cell in &grid {
        let r = &cell.result;
        println!(
            "{:<32} {:>8.3} {:>12} {:>12} {:>12}",
            r.label,
            r.weighted_speedup(baseline),
            r.metrics.llc_misses,
            r.metrics.inclusion_victims,
            r.metrics.relocations
        );
    }
}
