//! Multithreaded workloads under every LLC design: the Fig 16/17 story
//! in miniature — shared-data applications (canneal, facesim, vips,
//! applu stand-ins) plus a 128-core TPC-E-like OLTP run.
//!
//! Run with `cargo run --release --example multithreaded`
//! (`ZIV_FAST=1` for a quicker pass).

use ziv::prelude::*;

fn main() {
    let effort = Effort::from_env();
    let sys = SystemConfig::scaled_with_l2(L2Size::K512);
    let scale = ScaleParams::from_system(&sys);
    let wls = multithreaded::parsec_omp_suite(8, effort.mt_accesses_per_core / 2, 7, scale);

    let modes = [
        ("I-LRU", LlcMode::Inclusive),
        ("NI-LRU", LlcMode::NonInclusive),
        ("QBS", LlcMode::Qbs),
        ("SHARP", LlcMode::Sharp),
        ("ZIV-LikelyDead", LlcMode::Ziv(ZivProperty::LikelyDead)),
    ];
    let specs: Vec<RunSpec> = modes
        .iter()
        .map(|(name, mode)| RunSpec::new(*name, sys.clone()).with_mode(*mode))
        .collect();
    let grid = run_grid(&specs, &wls, effort.threads);

    println!("runtime speedup over the inclusive LRU baseline (8 cores, 512KB-class L2):\n");
    print!("{:<16}", "config");
    for w in &wls {
        print!("{:>12}", w.name);
    }
    println!("{:>14}", "incl.victims");
    for (s, spec) in specs.iter().enumerate() {
        print!("{:<16}", spec.label);
        let mut victims = 0;
        for w in 0..wls.len() {
            let r = &grid[s * wls.len() + w].result;
            let b = &grid[w].result;
            print!("{:>12.3}", r.runtime_speedup(b));
            victims += r.metrics.inclusion_victims;
        }
        println!("{victims:>14}");
    }

    // The 128-core TPC-E-like run (32MB-class LLC, 128KB-class L2s).
    println!("\nTPC-E-like OLTP on 128 cores:");
    let server = SystemConfig::server_128(8);
    let tpce = multithreaded::tpce(
        128,
        effort.tpce_accesses_per_core,
        9,
        ScaleParams::from_system(&server),
    );
    let base = ziv::sim::run_one(&RunSpec::new("I-LRU", server.clone()), &tpce);
    for (name, mode) in [
        ("NI-LRU", LlcMode::NonInclusive),
        ("ZIV-LikelyDead", LlcMode::Ziv(ZivProperty::LikelyDead)),
    ] {
        let r = ziv::sim::run_one(&RunSpec::new(name, server.clone()).with_mode(mode), &tpce);
        println!(
            "  {:<16} speedup {:.3}   inclusion victims {}   relocations {}",
            name,
            r.runtime_speedup(&base),
            r.metrics.inclusion_victims,
            r.metrics.relocations
        );
    }
}
