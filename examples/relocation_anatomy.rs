//! Anatomy of a relocation: a verbose, step-by-step walkthrough of the
//! paper's Fig 5 functional flow on a tiny machine, printing the LLC
//! and directory state at each stage.
//!
//! Run with `cargo run --release --example relocation_anatomy`.

use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

fn tiny() -> SystemConfig {
    SystemConfig {
        cores: 2,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(32 * 64, 4, 2), // 2 banks x 4 sets x 4 ways
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

fn dump(h: &CacheHierarchy, title: &str) {
    println!("--- {title} ---");
    let mut blocks = h.llc().resident_blocks();
    blocks.sort_by_key(|(loc, _)| (loc.bank.index(), loc.set, loc.way));
    for (loc, st) in blocks {
        println!(
            "  {}/set{}/way{}  {}  {}{}{}{}",
            loc.bank,
            loc.set,
            loc.way,
            st.line,
            if st.relocated { "[Relocated] " } else { "" },
            if st.not_in_prc { "[NotInPrC] " } else { "" },
            if st.likely_dead { "[LikelyDead] " } else { "" },
            if st.dirty { "[dirty]" } else { "" },
        );
    }
    let m = h.metrics();
    println!(
        "  inclusion victims: {}   relocations: {}   in-set alternates: {}\n",
        m.inclusion_victims, m.relocations, m.in_set_alternate_victims
    );
}

fn main() {
    let cfg = HierarchyConfig::new(tiny()).with_mode(LlcMode::Ziv(ZivProperty::NotInPrC));
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0u64;
    let mut seq = 0u64;
    let read = |h: &mut CacheHierarchy, core: usize, line: u64, now: &mut u64, seq: &mut u64| {
        let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400 + line % 4);
        let lat = h.access(&a, *now, *seq);
        *now += 1 + lat;
        *seq += 1;
        lat
    };

    println!("ZIV LLC relocation walkthrough (2 banks x 4 sets x 4 ways)\n");

    // Step 1: core 0 loads block B (line 8 -> bank 0, set 0) and keeps
    // it hot in its private caches.
    let b = 8u64;
    read(&mut h, 0, b, &mut now, &mut seq);
    println!("step 1: core 0 loads B = line {b} (bank 0, set 0) and keeps it private");
    dump(&h, "after the fill of B");

    // Step 2: conflicting fills to the same LLC set. B stays hot
    // privately (we re-touch it), so when it reaches the LRU position
    // the ZIV LLC must relocate instead of back-invalidating.
    println!("step 2: stream 10 conflicting lines through bank 0 / set 0, keeping B hot");
    for i in 2..12u64 {
        read(&mut h, 0, i * 8, &mut now, &mut seq);
        read(&mut h, 0, b, &mut now, &mut seq); // L1 hit: keeps B private, invisible to the LLC
    }
    dump(&h, "after the conflict stream");
    match h
        .directory()
        .relocated_location(ziv::common::LineAddr::new(b))
    {
        Some(loc) => println!(
            "B now lives at {}/set{}/way{} in the Relocated state, reachable only\n\
             through its sparse-directory entry — and core 0 never lost its L1 copy.\n",
            loc.bank, loc.set, loc.way
        ),
        None => println!("(B was not the relocated victim this time — see the state dump)\n"),
    }

    // Step 3: the second core reads B: home-set lookup misses, the
    // directory pointer finds the relocated copy.
    let lat = read(&mut h, 1, b, &mut now, &mut seq);
    println!(
        "step 3: core 1 reads B -> served from the relocated block in {} cycles \
         (LLC hit, `relocated_hits` = {})",
        lat,
        h.metrics().relocated_hits
    );

    // Step 4: push B out of both cores' private caches; the relocated
    // copy's life ends with the last private copy.
    println!("\nstep 4: evict B from both cores' private caches (thrash their L1/L2 sets)");
    for i in 1..40u64 {
        read(&mut h, 0, i * 4 + 1024, &mut now, &mut seq);
        read(&mut h, 1, i * 4 + 2048, &mut now, &mut seq);
    }
    dump(&h, "after both cores moved on");
    println!(
        "B relocated copy present: {}   (Section III-C2: a relocated block is\n\
         invalidated when its last private copy leaves — the next access misses)",
        h.directory()
            .relocated_location(ziv::common::LineAddr::new(b))
            .is_some()
    );
    assert_eq!(h.metrics().inclusion_victims, 0);
    println!("\ninclusion victims across the whole walkthrough: 0 (the guarantee)");
}
