//! Anatomy of the blame matrix: run one inclusion-victim-heavy mix
//! under the baseline inclusive LLC and under ZIV with the causal
//! forensics observatory on, print the worst causal chains (instigator
//! access → eviction decision → victimized cores → refetch cost) and
//! the instigator × victim blame matrix, and verify both conservation
//! laws on the spot.
//!
//! Run with `cargo run --release --example blame_anatomy`.

use ziv_common::config::SystemConfig;
use ziv_core::{LlcMode, ZivProperty};
use ziv_sim::{run_one_traced, ObserveConfig, RunOptions, RunSpec};
use ziv_workloads::{apps, mixes, ScaleParams, Workload};

fn main() {
    let sys = SystemConfig::scaled();
    let sc = ScaleParams::from_system(&sys);
    // Hot cores keep private-resident sets whose LLC copies age out;
    // streaming cores supply the eviction pressure that reaches them.
    let hot = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 2, 60_000, 3, sc);
    let stream = mixes::homogeneous(apps::app_by_name("stream").unwrap(), 4, 10_000, 5, sc);
    let mut traces = hot.traces;
    traces.extend(stream.traces.into_iter().skip(2));
    let wl = Workload {
        name: "hot-vs-stream".into(),
        traces,
        attack: None,
    };
    let opts = RunOptions {
        observe: ObserveConfig {
            forensics: true,
            latency: true, // the independent refetch-cycle account
            ..ObserveConfig::disabled()
        },
        ..RunOptions::default()
    };

    for (label, mode) in [
        ("I-LRU", LlcMode::Inclusive),
        ("ZIV-LikelyDead", LlcMode::Ziv(ZivProperty::LikelyDead)),
    ] {
        let spec = RunSpec::new(label, sys.clone()).with_mode(mode);
        let (result, obs) = run_one_traced(&spec, &wl, &opts);
        let result = result.expect("run succeeds");
        let obs = obs.expect("observatory on");
        let latency = obs.latency.as_ref().unwrap();
        let f = obs.forensics.as_ref().unwrap();

        println!("=== {label} ===");
        println!(
            "chains: {} ({} inclusive, {} ECI); victims {}; refetches {} costing {} cycles",
            f.chains_recorded,
            f.inclusive_chains,
            f.eci_chains,
            f.total_victims(),
            f.total_refetches(),
            f.total_refetch_cycles(),
        );
        // The two conservation laws, checked live.
        assert_eq!(f.total_victims(), result.metrics.inclusion_victims);
        assert_eq!(
            f.total_refetch_cycles(),
            latency.inclusion_victim_refetch_cycles()
        );
        println!(
            "conserved: victims == Metrics::inclusion_victims ({}); \
             refetch cycles == latency observatory ({})",
            result.metrics.inclusion_victims,
            latency.inclusion_victim_refetch_cycles(),
        );

        if f.chains_recorded == 0 {
            println!("no causal chains — the zero-inclusion-victim guarantee, per incident\n");
            continue;
        }
        println!("worst chains by damage:");
        for c in f.top_chains(5) {
            let alloc = match &c.alloc {
                Some(a) => format!("core {} @ access {}", a.core.index(), a.access_index),
                None => "stamp displaced".into(),
            };
            println!(
                "  #{:<4} core {} access {:>8} evicted {} (bank {} set {:>3}, {}) \
                 -> {} victim(s), {} refetch(es), {} cycles  [allocated by {alloc}]",
                c.seq,
                c.instigator_core.index(),
                c.instigator_access,
                c.line,
                c.bank,
                c.set,
                c.reason.label(),
                c.victim_count,
                c.refetches,
                c.refetch_cycles,
            );
        }
        println!("blame matrix (rows instigate, columns pay — victims):");
        for i in 0..f.cores {
            print!("  core {i}:");
            for v in 0..f.cores {
                print!(" {:>7}", f.victims(i, v));
            }
            println!("   ({} cross-core)", f.cross_core_victims(i));
        }
        println!();
    }
}
