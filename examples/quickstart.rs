//! Quickstart: build a scaled Table I machine, run one inclusion-victim
//! -heavy mix under the baseline inclusive LLC and under the ZIV LLC,
//! and compare.
use ziv_common::config::SystemConfig;
use ziv_core::{LlcMode, ZivProperty};
use ziv_sim::{run_one, RunSpec};
use ziv_workloads::{apps, mixes, ScaleParams, Workload};

fn main() {
    let sys = SystemConfig::scaled();
    let sc = ScaleParams::from_system(&sys);
    let hot = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 4, 150_000, 3, sc);
    let stream = mixes::homogeneous(apps::app_by_name("stream").unwrap(), 8, 150_000, 5, sc);
    let mut traces = hot.traces;
    traces.extend(stream.traces.into_iter().skip(4));
    let wl = Workload {
        name: "hot-vs-stream".into(),
        traces,
        attack: None,
    };

    let t0 = std::time::Instant::now();
    let base = run_one(&RunSpec::new("I-LRU", sys.clone()), &wl);
    let t1 = t0.elapsed();
    let ziv = run_one(
        &RunSpec::new("ZIV-LikelyDead", sys).with_mode(LlcMode::Ziv(ZivProperty::LikelyDead)),
        &wl,
    );
    println!(
        "accesses: {}  I-LRU time: {:?}  ({:.1} M acc/s)",
        wl.total_accesses(),
        t1,
        wl.total_accesses() as f64 / t1.as_secs_f64() / 1e6
    );
    println!(
        "I-LRU   : inclusion victims {}  LLC misses {}",
        base.metrics.inclusion_victims, base.metrics.llc_misses
    );
    println!(
        "ZIV     : inclusion victims {}  LLC misses {}  relocations {} ({:.1}% of misses)",
        ziv.metrics.inclusion_victims,
        ziv.metrics.llc_misses,
        ziv.metrics.relocations,
        100.0 * ziv.metrics.relocation_rate()
    );
    println!(
        "ZIV weighted speedup over I-LRU: {:.3}",
        ziv.weighted_speedup(&base)
    );
}
