//! The paper's security motivation, demonstrated: eviction-based LLC
//! side channels rely on **inclusion victims** to flush a victim's
//! private caches from across cores. Under the baseline inclusive LLC
//! an attacker that evicts the victim's LLC sets makes the victim's
//! subsequent accesses slow (observable misses); under the ZIV LLC the
//! victim's private blocks are isolated from LLC evictions and the
//! attacker sees nothing.
//!
//! Run with `cargo run --release --example side_channel`.

use ziv_common::config::{CacheGeometry, DirRatio, DramParams, LlcConfig, NocParams, SystemConfig};
use ziv_common::{Addr, CoreId};
use ziv_core::{Access, CacheHierarchy, HierarchyConfig, LlcMode, ZivProperty};

/// A small machine so the attack is quick to mount.
fn system() -> SystemConfig {
    SystemConfig {
        cores: 2,
        l1i: CacheGeometry::new(4, 2),
        l1d: CacheGeometry::new(4, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(8, 4), // 32-block private L2
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(256 * 64, 8, 2), // 256-block LLC
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// Mounts a prime-style eviction attack and returns how many of the
/// victim's secret lines became observably slow (missed the private
/// caches) after the attacker's evictions.
fn mount_attack(mode: LlcMode) -> (usize, u64) {
    let sys = system();
    let cfg = HierarchyConfig::new(sys.clone()).with_mode(mode);
    let mut h = CacheHierarchy::new(&cfg);
    let victim = CoreId::new(0);
    let attacker = CoreId::new(1);
    let mut now = 0u64;
    let mut seq = 0u64;
    let go = |h: &mut CacheHierarchy, core: CoreId, line: u64, now: &mut u64, seq: &mut u64| {
        let lat = h.access(
            &Access::read(core, Addr::new(line * 64), 0x400 + line % 8),
            *now,
            *seq,
        );
        *now += 1 + lat;
        *seq += 1;
        lat
    };

    // 1. The victim loads its secret-dependent working set (8 lines,
    //    spread so they coexist in its private caches) and keeps it
    //    warm.
    let secret_lines: Vec<u64> = (0..8).map(|i| 3 + i * 5).collect();
    for _ in 0..4 {
        for &l in &secret_lines {
            go(&mut h, victim, l, &mut now, &mut seq);
        }
    }

    // 2. The attacker floods every LLC set from its own address space
    //    (a 2x-LLC sweep, twice), evicting the victim's LLC copies.
    for _ in 0..2 {
        for l in 0..512u64 {
            go(&mut h, attacker, (1 << 20) + l, &mut now, &mut seq);
        }
    }

    // 3. The victim re-touches its secret lines; the attacker "observes"
    //    which ones got slow. A private-cache hit is invisible.
    let mut visible = 0usize;
    for &l in &secret_lines {
        let lat = go(&mut h, victim, l, &mut now, &mut seq);
        if lat > sys.l2_latency {
            visible += 1;
        }
    }
    (visible, h.metrics().inclusion_victims)
}

fn main() {
    println!("Eviction-based side channel: attacker evicts the victim's LLC sets,");
    println!("then infers the victim's secret accesses from their latency.\n");
    for mode in [
        LlcMode::Inclusive,
        LlcMode::Sharp,
        LlcMode::Ziv(ZivProperty::NotInPrC),
        LlcMode::Ziv(ZivProperty::LikelyDead),
    ] {
        let (visible, victims) = mount_attack(mode);
        println!(
            "{:<16} attacker-visible secret lines: {}/8   inclusion victims: {}",
            mode.label(),
            visible,
            victims
        );
    }
    println!("\nThe ZIV LLC isolates the victim's core caches from the attacker's");
    println!("LLC evictions: zero visible lines, zero inclusion victims.");
}
