#!/usr/bin/env bash
# Offline CI gate for the ziv workspace: formatting, lints, build, and
# the full test suite, with no network access required.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo test (release, debug assertions on)"
# The figure campaigns run in release; keep the invariant-heavy paths
# (auditor, ZIV guarantee fallback checks) exercised with
# debug_assert!s compiled in at release optimization levels.
RUSTFLAGS="-C debug-assertions" cargo test --workspace -q --release

echo "== hot-path determinism differential (release, debug assertions on)"
# Explicit run of the hot-path differential: every LLC mode twice under
# the every-access auditor plus byte-identical campaign ledgers, with
# the fused-probe/scratch-buffer debug_assert!s compiled in.
RUSTFLAGS="-C debug-assertions" cargo test -q --release --test hotpath_determinism

echo "== audit-enabled smoke campaign"
# End-to-end through the release binary: every cell of the smallest
# campaign under the sampled invariant auditor, into a throwaway
# results dir. Any audit violation fails the gate with a repro record.
SMOKE_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR"' EXIT
ZIV_FAST=1 ./target/release/zivsim campaign smoke \
    --audit sampled --results-dir "$SMOKE_DIR"

echo "== hot-path throughput baseline (recorded, non-gating)"
# End-to-end accesses/second over the smoke campaign through the plain
# driver (no audit, no cache). The JSON report is a recorded baseline
# for spotting hot-path regressions across commits; wall-clock numbers
# depend on the machine, so nothing here gates.
ZIV_FAST=1 ./target/release/zivsim bench-throughput \
    --repeats 2 --out BENCH_hotpath.json
echo "   (see BENCH_hotpath.json)"

echo "CI OK"
