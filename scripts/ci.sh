#!/usr/bin/env bash
# Offline CI gate for the ziv workspace: formatting, lints, build, and
# the full test suite, with no network access required.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "CI OK"
