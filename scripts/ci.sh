#!/usr/bin/env bash
# Offline CI gate for the ziv workspace: formatting, lints, build, and
# the full test suite, with no network access required.
#
# Usage: scripts/ci.sh
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== cargo fmt --check"
cargo fmt --all --check

echo "== cargo clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release"
cargo build --workspace --release

echo "== cargo test"
cargo test --workspace -q

echo "== cargo test (release, debug assertions on)"
# The figure campaigns run in release; keep the invariant-heavy paths
# (auditor, ZIV guarantee fallback checks) exercised with
# debug_assert!s compiled in at release optimization levels.
RUSTFLAGS="-C debug-assertions" cargo test --workspace -q --release

echo "== hot-path determinism differential (release, debug assertions on)"
# Explicit run of the hot-path differential: every LLC mode twice under
# the every-access auditor plus byte-identical campaign ledgers, with
# the fused-probe/scratch-buffer debug_assert!s compiled in.
RUSTFLAGS="-C debug-assertions" cargo test -q --release --test hotpath_determinism

echo "== latency-attribution conservation (release, debug assertions on)"
# The observatory's books must balance exactly: per-component cycles
# sum to the aggregate access_latency_cycles for every LLC mode under
# the every-access auditor, and ZIV modes report exactly zero
# inclusion-victim refetch cycles.
RUSTFLAGS="-C debug-assertions" cargo test -q --release --test latency_attribution

echo "== causal-forensics conservation (release, debug assertions on)"
# The blame matrix must account for every inclusion victim exactly,
# its refetch cycles must agree with the latency observatory, ZIV
# modes must record zero chains, and the blame.csv / trace.json
# exports must be byte-identical across thread counts.
RUSTFLAGS="-C debug-assertions" cargo test -q --release --test forensics

echo "== audit-enabled smoke campaign"
# End-to-end through the release binary: every cell of the smallest
# campaign under the sampled invariant auditor, into a throwaway
# results dir. Any audit violation fails the gate with a repro record.
# Single-threaded so the ledger's append order is deterministic — the
# traced re-run below diffs against these bytes.
SMOKE_DIR="$(mktemp -d)"
TRACED_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR"' EXIT
ZIV_FAST=1 ./target/release/zivsim campaign smoke \
    --audit sampled --threads 1 --results-dir "$SMOKE_DIR"

echo "== flight-recorder smoke campaign (observability must not touch results)"
# The same campaign with every capture on: epoch-sliced time series,
# full event tracing, and occupancy heatmaps. The result artifacts
# (ledger + grid.csv) must be byte-identical to the untraced run —
# observability that perturbs results is a gate failure.
ZIV_FAST=1 ./target/release/zivsim campaign smoke \
    --audit sampled --threads 1 --results-dir "$TRACED_DIR" \
    --epoch 500 --events all --heatmap
diff "$SMOKE_DIR/ledger.jsonl" "$TRACED_DIR/ledger.jsonl"
diff "$SMOKE_DIR/grid.csv"     "$TRACED_DIR/grid.csv"
test -s "$TRACED_DIR/timeseries.csv"
test -s "$TRACED_DIR/heatmap.csv"

echo "== profiled smoke campaign (latency observatory must not touch results)"
# The same campaign again with the latency observatory and the
# wall-clock self-profiler on. Timing is nondeterministic; results must
# not be: ledger + grid.csv stay byte-identical to the plain run, while
# latency.csv and profile.json appear alongside them.
PROFILED_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR"' EXIT
ZIV_FAST=1 ./target/release/zivsim campaign smoke \
    --audit sampled --threads 1 --results-dir "$PROFILED_DIR" \
    --latency --profile
diff "$SMOKE_DIR/ledger.jsonl" "$PROFILED_DIR/ledger.jsonl"
diff "$SMOKE_DIR/grid.csv"     "$PROFILED_DIR/grid.csv"
test -s "$PROFILED_DIR/latency.csv"
test -s "$PROFILED_DIR/profile.json"

echo "== forensics smoke campaign (blame conservation + perfetto validity)"
# The same campaign with the forensics observatory and the Perfetto
# exporter on. Three gates: (1) result artifacts stay byte-identical —
# ledger, grid.csv, AND summary.csv; (2) the blame matrix conserves —
# per campaign cell, the sum of blame.csv victim cells equals the
# grid.csv inclusion_victims column exactly, with every ZIV row
# exactly zero (zeros are emitted explicitly, so the guarantee is
# checked positively); (3) trace.json is one valid JSON document.
FORENSICS_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR" "$FORENSICS_DIR"' EXIT
ZIV_FAST=1 ./target/release/zivsim campaign smoke \
    --audit sampled --threads 1 --results-dir "$FORENSICS_DIR" \
    --forensics --perfetto
diff "$SMOKE_DIR/ledger.jsonl" "$FORENSICS_DIR/ledger.jsonl"
diff "$SMOKE_DIR/grid.csv"     "$FORENSICS_DIR/grid.csv"
diff "$SMOKE_DIR/summary.csv"  "$FORENSICS_DIR/summary.csv"
awk -F, '
    FNR == 1 {
        file++
        if (file == 1) { for (i = 1; i <= NF; i++) if ($i == "inclusion_victims") g = i }
        else           { for (i = 1; i <= NF; i++) if ($i == "victims") v = i }
        next
    }
    file == 1 { want[$1 "," $2] = $g + 0 }
    file == 2 {
        got[$1 "," $2] += $v + 0
        seen[$1 "," $2] = 1
        if ($1 ~ /^ZIV/ && $v + 0 != 0) { print "FAIL ZIV blame row nonzero: " $0; bad = 1 }
    }
    END {
        if (!g) { print "FAIL no inclusion_victims column in grid.csv"; exit 1 }
        if (!v) { print "FAIL no victims column in blame.csv"; exit 1 }
        cells = 0
        for (k in want) {
            cells++
            if (!(k in seen)) { print "FAIL cell missing from blame.csv: " k; bad = 1 }
            else if (got[k] != want[k]) {
                print "FAIL blame does not conserve for " k ": grid=" want[k] " blame=" got[k]
                bad = 1
            }
        }
        if (!cells) { print "FAIL empty grid.csv"; exit 1 }
        if (bad) exit 1
    }' "$FORENSICS_DIR/grid.csv" "$FORENSICS_DIR/blame.csv"
python3 -m json.tool "$FORENSICS_DIR/trace.json" > /dev/null

echo "== attack-eval smoke campaign (leakage gate + resume byte-identity)"
# The side-channel acceptance invariant through the release binary:
# every attack scenario under every defense mode, audited. The gate is
# the paper's security claim — inclusive rows must show a nonzero
# attacker-observable signal and every ZIV row must be exactly zero.
ATK_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR" "$FORENSICS_DIR" "$ATK_DIR"' EXIT
ZIV_FAST=1 ./target/release/zivsim campaign attack-eval \
    --audit sampled --threads 1 --results-dir "$ATK_DIR"
awk -F, '
    NR == 1 { for (i = 1; i <= NF; i++) if ($i == "signal_evictions") c = i; next }
    $1 ~ /^I-/   { inc++; if ($c + 0 == 0) { print "FAIL inclusive row without signal: " $0; bad = 1 } }
    $1 ~ /^ZIV-/ { ziv++; if ($c + 0 != 0) { print "FAIL ZIV row with signal: " $0; bad = 1 } }
    END {
        if (!c)   { print "FAIL no signal_evictions column"; exit 1 }
        if (!inc) { print "FAIL no inclusive rows in leakage.csv"; exit 1 }
        if (!ziv) { print "FAIL no ZIV rows in leakage.csv"; exit 1 }
        if (bad) exit 1
    }' "$ATK_DIR/leakage.csv"
# Resuming the finished campaign must be a byte-level no-op on the
# result artifacts (cells all cached), and the resumed leakage.csv is
# header-only — cached cells are not re-simulated, so they contribute
# no observations (same rule as timeseries.csv).
cp "$ATK_DIR/ledger.jsonl" "$ATK_DIR/grid.csv" "$ATK_DIR/summary.csv" "$TRACED_DIR/"
ZIV_FAST=1 ./target/release/zivsim campaign attack-eval \
    --audit sampled --threads 1 --resume --results-dir "$ATK_DIR"
diff "$TRACED_DIR/ledger.jsonl" "$ATK_DIR/ledger.jsonl"
diff "$TRACED_DIR/grid.csv"     "$ATK_DIR/grid.csv"
diff "$TRACED_DIR/summary.csv"  "$ATK_DIR/summary.csv"
test "$(wc -l < "$ATK_DIR/leakage.csv")" -eq 1

echo "== sampled smoke campaign (sampling gate: accuracy, speedup, byte-identity)"
# The statistical-sampling acceptance invariant through the release
# binary, at full effort so the traces are several LLC warm horizons
# long (the regime where the auto plan actually skips). The validated
# pass runs every cell twice — full-fidelity and sampled — and the gate
# holds the paper-reproduction bar: every sampled IPC estimate lands
# inside its own reported 95% confidence interval of the full-run
# value, and the sampled pass is at least 3x faster in aggregate.
# Estimates are deterministic; only the wall-clock ratio varies.
SAMP_DIR="$(mktemp -d)"
SAMP_PLAIN="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR" "$FORENSICS_DIR" "$ATK_DIR" "$SAMP_DIR" "$SAMP_PLAIN"' EXIT
ZIV_FULL=1 ./target/release/zivsim campaign smoke \
    --sampling auto --validate --threads 1 --results-dir "$SAMP_DIR"
awk -F, '
    NR == 1 {
        for (i = 1; i <= NF; i++) {
            if ($i == "within_ci")  wc = i
            if ($i == "rel_error")  re = i
            if ($i == "full_ms")    fm = i
            if ($i == "sampled_ms") sm = i
        }
        next
    }
    {
        cells++
        full += $fm; sampled += $sm
        if ($wc + 0 != 1) { print "FAIL full-run IPC outside the sampled CI: " $0; bad = 1 }
        if ($re + 0 >= 0.10) { print "FAIL sampled estimate off by >=10%: " $0; bad = 1 }
    }
    END {
        if (!wc || !re || !fm || !sm) { print "FAIL validation.csv missing gate columns"; exit 1 }
        if (cells < 4) { print "FAIL validation.csv has only " cells " cells"; exit 1 }
        printf "sampling gate: %d cells, aggregate speedup %.2fx\n", cells, full / sampled
        if (full < 3 * sampled) { print "FAIL sampled pass fewer than 3x faster"; exit 1 }
        if (bad) exit 1
    }' "$SAMP_DIR/validation.csv"
test -s "$SAMP_DIR/sampling.csv"
# Sampling must be a pure rider: the full-fidelity artifacts the
# validated pass produced are byte-identical to a plain campaign's —
# no sampled estimate ever reaches the ledger or the CSVs.
ZIV_FULL=1 ./target/release/zivsim campaign smoke \
    --threads 1 --results-dir "$SAMP_PLAIN"
diff "$SAMP_PLAIN/ledger.jsonl" "$SAMP_DIR/ledger.jsonl"
diff "$SAMP_PLAIN/grid.csv"     "$SAMP_DIR/grid.csv"
diff "$SAMP_PLAIN/summary.csv"  "$SAMP_DIR/summary.csv"

echo "== live-telemetry smoke campaign (watch gate: mid-run snapshot + byte-identity)"
# The live telemetry bus through the release binary: the plain smoke
# campaign again with the seqlock shared-memory segment and JSONL
# progress heartbeats on, tailed the whole way by a concurrent
# `zivsim watch --json` started first (it waits for the segment to
# appear). The gate: the watcher streams at least one consistent
# mid-run snapshot, exits 0 on the finished flag, the campaign's
# stderr carries structured progress lines, a late watcher attaching
# after the fact exits clean immediately, and — observe never steer —
# ledger/grid/summary are byte-identical to the unwatched ZIV_FULL
# run above.
TELEM_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR" "$FORENSICS_DIR" "$ATK_DIR" "$SAMP_DIR" "$SAMP_PLAIN" "$TELEM_DIR"' EXIT
./target/release/zivsim watch "$TELEM_DIR/results" \
    --json --refresh 10 --stale-after 30000 > "$TELEM_DIR/watch.jsonl" &
WATCH_PID=$!
ZIV_FULL=1 ./target/release/zivsim campaign smoke \
    --threads 1 --results-dir "$TELEM_DIR/results" \
    --telemetry on --progress jsonl 2> "$TELEM_DIR/progress.jsonl"
# Exit 0 here means the watcher saw the finished flag — not a timeout.
wait "$WATCH_PID"
grep -q '"finished":false' "$TELEM_DIR/watch.jsonl"
grep -q '"finished":true'  "$TELEM_DIR/watch.jsonl"
grep -q '"type":"progress"' "$TELEM_DIR/progress.jsonl"
# A watcher attaching after the campaign reads the persisted final
# state and exits clean at once instead of spinning.
./target/release/zivsim watch "$TELEM_DIR/results" --json --once \
    | grep -q '"finished":true'
diff "$SAMP_PLAIN/ledger.jsonl" "$TELEM_DIR/results/ledger.jsonl"
diff "$SAMP_PLAIN/grid.csv"     "$TELEM_DIR/results/grid.csv"
diff "$SAMP_PLAIN/summary.csv"  "$TELEM_DIR/results/summary.csv"

echo "== attack-leakage invariant tests (release, debug assertions on)"
# Explicit run of the ZIV-zero-leakage gate: the observatory's books
# conserve against Metrics::inclusion_victims, the inclusive baseline
# leaks, every ZIV mode is exactly silent, and the attack-eval exports
# are byte-identical across thread counts.
RUSTFLAGS="-C debug-assertions" cargo test -q --release --test attack_leakage

echo "== chaos-soak drill (supervision gate: every injected fault isolated)"
# The supervised-execution acceptance drill through the release binary:
# a fault-free pass of the soak grid, a chaos pass with five seeded
# injected faults (corrupt-directory, skip-back-invalidation, stall,
# hang, panic), the isolation audit (expected error kinds, repro
# records, surviving cells byte-identical to the fault-free pass), and
# the torn-ledger crash-recovery resume. Exit code 3 is the pass
# verdict per the documented contract — failures present, all isolated.
# 0 would mean the injectors never fired; 4 means a supervision
# guarantee broke. Two threads: the drill's stall detector needs the
# workers not to starve each other on small CI machines.
SOAK_DIR="$(mktemp -d)"
trap 'rm -rf "$SMOKE_DIR" "$TRACED_DIR" "$PROFILED_DIR" "$FORENSICS_DIR" "$ATK_DIR" "$SAMP_DIR" "$SAMP_PLAIN" "$TELEM_DIR" "$SOAK_DIR"' EXIT
set +e
ZIV_FAST=1 ./target/release/zivsim soak \
    --threads 2 --results-dir "$SOAK_DIR/results" > "$SOAK_DIR/soak.out" 2>&1
SOAK_EXIT=$?
set -e
cat "$SOAK_DIR/soak.out"
test "$SOAK_EXIT" -eq 3
grep -q "every guarantee held" "$SOAK_DIR/soak.out"
grep -q "torn tail detected = true" "$SOAK_DIR/soak.out"

echo "== hot-path throughput baseline (recorded, non-gating)"
# End-to-end accesses/second over the smoke campaign through the plain
# driver (no audit, no cache). Fresh runs land in a scratch dir; the
# committed BENCH_hotpath.json / BENCH_latency.json snapshots stay
# untouched so the advisory comparison below always has a stable
# anchor. Wall-clock numbers depend on the machine, so nothing gates.
ZIV_FAST=1 ./target/release/zivsim bench-throughput \
    --repeats 2 --out "$TRACED_DIR/BENCH_hotpath_fresh.json"
ZIV_FAST=1 ./target/release/zivsim bench-throughput \
    --repeats 2 --traced --out "$TRACED_DIR/BENCH_hotpath_traced.json"
# The observatory twin bounds the latency attribution + self-profiler
# overhead next to the plain baseline — recorded, non-gating.
ZIV_FAST=1 ./target/release/zivsim bench-throughput \
    --repeats 2 --latency --profile --out "$TRACED_DIR/BENCH_latency_fresh.json"

echo "== bench-compare vs the committed snapshots (advisory, non-gating)"
# Wall-clock rates are machine-dependent, so the comparison is printed
# for the log but never fails CI; use `zivsim bench-compare` manually
# (same machine, quiet load) when a regression needs a verdict. To
# refresh the snapshots, copy the fresh files over BENCH_hotpath.json /
# BENCH_latency.json and commit them.
if [ -s BENCH_hotpath.json ]; then
    ./target/release/zivsim bench-compare \
        BENCH_hotpath.json "$TRACED_DIR/BENCH_hotpath_fresh.json" || true
fi
if [ -s BENCH_latency.json ]; then
    ./target/release/zivsim bench-compare \
        BENCH_latency.json "$TRACED_DIR/BENCH_latency_fresh.json" || true
fi

echo "CI OK"
