//! End-to-end drills of the supervised campaign runner and the
//! `zivsim` exit-code contract: a deliberately hung cell is cancelled
//! within its budget and ledgered as a timeout, an injected panic is
//! contained per-worker, a ledger torn mid-append is recovered with a
//! warning (and `--resume` re-runs exactly the lost cell), and the CLI
//! classifies every outcome as 0 / 2 / 3 / 4.

use std::sync::Mutex;
use std::time::{Duration, Instant};
use ziv::core::FaultInjection;
use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, ProgressSink, RunnerConfig};

fn temp_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("ziv-supervision-it")
        .join(format!("{name}-{}", std::process::id()))
}

/// A sink that records the campaign's out-of-band warnings.
#[derive(Default)]
struct WarningSink(Mutex<Vec<String>>);

impl ProgressSink for WarningSink {
    fn warning(&self, message: &str) {
        self.0.lock().unwrap().push(message.to_string());
    }
}

#[test]
fn hung_cell_is_cancelled_within_budget_and_ledgered_as_timeout() {
    let dir = temp_dir("hang");
    std::fs::remove_dir_all(&dir).ok();
    let params = CampaignParams::tiny();
    let mut campaign = campaigns::by_name("smoke", &params).expect("smoke campaign");
    campaign.specs[0] = campaign.specs[0]
        .clone()
        .with_fault(FaultInjection::HangCore { at_access: 100 });

    let cfg = RunnerConfig {
        threads: 2,
        params: Some(params),
        // A generous wall clock plus a tight stall window: the hung
        // cells must be felled by the *stall* detector, long before the
        // wall-clock backstop.
        cell_timeout: Some(Duration::from_secs(120)),
        stall_window: Some(Duration::from_millis(500)),
        ..RunnerConfig::new(dir.clone())
    };
    let started = Instant::now();
    let outcome = run_campaign(&campaign, &cfg, &NullSink).expect("campaign completes");
    let elapsed = started.elapsed();

    assert!(
        !outcome.failures.is_empty(),
        "the hung spec must fail at least one cell"
    );
    for f in &outcome.failures {
        assert_eq!(f.spec_index, 0, "only the faulted spec may fail");
        assert_eq!(
            f.error.kind_tag(),
            "timeout",
            "a cancelled hang ledgered as {}: {}",
            f.error.kind_tag(),
            f.error
        );
        assert!(
            f.error.to_string().contains("no forward progress"),
            "the timeout must name the stall, got: {}",
            f.error
        );
        let record = f.record_path.as_ref().expect("repro record written");
        assert!(record.is_file(), "repro record exists on disk");
    }
    // Every healthy spec's cell still completed and was exported.
    let healthy = campaign.specs.len() - 1;
    assert!(
        outcome.grid.len() >= healthy,
        "healthy specs survive the hung neighbor"
    );
    // The watchdog, not the wall clock, ended the hangs: the whole
    // campaign settles in a few stall windows, nowhere near the 120 s
    // wall budget per hung cell.
    assert!(
        elapsed < Duration::from_secs(60),
        "campaign took {elapsed:?}; the stall detector should cancel hangs in ~500ms each"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn injected_panic_is_contained_and_ledgered_as_internal() {
    let dir = temp_dir("panic");
    std::fs::remove_dir_all(&dir).ok();
    let params = CampaignParams::tiny();
    let mut campaign = campaigns::by_name("smoke", &params).expect("smoke campaign");
    campaign.specs[0] = campaign.specs[0]
        .clone()
        .with_fault(FaultInjection::PanicCore { at_access: 50 });

    // No watchdog at all: panic containment is unconditional, not a
    // supervision opt-in.
    let cfg = RunnerConfig {
        threads: 2,
        params: Some(params),
        ..RunnerConfig::new(dir.clone())
    };
    let outcome = run_campaign(&campaign, &cfg, &NullSink).expect("campaign completes");
    assert!(!outcome.failures.is_empty());
    for f in &outcome.failures {
        assert_eq!(f.spec_index, 0);
        assert_eq!(f.error.kind_tag(), "internal");
        assert!(
            f.error.to_string().contains("injected panic-core fault"),
            "the ledgered error must carry the panic message, got: {}",
            f.error
        );
        assert!(f.record_path.is_some(), "panic cells still leave a record");
    }
    let healthy = campaign.specs.len() - 1;
    assert!(outcome.grid.len() >= healthy);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn torn_ledger_tail_is_dropped_with_a_warning_and_resume_reruns_only_the_lost_cell() {
    let dir = temp_dir("torn");
    std::fs::remove_dir_all(&dir).ok();
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke campaign");
    let cfg = RunnerConfig {
        threads: 2,
        params: Some(params),
        ..RunnerConfig::new(dir.clone())
    };
    let clean = run_campaign(&campaign, &cfg, &NullSink).expect("clean campaign");
    assert!(clean.failures.is_empty(), "smoke runs clean");
    assert!(!clean.recovery.was_damaged(), "fresh ledger is undamaged");
    let grid_before = std::fs::read(&clean.grid_csv).unwrap();

    // Tear the tail mid-record: the kill -9-during-append footprint.
    let ledger = std::fs::read(&clean.ledger_path).unwrap();
    std::fs::write(&clean.ledger_path, &ledger[..ledger.len() - 10]).unwrap();

    let resume_cfg = RunnerConfig {
        resume: true,
        ..cfg
    };
    let sink = WarningSink::default();
    let resumed = run_campaign(&campaign, &resume_cfg, &sink).expect("resume completes");
    assert!(resumed.recovery.torn_tail, "the torn tail must be detected");
    assert_eq!(
        resumed.recovery.dropped_lines, 1,
        "only the torn record is dropped"
    );
    assert_eq!(
        resumed.telemetry.executed_cells, 1,
        "exactly the lost cell re-runs; every intact entry is reused"
    );
    let warnings = sink.0.lock().unwrap();
    assert!(
        warnings.iter().any(|w| w.contains("torn tail")),
        "recovery surfaces a warning naming the torn tail, got: {warnings:?}"
    );
    assert_eq!(
        std::fs::read(&resumed.grid_csv).unwrap(),
        grid_before,
        "recovery reproduces grid.csv byte-for-byte"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversubscribed_but_progressing_pool_is_not_cancelled() {
    // Regression for the stall-watchdog false positive: a pool with far
    // more workers than hardware threads time-slices its cells, so each
    // one advances in bursts separated by scheduling gaps. An
    // uncontended stall budget misreads those gaps as hangs; the
    // oversubscription-scaled default must ride them out. Every cell
    // here makes genuine forward progress, so *any* failure is a false
    // stall.
    use ziv::harness::{
        default_stall_window, run_cells_supervised, NoopSuperviseObserver, SuperviseConfig,
    };
    use ziv::sim::{RunOptions, RunSpec};
    use ziv::workloads::{apps, mixes, ScaleParams};

    let sys = ziv::common::config::SystemConfig::scaled();
    let workload = mixes::homogeneous(apps::APPS[4], 2, 4_000, 7, ScaleParams::from_system(&sys));
    let specs = vec![RunSpec::new("I-LRU", sys)];
    let workloads = vec![workload];
    // 16 workers on a small CI host is heavily oversubscribed; each
    // runs the same healthy cell.
    let workers = 16;
    let cells: Vec<(usize, usize)> = (0..workers).map(|_| (0, 0)).collect();
    let sup = SuperviseConfig {
        stall_window: Some(default_stall_window(Duration::from_millis(250), workers)),
        ..SuperviseConfig::default()
    };
    let runs = run_cells_supervised(
        &specs,
        &workloads,
        &cells,
        workers,
        &RunOptions::default(),
        &sup,
        &NoopSuperviseObserver,
    );
    assert_eq!(runs.len(), workers);
    for run in &runs {
        let result = run
            .outcome
            .as_ref()
            .unwrap_or_else(|e| panic!("progressing cell cancelled as a false stall: {e}"));
        assert!(result.total_instructions() > 0);
    }
}

// ---------------------------------------------------------------------
// The CLI exit-code contract (documented in the zivsim header and the
// README): 0 clean, 2 usage, 3 isolated cell failures, 4 internal.
// ---------------------------------------------------------------------

fn zivsim(args: &[&str]) -> std::process::Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args(args)
        .env("ZIV_FAST", "1")
        .output()
        .expect("zivsim runs")
}

#[test]
fn cli_exit_code_0_for_clean_commands() {
    let out = zivsim(&["list"]);
    assert_eq!(out.status.code(), Some(0));
    let out = zivsim(&["help"]);
    assert_eq!(out.status.code(), Some(0));
}

#[test]
fn cli_exit_code_2_for_usage_errors() {
    for bad in [
        vec!["frobnicate"],
        vec!["run", "--frobnicate"],
        vec!["run", "--mode", "bogus"],
        vec!["campaign", "no-such-campaign"],
        vec!["campaign"],
        vec!["campaign", "smoke", "--cell-timeout", "0"],
        vec!["campaign", "smoke", "--inject-fault", "0:0:nope:5"],
    ] {
        let out = zivsim(&bad);
        assert_eq!(
            out.status.code(),
            Some(2),
            "expected usage exit for {bad:?}, stderr: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn cli_exit_code_3_for_isolated_cell_failures() {
    let dir = temp_dir("cli-exit3");
    std::fs::remove_dir_all(&dir).ok();
    let out = zivsim(&[
        "campaign",
        "smoke",
        "--cores",
        "2",
        "--threads",
        "1",
        "--inject-fault",
        "0:0:panic-core:50",
        "--results-dir",
        dir.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "isolated cell failures must exit 3, stderr: {stderr}"
    );
    assert!(
        stderr.contains("FAILED") && stderr.contains("repro: zivsim replay"),
        "stderr names the failures and their repro records: {stderr}"
    );
    assert!(
        stderr.contains("all isolated"),
        "the verdict states the failures were isolated: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_exit_code_3_with_hang_cancelled_by_the_watchdog() {
    let dir = temp_dir("cli-hang");
    std::fs::remove_dir_all(&dir).ok();
    let out = zivsim(&[
        "campaign",
        "smoke",
        "--cores",
        "2",
        "--threads",
        "1",
        "--inject-fault",
        "0:0:hang-core:100",
        "--stall-window",
        "600",
        "--results-dir",
        dir.to_str().unwrap(),
    ]);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        out.status.code(),
        Some(3),
        "a watchdog-cancelled campaign still classifies as isolated failures: {stderr}"
    );
    assert!(
        stderr.contains("no forward progress"),
        "the ledgered timeout names the stall: {stderr}"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_exit_code_4_for_infrastructure_failures() {
    // A results dir nested under a regular file: the runner cannot
    // create it, which is an internal (infrastructure) failure, not a
    // cell failure and not a usage error.
    let blocker = temp_dir("cli-exit4-blocker");
    std::fs::create_dir_all(blocker.parent().unwrap()).unwrap();
    std::fs::write(&blocker, b"a file, not a directory").unwrap();
    let nested = blocker.join("sub");
    let out = zivsim(&[
        "campaign",
        "smoke",
        "--cores",
        "2",
        "--results-dir",
        nested.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("internal error"),
        "internal failures are labelled as such"
    );
    std::fs::remove_file(&blocker).ok();
}
