//! End-to-end exercise of the paper's Fig 5 functional flow: an LLC
//! fill whose victim is privately cached triggers a relocation; the
//! relocated block is reachable through the sparse directory, can be
//! re-relocated, and dies when its last private copy leaves.

use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

/// A deliberately tiny machine: 1-set-per-bank LLC so set conflicts are
/// trivial to construct. LLC: 2 banks x 4 sets x 4 ways = 32 blocks.
fn tiny() -> SystemConfig {
    SystemConfig {
        cores: 2,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(32 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

struct Driver {
    h: CacheHierarchy,
    now: u64,
    seq: u64,
}

impl Driver {
    fn new(mode: LlcMode) -> Driver {
        let cfg = HierarchyConfig::new(tiny()).with_mode(mode);
        Driver {
            h: CacheHierarchy::new(&cfg),
            now: 0,
            seq: 0,
        }
    }

    fn read(&mut self, core: usize, line: u64) -> u64 {
        let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400 + line % 4);
        let lat = self.h.access(&a, self.now, self.seq);
        self.now += 1 + lat;
        self.seq += 1;
        lat
    }
}

/// Lines mapping to LLC bank 0, set 0 in the tiny machine (bank = line
/// & 1, set = (line >> 1) & 3): multiples of 8.
fn conflict_line(i: u64) -> u64 {
    i * 8
}

#[test]
fn fill_relocate_access_rerelocate_invalidate() {
    let mut d = Driver::new(LlcMode::Ziv(ZivProperty::NotInPrC));

    // Step 1: core 0 loads a hot block B into its private caches.
    let b = conflict_line(1); // line 8: L1 set 0, L2 set 0
    d.read(0, b);
    d.read(0, b);

    // Step 2: fill the same LLC set with other blocks not kept privately
    // (they conflict with B in the LLC but also in core 0's private
    // caches, so they evict each other from L2 while B stays hot in L1).
    // Keep B hot between conflict fills.
    for i in 2..12u64 {
        d.read(0, conflict_line(i));
        d.read(0, b); // keep B's recency in the private caches
    }

    // B must never have been back-invalidated.
    assert_eq!(d.h.metrics().inclusion_victims, 0);
    d.h.verify_invariants().unwrap();

    // If a relocation happened, B (or another privately cached victim)
    // is in the Relocated state and reachable through the directory.
    let relocated: Vec<_> =
        d.h.llc()
            .resident_blocks()
            .into_iter()
            .filter(|(_, st)| st.relocated)
            .collect();
    assert!(
        d.h.metrics().relocations > 0,
        "conflict pattern must force at least one relocation; metrics: {:?}",
        d.h.metrics().relocations
    );
    for (loc, st) in &relocated {
        assert_eq!(d.h.directory().relocated_location(st.line), Some(*loc));
    }

    // Step 3: the other core accesses B. The home-set lookup misses but
    // the directory finds the relocated copy — it must NOT go to memory
    // (an LLC hit, counted as such).
    let hits_before = d.h.metrics().llc_hits;
    let relocated_hits_before = d.h.metrics().relocated_hits;
    if d.h
        .directory()
        .relocated_location(ziv::common::LineAddr::new(b))
        .is_some()
    {
        d.read(1, b);
        assert_eq!(d.h.metrics().llc_hits, hits_before + 1);
        assert_eq!(d.h.metrics().relocated_hits, relocated_hits_before + 1);
    }

    d.h.verify_invariants().unwrap();
}

#[test]
fn relocated_block_invalidated_when_last_copy_leaves() {
    let mut d = Driver::new(LlcMode::Ziv(ZivProperty::NotInPrC));
    let b = conflict_line(1);
    d.read(0, b);
    for i in 2..12u64 {
        d.read(0, conflict_line(i));
        d.read(0, b);
    }
    if d.h
        .directory()
        .relocated_location(ziv::common::LineAddr::new(b))
        .is_none()
    {
        // The pattern didn't relocate B itself this time; nothing to do.
        return;
    }
    // Now force B out of core 0's private caches by thrashing its L1/L2
    // sets with lines that map to *different* LLC sets where possible.
    // (L1 set 0 and L2 set 0 for B: lines = multiples of 4 with line%8
    // != 0 avoid B's LLC set half the time.)
    for i in 1..40u64 {
        d.read(0, 4 * i);
    }
    // B is gone from core 0's private caches; its relocated LLC copy
    // must be gone too (Section III-C2: the life of a relocated block
    // ends with its last private copy).
    assert_eq!(
        d.h.directory()
            .relocated_location(ziv::common::LineAddr::new(b)),
        None
    );
    let still_relocated =
        d.h.llc()
            .resident_blocks()
            .into_iter()
            .any(|(_, st)| st.relocated && st.line == ziv::common::LineAddr::new(b));
    assert!(!still_relocated, "relocated copy of B must be invalidated");
    assert_eq!(d.h.metrics().inclusion_victims, 0);
    d.h.verify_invariants().unwrap();
}

#[test]
fn all_properties_survive_the_conflict_pattern() {
    for prop in [
        ZivProperty::NotInPrC,
        ZivProperty::LruNotInPrC,
        ZivProperty::LikelyDead,
    ] {
        let mut d = Driver::new(LlcMode::Ziv(prop));
        for round in 0..40u64 {
            let b = conflict_line(1 + round % 2);
            d.read(0, b);
            d.read(1, conflict_line(2 + round % 10));
            d.read(0, b);
        }
        assert_eq!(d.h.metrics().inclusion_victims, 0, "{}", prop.label());
        d.h.verify_invariants().unwrap();
    }
}
