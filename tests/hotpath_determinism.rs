//! Differential determinism checks for the allocation-free access hot
//! path (DESIGN.md §8): rewriting the sharer-iteration, victim-ranking,
//! and fused tag-probe paths must leave simulation behavior
//! bit-for-bit unchanged. Two guards:
//!
//! 1. every LLC mode, run twice under the every-access invariant
//!    auditor, produces identical [`ziv::sim::RunResult`]s (metrics,
//!    per-core stats, everything `PartialEq` covers);
//! 2. the smoke campaign, run twice from scratch, writes byte-identical
//!    ledgers and grid CSVs — the cell digests and serialized metrics
//!    the resumable runner trusts for caching.

use std::fs;
use std::path::PathBuf;
use ziv::core::AuditCadence;
use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
use ziv::prelude::*;
use ziv::sim::{run_one_checked, RunOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-hotpath-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

/// Every LLC mode the CLI exposes — the hot-path rewrite touched
/// mode-shared code (directory iteration, rank buffers, fused probes),
/// so every mode must be re-proven deterministic, not just the ZIV
/// ones. The MaxRrpv properties require an RRPV-graded policy, so each
/// mode carries the policy it runs under.
fn all_modes() -> Vec<(LlcMode, PolicyKind)> {
    use ZivProperty::*;
    vec![
        (LlcMode::Inclusive, PolicyKind::Lru),
        (LlcMode::NonInclusive, PolicyKind::Lru),
        (LlcMode::Qbs, PolicyKind::Lru),
        (LlcMode::Sharp, PolicyKind::Lru),
        (LlcMode::CharOnBase, PolicyKind::Lru),
        (LlcMode::Tlh { hint_one_in: 8 }, PolicyKind::Lru),
        (LlcMode::Eci, PolicyKind::Lru),
        (LlcMode::Ric, PolicyKind::Lru),
        (LlcMode::WayPartitioned, PolicyKind::Lru),
        (LlcMode::Ziv(NotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LruNotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LikelyDead), PolicyKind::Lru),
        (LlcMode::Ziv(MaxRrpvNotInPrC), PolicyKind::Srrip),
        (LlcMode::Ziv(MaxRrpvLikelyDead), PolicyKind::Hawkeye),
    ]
}

#[test]
fn every_mode_is_deterministic_under_every_access_audit() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    // Small trace: the every-access auditor walks the whole hierarchy
    // per access, and this runs twice per mode (28 audited runs).
    let wl = mixes::heterogeneous(0, 2, 150, 0x2026, scale);
    let opts = RunOptions {
        audit: AuditCadence::EveryAccess,
        budget: None,
        ..RunOptions::default()
    };
    for (mode, policy) in all_modes() {
        let spec = RunSpec::new(mode.label(), sys.clone())
            .with_mode(mode)
            .with_policy(policy);
        let a = run_one_checked(&spec, &wl, &opts)
            .unwrap_or_else(|e| panic!("{}: first run failed: {e}", spec.label));
        let b = run_one_checked(&spec, &wl, &opts)
            .unwrap_or_else(|e| panic!("{}: second run failed: {e}", spec.label));
        assert_eq!(a, b, "{} diverged across identical runs", spec.label);
        assert_eq!(a.metrics, b.metrics);
    }
}

#[test]
fn smoke_campaign_ledger_is_byte_identical_across_runs() {
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke campaign is registered");
    let run_pass = |name: &str| {
        let dir = temp_dir(name);
        let cfg = RunnerConfig {
            threads: 1, // deterministic ledger append order
            audit: AuditCadence::EveryAccess,
            params: Some(params),
            ..RunnerConfig::new(dir.clone())
        };
        let outcome = run_campaign(&campaign, &cfg, &NullSink).expect("campaign runs");
        assert!(outcome.failures.is_empty(), "no cell may fail");
        let ledger = fs::read_to_string(&outcome.ledger_path).expect("ledger exists");
        let grid_csv = fs::read(&outcome.grid_csv).expect("grid csv exists");
        fs::remove_dir_all(&dir).ok();
        (ledger, grid_csv, outcome)
    };
    let (ledger_a, grid_a, out_a) = run_pass("pass-a");
    let (ledger_b, grid_b, out_b) = run_pass("pass-b");
    assert!(!ledger_a.is_empty());
    assert_eq!(
        ledger_a, ledger_b,
        "campaign ledgers (cell digests + serialized metrics) must be byte-identical"
    );
    assert_eq!(grid_a, grid_b, "grid CSVs must be byte-identical");
    assert_eq!(out_a.grid.len(), campaign.total_cells());
    for (a, b) in out_a.grid.iter().zip(out_b.grid.iter()) {
        assert_eq!(
            a.result.metrics, b.result.metrics,
            "{} × {} metrics diverged",
            a.result.label, a.result.workload
        );
    }
}
