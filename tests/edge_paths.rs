//! Edge-path tests for the least-traveled hierarchy flows: dirty data
//! through relocations, writes to relocated blocks, directory evictions
//! of relocated entries, and instruction-side traffic.

use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

fn tiny(cores: usize, dir_ratio: DirRatio) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(32 * 64, 4, 2),
        dir_ratio,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

struct D {
    h: CacheHierarchy,
    now: u64,
    seq: u64,
}

impl D {
    fn new(mode: LlcMode, ratio: DirRatio) -> D {
        let cfg = HierarchyConfig::new(tiny(2, ratio)).with_mode(mode);
        D {
            h: CacheHierarchy::new(&cfg),
            now: 0,
            seq: 0,
        }
    }

    fn go(&mut self, core: usize, line: u64, write: bool, instr: bool) -> u64 {
        let addr = Addr::new(line * 64);
        let a = Access {
            core: CoreId::new(core),
            addr,
            pc: 0x400 + line % 8,
            is_write: write,
            is_instr: instr,
        };
        let lat = self.h.access(&a, self.now, self.seq);
        self.now += 1 + lat;
        self.seq += 1;
        lat
    }

    fn read(&mut self, core: usize, line: u64) -> u64 {
        self.go(core, line, false, false)
    }

    fn write(&mut self, core: usize, line: u64) -> u64 {
        self.go(core, line, true, false)
    }

    /// Forces a relocation of line `b` (kept hot privately by `core`)
    /// by streaming conflicting same-LLC-set lines.
    fn force_relocation(&mut self, core: usize, b: u64) -> bool {
        for i in 2..12u64 {
            self.read(core, i * 8);
            self.read(core, b);
            if self
                .h
                .directory()
                .relocated_location(LineAddr::new(b))
                .is_some()
            {
                return true;
            }
        }
        false
    }
}

#[test]
fn dirty_block_relocates_and_writes_back_to_memory_on_death() {
    let mut d = D::new(LlcMode::Ziv(ZivProperty::NotInPrC), DirRatio::X2);
    let b = 8u64;
    d.write(0, b); // dirty in core 0's L1
    assert!(d.force_relocation(0, b), "relocation must occur");
    d.h.verify_invariants().unwrap();

    // Kill all private copies: the relocated block dies and the dirty
    // data must reach memory (relocated writebacks go straight to the
    // memory controller, Section III-C2).
    let wb_before = d.h.metrics().relocated_writebacks;
    for i in 1..40u64 {
        d.read(0, i * 4 + 4096);
    }
    assert!(d
        .h
        .directory()
        .relocated_location(LineAddr::new(b))
        .is_none());
    assert!(
        d.h.metrics().relocated_writebacks > wb_before,
        "dirty relocated block must write back to memory"
    );
    assert_eq!(d.h.metrics().inclusion_victims, 0);
}

#[test]
fn write_to_relocated_block_keeps_coherence() {
    let mut d = D::new(LlcMode::Ziv(ZivProperty::NotInPrC), DirRatio::X2);
    let b = 8u64;
    d.read(0, b);
    assert!(d.force_relocation(0, b));
    // Core 1 *writes* B: it reaches the relocated copy through the
    // directory, and core 0's copy must be invalidated coherently.
    let lat = d.write(1, b);
    assert!(lat > 0);
    assert_eq!(d.h.metrics().coherence_invalidations, 1);
    assert_eq!(d.h.metrics().inclusion_victims, 0);
    d.h.verify_invariants().unwrap();
    // Core 1 is now the dirty owner; a read from core 0 fetches the
    // fresh data and cleans the owner.
    d.read(0, b);
    d.h.verify_invariants().unwrap();
}

#[test]
fn directory_eviction_invalidates_relocated_block() {
    // Quarter-sized directory: entries get evicted; an entry tracking a
    // relocated block must take the block with it (Section III-F).
    let mut d = D::new(LlcMode::Ziv(ZivProperty::NotInPrC), DirRatio::Quarter);
    let b = 8u64;
    d.read(0, b);
    let relocated = d.force_relocation(0, b);
    // Flood the directory from core 1 to force entry evictions.
    for i in 0..600u64 {
        d.read(1, (1 << 20) + i);
    }
    d.h.verify_invariants().unwrap();
    // Whether or not B's entry survived, every remaining relocated block
    // must still have a directory pointer (verify_invariants checks the
    // pointer equality; here we check no orphan Relocated blocks exist).
    for (loc, st) in d.h.llc().resident_blocks() {
        if st.relocated {
            assert_eq!(d.h.directory().relocated_location(st.line), Some(loc));
        }
    }
    let _ = relocated;
    assert_eq!(d.h.metrics().inclusion_victims, 0);
}

#[test]
fn instruction_fetches_participate_in_inclusion() {
    let mut d = D::new(LlcMode::Ziv(ZivProperty::NotInPrC), DirRatio::X2);
    let code = 8u64;
    d.go(0, code, false, true); // ifetch
    assert!(
        d.force_relocation(0, code),
        "code lines relocate like data lines"
    );
    assert_eq!(d.h.metrics().inclusion_victims, 0);
    d.h.verify_invariants().unwrap();
    // The code line is still an L1I hit.
    let lat = d.go(0, code, false, true);
    assert!(lat <= 1, "L1I must still hold the line: {lat}");
}

#[test]
fn inclusive_mode_flushes_dirty_inclusion_victims_to_memory() {
    let mut d = D::new(LlcMode::Inclusive, DirRatio::X2);
    let b = 8u64;
    d.write(0, b); // dirty private copy
    let wbs_before = d.h.metrics().llc_writebacks;
    // Stream the set so B's LLC copy is evicted -> back-invalidation of
    // the dirty private copy -> memory writeback.
    for i in 2..12u64 {
        d.read(0, i * 8);
        d.read(0, b);
        if d.h.metrics().inclusion_victims > 0 {
            break;
        }
    }
    assert!(
        d.h.metrics().inclusion_victims > 0,
        "inclusive mode must victimize"
    );
    assert!(
        d.h.metrics().llc_writebacks > wbs_before,
        "dirty victim data must survive"
    );
    d.h.verify_invariants().unwrap();
}

#[test]
fn shared_readers_then_writer_upgrade_on_relocated_line() {
    let mut d = D::new(LlcMode::Ziv(ZivProperty::LikelyDead), DirRatio::X2);
    let b = 8u64;
    d.read(0, b);
    d.read(1, b); // two sharers
    d.force_relocation(0, b);
    d.h.verify_invariants().unwrap();
    // Writer upgrade: the other sharer must be invalidated, dirty
    // ownership transferred, relocated state intact.
    d.write(0, b);
    assert_eq!(d.h.metrics().coherence_invalidations, 1);
    assert_eq!(d.h.metrics().inclusion_victims, 0);
    d.h.verify_invariants().unwrap();
}

#[test]
fn repeated_relocation_of_the_same_line_is_stable() {
    // Re-relocation (Section III-C3): force B to relocate, then make its
    // relocation set conflict-heavy so B gets relocated again.
    let mut d = D::new(LlcMode::Ziv(ZivProperty::NotInPrC), DirRatio::X2);
    let b = 8u64;
    d.read(0, b);
    assert!(d.force_relocation(0, b));
    let first =
        d.h.directory()
            .relocated_location(LineAddr::new(b))
            .unwrap();
    // Hammer every set with conflicting private-hot lines from core 1 so
    // relocation targets keep moving; B must stay reachable throughout.
    for round in 0..30u64 {
        for set_line in 0..8u64 {
            d.read(1, (1 << 16) + round * 8 + set_line);
        }
        d.read(0, b); // keep B privately hot for core 0
        d.h.verify_invariants().unwrap();
        assert!(
            d.h.directory()
                .relocated_location(LineAddr::new(b))
                .is_some()
                || d.h.llc().probe(LineAddr::new(b)).is_some(),
            "B must remain in the LLC (relocated or home) while privately cached"
        );
    }
    let _ = first;
    assert_eq!(d.h.metrics().inclusion_victims, 0);
}
