//! End-to-end tests of the flight recorder (DESIGN.md
//! §"Observability"): epoch-slicing edge cases, delta conservation
//! against the aggregate metrics, heatmap totals, byte-identity of
//! campaign artifacts with observability on vs off, event capture in
//! failure repro records, and the `zivsim trace` / `--out` CLI paths.

use ziv::core::observe::{core_metrics_scalars, metrics_scalars, METRICS_COLUMNS};
use ziv::core::FaultInjection;
use ziv::harness::{
    campaigns, run_campaign, CampaignParams, FailureRecord, NullSink, RunnerConfig,
};
use ziv::prelude::*;
use ziv::sim::{
    run_one, run_one_traced, EventKind, EventTraceConfig, Observations, ObserveConfig, RunOptions,
};

fn workload_of(cores: usize, accesses: usize) -> Workload {
    let sys = SystemConfig::scaled();
    mixes::homogeneous(
        apps::app_by_name("circset").expect("known app"),
        cores,
        accesses,
        7,
        ScaleParams::from_system(&sys),
    )
}

fn ziv_spec(label: &str) -> RunSpec {
    RunSpec::new(label, SystemConfig::scaled()).with_mode(LlcMode::Ziv(ZivProperty::LikelyDead))
}

fn traced_opts(observe: ObserveConfig) -> RunOptions {
    RunOptions {
        observe,
        ..RunOptions::default()
    }
}

/// Every global column and every per-core column of the epoch series
/// must telescope exactly to the final aggregate metrics — the
/// acceptance bar for `timeseries.csv`.
fn assert_conservation(obs: &Observations, result: &ziv::sim::RunResult) {
    let finals = metrics_scalars(&result.metrics);
    for (col, name) in METRICS_COLUMNS.iter().enumerate() {
        let sum: i64 = obs.epochs.iter().map(|e| e.global[col]).sum();
        assert_eq!(
            sum, finals[col] as i64,
            "global column '{name}' does not telescope to the aggregate"
        );
    }
    // Epoch samples carry deltas for the workload's cores only; the
    // aggregate `per_core` is sized for the whole system, with the
    // unused tail all-zero.
    let cores = obs
        .epochs
        .iter()
        .map(|e| e.per_core.len())
        .max()
        .unwrap_or(0);
    for (core, cm) in result.metrics.per_core.iter().enumerate().take(cores) {
        let finals = core_metrics_scalars(cm);
        for (col, total) in finals.iter().enumerate() {
            let sum: i64 = obs.epochs.iter().map(|e| e.per_core[core][col]).sum();
            assert_eq!(
                sum, *total as i64,
                "core {core} column {col} does not telescope to the aggregate"
            );
        }
    }
}

#[test]
fn epoch_boundary_exactly_at_end_of_trace() {
    // One core → no restart laps: exactly 1000 accesses issue, and 250
    // divides them, so the final boundary lands on the last access.
    let wl = workload_of(1, 1000);
    let opts = traced_opts(ObserveConfig {
        epoch: Some(250),
        ..ObserveConfig::disabled()
    });
    let (result, obs) = run_one_traced(&ziv_spec("Z"), &wl, &opts);
    let result = result.unwrap();
    let obs = obs.expect("epoch slicing was on");

    let epochs = &obs.epochs;
    assert!(
        epochs.len() >= 4,
        "expected ≥4 epochs, got {}",
        epochs.len()
    );
    for (i, e) in epochs.iter().enumerate() {
        assert_eq!(e.index, i as u64);
        assert!(e.end_access <= 1000);
        // Only a closing sample (emitted after the end-of-run rewind)
        // may be empty-ranged, and it can only be the last one.
        if e.start_access == e.end_access {
            assert_eq!(i, epochs.len() - 1, "empty-range sample mid-series");
        } else {
            assert!(e.end_access - e.start_access <= 250);
        }
    }
    assert_eq!(epochs[3].end_access, 1000, "4th boundary is the trace end");
    assert_eq!(epochs.last().unwrap().end_access, 1000);
    assert_conservation(&obs, &result);
}

#[test]
fn epoch_longer_than_the_trace_yields_one_closing_sample() {
    let wl = workload_of(2, 500);
    let opts = traced_opts(ObserveConfig {
        epoch: Some(10_000_000),
        ..ObserveConfig::disabled()
    });
    let (result, obs) = run_one_traced(&ziv_spec("Z"), &wl, &opts);
    let result = result.unwrap();
    let obs = obs.expect("epoch slicing was on");
    assert_eq!(
        obs.epochs.len(),
        1,
        "an epoch longer than the run collapses to one closing sample"
    );
    assert_eq!(obs.epochs[0].start_access, 0);
    assert!(
        obs.epochs[0].end_access >= 1000,
        "covers every issued access"
    );
    assert_conservation(&obs, &result);
}

#[test]
fn epoch_deltas_survive_multicore_lap_rewind() {
    // Four cores restart their traces at different speeds, so the
    // end-of-run rewind shrinks per-core counters: the closing sample
    // must carry the (negative) correction for sums to stay exact.
    let wl = workload_of(4, 600);
    let opts = traced_opts(ObserveConfig {
        epoch: Some(128),
        ..ObserveConfig::disabled()
    });
    let (result, obs) = run_one_traced(&ziv_spec("Z"), &wl, &opts);
    let result = result.unwrap();
    let obs = obs.expect("epoch slicing was on");
    assert!(obs.epochs.len() > 4);
    assert_conservation(&obs, &result);
}

#[test]
fn recorder_does_not_perturb_results_and_heatmaps_match_metrics() {
    let wl = workload_of(2, 1200);
    let spec = ziv_spec("Z");
    let untraced = run_one(&spec, &wl);
    let opts = traced_opts(ObserveConfig {
        epoch: Some(200),
        events: Some(EventTraceConfig::default()),
        heatmap: true,
        ..ObserveConfig::disabled()
    });
    let (traced, obs) = run_one_traced(&spec, &wl, &opts);
    let traced = traced.unwrap();
    assert_eq!(
        traced.metrics, untraced.metrics,
        "recording changed results"
    );
    assert_eq!(traced.cores, untraced.cores);

    let obs = obs.expect("recorder was on");
    let hm = obs.heatmap.as_ref().expect("heatmap was on");
    assert_eq!(
        hm.accesses.total(),
        traced.metrics.llc_accesses,
        "heatmap access grid must count every LLC access"
    );
    assert_eq!(
        hm.relocations.total(),
        traced.metrics.relocations,
        "heatmap relocation grid must count every relocation"
    );
    assert!(obs.events_recorded > 0, "a real run produces events");
    assert!(!obs.events.is_empty());
    let relocation_events = obs
        .events
        .iter()
        .filter(|e| e.kind == EventKind::Relocation)
        .count();
    if obs.events_recorded <= obs.events.len() as u64 {
        // Nothing overwritten: the retained ring holds every event, so
        // kind counts line up with the metrics too.
        assert_eq!(relocation_events as u64, traced.metrics.relocations);
    }
    assert!(!obs.dir_slice_occupancy.is_empty());
}

fn read(path: &std::path::Path) -> Vec<u8> {
    std::fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn campaign_artifacts_are_byte_identical_with_observability_on() {
    let base = std::env::temp_dir().join(format!("ziv-observability-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke exists");

    // Single-threaded on both sides: ledger entries append in cell
    // *completion* order, so only a deterministic claim order makes a
    // byte-for-byte ledger comparison meaningful.
    let plain_cfg = RunnerConfig {
        threads: 1,
        ..RunnerConfig::new(base.join("plain"))
    };
    let plain = run_campaign(&campaign, &plain_cfg, &NullSink).expect("plain campaign");
    assert!(plain.failures.is_empty());
    assert!(plain.timeseries_csv.is_none());
    assert!(plain.heatmap_csv.is_none());

    let traced_cfg = RunnerConfig {
        threads: 1,
        observe: ObserveConfig {
            epoch: Some(200),
            events: Some(EventTraceConfig::default()),
            heatmap: true,
            leakage: true,
            ..ObserveConfig::disabled()
        },
        ..RunnerConfig::new(base.join("traced"))
    };
    let traced = run_campaign(&campaign, &traced_cfg, &NullSink).expect("traced campaign");
    assert!(traced.failures.is_empty());

    // The flight recorder must not leak into any result artifact.
    assert_eq!(
        read(&plain.ledger_path),
        read(&traced.ledger_path),
        "ledger differs with observability on"
    );
    assert_eq!(
        read(&plain.grid_csv),
        read(&traced.grid_csv),
        "grid.csv differs with observability on"
    );
    assert_eq!(
        read(&plain.summary_csv),
        read(&traced.summary_csv),
        "summary.csv differs with observability on"
    );

    // ... while the observability exports appear only on the traced run.
    // The smoke campaign has no attack workloads, so the leakage flag
    // yields a header-only CSV — the flag alone must not perturb
    // anything (the attack-path twin lives in attack_leakage.rs).
    let leak_path = traced.leakage_csv.as_deref().expect("leakage.csv");
    let leak = String::from_utf8(read(leak_path)).unwrap();
    assert_eq!(leak.lines().count(), 1, "non-attack cells emit no rows");
    let ts_path = traced.timeseries_csv.as_deref().expect("timeseries.csv");
    let hm_path = traced.heatmap_csv.as_deref().expect("heatmap.csv");
    let ts = String::from_utf8(read(ts_path)).unwrap();
    assert!(!String::from_utf8(read(hm_path)).unwrap().is_empty());

    // Acceptance check: per-epoch deltas in timeseries.csv sum exactly
    // to the aggregate metrics of every cell in the grid.
    let mut lines = ts.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let col = |name: &str| {
        header
            .iter()
            .position(|h| *h == name)
            .unwrap_or_else(|| panic!("column '{name}' missing"))
    };
    for cell in &traced.grid {
        let finals = metrics_scalars(&cell.result.metrics);
        for (i, name) in METRICS_COLUMNS.iter().enumerate() {
            let sum: i64 = ts
                .lines()
                .skip(1)
                .map(|l| l.split(',').collect::<Vec<_>>())
                .filter(|f| {
                    f[col("config")] == cell.result.label
                        && f[col("workload")] == cell.result.workload
                })
                .map(|f| f[col(name)].parse::<i64>().expect("integer delta"))
                .sum();
            assert_eq!(
                sum, finals[i] as i64,
                "{} × {}: column '{name}' does not sum to the aggregate",
                cell.result.label, cell.result.workload
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn failure_records_carry_flight_recorder_events() {
    let base = std::env::temp_dir().join(format!("ziv-obs-failure-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let params = CampaignParams::tiny();
    let mut campaign = campaigns::by_name("smoke", &params).expect("smoke exists");
    campaign.specs[0] = campaign.specs[0]
        .clone()
        .with_fault(FaultInjection::CorruptDirectory { at_access: 300 });

    // Tracing OFF: the runner must re-run the failed cell once with the
    // tracer on to capture events for the record (the deterministic
    // retrace path).
    let cfg = RunnerConfig {
        threads: 1,
        audit: ziv::core::AuditCadence::EveryAccess,
        params: Some(params),
        ..RunnerConfig::new(&base)
    };
    let outcome = run_campaign(&campaign, &cfg, &NullSink).expect("campaign I/O");
    assert_eq!(outcome.failures.len(), 2, "both faulted-spec cells fail");
    for failure in &outcome.failures {
        let path = failure.record_path.as_deref().expect("record written");
        let record = FailureRecord::load(path).expect("record parses");
        assert!(
            !record.events.is_empty(),
            "record must carry flight-recorder events"
        );
        assert_eq!(
            record.events.last().unwrap().kind,
            EventKind::AuditViolation,
            "the violation itself is the final recorded event"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn trace_cli_emits_parseable_jsonl_and_creates_parent_dirs() {
    let base = std::env::temp_dir().join(format!("ziv-obs-cli-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    // Deliberately nested, not-yet-existing output paths: both `trace
    // --out` and `bench-throughput --out` must create parents.
    let events_path = base.join("deep/nested/events.jsonl");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args([
            "trace",
            "ziv-likelydead",
            "--workload",
            "homo:circset",
            "--accesses",
            "400",
            "--cores",
            "2",
            "--last",
            "16",
            "--epoch",
            "100",
            "--out",
        ])
        .arg(&events_path)
        .output()
        .expect("zivsim trace runs");
    assert!(
        out.status.success(),
        "trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let jsonl = std::fs::read_to_string(&events_path).expect("events.jsonl written");
    let lines: Vec<&str> = jsonl.lines().collect();
    assert!(
        !lines.is_empty() && lines.len() <= 16,
        "ring capacity bounds"
    );
    for line in lines {
        let v = ziv::common::json::parse(line).expect("each line is one JSON event");
        assert!(v.get("kind").is_some());
        assert!(v.get("access").is_some());
        assert!(v.get("cycle").is_some());
    }

    let bench_path = base.join("also/new/bench.json");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args([
            "bench-throughput",
            "--repeats",
            "1",
            "--cores",
            "2",
            "--out",
        ])
        .arg(&bench_path)
        .env("ZIV_FAST", "1")
        .output()
        .expect("zivsim bench-throughput runs");
    assert!(
        out.status.success(),
        "bench-throughput failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let report = std::fs::read_to_string(&bench_path).expect("bench report written");
    ziv::common::json::parse(&report).expect("report is valid JSON");
    std::fs::remove_dir_all(&base).ok();
}

/// The event ring is a *last-K* window, not a first-K one: once it
/// overflows, what survives is exactly the tail of the full event
/// stream. Proven by running the same deterministic workload twice —
/// once with a ring big enough to hold everything, once with a tiny
/// one — and comparing the tiny ring against the big run's tail.
#[test]
fn event_ring_overflow_keeps_exactly_the_last_k_events() {
    let wl = workload_of(2, 2_000);
    let spec = RunSpec::new("I", SystemConfig::scaled()); // inclusive default: rich event mix
    let ring_of = |capacity: usize| {
        let opts = traced_opts(ObserveConfig {
            events: Some(EventTraceConfig {
                capacity,
                ..EventTraceConfig::default()
            }),
            ..ObserveConfig::disabled()
        });
        let (result, obs) = run_one_traced(&spec, &wl, &opts);
        result.unwrap();
        obs.expect("recorder on").events
    };
    let full = ring_of(1 << 16);
    assert!(
        full.len() > 32,
        "the workload must overflow the small ring ({} events)",
        full.len()
    );
    let small = ring_of(32);
    assert_eq!(small.len(), 32, "an overflowed ring reports exactly K");
    assert_eq!(
        small,
        full[full.len() - 32..],
        "the retained window must be the last K events, oldest first"
    );
}

/// `--last` beyond the ring limit clamps (with a stderr warning) rather
/// than erroring or allocating unboundedly.
#[test]
fn trace_cli_clamps_oversized_last_with_a_warning() {
    let cap = ziv::core::observe::MAX_EVENT_CAPACITY;
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args([
            "trace",
            "inclusive",
            "--workload",
            "homo:circset",
            "--accesses",
            "200",
            "--cores",
            "2",
            "--last",
            &(cap + 1).to_string(),
            "--out",
        ])
        .arg(std::env::temp_dir().join(format!("ziv-obs-clamp-{}.jsonl", std::process::id())))
        .output()
        .expect("zivsim trace runs");
    assert!(
        out.status.success(),
        "oversized --last must clamp, not fail: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("clamping") && stderr.contains(&cap.to_string()),
        "stderr must warn about the clamp and name the limit, got: {stderr}"
    );
}
