//! Trend-level checks: the paper's motivating observations (Section I,
//! Figs 1–2) encoded as deterministic assertions on small
//! configurations.

use ziv::prelude::*;

/// The 1/8-scaled Table I machine with a selectable L2 class.
fn sys(l2: L2Size) -> SystemConfig {
    SystemConfig::scaled_with_l2(l2)
}

/// The paper's inclusion-victim driver: the per-LLC-set circular
/// pattern (`circset`), homogeneous across 4 cores on the scaled
/// machine (exactly the generator the figure benches use).
fn mix(accesses: usize) -> Workload {
    let scale = ScaleParams::from_system(&sys(L2Size::K256));
    mixes::homogeneous(
        apps::app_by_name("circset").expect("known app"),
        4,
        accesses,
        2026,
        scale,
    )
}

fn victims(sys: &SystemConfig, policy: PolicyKind, wl: &Workload) -> u64 {
    let spec = RunSpec::new("trend", sys.clone()).with_policy(policy);
    ziv::sim::run_one(&spec, wl).metrics.inclusion_victims
}

/// Fig 2's core claim: for a fixed configuration, Hawkeye and MIN
/// generate (far) more inclusion victims than LRU.
#[test]
fn min_approximating_policies_generate_more_inclusion_victims() {
    let sys = sys(L2Size::K256);
    let wl = mix(20_000);
    let lru = victims(&sys, PolicyKind::Lru, &wl);
    let hawkeye = victims(&sys, PolicyKind::Hawkeye, &wl);
    let min = victims(&sys, PolicyKind::Min, &wl);
    assert!(
        hawkeye > lru,
        "Hawkeye ({hawkeye}) must out-victimize LRU ({lru})"
    );
    assert!(min > lru, "MIN ({min}) must out-victimize LRU ({lru})");
}

/// Fig 2's second claim: inclusion-victim volume grows with L2 capacity
/// (more blocks are privately cached, so more LLC victims hit them).
#[test]
fn inclusion_victims_grow_with_l2_capacity() {
    let wl = mix(20_000);
    let small = victims(&sys(L2Size::K256), PolicyKind::Hawkeye, &wl);
    let large = victims(&sys(L2Size::K768), PolicyKind::Hawkeye, &wl);
    assert!(
        large > small,
        "victims must grow with L2 capacity: {small} -> {large}"
    );
}

/// A heterogeneous mix (the paper's Fig 9/12 observation: hetero mixes
/// are the sensitive ones — memory-intensive apps victimize the
/// cache-resident ones).
fn hetero(accesses: usize) -> Workload {
    let scale = ScaleParams::from_system(&sys(L2Size::K256));
    mixes::heterogeneous(0, 8, accesses, 0x2026, scale)
}

/// Fig 1's core claim, as a weighted-speedup assertion: the
/// non-inclusive LLC outperforms the inclusive one under Hawkeye on an
/// inclusion-victim-sensitive heterogeneous mix. (Per-mix exceptions
/// exist — the paper's Fig 1 ranges dip below 1.0 too — so this pins a
/// mix where the effect is structural.)
#[test]
fn noninclusive_beats_inclusive_under_hawkeye() {
    let sys = sys(L2Size::K256);
    let wl = hetero(20_000);
    let i = ziv::sim::run_one(
        &RunSpec::new("I", sys.clone()).with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    let ni = ziv::sim::run_one(
        &RunSpec::new("NI", sys)
            .with_mode(LlcMode::NonInclusive)
            .with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    assert!(
        ni.weighted_speedup(&i) > 1.0,
        "NI must beat I under Hawkeye: {:.4}",
        ni.weighted_speedup(&i)
    );
}

/// The ZIV fix, end to end: under Hawkeye on the same mix, the ZIV LLC
/// performs close to the non-inclusive LLC (the paper's Fig 11 claim)
/// while keeping inclusion and generating zero victims.
#[test]
fn ziv_tracks_the_noninclusive_llc_under_hawkeye() {
    let sys = sys(L2Size::K256);
    let wl = hetero(20_000);
    let i = ziv::sim::run_one(
        &RunSpec::new("I", sys.clone()).with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    let ni = ziv::sim::run_one(
        &RunSpec::new("NI", sys.clone())
            .with_mode(LlcMode::NonInclusive)
            .with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    let ziv_run = ziv::sim::run_one(
        &RunSpec::new("ZIV", sys)
            .with_mode(LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead))
            .with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    assert_eq!(ziv_run.metrics.inclusion_victims, 0);
    let ziv_speedup = ziv_run.weighted_speedup(&i);
    let ni_speedup = ni.weighted_speedup(&i);
    assert!(
        ziv_speedup > 0.93 * ni_speedup,
        "ZIV ({ziv_speedup:.4}) must stay within 7% of NI ({ni_speedup:.4})"
    );
}

/// Hawkeye's raison d'être, end to end through the full hierarchy: on a
/// circular pattern beyond the LLC associativity, Hawkeye misses less
/// than LRU in the non-inclusive LLC (no inclusion effects).
#[test]
fn hawkeye_beats_lru_on_circular_patterns() {
    let sys = sys(L2Size::K256);
    // Single-core pure circular-set trace, 24 blocks per set group.
    // A circular pattern over 24 blocks of one LLC set group (stride =
    // llc_lines / 16 on the 16-way scaled LLC).
    let stride = sys.llc.total_blocks() / 16;
    let records = (0..40_000)
        .map(|i| ziv::workloads::TraceRecord {
            addr: Addr::new(((1 << 20) + (i as u64 % 24) * stride) * 64),
            pc: 0x400,
            is_write: false,
            gap: 2,
        })
        .collect();
    let wl = Workload {
        name: "circ24".into(),
        traces: vec![ziv::workloads::CoreTrace {
            records,
            overlap: 0.3,
            app_name: "c",
        }],
        attack: None,
    };
    let lru = ziv::sim::run_one(
        &RunSpec::new("NI-LRU", sys.clone()).with_mode(LlcMode::NonInclusive),
        &wl,
    );
    let hawkeye = ziv::sim::run_one(
        &RunSpec::new("NI-Hawkeye", sys)
            .with_mode(LlcMode::NonInclusive)
            .with_policy(PolicyKind::Hawkeye),
        &wl,
    );
    assert!(
        hawkeye.metrics.llc_misses < lru.metrics.llc_misses,
        "Hawkeye {} vs LRU {}",
        hawkeye.metrics.llc_misses,
        lru.metrics.llc_misses
    );
}
