//! End-to-end drills of the live telemetry bus: a watched campaign
//! must publish consistent snapshots a concurrent reader can follow,
//! end with the finished flag set, and — the observe-never-steer
//! contract — leave `ledger.jsonl` / `grid.csv` / `summary.csv`
//! byte-identical to an unwatched run of the same grid.

use std::time::{Duration, Instant};
use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
use ziv::telemetry::{TelemetryReader, SEGMENT_FILE};

fn temp_dir(name: &str) -> std::path::PathBuf {
    std::env::temp_dir()
        .join("ziv-telemetry-it")
        .join(format!("{name}-{}", std::process::id()))
}

fn read(dir: &std::path::Path, file: &str) -> Vec<u8> {
    std::fs::read(dir.join(file)).unwrap_or_else(|e| panic!("read {file}: {e}"))
}

#[test]
fn watched_campaign_publishes_and_stays_byte_identical_to_unwatched() {
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke campaign");

    // Pass 1: unwatched reference run. Single-threaded so the ledger
    // append order is deterministic and byte-comparable.
    let plain_dir = temp_dir("plain");
    std::fs::remove_dir_all(&plain_dir).ok();
    let plain_cfg = RunnerConfig {
        params: Some(params),
        ..RunnerConfig::new(plain_dir.clone())
    };
    let plain = run_campaign(&campaign, &plain_cfg, &NullSink).expect("unwatched campaign");
    assert!(plain.failures.is_empty());
    assert!(
        !plain_dir.join(SEGMENT_FILE).exists(),
        "telemetry off must not create a segment"
    );

    // Pass 2: watched run with a concurrent reader polling snapshots
    // the whole time.
    let live_dir = temp_dir("live");
    std::fs::remove_dir_all(&live_dir).ok();
    let live_cfg = RunnerConfig {
        params: Some(params),
        telemetry: true,
        ..RunnerConfig::new(live_dir.clone())
    };
    let (outcome, observed) = std::thread::scope(|scope| {
        let live_dir = &live_dir;
        let campaign = &campaign;
        let watcher = scope.spawn(move || {
            let segment = live_dir.join(SEGMENT_FILE);
            let deadline = Instant::now() + Duration::from_secs(120);
            let reader = loop {
                if let Ok(r) = TelemetryReader::open(&segment) {
                    break r;
                }
                assert!(
                    Instant::now() < deadline,
                    "telemetry segment never appeared"
                );
                std::thread::sleep(Duration::from_millis(5));
            };
            let mut snapshots = 0u64;
            let mut mid_run = 0u64;
            loop {
                if let Some(snap) = reader.snapshot() {
                    snapshots += 1;
                    assert_eq!(snap.campaign.total, campaign.total_cells() as u64);
                    assert!(snap.campaign.done <= snap.campaign.total);
                    if snap.heartbeat.finished {
                        assert_eq!(snap.campaign.done, snap.campaign.total);
                        assert_eq!(snap.campaign.running, 0);
                        return (snapshots, mid_run);
                    }
                    mid_run += 1;
                }
                assert!(
                    Instant::now() < deadline,
                    "writer never published final state"
                );
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        let outcome = run_campaign(campaign, &live_cfg, &NullSink).expect("watched campaign");
        (outcome, watcher.join().expect("watcher thread"))
    });
    assert!(outcome.failures.is_empty());
    let (snapshots, mid_run) = observed;
    assert!(snapshots > 0, "the reader never got a consistent snapshot");
    // The ticker publishes before the first cell settles, so at least
    // one snapshot must predate the finished flag.
    assert!(mid_run > 0, "no mid-run snapshot was captured");

    // The contract: telemetry observes, never steers. Every ledgered
    // artifact is byte-identical to the unwatched pass.
    for file in ["ledger.jsonl", "grid.csv", "summary.csv"] {
        assert_eq!(
            read(&plain_dir, file),
            read(&live_dir, file),
            "{file} diverged between watched and unwatched runs"
        );
    }

    // The segment survives the campaign with final state intact — a
    // late watcher still reads "finished" instead of spinning.
    let reader = TelemetryReader::open(&live_dir.join(SEGMENT_FILE)).expect("segment persists");
    let snap = reader.snapshot().expect("final snapshot");
    assert!(snap.heartbeat.finished);
    assert_eq!(snap.writer_pid, std::process::id() as u64);

    std::fs::remove_dir_all(&plain_dir).ok();
    std::fs::remove_dir_all(&live_dir).ok();
}

#[test]
fn all_cached_watched_resume_publishes_finished_immediately() {
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke campaign");
    let dir = temp_dir("cached");
    std::fs::remove_dir_all(&dir).ok();
    let cfg = RunnerConfig {
        params: Some(params),
        ..RunnerConfig::new(dir.clone())
    };
    run_campaign(&campaign, &cfg, &NullSink).expect("seed campaign");

    // Resume with every cell cached: the bus must still start and
    // publish a finished segment, so an attached watcher exits clean.
    let cfg = RunnerConfig {
        resume: true,
        telemetry: true,
        ..cfg
    };
    let outcome = run_campaign(&campaign, &cfg, &NullSink).expect("cached resume");
    assert_eq!(outcome.telemetry.executed_cells, 0);
    let reader = TelemetryReader::open(&dir.join(SEGMENT_FILE)).expect("segment exists");
    let snap = reader.snapshot().expect("snapshot");
    assert!(snap.heartbeat.finished);
    assert_eq!(snap.campaign.done, campaign.total_cells() as u64);
    assert_eq!(snap.campaign.cached, campaign.total_cells() as u64);

    std::fs::remove_dir_all(&dir).ok();
}
