//! Differential tests of the statistical sampling engine (DESIGN.md
//! §"Statistical sampling"): functional warmup is provably
//! timing-metric-silent, a sampled campaign pass leaves the full
//! campaign's ledger and CSVs byte-identical, the sampled IPC
//! estimates track the full-run values on the smoke grid, and the
//! `zivsim sample` command reports a paired verdict end-to-end.

use std::fs;
use std::path::PathBuf;
use ziv::harness::{
    campaigns, run_campaign, run_campaign_sampled, CampaignParams, NullSink, RunnerConfig,
};
use ziv::prelude::*;
use ziv::sim::{run_one_sampled, Confidence, RunOptions, RunSpec, SamplingPlan};
use ziv::workloads::{apps, mixes, ScaleParams};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-sampling-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn read(path: &std::path::Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn plan(interval: u64, gap: u64, warmup_per_mille: u16) -> SamplingPlan {
    SamplingPlan {
        interval,
        gap,
        warmup_per_mille,
        window: 1,
        head: 0,
        confidence: Confidence::P95,
        max_intervals: 0,
    }
}

/// The warmup scope's contract: warm accesses update cache/directory/
/// replacement state (they flow through `CacheHierarchy::access`), but
/// the timing metrics admit only the timed accesses. The per-core
/// demand counter makes that observable: it increments once per
/// hierarchy access, so metric silence means it equals exactly the
/// timed count — at every warmup fraction, including warm-the-whole-gap.
#[test]
fn functional_warmup_is_timing_metric_silent() {
    let sys = SystemConfig::scaled();
    let wl = mixes::homogeneous(apps::APPS[4], 2, 6_000, 3, ScaleParams::from_system(&sys));
    let spec = RunSpec::new("I-LRU", sys);
    for warm_pm in [0u16, 500, 1000] {
        let opts = RunOptions {
            sampling: Some(plan(64, 448, warm_pm)),
            ..RunOptions::default()
        };
        let run = run_one_sampled(&spec, &wl, &opts).expect("sampled run");
        let p = &run.profile;
        assert_eq!(
            p.timed_accesses + p.warm_accesses + p.skipped_accesses,
            wl.total_accesses(),
            "every access lands in exactly one phase (w={warm_pm}‰)"
        );
        let counted: u64 = run.result.metrics.per_core.iter().map(|c| c.accesses).sum();
        assert_eq!(
            counted, p.timed_accesses,
            "warmup (w={warm_pm}‰) leaked into the demand counters"
        );
        assert!(run.result.metrics.llc_accesses <= p.timed_accesses);
        match warm_pm {
            0 => assert_eq!(p.warm_accesses, 0),
            1000 => {
                assert_eq!(
                    p.skipped_accesses, 0,
                    "warming the whole gap leaves no skip"
                );
                assert!(p.warm_accesses > 0);
            }
            _ => assert!(p.warm_accesses > 0 && p.skipped_accesses > 0),
        }
    }
}

/// The two halves of the acceptance criteria in one campaign: with
/// sampling off nothing changes (a validated sampled pass embeds a full
/// campaign whose ledger and CSVs are byte-identical to a plain run),
/// and the sampled estimates it produces track the full-run IPC.
#[test]
fn sampled_campaign_leaves_full_artifacts_identical_and_tracks_ipc() {
    let base = temp_dir("sampled-campaign");
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke exists");

    // Single-threaded on both sides so the ledgers append in the same
    // deterministic completion order.
    let plain_cfg = RunnerConfig {
        threads: 1,
        ..RunnerConfig::new(base.join("plain"))
    };
    let plain = run_campaign(&campaign, &plain_cfg, &NullSink).expect("plain campaign");
    assert!(plain.failures.is_empty());

    let sampled_cfg = RunnerConfig {
        threads: 1,
        ..RunnerConfig::new(base.join("sampled"))
    };
    let outcome = run_campaign_sampled(
        &campaign,
        &sampled_cfg,
        SamplingPlan::auto(),
        true,
        &NullSink,
    )
    .expect("sampled campaign");
    assert!(outcome.failures.is_empty());
    let validation = outcome
        .validation
        .as_ref()
        .expect("validate=true attaches one");

    // Sampling must not perturb the full-fidelity artifacts: the
    // embedded full campaign's ledger and CSVs are byte-identical to a
    // plain run's, and no sampled estimate reaches the ledger.
    assert_eq!(
        read(&plain.ledger_path),
        read(&validation.full.ledger_path),
        "ledger differs when a sampled pass rides along"
    );
    assert_eq!(read(&plain.grid_csv), read(&validation.full.grid_csv));
    assert_eq!(read(&plain.summary_csv), read(&validation.full.summary_csv));

    // sampling.csv: the documented header, one row per interval.
    let sampling = String::from_utf8(read(&outcome.sampling_csv)).unwrap();
    assert_eq!(
        sampling.lines().next().unwrap(),
        ziv::sim::SAMPLING_COLUMNS.join(",")
    );
    let interval_rows: usize = outcome
        .cells
        .iter()
        .map(|c| c.sampled.intervals.len())
        .sum();
    assert_eq!(sampling.lines().count() - 1, interval_rows);

    // validation.csv exists with its documented header.
    let vcsv = String::from_utf8(read(&validation.validation_csv)).unwrap();
    assert_eq!(
        vcsv.lines().next().unwrap(),
        ziv::sim::VALIDATION_COLUMNS.join(",")
    );

    // Every cell is compared, and each sampled estimate tracks the
    // full-run IPC: inside its own confidence interval, or within 10%.
    assert_eq!(validation.rows.len(), outcome.cells.len());
    assert!(!validation.rows.is_empty());
    for row in &validation.rows {
        assert!(
            row.within_ci() || row.rel_error() < 0.10,
            "{} × {}: sampled {} vs full {} (CI {:?})",
            row.config,
            row.workload,
            row.sampled_ipc,
            row.full_ipc,
            row.ipc_ci,
        );
    }
    assert_eq!(
        validation.cells_within_ci,
        validation.rows.iter().filter(|r| r.within_ci()).count()
    );

    // The tiny grid's traces are far shorter than the LLC's warm
    // horizon, so the auto resolver must have fallen back to
    // warm-everything: no access is ever skipped (fast-but-wrong
    // estimates are worse than slow-and-right ones out of regime).
    for cell in &outcome.cells {
        assert_eq!(
            cell.sampled.profile.skipped_accesses, 0,
            "{} × {} skipped out of regime",
            cell.label, cell.workload
        );
        assert!(
            cell.sampled.intervals.len() >= 2,
            "enough intervals for a CI"
        );
    }
    fs::remove_dir_all(&base).ok();
}

/// In the sampling regime proper — a trace several LLC warm horizons
/// long — the auto plan must genuinely skip (that is the speedup) while
/// the estimate still tracks a full run of the same cell, because each
/// timed window is preceded by a capacity-sized functional warm span.
#[test]
fn in_regime_sampling_skips_and_tracks_the_full_run() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    for app in ["circset", "hotl2"] {
        let wl = mixes::homogeneous(
            apps::app_by_name(app).expect("known app"),
            2,
            60_000,
            7,
            scale,
        );
        let spec = RunSpec::new("I-LRU", sys.clone());
        let full = ziv::sim::run_one(&spec, &wl);
        let opts = RunOptions {
            sampling: Some(SamplingPlan::auto()),
            ..RunOptions::default()
        };
        let run = run_one_sampled(&spec, &wl, &opts).expect("sampled run");
        let p = &run.profile;
        assert!(p.skipped_accesses > 0, "{app}: in-regime plans skip");
        assert!(
            p.simulated_fraction() < 0.4,
            "{app}: simulated {:.0}%",
            p.simulated_fraction() * 100.0
        );
        assert!(
            run.intervals.len() >= 4,
            "{app}: {} intervals",
            run.intervals.len()
        );
        let window = full.cores.iter().map(|c| c.cycles).max().unwrap_or(0);
        let full_ipc = full.total_instructions() as f64 / window.max(1) as f64;
        let ci = run.ipc_ci().expect("enough intervals");
        let rel = (ci.mean - full_ipc).abs() / full_ipc;
        assert!(
            ci.contains(full_ipc) || rel < 0.10,
            "{app}: sampled {} vs full {full_ipc} (CI ±{}, rel {rel:.3})",
            ci.mean,
            ci.half_width
        );
    }
}

/// `zivsim sample` end-to-end: the paired baseline-vs-target run
/// completes, prints its interval table and a verdict, and exits 0.
#[test]
fn cli_sample_reports_a_paired_verdict() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args([
            "sample",
            "--cores",
            "2",
            "--accesses",
            "4000",
            "--sampling",
            "interval=64,gap=448",
        ])
        .env("ZIV_FAST", "1")
        .output()
        .expect("spawn zivsim");
    assert!(
        out.status.success(),
        "zivsim sample failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("interval"),
        "missing interval table:\n{stdout}"
    );
    assert!(
        stdout.contains("delta") || stdout.contains("Δ"),
        "missing paired delta:\n{stdout}"
    );
}
