//! End-to-end test of the Fig 7 CHAR adaptation loop: relocation demand
//! drains the LikelyDead PV, the LLC bank lowers `d`, the new threshold
//! rides eviction-notice acks to the L2 controllers, and dead-block
//! inference loosens.

use ziv::prelude::*;
use ziv_char::CharConfig;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

fn tiny() -> SystemConfig {
    SystemConfig {
        cores: 2,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(64 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

#[test]
fn relocation_pressure_lowers_the_char_threshold() {
    // Small decrement interval so the adaptation fires within the test.
    let char_cfg = CharConfig {
        decrement_interval: 64,
        ..CharConfig::default()
    };
    let cfg = HierarchyConfig::new(tiny())
        .with_mode(LlcMode::Ziv(ZivProperty::LikelyDead))
        .with_char(char_cfg);
    let mut h = CacheHierarchy::new(&cfg);
    assert_eq!(h.char_engine().bank_d(0), 6);

    // Drive a conflict-heavy pattern from both cores: privately cached
    // LLC victims force relocations, and with an empty LikelyDead PV the
    // banks must request lower thresholds.
    let mut rng = ziv::common::SimRng::seed_from_u64(1);
    let mut now = 0u64;
    for seq in 0..60_000u64 {
        let core = CoreId::new((seq % 2) as usize);
        // Mostly a hot set per core (stays privately cached) plus a
        // conflicting sweep.
        let line = if rng.chance(0.5) {
            rng.below(16)
        } else {
            16 + rng.below(512)
        };
        let a = Access::read(core, Addr::new(line * 64), 0x400 + line % 8);
        now += 1 + h.access(&a, now, seq);
    }
    h.verify_invariants().unwrap();
    assert_eq!(h.metrics().inclusion_victims, 0);
    assert!(h.metrics().relocations > 0, "pattern must relocate");

    let bank_ds: Vec<u8> = (0..2).map(|b| h.char_engine().bank_d(b)).collect();
    let core_ds: Vec<u8> = (0..2).map(|c| h.char_engine().core_d(c)).collect();
    assert!(
        bank_ds.iter().any(|&d| d < 6),
        "at least one bank must have lowered d: {bank_ds:?}"
    );
    assert!(
        core_ds.iter().any(|&d| d < 6),
        "the piggybacked d must reach the L2 controllers: {core_ds:?}"
    );
    assert!(h.char_engine().threshold_decrements() > 0);
}

#[test]
fn char_on_base_reduces_but_does_not_eliminate_victims() {
    // The Section V-A comparison point: CHARonBase reduces inclusion
    // victims relative to the baseline but offers no guarantee.
    let mut counts = Vec::new();
    for mode in [
        LlcMode::Inclusive,
        LlcMode::CharOnBase,
        LlcMode::Ziv(ZivProperty::LikelyDead),
    ] {
        let cfg = HierarchyConfig::new(tiny()).with_mode(mode);
        let mut h = CacheHierarchy::new(&cfg);
        let mut rng = ziv::common::SimRng::seed_from_u64(2);
        let mut now = 0u64;
        for seq in 0..40_000u64 {
            let core = CoreId::new((seq % 2) as usize);
            let line = if rng.chance(0.5) {
                rng.below(16)
            } else {
                16 + rng.below(512)
            };
            let a = Access::read(core, Addr::new(line * 64), 0x400 + line % 8);
            now += 1 + h.access(&a, now, seq);
        }
        counts.push((mode.label(), h.metrics().inclusion_victims));
    }
    let (_, inclusive) = counts[0].clone();
    let (_, char_on_base) = counts[1].clone();
    let (_, ziv) = counts[2].clone();
    assert!(inclusive > 0, "baseline must suffer victims: {counts:?}");
    assert!(char_on_base <= inclusive, "{counts:?}");
    assert_eq!(ziv, 0, "{counts:?}");
}
