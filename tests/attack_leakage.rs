//! The side-channel acceptance gate (DESIGN.md §"Security
//! evaluation"): under an inclusive LLC the attack workloads produce a
//! *nonzero* attacker-observable signal — victim lines back-invalidated
//! out of attacker-probed sets — while every ZIV mode reports **exactly
//! zero**, the observatory's books conserve against the aggregate
//! metrics, and the leakage capture never perturbs results.

use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
use ziv::prelude::*;
use ziv::sim::{run_one, run_one_traced, LeakageReport, ObserveConfig, RunOptions, RunResult};
use ziv::workloads::attack::{self, AttackRecipe};

fn attack_workload(recipe: AttackRecipe, cores: usize, accesses: usize, seed: u64) -> Workload {
    let sys = SystemConfig::scaled();
    attack::generate(
        recipe,
        cores,
        accesses,
        seed,
        ScaleParams::from_system(&sys),
    )
}

fn leakage_run(spec: &RunSpec, wl: &Workload) -> (RunResult, LeakageReport) {
    let opts = RunOptions {
        observe: ObserveConfig {
            leakage: true,
            ..ObserveConfig::disabled()
        },
        ..RunOptions::default()
    };
    let (result, obs) = run_one_traced(spec, wl, &opts);
    let result = result.expect("attack run completes");
    let report = obs
        .expect("observatory was on")
        .leakage
        .expect("attack plan attaches the leakage observatory");
    (result, report)
}

fn spec(label: &str, mode: LlcMode) -> RunSpec {
    RunSpec::new(label, SystemConfig::scaled()).with_mode(mode)
}

/// The paper's security claim, end to end: the inclusive baseline
/// leaks (nonzero observable victim evictions per Mcycle) and both ZIV
/// properties are *exactly* silent — for both attack scenarios — while
/// the observatory conserves against `Metrics::inclusion_victims`.
#[test]
fn inclusive_leaks_and_ziv_is_exactly_silent() {
    for recipe in [AttackRecipe::prime_probe(8), AttackRecipe::hammer(8)] {
        let wl = attack_workload(recipe, 4, 2_000, 7);
        let grid = [
            ("I-LRU", LlcMode::Inclusive, true),
            ("ZIV-NotInPrC", LlcMode::Ziv(ZivProperty::NotInPrC), false),
            (
                "ZIV-LikelyDead",
                LlcMode::Ziv(ZivProperty::LikelyDead),
                false,
            ),
        ];
        for (label, mode, leaks) in grid {
            let (result, report) = leakage_run(&spec(label, mode), &wl);
            // Conservation: the observatory's total equals the metric,
            // for every mode — the books balance exactly.
            assert_eq!(
                report.total_back_invalidations(),
                result.metrics.inclusion_victims,
                "{label} × {}: leakage books do not balance",
                wl.name
            );
            assert!(report.cycles > 0, "driver fills the co-run window");
            if leaks {
                assert!(
                    report.observable_victim_evictions() > 0,
                    "{label} × {}: the inclusive channel must be observable",
                    wl.name
                );
                assert!(report.observable_per_mcycle() > 0.0);
            } else {
                assert_eq!(
                    report.observable_victim_evictions(),
                    0,
                    "{label} × {}: ZIV must close the channel exactly",
                    wl.name
                );
                assert_eq!(report.total_back_invalidations(), 0);
                assert_eq!(result.metrics.inclusion_victims, 0);
            }
        }
    }
}

/// Attack workload generation is a pure function of its arguments, and
/// the leakage observatory is a pure observer: running with the
/// observatory on must not change a single metric.
#[test]
fn leakage_capture_does_not_perturb_results() {
    let wl = attack_workload(AttackRecipe::prime_probe(8), 2, 1_500, 11);
    for mode in [
        LlcMode::Inclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::Ziv(ZivProperty::NotInPrC),
    ] {
        let s = spec("cmp", mode);
        let plain = run_one(&s, &wl);
        let (observed, _) = leakage_run(&s, &wl);
        assert_eq!(
            plain.metrics, observed.metrics,
            "leakage observatory perturbed {mode:?}"
        );
        assert_eq!(plain.cores, observed.cores);
    }
}

/// The attack-eval campaign end to end, including the cross-thread
/// determinism the content-addressed cache depends on: the grid and
/// leakage exports are byte-identical at any thread count, the
/// inclusive rows show signal, and every ZIV row is zero.
#[test]
fn attack_eval_campaign_is_thread_deterministic_and_gated() {
    let base = std::env::temp_dir().join(format!("ziv-attack-eval-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("attack-eval", &params).expect("attack-eval exists");

    let run = |dir: &str, threads: usize| {
        let cfg = RunnerConfig {
            threads,
            params: Some(params),
            observe: ObserveConfig {
                leakage: true,
                ..ObserveConfig::disabled()
            },
            ..RunnerConfig::new(base.join(dir))
        };
        run_campaign(&campaign, &cfg, &NullSink).expect("campaign runs")
    };
    let one = run("t1", 1);
    let two = run("t2", 2);
    assert!(one.failures.is_empty() && two.failures.is_empty());

    let read = |p: &std::path::Path| std::fs::read(p).expect("artifact exists");
    assert_eq!(
        read(&one.grid_csv),
        read(&two.grid_csv),
        "grid.csv differs across thread counts"
    );
    let leak_1 = one.leakage_csv.as_deref().expect("leakage.csv written");
    let leak_2 = two.leakage_csv.as_deref().expect("leakage.csv written");
    assert_eq!(
        read(leak_1),
        read(leak_2),
        "leakage.csv differs across thread counts"
    );

    // Gate on the CSV the campaign ships: inclusive leaks, ZIV doesn't.
    let text = String::from_utf8(read(leak_1)).unwrap();
    let mut lines = text.lines();
    let header: Vec<&str> = lines.next().expect("header").split(',').collect();
    let signal_col = header
        .iter()
        .position(|h| *h == "signal_evictions")
        .expect("signal column");
    let mut inclusive_rows = 0;
    let mut ziv_rows = 0;
    for line in lines {
        let fields: Vec<&str> = line.split(',').collect();
        let signal: u64 = fields[signal_col].parse().expect("integer signal");
        if fields[0].starts_with("I-") {
            inclusive_rows += 1;
            assert!(signal > 0, "inclusive row without signal: {line}");
        } else if fields[0].starts_with("ZIV-") {
            ziv_rows += 1;
            assert_eq!(signal, 0, "ZIV row with signal: {line}");
        }
    }
    assert_eq!(inclusive_rows, 2, "both scenarios ran under I-LRU");
    assert_eq!(ziv_rows, 4, "both scenarios ran under both ZIV modes");
    std::fs::remove_dir_all(&base).ok();
}
