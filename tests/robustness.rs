//! Mutation tests for the invariant auditor: each deliberately injected
//! fault must be *detected* (the checked run returns the matching typed
//! error), *localized* (the violation names the right invariant), and
//! *deterministic* (a second identical run reports the same access
//! index). A healthy sweep across every LLC mode under every-access
//! auditing must stay silent.

use ziv::prelude::*;
use ziv::sim::{run_one_checked, CellBudget, RunOptions};
use ziv_common::SimError;
use ziv_core::{AuditCadence, FaultInjection};

const ACCESSES: usize = 2_000;
const FAULT_AT: u64 = 300;

fn workload_of(app: &str, cores: usize, accesses: usize) -> Workload {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    mixes::homogeneous(
        apps::app_by_name(app).unwrap(),
        cores,
        accesses,
        0x2026,
        scale,
    )
}

fn workload() -> Workload {
    workload_of("circset", 2, ACCESSES)
}

fn spec(mode: LlcMode) -> RunSpec {
    // MaxRrpv ZIV properties read RRPV grades, so they need an
    // RRPV-graded policy; everything else runs the LRU default.
    let policy = match mode {
        LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC)
        | LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead) => PolicyKind::Srrip,
        _ => PolicyKind::Lru,
    };
    RunSpec::new(mode.label(), SystemConfig::scaled())
        .with_mode(mode)
        .with_policy(policy)
}

fn audited() -> RunOptions {
    RunOptions {
        audit: AuditCadence::EveryAccess,
        budget: None,
        ..RunOptions::default()
    }
}

/// Runs `spec` with `fault` armed and returns the typed error the
/// auditor must raise.
fn run_faulted(mode: LlcMode, fault: FaultInjection, wl: &Workload) -> SimError {
    let spec = spec(mode).with_fault(fault);
    run_one_checked(&spec, wl, &audited()).expect_err("the injected fault must be detected")
}

#[test]
fn corrupt_directory_is_caught_at_a_deterministic_index() {
    let fault = FaultInjection::CorruptDirectory {
        at_access: FAULT_AT,
    };
    let wl = workload();
    let first = run_faulted(LlcMode::Inclusive, fault, &wl);
    assert_eq!(first.kind_tag(), "audit");
    let v = first.violation().expect("audit errors carry a violation");
    assert_eq!(v.kind.as_str(), "missing-sharer-bit");
    assert_eq!(first.access_index(), Some(FAULT_AT));

    // Same spec, same workload, same fault: the second run must report
    // the identical access index — the property `zivsim replay` relies
    // on for deterministic reproduction.
    let second = run_faulted(LlcMode::Inclusive, fault, &wl);
    assert_eq!(second.access_index(), first.access_index());
    assert_eq!(
        second.violation().unwrap().kind,
        first.violation().unwrap().kind
    );
}

#[test]
fn skipped_back_invalidation_is_an_inclusion_hole() {
    // Four cores of `circset` under Hawkeye are the repo's
    // inclusion-victim driver (see tests/trend_checks.rs): MIN-
    // approximating replacement evicts LLC blocks still held privately,
    // so real back-invalidations occur — giving the armed fault a
    // back-invalidation to lose. (Under LRU the circular pattern
    // produces none and the fault would never fire.)
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    let wl = mixes::homogeneous(
        apps::app_by_name("circset").unwrap(),
        4,
        5_000,
        0x2026,
        scale,
    );
    let spec = RunSpec::new("I-Hawkeye", sys)
        .with_policy(PolicyKind::Hawkeye)
        .with_fault(FaultInjection::SkipBackInvalidation {
            at_access: FAULT_AT,
        });
    let err = run_one_checked(&spec, &wl, &audited())
        .expect_err("the lost back-invalidation must be detected");
    assert_eq!(err.kind_tag(), "audit");
    assert_eq!(err.violation().unwrap().kind.as_str(), "inclusion-hole");
    assert!(err.access_index().unwrap() >= FAULT_AT);
}

#[test]
fn stalled_core_trips_the_watchdog() {
    let spec = spec(LlcMode::Inclusive).with_fault(FaultInjection::StallCore {
        at_access: FAULT_AT,
    });
    let opts = RunOptions {
        audit: AuditCadence::Off,
        budget: Some(CellBudget::Cycles(5_000_000)),
        ..RunOptions::default()
    };
    let err = run_one_checked(&spec, &workload(), &opts)
        .expect_err("a stalled core must exceed any finite budget");
    assert_eq!(err.kind_tag(), "budget-exceeded");
}

#[test]
fn healthy_runs_pass_every_access_audit_in_every_mode() {
    // A shorter trace than the fault tests: healthy runs audit all the
    // way to the end (faulted runs abort at detection), and ten modes
    // at every-access cadence dominate this suite's wall clock.
    let wl = workload_of("circset", 2, 800);
    for mode in [
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::CharOnBase,
        LlcMode::Ziv(ZivProperty::NotInPrC),
        LlcMode::Ziv(ZivProperty::LruNotInPrC),
        LlcMode::Ziv(ZivProperty::LikelyDead),
        LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
        LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
    ] {
        let r = run_one_checked(&spec(mode), &wl, &audited());
        assert!(
            r.is_ok(),
            "{}: healthy run failed audit: {}",
            mode.label(),
            r.err().unwrap()
        );
    }
}

#[test]
fn audit_off_matches_the_unchecked_runner() {
    let wl = workload();
    let spec = spec(LlcMode::Ziv(ZivProperty::LikelyDead));
    let unchecked = ziv::sim::run_one(&spec, &wl);
    let checked = run_one_checked(
        &spec,
        &wl,
        &RunOptions {
            audit: AuditCadence::Off,
            budget: None,
            ..RunOptions::default()
        },
    )
    .unwrap();
    assert_eq!(checked.metrics, unchecked.metrics);
    assert_eq!(checked.cores, unchecked.cores);
}
