//! End-to-end tests of the causal forensics observatory (DESIGN.md
//! §"Causal forensics"): exact conservation of the blame matrix against
//! `Metrics::inclusion_victims` and of its refetch-cycle account against
//! the latency observatory for every LLC mode, the zero-chain guarantee
//! under ZIV, byte-identity of results and campaign artifacts with the
//! observatory (and the Perfetto exporter) on, and determinism of the
//! forensics exports across campaign thread counts.

use std::fs;
use std::path::PathBuf;
use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
use ziv::prelude::*;
use ziv::sim::{run_one_traced, ForensicsReport, ObserveConfig, RunOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-forensics-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn read(path: &std::path::Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

fn forensics_opts() -> RunOptions {
    RunOptions {
        observe: ObserveConfig {
            latency: true,
            forensics: true,
            ..ObserveConfig::disabled()
        },
        ..RunOptions::default()
    }
}

/// Every LLC mode the CLI exposes, paired with a policy that supports
/// it — the same roster `latency_attribution` proves conservation over.
fn all_modes() -> Vec<(LlcMode, PolicyKind)> {
    use ZivProperty::*;
    vec![
        (LlcMode::Inclusive, PolicyKind::Lru),
        (LlcMode::NonInclusive, PolicyKind::Lru),
        (LlcMode::Qbs, PolicyKind::Lru),
        (LlcMode::Sharp, PolicyKind::Lru),
        (LlcMode::CharOnBase, PolicyKind::Lru),
        (LlcMode::Tlh { hint_one_in: 8 }, PolicyKind::Lru),
        (LlcMode::Eci, PolicyKind::Lru),
        (LlcMode::Ric, PolicyKind::Lru),
        (LlcMode::WayPartitioned, PolicyKind::Lru),
        (LlcMode::Ziv(NotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LruNotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LikelyDead), PolicyKind::Lru),
        (LlcMode::Ziv(MaxRrpvNotInPrC), PolicyKind::Srrip),
        (LlcMode::Ziv(MaxRrpvLikelyDead), PolicyKind::Hawkeye),
    ]
}

/// Inclusion-victim-heavy mix: private-cache-resident hot sets whose
/// LLC copies decay to LRU, plus streaming cores that keep evicting
/// them — the same recipe `latency_attribution` uses to guarantee a
/// nonzero refetch account under inclusion.
fn victim_heavy_workload(sys: &SystemConfig) -> Workload {
    let sc = ScaleParams::from_system(sys);
    let hot = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 2, 60_000, 3, sc);
    let stream = mixes::homogeneous(apps::app_by_name("stream").unwrap(), 4, 10_000, 5, sc);
    let mut traces = hot.traces;
    traces.extend(stream.traces.into_iter().skip(2));
    Workload {
        name: "hot-vs-stream".into(),
        traces,
        attack: None,
    }
}

/// The two conservation laws the blame matrix owes the rest of the
/// simulator: its victim total is exactly the driver's
/// `inclusion_victims` counter, and its refetch-cycle total is exactly
/// the latency observatory's independent
/// `inclusion_victim_refetch_cycles()` account. Plus internal
/// consistency: the per-set and per-phase rollups partition the same
/// victim population the matrix holds.
fn assert_conservation(report: &ForensicsReport, victims: u64, refetch_cycles: u64, label: &str) {
    assert_eq!(
        report.total_victims(),
        victims,
        "{label}: blame matrix does not conserve against inclusion_victims"
    );
    assert_eq!(
        report.total_refetch_cycles(),
        refetch_cycles,
        "{label}: refetch cycles do not conserve against the latency observatory"
    );
    let by_set: u64 = report.set_victims.iter().sum();
    assert_eq!(
        by_set, victims,
        "{label}: per-set rollup does not partition the victim population"
    );
    let by_phase: u64 = report.phase_victims.iter().sum();
    assert_eq!(
        by_phase, victims,
        "{label}: per-phase rollup does not partition the victim population"
    );
    // Chains only exist because a private copy was torn out, so every
    // retained chain must carry at least one victim.
    for c in &report.chains {
        assert!(
            c.victim_count > 0,
            "{label}: victimless chain {} survived close_chain",
            c.seq
        );
    }
}

#[test]
fn blame_matrix_conserves_exactly_for_every_mode() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    // Small trace — this runs once per mode (14 runs).
    let wl = mixes::heterogeneous(0, 2, 150, 0x2026, scale);
    let opts = forensics_opts();
    for (mode, policy) in all_modes() {
        let spec = RunSpec::new(mode.label(), sys.clone())
            .with_mode(mode)
            .with_policy(policy)
            .with_seed(9);
        let (result, obs) = run_one_traced(&spec, &wl, &opts);
        let result = result.unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        let obs = obs.expect("observatory was on");
        let latency = obs.latency.as_ref().expect("latency observatory on");
        let report = obs.forensics.as_ref().expect("forensics observatory on");
        assert!(
            report.fills_stamped > 0,
            "{}: a real run stamps provenance",
            mode.label()
        );
        assert_conservation(
            report,
            result.metrics.inclusion_victims,
            latency.inclusion_victim_refetch_cycles(),
            &mode.label(),
        );
        if matches!(mode, LlcMode::Ziv(_)) {
            assert_eq!(
                (report.chains_recorded, report.total_victims()),
                (0, 0),
                "{}: ZIV must never open a causal chain",
                mode.label()
            );
        }
    }
}

#[test]
fn inclusive_chains_account_for_every_victim_and_refetch_cycle() {
    let sys = SystemConfig::scaled();
    let wl = victim_heavy_workload(&sys);
    let spec = RunSpec::new("I-LRU", sys);
    let (result, obs) = run_one_traced(&spec, &wl, &forensics_opts());
    let result = result.unwrap();
    let obs = obs.expect("observatory on");
    let latency = obs.latency.as_ref().unwrap();
    let report = obs.forensics.as_ref().unwrap();

    assert!(
        result.metrics.inclusion_victims > 0,
        "the mix must create inclusion victims under inclusion"
    );
    assert_conservation(
        report,
        result.metrics.inclusion_victims,
        latency.inclusion_victim_refetch_cycles(),
        "I-LRU",
    );
    assert!(report.chains_recorded > 0);
    assert!(report.inclusive_chains > 0);
    assert_eq!(report.eci_chains, 0, "no ECI tear-outs under Inclusive");
    assert!(
        report.total_refetch_cycles() > 0,
        "the hot cores come back for their victimized lines"
    );

    // top_chains ranks by damage: refetch cycles, then victim count.
    let top = report.top_chains(8);
    for pair in top.windows(2) {
        let (a, b) = (&pair[0], &pair[1]);
        assert!(
            (a.refetch_cycles, a.victim_count) >= (b.refetch_cycles, b.victim_count),
            "top_chains must be sorted by damage"
        );
    }

    // The retained ring is the *last* K chains: strictly increasing
    // seq, ending at the final chain recorded.
    for pair in report.chains.windows(2) {
        assert!(pair[0].seq < pair[1].seq);
    }
}

#[test]
fn ziv_reports_zero_chains_on_the_victim_heavy_mix() {
    // The all-modes test proves the guarantee on a small trace; this
    // one re-proves it under real inclusion-victim pressure.
    let sys = SystemConfig::scaled();
    let wl = victim_heavy_workload(&sys);
    for property in [ZivProperty::NotInPrC, ZivProperty::LikelyDead] {
        let spec = RunSpec::new("ZIV", sys.clone()).with_mode(LlcMode::Ziv(property));
        let (result, obs) = run_one_traced(&spec, &wl, &forensics_opts());
        let result = result.unwrap();
        let obs = obs.expect("observatory on");
        let report = obs.forensics.as_ref().unwrap();
        assert_eq!(result.metrics.inclusion_victims, 0);
        assert_eq!(report.chains_recorded, 0, "{property:?}: zero chains");
        assert_eq!(report.total_victims(), 0);
        assert_eq!(report.total_refetch_cycles(), 0);
        assert!(report.chains.is_empty());
        assert!(
            report.fills_stamped > 0,
            "provenance stamping is mode-independent"
        );
    }
}

#[test]
fn forensics_never_perturbs_results_and_replays_deterministically() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    let wl = mixes::heterogeneous(1, 4, 4_000, 0x51AB, scale);
    let spec = RunSpec::new("I-LRU", sys);

    let plain = ziv::sim::run_one(&spec, &wl);
    let (observed, obs) = run_one_traced(&spec, &wl, &forensics_opts());
    let observed = observed.unwrap();
    assert_eq!(
        plain, observed,
        "the forensics observatory must never change a result"
    );

    // Same spec, same trace → bit-identical forensics. The observatory
    // hangs off the (deterministic) hierarchy, so this is the single-
    // run half of the cross-thread determinism guarantee.
    let (_, obs2) = run_one_traced(&spec, &wl, &forensics_opts());
    assert_eq!(
        obs.expect("observatory on").forensics,
        obs2.expect("observatory on").forensics,
        "forensics must replay bit-identically"
    );
}

#[test]
fn campaign_blame_and_trace_exports_are_identical_across_thread_counts() {
    let base = temp_dir("threads");
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke exists");

    let outcome_of = |threads: usize, dir: &str| {
        let cfg = RunnerConfig {
            threads,
            observe: ObserveConfig {
                forensics: true,
                ..ObserveConfig::disabled()
            },
            perfetto: true,
            ..RunnerConfig::new(base.join(dir))
        };
        run_campaign(&campaign, &cfg, &NullSink).expect("campaign runs")
    };
    let one = outcome_of(1, "t1");
    let two = outcome_of(2, "t2");
    assert!(one.failures.is_empty() && two.failures.is_empty());

    let blame_1 = one.blame_csv.as_deref().expect("blame.csv exported");
    let blame_2 = two.blame_csv.as_deref().expect("blame.csv exported");
    assert_eq!(
        read(blame_1),
        read(blame_2),
        "blame.csv must not depend on the thread count"
    );
    let trace_1 = one.trace_json.as_deref().expect("trace.json exported");
    let trace_2 = two.trace_json.as_deref().expect("trace.json exported");
    assert_eq!(
        read(trace_1),
        read(trace_2),
        "trace.json must not depend on the thread count"
    );

    // The export is one valid JSON document in Chrome trace-event
    // shape, and blame.csv leads with the documented header.
    let doc = ziv::common::json::parse(&String::from_utf8(read(trace_1)).unwrap())
        .expect("trace.json parses");
    assert!(doc.get("traceEvents").is_some());
    let blame = String::from_utf8(read(blame_1)).unwrap();
    assert_eq!(
        blame.lines().next().expect("blame.csv header"),
        ziv::sim::BLAME_COLUMNS.join(",")
    );
    fs::remove_dir_all(&base).ok();
}

#[test]
fn campaign_artifacts_are_byte_identical_with_forensics_and_perfetto_on() {
    let base = temp_dir("byte-identity");
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke exists");

    // Single-threaded on both sides: ledger entries append in cell
    // *completion* order, so only a deterministic claim order makes a
    // byte-for-byte ledger comparison meaningful.
    let plain_cfg = RunnerConfig {
        threads: 1,
        ..RunnerConfig::new(base.join("plain"))
    };
    let plain = run_campaign(&campaign, &plain_cfg, &NullSink).expect("plain campaign");
    assert!(plain.failures.is_empty());
    assert!(plain.blame_csv.is_none());
    assert!(plain.trace_json.is_none());

    let observed_cfg = RunnerConfig {
        threads: 1,
        observe: ObserveConfig {
            forensics: true,
            ..ObserveConfig::disabled()
        },
        perfetto: true,
        ..RunnerConfig::new(base.join("observed"))
    };
    let observed = run_campaign(&campaign, &observed_cfg, &NullSink).expect("observed campaign");
    assert!(observed.failures.is_empty());

    // Neither the forensics observatory nor the Perfetto exporter may
    // leak into any result artifact.
    for (plain_path, observed_path, what) in [
        (&plain.ledger_path, &observed.ledger_path, "ledger"),
        (&plain.grid_csv, &observed.grid_csv, "grid.csv"),
        (&plain.summary_csv, &observed.summary_csv, "summary.csv"),
    ] {
        assert_eq!(
            read(plain_path),
            read(observed_path),
            "{what} differs with forensics + perfetto on"
        );
    }
    assert!(observed.blame_csv.is_some());
    assert!(observed.trace_json.is_some());
    fs::remove_dir_all(&base).ok();
}
