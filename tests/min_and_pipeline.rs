//! Cross-crate pipeline tests: the MIN oracle's optimality on thrashing
//! patterns, the experiment grid end-to-end, and the side-channel
//! isolation property from the paper's security motivation.

use ziv::prelude::*;
use ziv_common::config::{CacheGeometry, DramParams, LlcConfig, NocParams};

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(128 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

/// Builds a single-core circular workload over `n` lines.
fn circular_workload(n: u64, laps: usize) -> Workload {
    let records = (0..n as usize * laps)
        .map(|i| ziv::workloads::TraceRecord {
            addr: Addr::new((i as u64 % n) * 64),
            pc: 0x400,
            is_write: false,
            gap: 2,
        })
        .collect();
    Workload {
        name: format!("circular-{n}"),
        traces: vec![ziv::workloads::CoreTrace {
            records,
            overlap: 0.3,
            app_name: "circ",
        }],
        attack: None,
    }
}

#[test]
fn min_beats_lru_on_thrashing_circular_pattern() {
    // 192 lines circulating through a 128-block LLC: LRU thrashes
    // (every access misses once private caches are exceeded), while
    // Belady's MIN retains a resident prefix.
    let wl = circular_workload(192, 12);
    let lru = ziv::sim::run_one(
        &RunSpec::new("NI-LRU", tiny(1)).with_mode(LlcMode::NonInclusive),
        &wl,
    );
    let min = ziv::sim::run_one(
        &RunSpec::new("NI-MIN", tiny(1))
            .with_mode(LlcMode::NonInclusive)
            .with_policy(PolicyKind::Min),
        &wl,
    );
    assert!(
        (min.metrics.llc_misses as f64) < 0.9 * lru.metrics.llc_misses as f64,
        "MIN {} vs LRU {}",
        min.metrics.llc_misses,
        lru.metrics.llc_misses
    );
}

#[test]
fn min_inclusive_victimizes_recently_used_blocks() {
    // The paper's Section I analysis: on circular patterns MIN evicts
    // the most-recently-used block, which is exactly the privately
    // cached one — so I-MIN generates far more inclusion victims than
    // I-LRU. Use a single-LLC-set circular pattern (B1..B6 B1..B6 ...,
    // 6 > 4 ways) so MIN's most-recent victim is still in the L1.
    let n = 6u64;
    let records = (0..(n as usize) * 40)
        .map(|i| ziv::workloads::TraceRecord {
            addr: Addr::new((i as u64 % n) * 32 * 64), // stride 32 lines = same (bank, set)
            pc: 0x400,
            is_write: false,
            gap: 2,
        })
        .collect();
    let wl = Workload {
        name: "circular-set".into(),
        traces: vec![ziv::workloads::CoreTrace {
            records,
            overlap: 0.3,
            app_name: "circ",
        }],
        attack: None,
    };
    let lru = ziv::sim::run_one(&RunSpec::new("I-LRU", tiny(1)), &wl);
    let min = ziv::sim::run_one(
        &RunSpec::new("I-MIN", tiny(1)).with_policy(PolicyKind::Min),
        &wl,
    );
    assert!(
        min.metrics.inclusion_victims > lru.metrics.inclusion_victims,
        "I-MIN {} vs I-LRU {}",
        min.metrics.inclusion_victims,
        lru.metrics.inclusion_victims
    );
}

#[test]
fn grid_pipeline_produces_consistent_reports() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    let wls: Vec<Workload> = (0..2)
        .map(|i| mixes::heterogeneous(i, 4, 2_000, 7, scale))
        .collect();
    let specs = vec![
        RunSpec::new("I-LRU", sys.clone()),
        RunSpec::new("ZIV", sys).with_mode(LlcMode::Ziv(ZivProperty::LikelyDead)),
    ];
    let grid = run_grid(&specs, &wls, 2);
    assert_eq!(grid.len(), 4);
    let rows = ziv::sim::speedup_summary(&grid, specs.len(), 0);
    assert!((rows.rows[0].1.gmean - 1.0).abs() < 1e-9);
    assert!(rows.rows[1].1.gmean > 0.0);
    // The ZIV runs must be victim-free.
    for cell in &grid {
        if cell.spec_index == 1 {
            assert_eq!(cell.result.metrics.inclusion_victims, 0);
        }
    }
}

#[test]
fn attacker_cannot_flush_victim_private_caches_under_ziv() {
    // A condensed version of examples/side_channel.rs as a regression
    // test: after an attacker floods every LLC set, the victim's secret
    // working set must still hit in its private caches under ZIV.
    for (mode, expect_isolated) in [
        (LlcMode::Inclusive, false),
        (LlcMode::Ziv(ZivProperty::NotInPrC), true),
    ] {
        let cfg = HierarchyConfig::new(tiny(2)).with_mode(mode);
        let mut h = CacheHierarchy::new(&cfg);
        let mut now = 0u64;
        let mut seq = 0u64;
        let go = |h: &mut CacheHierarchy, core: usize, line: u64, now: &mut u64, seq: &mut u64| {
            let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400);
            let lat = h.access(&a, *now, *seq);
            *now += 1 + lat;
            *seq += 1;
            lat
        };
        let secret: Vec<u64> = (0..6).map(|i| 3 + i * 5).collect();
        for _ in 0..4 {
            for &l in &secret {
                go(&mut h, 0, l, &mut now, &mut seq);
            }
        }
        for l in 0..256u64 {
            go(&mut h, 1, (1 << 20) + l, &mut now, &mut seq);
        }
        let slow = secret
            .iter()
            .filter(|&&l| go(&mut h, 0, l, &mut now, &mut seq) > 4)
            .count();
        if expect_isolated {
            assert_eq!(slow, 0, "{}: victim must be isolated", mode.label());
            assert_eq!(h.metrics().inclusion_victims, 0);
        } else {
            assert!(
                slow > 0,
                "{}: attacker must observe something",
                mode.label()
            );
        }
    }
}

#[test]
fn tpce_scale_128_cores_holds_invariants() {
    let sys = SystemConfig::server_128(8);
    let scale = ScaleParams::from_system(&sys);
    let wl = multithreaded::tpce(128, 300, 11, scale);
    for mode in [LlcMode::Inclusive, LlcMode::Ziv(ZivProperty::LikelyDead)] {
        let r = ziv::sim::run_one(
            &RunSpec::new(mode.label(), sys.clone()).with_mode(mode),
            &wl,
        );
        if mode.is_ziv() {
            assert_eq!(r.metrics.inclusion_victims, 0);
        }
        assert!(r.total_instructions() > 0);
    }
}
