//! End-to-end tests of the latency attribution observatory (DESIGN.md
//! §"Observability"): exact conservation of the per-component breakdown
//! against the aggregate `access_latency_cycles` for every LLC mode,
//! the inclusion-victim refetch account (exactly zero under ZIV),
//! byte-identity of campaign artifacts with the observatory and the
//! self-profiler on, and strict `--events` validation at the CLI.

use std::fs;
use std::path::PathBuf;
use ziv::core::AuditCadence;
use ziv::harness::{campaigns, run_campaign, CampaignParams, NullSink, RunnerConfig};
use ziv::prelude::*;
use ziv::sim::{run_one_traced, AccessClass, LatencyReport, ObserveConfig, RunOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join("ziv-latency-it")
        .join(format!("{name}-{}", std::process::id()));
    fs::remove_dir_all(&dir).ok();
    dir
}

fn latency_opts(audit: AuditCadence) -> RunOptions {
    RunOptions {
        audit,
        observe: ObserveConfig {
            latency: true,
            ..ObserveConfig::disabled()
        },
        ..RunOptions::default()
    }
}

/// Every LLC mode the CLI exposes, paired with a policy that supports
/// it (the MaxRrpv properties need an RRPV-graded policy) — the same
/// roster `hotpath_determinism` re-proves determinism over.
fn all_modes() -> Vec<(LlcMode, PolicyKind)> {
    use ZivProperty::*;
    vec![
        (LlcMode::Inclusive, PolicyKind::Lru),
        (LlcMode::NonInclusive, PolicyKind::Lru),
        (LlcMode::Qbs, PolicyKind::Lru),
        (LlcMode::Sharp, PolicyKind::Lru),
        (LlcMode::CharOnBase, PolicyKind::Lru),
        (LlcMode::Tlh { hint_one_in: 8 }, PolicyKind::Lru),
        (LlcMode::Eci, PolicyKind::Lru),
        (LlcMode::Ric, PolicyKind::Lru),
        (LlcMode::WayPartitioned, PolicyKind::Lru),
        (LlcMode::Ziv(NotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LruNotInPrC), PolicyKind::Lru),
        (LlcMode::Ziv(LikelyDead), PolicyKind::Lru),
        (LlcMode::Ziv(MaxRrpvNotInPrC), PolicyKind::Srrip),
        (LlcMode::Ziv(MaxRrpvLikelyDead), PolicyKind::Hawkeye),
    ]
}

/// The observatory's books must balance exactly, at every granularity:
/// each `(core, class)` cell's component columns sum to its cycle
/// total, each class histogram holds exactly that class's accesses, and
/// the grand total equals the driver's aggregate
/// `Metrics::access_latency_cycles` — which accumulates whether or not
/// the observatory is attached.
fn assert_conservation(report: &LatencyReport, aggregate: u64, label: &str) {
    for (core, classes) in report.per_core.iter().enumerate() {
        for (cells, class) in classes.iter().zip(AccessClass::ALL) {
            let component_sum: u64 = cells.components.iter().sum();
            assert_eq!(
                component_sum,
                cells.cycles,
                "{label}: core {core} class {} components do not sum to its cycles",
                class.label()
            );
        }
    }
    for class in AccessClass::ALL {
        assert_eq!(
            report.histogram(class).total(),
            report.class_total(class).count,
            "{label}: class {} histogram holds a different population",
            class.label()
        );
    }
    assert_eq!(
        report.total_cycles(),
        aggregate,
        "{label}: attribution does not conserve against access_latency_cycles"
    );
}

#[test]
fn attribution_conserves_exactly_for_every_mode_under_audit() {
    let sys = SystemConfig::scaled();
    let scale = ScaleParams::from_system(&sys);
    // Small trace: the every-access auditor walks the whole hierarchy
    // per access, and this runs once per mode (14 audited runs).
    let wl = mixes::heterogeneous(0, 2, 150, 0x2026, scale);
    let opts = latency_opts(AuditCadence::EveryAccess);
    for (mode, policy) in all_modes() {
        let spec = RunSpec::new(mode.label(), sys.clone())
            .with_mode(mode)
            .with_policy(policy)
            .with_seed(9);
        let (result, obs) = run_one_traced(&spec, &wl, &opts);
        let result = result.unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        let report = obs
            .and_then(|o| o.latency)
            .expect("latency observatory was on");
        assert!(
            result.metrics.access_latency_cycles > 0,
            "{}: a real run accumulates latency",
            mode.label()
        );
        assert_conservation(&report, result.metrics.access_latency_cycles, &mode.label());
        // Class counts cover every access that reached the hierarchy.
        let classified: u64 = AccessClass::ALL
            .iter()
            .map(|&c| report.class_total(c).count)
            .sum();
        let issued: u64 = result.metrics.per_core.iter().map(|c| c.accesses).sum();
        assert!(
            classified >= issued,
            "{}: {} classified < {} per-core accesses after lap rewind",
            mode.label(),
            classified,
            issued
        );
    }
}

#[test]
fn ziv_reports_zero_inclusion_victim_refetch_cost() {
    // Inclusion-victim-heavy mix under LRU: private-cache-resident hot
    // sets (whose LLC copies decay to LRU) plus streaming cores that
    // keep evicting them from the LLC. The hot traces are much longer
    // than the streams so the hot cores are still issuing (the driver
    // parks a core after LAP_CAP laps) when the streams' LLC pressure
    // finally reaches the hot lines — a victimized line only becomes a
    // *refetch* if its core comes back for it.
    let sys = SystemConfig::scaled();
    let sc = ScaleParams::from_system(&sys);
    let hot = mixes::homogeneous(apps::app_by_name("hotl2").unwrap(), 2, 60_000, 3, sc);
    let stream = mixes::homogeneous(apps::app_by_name("stream").unwrap(), 4, 10_000, 5, sc);
    let mut traces = hot.traces;
    traces.extend(stream.traces.into_iter().skip(2));
    let wl = Workload {
        name: "hot-vs-stream".into(),
        traces,
        attack: None,
    };
    let opts = latency_opts(AuditCadence::Off);

    let ziv = RunSpec::new("ZIV", sys.clone()).with_mode(LlcMode::Ziv(ZivProperty::NotInPrC));
    let (rz, oz) = run_one_traced(&ziv, &wl, &opts);
    let rz = rz.unwrap();
    let report_z = oz.and_then(|o| o.latency).expect("observatory on");
    assert_eq!(rz.metrics.inclusion_victims, 0);
    assert_eq!(
        report_z.victims_noted, 0,
        "ZIV must never note a back-invalidated line"
    );
    let refetch_z = report_z.class_total(AccessClass::InclusionVictimRefetch);
    assert_eq!((refetch_z.count, refetch_z.cycles), (0, 0));
    assert_eq!(report_z.inclusion_victim_refetch_cycles(), 0);

    let incl = RunSpec::new("I", sys);
    let (ri, oi) = run_one_traced(&incl, &wl, &opts);
    let ri = ri.unwrap();
    let report_i = oi.and_then(|o| o.latency).expect("observatory on");
    assert!(
        ri.metrics.inclusion_victims > 0,
        "the mix must create inclusion victims under inclusion"
    );
    assert!(report_i.victims_noted > 0);
    let refetch_i = report_i.class_total(AccessClass::InclusionVictimRefetch);
    assert!(
        refetch_i.count > 0 && refetch_i.cycles > 0,
        "re-misses on back-invalidated lines must be attributed \
         (count {}, cycles {})",
        refetch_i.count,
        refetch_i.cycles
    );
    assert_conservation(&report_i, ri.metrics.access_latency_cycles, "I");
    // The refetch account is a *reclassification*, never extra cycles:
    // both runs still conserve, and the inclusive run's refetch cost is
    // bounded by its total miss-class cycles.
    assert!(refetch_i.cycles <= report_i.total_cycles());
}

fn read(path: &std::path::Path) -> Vec<u8> {
    fs::read(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn campaign_artifacts_are_byte_identical_with_the_observatory_on() {
    let base = temp_dir("byte-identity");
    let params = CampaignParams::tiny();
    let campaign = campaigns::by_name("smoke", &params).expect("smoke exists");

    // Single-threaded on both sides: ledger entries append in cell
    // *completion* order, so only a deterministic claim order makes a
    // byte-for-byte ledger comparison meaningful.
    let plain_cfg = RunnerConfig {
        threads: 1,
        ..RunnerConfig::new(base.join("plain"))
    };
    let plain = run_campaign(&campaign, &plain_cfg, &NullSink).expect("plain campaign");
    assert!(plain.failures.is_empty());
    assert!(plain.latency_csv.is_none());
    assert!(plain.profile_json.is_none());

    let observed_cfg = RunnerConfig {
        threads: 1,
        observe: ObserveConfig {
            latency: true,
            profile: true,
            ..ObserveConfig::disabled()
        },
        ..RunnerConfig::new(base.join("observed"))
    };
    let observed = run_campaign(&campaign, &observed_cfg, &NullSink).expect("observed campaign");
    assert!(observed.failures.is_empty());

    // Neither the observatory nor the wall-clock profiler may leak into
    // any result artifact.
    assert_eq!(
        read(&plain.ledger_path),
        read(&observed.ledger_path),
        "ledger differs with the latency observatory on"
    );
    assert_eq!(
        read(&plain.grid_csv),
        read(&observed.grid_csv),
        "grid.csv differs with the latency observatory on"
    );
    assert_eq!(
        read(&plain.summary_csv),
        read(&observed.summary_csv),
        "summary.csv differs with the latency observatory on"
    );

    // ... while the observatory exports appear only on the observed run.
    let latency_csv = observed.latency_csv.as_deref().expect("latency.csv");
    let latency = String::from_utf8(read(latency_csv)).unwrap();
    let header = latency.lines().next().expect("latency.csv header");
    assert_eq!(header, ziv::sim::LATENCY_COLUMNS.join(","));
    assert!(
        latency.lines().any(|l| l.contains(",all,l1_hit,")),
        "latency.csv carries per-class aggregate rows"
    );
    let profile_json = observed.profile_json.as_deref().expect("profile.json");
    let profile = String::from_utf8(read(profile_json)).unwrap();
    let doc = ziv::common::json::parse(&profile).expect("profile.json parses");
    assert!(doc.get("total").is_some());
    assert!(doc.get("cells").is_some());
    fs::remove_dir_all(&base).ok();
}

#[test]
fn cli_rejects_unknown_event_tokens_naming_the_accepted_set() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_zivsim"))
        .args(["campaign", "smoke", "--events", "fill,bogus-kind"])
        .output()
        .expect("zivsim runs");
    assert!(
        !out.status.success(),
        "an unknown --events token must be a hard error"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown event kind 'bogus-kind'"),
        "stderr must name the offending token, got: {stderr}"
    );
    assert!(
        stderr.contains("back_invalidation") && stderr.contains("relocation"),
        "stderr must list the accepted kinds, got: {stderr}"
    );
}
