//! # ziv-telemetry
//!
//! Live telemetry bus for running campaigns: a versioned, fixed-layout
//! shared-memory segment (a memory-mapped file at
//! `results/<name>/telemetry.shm`) written via a seqlock protocol —
//! single writer per record, per-record sequence counters, torn-read
//! retry on the reader side, no locks and no allocation on the hot
//! path — plus the matching reader used by `zivsim watch`.
//!
//! The segment publishes three kinds of state:
//!
//! * a **heartbeat** (monotonic tick + writer PID + finished flag) so
//!   readers can distinguish "finished cleanly", "still running", and
//!   "writer died" (stale tick + dead PID);
//! * **campaign counters** (cells done/running/failed/retried, windowed
//!   ETA);
//! * **per-worker cell progress** (access index, live counter values,
//!   sampling stratum and running IPC confidence interval).
//!
//! The writer never reads the segment back and the reader never writes
//! it, so watched and unwatched campaigns stay byte-identical in every
//! digested artifact — the segment itself is never digested.
//!
//! # Examples
//!
//! ```
//! use ziv_telemetry::{CampaignCounters, TelemetryReader, TelemetryWriter};
//!
//! let dir = std::env::temp_dir().join(format!("ziv-tele-doc-{}", std::process::id()));
//! let writer = TelemetryWriter::create(&dir, 2).unwrap();
//! writer.publish_heartbeat(1, false, 0);
//! writer.publish_campaign(&CampaignCounters { total: 4, ..Default::default() });
//!
//! let reader = TelemetryReader::open(&writer.path().to_path_buf()).unwrap();
//! let snap = reader.snapshot().unwrap();
//! assert_eq!(snap.campaign.total, 4);
//! assert!(!snap.heartbeat.finished);
//! # drop(reader); drop(writer); std::fs::remove_dir_all(&dir).ok();
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod layout;
pub mod map;
pub mod reader;
pub mod writer;

pub use map::{process_alive, SharedMap};
pub use reader::{CampaignSnap, Heartbeat, Snapshot, TelemetryReader, WorkerSnap};
pub use writer::{CampaignCounters, TelemetryWriter, WorkerRecord, SEGMENT_FILE};
