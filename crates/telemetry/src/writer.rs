//! The single-writer side of the telemetry segment.
//!
//! [`TelemetryWriter::create`] builds the segment under a temporary name,
//! initializes the immutable header, and renames it into place — readers
//! therefore never observe a half-initialized file. Record updates go
//! through [`ziv_common::seqlock`]: the harness ticker thread owns the
//! heartbeat and campaign records, and each pool worker owns exactly one
//! [`WorkerRecord`], so every record has a single writer and the seqlock
//! protocol holds without any locking.

use crate::layout::{self as l, pack_label};
use crate::map::SharedMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use ziv_common::{seqlock, SimError};

/// File name of the segment inside a results directory.
pub const SEGMENT_FILE: &str = "telemetry.shm";

/// Campaign-level counters published in the campaign record.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CampaignCounters {
    /// Total cells in the campaign grid.
    pub total: u64,
    /// Cells satisfied from the resume cache.
    pub cached: u64,
    /// Cells finished successfully (including cached).
    pub done: u64,
    /// Cells that exhausted retries and failed.
    pub failed: u64,
    /// Extra attempts spent on retries.
    pub retried: u64,
    /// Cells currently executing.
    pub running: u64,
    /// Estimated milliseconds to completion, if known.
    pub eta_ms: Option<u64>,
}

/// Writing handle over a mapped `telemetry.shm` segment.
#[derive(Debug)]
pub struct TelemetryWriter {
    map: Arc<SharedMap>,
    path: PathBuf,
    n_workers: usize,
}

impl TelemetryWriter {
    /// Create the segment for `n_workers` worker records under
    /// `results_dir` and atomically publish it as
    /// `results_dir/telemetry.shm`.
    pub fn create(results_dir: &Path, n_workers: usize) -> Result<Self, SimError> {
        Self::create_with(results_dir, n_workers, |_| {})
    }

    /// Like [`create`](Self::create), but runs `init` against the writer
    /// *before* the rename makes the segment visible. Publish the initial
    /// heartbeat and campaign records here — a reader that can open the
    /// segment then never observes zero-filled records, only real state.
    pub fn create_with(
        results_dir: &Path,
        n_workers: usize,
        init: impl FnOnce(&TelemetryWriter),
    ) -> Result<Self, SimError> {
        let n_workers = n_workers.max(1);
        std::fs::create_dir_all(results_dir)
            .map_err(|e| SimError::io("create results dir", results_dir, e))?;
        let tmp = results_dir.join(format!("{SEGMENT_FILE}.tmp"));
        let path = results_dir.join(SEGMENT_FILE);
        let words = l::segment_words(n_workers);
        let map = SharedMap::create(&tmp, words)?;
        let w = map.words();
        w[l::H_MAGIC].store(l::MAGIC, Ordering::Relaxed);
        w[l::H_VERSION].store(l::VERSION, Ordering::Relaxed);
        w[l::H_WORKERS].store(n_workers as u64, Ordering::Relaxed);
        w[l::H_TOTAL_WORDS].store(words as u64, Ordering::Relaxed);
        w[l::H_PID].store(std::process::id() as u64, Ordering::Release);
        let writer = TelemetryWriter {
            map: Arc::new(map),
            path,
            n_workers,
        };
        // The mapping is over the file's inode; the rename below does not
        // disturb it, so these publishes land in the file that becomes
        // visible.
        init(&writer);
        std::fs::rename(&tmp, &writer.path)
            .map_err(|e| SimError::io("publish telemetry segment", &writer.path, e))?;
        Ok(writer)
    }

    /// Path of the published segment file.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Number of worker records in the segment.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    fn record(&self, offset: usize, words: usize) -> (&AtomicU64, &[AtomicU64]) {
        let all = self.map.words();
        (&all[offset], &all[offset + 1..offset + words])
    }

    /// Publish a heartbeat: monotonic tick, writer state, elapsed time.
    /// Must only be called from the (single) ticker thread.
    pub fn publish_heartbeat(&self, tick: u64, finished: bool, elapsed_ms: u64) {
        let (seq, data) = self.record(l::heartbeat_offset(), l::HEARTBEAT_WORDS);
        seqlock::write_with(seq, || {
            data[l::HB_TICK].store(tick, Ordering::Relaxed);
            data[l::HB_STATE].store(
                if finished {
                    l::STATE_FINISHED
                } else {
                    l::STATE_RUNNING
                },
                Ordering::Relaxed,
            );
            data[l::HB_ELAPSED_MS].store(elapsed_ms, Ordering::Relaxed);
        });
    }

    /// Publish campaign-level counters. Must only be called from the
    /// (single) ticker thread.
    pub fn publish_campaign(&self, c: &CampaignCounters) {
        let (seq, data) = self.record(l::campaign_offset(), l::CAMPAIGN_WORDS);
        seqlock::write_with(seq, || {
            data[l::C_TOTAL].store(c.total, Ordering::Relaxed);
            data[l::C_CACHED].store(c.cached, Ordering::Relaxed);
            data[l::C_DONE].store(c.done, Ordering::Relaxed);
            data[l::C_FAILED].store(c.failed, Ordering::Relaxed);
            data[l::C_RETRIED].store(c.retried, Ordering::Relaxed);
            data[l::C_RUNNING].store(c.running, Ordering::Relaxed);
            data[l::C_ETA_MS].store(c.eta_ms.unwrap_or(l::ETA_UNKNOWN), Ordering::Relaxed);
        });
    }

    /// Hand out the record for worker `index`. Each record must end up
    /// owned by exactly one worker thread.
    pub fn worker(&self, index: usize) -> WorkerRecord {
        assert!(index < self.n_workers, "worker index out of range");
        WorkerRecord {
            map: Arc::clone(&self.map),
            offset: l::worker_offset(index),
        }
    }
}

/// A single worker's record in the segment. The owning worker thread is
/// the only writer; all methods take `&self` because the segment words
/// are atomics, but calling them from two threads at once violates the
/// seqlock single-writer contract.
#[derive(Debug)]
pub struct WorkerRecord {
    map: Arc<SharedMap>,
    offset: usize,
}

impl WorkerRecord {
    fn parts(&self) -> (&AtomicU64, &[AtomicU64]) {
        let all = self.map.words();
        (
            &all[self.offset],
            &all[self.offset + 1..self.offset + l::WORKER_WORDS],
        )
    }

    /// Begin a cell: bump the generation, record identity and labels,
    /// zero the live counters.
    #[allow(clippy::too_many_arguments)]
    pub fn begin_cell(
        &self,
        spec_index: u64,
        workload_index: u64,
        attempt: u64,
        expected_accesses: u64,
        label: &str,
        workload: &str,
    ) {
        let (seq, data) = self.parts();
        let generation = data[l::W_GENERATION]
            .load(Ordering::Relaxed)
            .wrapping_add(1);
        let label = pack_label(label);
        let workload_name = pack_label(workload);
        seqlock::write_with(seq, || {
            data[l::W_STATE].store(l::WORKER_RUNNING, Ordering::Relaxed);
            data[l::W_GENERATION].store(generation, Ordering::Relaxed);
            data[l::W_SPEC].store(spec_index, Ordering::Relaxed);
            data[l::W_WORKLOAD].store(workload_index, Ordering::Relaxed);
            data[l::W_ATTEMPT].store(attempt, Ordering::Relaxed);
            data[l::W_ACCESS].store(0, Ordering::Relaxed);
            data[l::W_EXPECTED].store(expected_accesses, Ordering::Relaxed);
            for idx in [
                l::W_INSTRUCTIONS,
                l::W_CYCLES,
                l::W_LLC_ACCESSES,
                l::W_LLC_MISSES,
                l::W_INCLUSION_VICTIMS,
                l::W_RELOCATIONS,
                l::W_STRATUM,
                l::W_INTERVALS,
                l::W_IPC_MEAN,
                l::W_IPC_HALF,
            ] {
                data[idx].store(0, Ordering::Relaxed);
            }
            for (i, word) in label.iter().enumerate() {
                data[l::W_LABEL + i].store(*word, Ordering::Relaxed);
            }
            for (i, word) in workload_name.iter().enumerate() {
                data[l::W_WORKLOAD_NAME + i].store(*word, Ordering::Relaxed);
            }
        });
    }

    /// Publish live progress counters for the in-flight cell. Hot-path
    /// safe: a handful of relaxed stores under the seqlock, no
    /// allocation, no syscalls.
    #[allow(clippy::too_many_arguments)]
    pub fn publish_progress(
        &self,
        access_index: u64,
        instructions: u64,
        cycles: u64,
        llc_accesses: u64,
        llc_misses: u64,
        inclusion_victims: u64,
        relocations: u64,
        stratum: u64,
    ) {
        let (seq, data) = self.parts();
        seqlock::write_with(seq, || {
            data[l::W_ACCESS].store(access_index, Ordering::Relaxed);
            data[l::W_INSTRUCTIONS].store(instructions, Ordering::Relaxed);
            data[l::W_CYCLES].store(cycles, Ordering::Relaxed);
            data[l::W_LLC_ACCESSES].store(llc_accesses, Ordering::Relaxed);
            data[l::W_LLC_MISSES].store(llc_misses, Ordering::Relaxed);
            data[l::W_INCLUSION_VICTIMS].store(inclusion_victims, Ordering::Relaxed);
            data[l::W_RELOCATIONS].store(relocations, Ordering::Relaxed);
            data[l::W_STRATUM].store(stratum, Ordering::Relaxed);
        });
    }

    /// Publish sampling convergence state: closed-interval count plus the
    /// running IPC mean and confidence half-width.
    pub fn publish_sampling(&self, intervals: u64, ipc_mean: f64, ipc_half_width: f64) {
        let (seq, data) = self.parts();
        seqlock::write_with(seq, || {
            data[l::W_INTERVALS].store(intervals, Ordering::Relaxed);
            data[l::W_IPC_MEAN].store(ipc_mean.to_bits(), Ordering::Relaxed);
            data[l::W_IPC_HALF].store(ipc_half_width.to_bits(), Ordering::Relaxed);
        });
    }

    /// Mark the cell finished (record retains its final counters).
    pub fn end_cell(&self) {
        let (seq, data) = self.parts();
        seqlock::write_with(seq, || {
            data[l::W_STATE].store(l::WORKER_DONE, Ordering::Relaxed);
        });
    }
}
