//! Memory-mapped file segments viewed as `AtomicU64` words.
//!
//! The workspace is deliberately dependency-free, so instead of the
//! `libc` crate this module declares the three C symbols it needs
//! (`mmap`, `munmap`, `kill`) directly — they are part of the platform
//! libc every Rust binary already links against on unix targets. On
//! non-unix targets segment creation fails with a typed
//! [`SimError::Config`]; nothing else in the workspace depends on it.

use std::path::Path;
use std::sync::atomic::AtomicU64;
use ziv_common::SimError;

/// A shared, file-backed mapping of `words` little-endian `u64` slots.
///
/// Writers map read-write; readers map read-only and must only ever
/// *load* through the returned atomics (storing through a read-only
/// mapping would fault).
#[derive(Debug)]
pub struct SharedMap {
    ptr: *mut AtomicU64,
    words: usize,
}

// The mapping is plain shared memory accessed exclusively through
// atomics; the raw pointer is only non-Send/Sync by default.
unsafe impl Send for SharedMap {}
unsafe impl Sync for SharedMap {}

impl SharedMap {
    /// View the mapping as a slice of atomic words.
    pub fn words(&self) -> &[AtomicU64] {
        // SAFETY: `ptr` points at a live mapping of exactly `words`
        // 8-byte slots, page-aligned (so u64-aligned), valid until Drop.
        unsafe { std::slice::from_raw_parts(self.ptr, self.words) }
    }

    /// Number of words in the mapping.
    pub fn len(&self) -> usize {
        self.words
    }

    /// Whether the mapping is empty (never true for a valid segment).
    pub fn is_empty(&self) -> bool {
        self.words == 0
    }
}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 0x1;
    pub const PROT_WRITE: i32 = 0x2;
    pub const MAP_SHARED: i32 = 0x01;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
        pub fn kill(pid: i32, sig: i32) -> i32;
    }
}

#[cfg(unix)]
impl SharedMap {
    fn map_fd(fd: i32, words: usize, writable: bool) -> Result<Self, SimError> {
        let bytes = words * 8;
        let prot = if writable {
            sys::PROT_READ | sys::PROT_WRITE
        } else {
            sys::PROT_READ
        };
        // SAFETY: plain mmap of a regular file we own a handle to; the
        // result is checked against MAP_FAILED before use.
        let ptr = unsafe { sys::mmap(std::ptr::null_mut(), bytes, prot, sys::MAP_SHARED, fd, 0) };
        if ptr as isize == -1 || ptr.is_null() {
            return Err(SimError::Config(format!(
                "mmap of telemetry segment failed ({}): {}",
                bytes,
                std::io::Error::last_os_error()
            )));
        }
        Ok(SharedMap {
            ptr: ptr as *mut AtomicU64,
            words,
        })
    }

    /// Map an existing file of exactly `words * 8` bytes.
    pub fn open(path: &Path, writable: bool) -> Result<Self, SimError> {
        use std::os::unix::io::AsRawFd;
        let file = if writable {
            std::fs::OpenOptions::new()
                .read(true)
                .write(true)
                .open(path)
        } else {
            std::fs::File::open(path)
        }
        .map_err(|e| SimError::io("open telemetry segment", path, e))?;
        let len = file
            .metadata()
            .map_err(|e| SimError::io("stat telemetry segment", path, e))?
            .len() as usize;
        if len == 0 || !len.is_multiple_of(8) {
            return Err(SimError::Config(format!(
                "{}: not a telemetry segment ({len} bytes)",
                path.display()
            )));
        }
        Self::map_fd(file.as_raw_fd(), len / 8, writable)
    }

    /// Create (truncate) a file of `words * 8` zero bytes and map it
    /// read-write.
    pub fn create(path: &Path, words: usize) -> Result<Self, SimError> {
        use std::os::unix::io::AsRawFd;
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)
            .map_err(|e| SimError::io("create telemetry segment", path, e))?;
        file.set_len((words * 8) as u64)
            .map_err(|e| SimError::io("size telemetry segment", path, e))?;
        Self::map_fd(file.as_raw_fd(), words, true)
    }
}

#[cfg(unix)]
impl Drop for SharedMap {
    fn drop(&mut self) {
        // SAFETY: ptr/words came from a successful mmap of that length.
        unsafe {
            sys::munmap(self.ptr as *mut std::ffi::c_void, self.words * 8);
        }
    }
}

#[cfg(not(unix))]
impl SharedMap {
    /// Unsupported on non-unix targets.
    pub fn open(_path: &Path, _writable: bool) -> Result<Self, SimError> {
        Err(SimError::Config(
            "live telemetry requires a unix host (mmap)".into(),
        ))
    }

    /// Unsupported on non-unix targets.
    pub fn create(_path: &Path, _words: usize) -> Result<Self, SimError> {
        Err(SimError::Config(
            "live telemetry requires a unix host (mmap)".into(),
        ))
    }
}

/// Whether a process with the given PID is still alive, judged by
/// `kill(pid, 0)`. On non-unix targets this conservatively reports
/// `false` (a stale heartbeat there always reads as a dead writer).
pub fn process_alive(pid: u64) -> bool {
    #[cfg(unix)]
    {
        if pid == 0 || pid > i32::MAX as u64 {
            return false;
        }
        // SAFETY: signal 0 performs permission/existence checks only.
        unsafe { sys::kill(pid as i32, 0) == 0 }
    }
    #[cfg(not(unix))]
    {
        let _ = pid;
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn create_write_reopen_read() {
        let dir = std::env::temp_dir().join(format!("ziv-map-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seg.shm");
        {
            let map = SharedMap::create(&path, 16).unwrap();
            assert_eq!(map.len(), 16);
            map.words()[3].store(0xDEAD_BEEF, Ordering::Relaxed);
        }
        {
            let map = SharedMap::open(&path, false).unwrap();
            assert_eq!(map.words()[3].load(Ordering::Relaxed), 0xDEAD_BEEF);
            assert_eq!(map.words()[0].load(Ordering::Relaxed), 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn own_process_reads_alive() {
        assert!(process_alive(std::process::id() as u64));
        assert!(!process_alive(0));
    }
}
