//! The read-only side of the telemetry segment.
//!
//! A [`TelemetryReader`] maps an existing `telemetry.shm` read-only and
//! takes sequence-consistent [`Snapshot`]s: every record is copied under
//! its seqlock with bounded retries, so a snapshot either reflects a
//! coherent point-in-time view of each record or the read reports a torn
//! record (`None`) and the caller polls again. Staleness is the caller's
//! policy: the snapshot exposes the heartbeat tick, the finished flag,
//! and [`TelemetryReader::writer_alive`] for the dead-writer check.

use crate::layout::{self as l, unpack_label};
use crate::map::{process_alive, SharedMap};
use std::path::Path;
use std::sync::atomic::Ordering;
use ziv_common::{seqlock, SimError};

/// Heartbeat record contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Heartbeat {
    /// Sequence value the record was consistent at.
    pub seq: u64,
    /// Monotonic tick (increments ~5×/second while the writer lives).
    pub tick: u64,
    /// Set once the writer finished cleanly and published final state.
    pub finished: bool,
    /// Milliseconds since the campaign started.
    pub elapsed_ms: u64,
}

/// Campaign record contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CampaignSnap {
    /// Sequence value the record was consistent at.
    pub seq: u64,
    /// Total cells in the grid.
    pub total: u64,
    /// Cells satisfied from the resume cache.
    pub cached: u64,
    /// Cells finished successfully (including cached).
    pub done: u64,
    /// Cells that exhausted retries and failed.
    pub failed: u64,
    /// Extra attempts spent on retries.
    pub retried: u64,
    /// Cells currently executing.
    pub running: u64,
    /// Estimated milliseconds to completion, if the writer had a basis.
    pub eta_ms: Option<u64>,
}

/// One worker record's contents.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkerSnap {
    /// Sequence value the record was consistent at.
    pub seq: u64,
    /// 0 idle, 1 running, 2 finished-cell (see layout constants).
    pub state: u64,
    /// Generation counter (bumps at every cell begin).
    pub generation: u64,
    /// Spec index of the current/last cell.
    pub spec_index: u64,
    /// Workload index of the current/last cell.
    pub workload_index: u64,
    /// Attempt number (1-based).
    pub attempt: u64,
    /// Accesses issued so far.
    pub access_index: u64,
    /// Expected accesses (0 when unknown).
    pub expected_accesses: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// LLC accesses.
    pub llc_accesses: u64,
    /// LLC misses.
    pub llc_misses: u64,
    /// Inclusion victims.
    pub inclusion_victims: u64,
    /// ZIV relocations.
    pub relocations: u64,
    /// Sampling stratum (0 = full run).
    pub stratum: u64,
    /// Closed sampling intervals.
    pub intervals: u64,
    /// Running mean of per-interval IPC.
    pub ipc_mean: f64,
    /// Half-width of the running IPC confidence interval.
    pub ipc_half_width: f64,
    /// Cell label (truncated to 32 bytes).
    pub label: String,
    /// Workload name (truncated to 32 bytes).
    pub workload: String,
}

/// A sequence-consistent view of the whole segment.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    /// Writer PID from the header.
    pub writer_pid: u64,
    /// Heartbeat record.
    pub heartbeat: Heartbeat,
    /// Campaign record.
    pub campaign: CampaignSnap,
    /// One entry per worker record.
    pub workers: Vec<WorkerSnap>,
}

/// Read-only handle over a mapped segment.
#[derive(Debug)]
pub struct TelemetryReader {
    map: SharedMap,
    n_workers: usize,
    writer_pid: u64,
}

impl TelemetryReader {
    /// Map `path` read-only and validate the header.
    pub fn open(path: &Path) -> Result<Self, SimError> {
        let map = SharedMap::open(path, false)?;
        let w = map.words();
        if w.len() < l::segment_words(1) {
            return Err(SimError::Config(format!(
                "{}: telemetry segment too small ({} words)",
                path.display(),
                w.len()
            )));
        }
        let magic = w[l::H_MAGIC].load(Ordering::Acquire);
        let version = w[l::H_VERSION].load(Ordering::Relaxed);
        if magic != l::MAGIC {
            return Err(SimError::Config(format!(
                "{}: bad telemetry magic {magic:#x}",
                path.display()
            )));
        }
        if version != l::VERSION {
            return Err(SimError::Config(format!(
                "{}: telemetry layout version {version} (reader speaks {})",
                path.display(),
                l::VERSION
            )));
        }
        let n_workers = w[l::H_WORKERS].load(Ordering::Relaxed) as usize;
        let total = w[l::H_TOTAL_WORDS].load(Ordering::Relaxed) as usize;
        if n_workers == 0 || total != l::segment_words(n_workers) || w.len() < total {
            return Err(SimError::Config(format!(
                "{}: inconsistent telemetry header ({} workers, {} words)",
                path.display(),
                n_workers,
                total
            )));
        }
        let writer_pid = w[l::H_PID].load(Ordering::Relaxed);
        Ok(TelemetryReader {
            map,
            n_workers,
            writer_pid,
        })
    }

    /// Number of worker records.
    pub fn n_workers(&self) -> usize {
        self.n_workers
    }

    /// PID recorded by the writer at segment creation.
    pub fn writer_pid(&self) -> u64 {
        self.writer_pid
    }

    /// Whether the writing process still exists.
    pub fn writer_alive(&self) -> bool {
        process_alive(self.writer_pid)
    }

    fn read_record(&self, offset: usize, payload: &mut [u64]) -> Option<u64> {
        let all = self.map.words();
        let seq = &all[offset];
        let data = &all[offset + 1..offset + 1 + payload.len()];
        seqlock::read_words(seq, data, payload)
    }

    /// Take a consistent snapshot of every record, or `None` if any
    /// record stayed torn across the bounded retries.
    pub fn snapshot(&self) -> Option<Snapshot> {
        let mut hb = [0u64; l::HEARTBEAT_WORDS - 1];
        let hb_seq = self.read_record(l::heartbeat_offset(), &mut hb)?;
        let mut c = [0u64; l::CAMPAIGN_WORDS - 1];
        let c_seq = self.read_record(l::campaign_offset(), &mut c)?;
        let mut workers = Vec::with_capacity(self.n_workers);
        for i in 0..self.n_workers {
            let mut w = [0u64; l::WORKER_PAYLOAD_WORDS];
            let w_seq = self.read_record(l::worker_offset(i), &mut w)?;
            workers.push(WorkerSnap {
                seq: w_seq,
                state: w[l::W_STATE],
                generation: w[l::W_GENERATION],
                spec_index: w[l::W_SPEC],
                workload_index: w[l::W_WORKLOAD],
                attempt: w[l::W_ATTEMPT],
                access_index: w[l::W_ACCESS],
                expected_accesses: w[l::W_EXPECTED],
                instructions: w[l::W_INSTRUCTIONS],
                cycles: w[l::W_CYCLES],
                llc_accesses: w[l::W_LLC_ACCESSES],
                llc_misses: w[l::W_LLC_MISSES],
                inclusion_victims: w[l::W_INCLUSION_VICTIMS],
                relocations: w[l::W_RELOCATIONS],
                stratum: w[l::W_STRATUM],
                intervals: w[l::W_INTERVALS],
                ipc_mean: f64::from_bits(w[l::W_IPC_MEAN]),
                ipc_half_width: f64::from_bits(w[l::W_IPC_HALF]),
                label: unpack_label(&w[l::W_LABEL..l::W_LABEL + l::LABEL_WORDS]),
                workload: unpack_label(&w[l::W_WORKLOAD_NAME..l::W_WORKLOAD_NAME + l::LABEL_WORDS]),
            });
        }
        Some(Snapshot {
            writer_pid: self.writer_pid,
            heartbeat: Heartbeat {
                seq: hb_seq,
                tick: hb[l::HB_TICK],
                finished: hb[l::HB_STATE] == l::STATE_FINISHED,
                elapsed_ms: hb[l::HB_ELAPSED_MS],
            },
            campaign: CampaignSnap {
                seq: c_seq,
                total: c[l::C_TOTAL],
                cached: c[l::C_CACHED],
                done: c[l::C_DONE],
                failed: c[l::C_FAILED],
                retried: c[l::C_RETRIED],
                running: c[l::C_RUNNING],
                eta_ms: match c[l::C_ETA_MS] {
                    l::ETA_UNKNOWN => None,
                    ms => Some(ms),
                },
            },
            workers,
        })
    }
}
