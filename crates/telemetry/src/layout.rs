//! Versioned fixed layout of the `telemetry.shm` segment.
//!
//! The segment is an array of `u64` words, grouped into four record
//! kinds. Every mutable record starts with its own seqlock sequence word
//! (see [`ziv_common::seqlock`]); the header is written once before the
//! segment becomes visible (the writer creates it under a temporary name
//! and renames it into place) and is immutable afterwards.
//!
//! ```text
//! word 0 ..  HEADER_WORDS          header    (immutable after create)
//!       ..+  HEARTBEAT_WORDS       heartbeat (seqlocked)
//!       ..+  CAMPAIGN_WORDS        campaign  (seqlocked)
//!       ..+  n_workers * WORKER_WORDS  worker records (seqlocked, one
//!                                       writer thread each)
//! ```
//!
//! All offsets below are in words. Strings (cell label, workload name)
//! are fixed 32-byte NUL-padded UTF-8 truncated at a character boundary.

/// Magic word: `"ZIVTELE1"` as big-endian ASCII.
pub const MAGIC: u64 = 0x5A49_5654_454C_4531;

/// Layout version. Bump on any incompatible layout change.
pub const VERSION: u64 = 1;

/// Header words: magic, version, n_workers, total segment words,
/// writer PID, then reserved padding.
pub const HEADER_WORDS: usize = 8;
/// Header word indices.
pub const H_MAGIC: usize = 0;
/// Layout version word.
pub const H_VERSION: usize = 1;
/// Number of worker records in this segment.
pub const H_WORKERS: usize = 2;
/// Total segment size in words (for cheap size validation).
pub const H_TOTAL_WORDS: usize = 3;
/// PID of the writing process.
pub const H_PID: usize = 4;

/// Heartbeat record: seq + payload.
pub const HEARTBEAT_WORDS: usize = 8;
/// Monotonic tick, incremented by the writer's ticker thread.
pub const HB_TICK: usize = 0;
/// Writer state: [`STATE_RUNNING`] or [`STATE_FINISHED`].
pub const HB_STATE: usize = 1;
/// Milliseconds since the campaign started.
pub const HB_ELAPSED_MS: usize = 2;

/// Heartbeat state value while the writer is alive and publishing.
pub const STATE_RUNNING: u64 = 0;
/// Heartbeat state value after the writer finished cleanly.
pub const STATE_FINISHED: u64 = 1;

/// Campaign record: seq + payload.
pub const CAMPAIGN_WORDS: usize = 12;
/// Total cells in the campaign grid.
pub const C_TOTAL: usize = 0;
/// Cells satisfied from the resume cache before execution started.
pub const C_CACHED: usize = 1;
/// Cells finished successfully (including cached).
pub const C_DONE: usize = 2;
/// Cells that exhausted retries and failed.
pub const C_FAILED: usize = 3;
/// Extra attempts spent on retries across all cells.
pub const C_RETRIED: usize = 4;
/// Cells currently executing on a worker.
pub const C_RUNNING: usize = 5;
/// Estimated milliseconds to completion; [`ETA_UNKNOWN`] when the
/// windowed estimator has no basis yet.
pub const C_ETA_MS: usize = 6;

/// Sentinel for "no ETA available".
pub const ETA_UNKNOWN: u64 = u64::MAX;

/// Words per 32-byte NUL-padded string field.
pub const LABEL_WORDS: usize = 4;

/// Worker record payload word indices (after the seq word).
pub const W_STATE: usize = 0;
/// Generation counter, incremented at every `cell_begin`.
pub const W_GENERATION: usize = 1;
/// Spec index of the cell being executed.
pub const W_SPEC: usize = 2;
/// Workload index of the cell being executed.
pub const W_WORKLOAD: usize = 3;
/// Attempt number (1-based) of the current execution.
pub const W_ATTEMPT: usize = 4;
/// Accesses issued so far in this cell.
pub const W_ACCESS: usize = 5;
/// Expected total accesses for this cell (0 if unknown).
pub const W_EXPECTED: usize = 6;
/// Instructions retired (summed over cores).
pub const W_INSTRUCTIONS: usize = 7;
/// Cycles elapsed (max over cores, rounded).
pub const W_CYCLES: usize = 8;
/// LLC accesses so far.
pub const W_LLC_ACCESSES: usize = 9;
/// LLC misses so far.
pub const W_LLC_MISSES: usize = 10;
/// Inclusion victims so far.
pub const W_INCLUSION_VICTIMS: usize = 11;
/// ZIV relocations so far.
pub const W_RELOCATIONS: usize = 12;
/// Sampling stratum: [`STRATUM_FULL`] for unsampled runs, otherwise
/// the current sampling phase.
pub const W_STRATUM: usize = 13;
/// Closed sampling intervals so far.
pub const W_INTERVALS: usize = 14;
/// Running mean of per-interval IPC (f64 bits; 0 until ≥1 interval).
pub const W_IPC_MEAN: usize = 15;
/// Half-width of the running IPC confidence interval (f64 bits;
/// 0 until ≥2 intervals).
pub const W_IPC_HALF: usize = 16;
/// First word of the 32-byte cell label.
pub const W_LABEL: usize = 20;
/// First word of the 32-byte workload name.
pub const W_WORKLOAD_NAME: usize = W_LABEL + LABEL_WORDS;
/// Worker record payload words.
pub const WORKER_PAYLOAD_WORDS: usize = W_WORKLOAD_NAME + LABEL_WORDS;
/// Worker record size including its seq word.
pub const WORKER_WORDS: usize = 1 + WORKER_PAYLOAD_WORDS;

/// Worker state values.
pub const WORKER_IDLE: u64 = 0;
/// Worker is executing the cell described by the record.
pub const WORKER_RUNNING: u64 = 1;
/// Worker finished its last cell (record retains final counters).
pub const WORKER_DONE: u64 = 2;

/// Stratum value for unsampled (full-detail) runs.
pub const STRATUM_FULL: u64 = 0;
/// Stratum value while replaying the head census.
pub const STRATUM_HEAD: u64 = 1;
/// Stratum value while fast-forwarding a skip stride.
pub const STRATUM_SKIP: u64 = 2;
/// Stratum value while warming caches before a timed interval.
pub const STRATUM_WARM: u64 = 3;
/// Stratum value inside a timed measurement interval.
pub const STRATUM_TIMED: u64 = 4;

/// Word offset of the heartbeat record (its seq word).
pub const fn heartbeat_offset() -> usize {
    HEADER_WORDS
}

/// Word offset of the campaign record (its seq word).
pub const fn campaign_offset() -> usize {
    HEADER_WORDS + HEARTBEAT_WORDS
}

/// Word offset of worker record `index` (its seq word).
pub const fn worker_offset(index: usize) -> usize {
    HEADER_WORDS + HEARTBEAT_WORDS + CAMPAIGN_WORDS + index * WORKER_WORDS
}

/// Total segment size in words for `n_workers` worker records.
pub const fn segment_words(n_workers: usize) -> usize {
    worker_offset(n_workers)
}

/// Pack a string into `LABEL_WORDS` words of NUL-padded little-endian
/// bytes, truncating at a UTF-8 character boundary if needed.
pub fn pack_label(text: &str) -> [u64; LABEL_WORDS] {
    let max = LABEL_WORDS * 8;
    let mut end = text.len().min(max);
    while end > 0 && !text.is_char_boundary(end) {
        end -= 1;
    }
    let mut bytes = [0u8; LABEL_WORDS * 8];
    bytes[..end].copy_from_slice(&text.as_bytes()[..end]);
    let mut words = [0u64; LABEL_WORDS];
    for (i, chunk) in bytes.chunks_exact(8).enumerate() {
        words[i] = u64::from_le_bytes(chunk.try_into().unwrap());
    }
    words
}

/// Reverse of [`pack_label`]: decode NUL-padded UTF-8 from words.
pub fn unpack_label(words: &[u64]) -> String {
    let mut bytes = Vec::with_capacity(words.len() * 8);
    for w in words {
        bytes.extend_from_slice(&w.to_le_bytes());
    }
    let end = bytes.iter().position(|&b| b == 0).unwrap_or(bytes.len());
    String::from_utf8_lossy(&bytes[..end]).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_disjoint_and_ordered() {
        assert!(heartbeat_offset() >= HEADER_WORDS);
        assert_eq!(campaign_offset(), heartbeat_offset() + HEARTBEAT_WORDS);
        assert_eq!(worker_offset(0), campaign_offset() + CAMPAIGN_WORDS);
        assert_eq!(worker_offset(1) - worker_offset(0), WORKER_WORDS);
        assert_eq!(segment_words(3), worker_offset(3));
        const { assert!(W_WORKLOAD_NAME + LABEL_WORDS <= WORKER_PAYLOAD_WORDS) };
    }

    #[test]
    fn labels_round_trip_and_truncate() {
        let words = pack_label("mix_hot");
        assert_eq!(unpack_label(&words), "mix_hot");
        let long = "x".repeat(64);
        let words = pack_label(&long);
        assert_eq!(unpack_label(&words), "x".repeat(32));
        // multi-byte char straddling the boundary is dropped cleanly
        let tricky = format!("{}é", "a".repeat(31));
        let words = pack_label(&tricky);
        assert_eq!(unpack_label(&words), "a".repeat(31));
    }
}
