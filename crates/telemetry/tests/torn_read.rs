//! The concurrent torn-read drill: one writer thread hammers the
//! segment at full speed while a reader snapshots it, and every
//! snapshot that comes back must be internally consistent.
//!
//! The writer encodes each record's payload as a function of its
//! generation (worker counters all derive from `generation`), so a
//! torn read — a mix of two generations slipping through the seqlock —
//! cannot pass the consistency predicate by luck. The host may be
//! single-core; the drill is kept to exactly two threads and bounded
//! by wall clock, not iteration counts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use ziv_telemetry::{CampaignCounters, TelemetryReader, TelemetryWriter, SEGMENT_FILE};

fn tmpdir(tag: &str) -> std::path::PathBuf {
    let d = std::env::temp_dir().join(format!("ziv-torn-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// The generation-derived payload the writer publishes for step `g`.
/// Every field is a distinct affine function of `g`, so any mix of two
/// different generations breaks at least one of the cross-checks.
fn counters_for(g: u64) -> (u64, u64, u64) {
    (g * 256, g * 1000 + 7, g * 3 + 1)
}

#[test]
fn concurrent_reader_never_sees_torn_records() {
    let dir = tmpdir("drill");
    let writer = TelemetryWriter::create(&dir, 1).unwrap();
    let stop = AtomicBool::new(false);
    let deadline = Instant::now() + Duration::from_millis(800);

    std::thread::scope(|scope| {
        let writer = &writer;
        let stop = &stop;
        scope.spawn(move || {
            let record = writer.worker(0);
            let mut g = 0u64;
            while !stop.load(Ordering::Acquire) {
                g += 1;
                record.begin_cell(g, g + 1, 1, g * 4096, &format!("gen-{g}"), "drill");
                let (access, instructions, relocations) = counters_for(g);
                record.publish_progress(access, instructions, 0, 0, 0, 0, relocations, 0);
                writer.publish_heartbeat(g, false, g);
                writer.publish_campaign(&CampaignCounters {
                    total: g + 10,
                    cached: g,
                    done: g,
                    failed: 0,
                    retried: 0,
                    running: 1,
                    eta_ms: Some(g),
                });
                // On a single-core host, yield between iterations so the
                // reader's timeslices land outside write sections often
                // enough to make the drill meaningful.
                std::thread::yield_now();
            }
        });

        let reader = TelemetryReader::open(&dir.join(SEGMENT_FILE)).unwrap();
        let mut consistent = 0u64;
        let mut torn_skipped = 0u64;
        let mut last_heartbeat = 0u64;
        while Instant::now() < deadline {
            match reader.snapshot() {
                None => torn_skipped += 1, // caught mid-write: correct refusal
                Some(snap) => {
                    consistent += 1;
                    // Heartbeat ticks only move forward.
                    assert!(
                        snap.heartbeat.tick >= last_heartbeat,
                        "heartbeat went backwards: {} after {}",
                        snap.heartbeat.tick,
                        last_heartbeat
                    );
                    last_heartbeat = snap.heartbeat.tick;
                    // Campaign record: every field derives from one g.
                    let g = snap.campaign.cached;
                    assert_eq!(snap.campaign.total, g + 10, "torn campaign record");
                    assert_eq!(snap.campaign.done, g, "torn campaign record");
                    assert_eq!(snap.campaign.eta_ms, Some(g), "torn campaign record");
                    // Worker record: label, identity words, and counters
                    // must all belong to the same generation.
                    let w = &snap.workers[0];
                    if w.generation > 0 {
                        let g = w.spec_index;
                        assert_eq!(w.workload_index, g + 1, "torn worker identity");
                        assert_eq!(w.label, format!("gen-{g}"), "torn worker label");
                        assert_eq!(w.expected_accesses, g * 4096, "torn worker identity");
                        let (access, instructions, relocations) = counters_for(g);
                        // begin_cell zeroes the counters; publish_progress
                        // fills them. Both states are consistent — a mix
                        // is not.
                        let zeroed = w.access_index == 0 && w.instructions == 0;
                        let filled = w.access_index == access
                            && w.instructions == instructions
                            && w.relocations == relocations;
                        assert!(
                            zeroed || filled,
                            "torn worker counters at generation {g}: \
                             access={} instructions={} relocations={}",
                            w.access_index,
                            w.instructions,
                            w.relocations
                        );
                    }
                }
            }
        }
        stop.store(true, Ordering::Release);
        // The drill only proves something if reads actually happened
        // while the writer was live; torn refusals are allowed but
        // consistent snapshots must dominate eventually.
        assert!(
            consistent > 10,
            "reader starved: {consistent} consistent snapshots, {torn_skipped} torn"
        );
    });

    std::fs::remove_dir_all(&dir).ok();
}
