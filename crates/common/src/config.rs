//! System configuration: the paper's Table I, parameterized.
//!
//! Two ready-made configurations are provided:
//!
//! - [`SystemConfig::paper`] — the full-scale Table I machine (8 cores,
//!   8 MB 16-way LLC in 8 banks, 32 KB L1s, 256/512/768 KB L2s, 2× sparse
//!   directory, DDR3-2133 memory).
//! - [`SystemConfig::scaled`] — the same machine with every capacity
//!   divided by 8. All capacity *ratios* (private-cache capacity vs LLC
//!   capacity, sparse-directory provisioning) are preserved; those ratios,
//!   not absolute sizes, drive inclusion-victim volume, so experiments run
//!   at laptop scale while reproducing the paper's trends.

use crate::addr::LineAddr;
use crate::ids::{BankId, SetIdx};

/// Geometry of one set-associative cache structure (64-byte lines).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    /// Number of sets. Must be a power of two.
    pub sets: u32,
    /// Associativity.
    pub ways: u8,
}

impl CacheGeometry {
    /// Creates a geometry from set count and associativity.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero or not a power of two, or if `ways` is 0.
    pub fn new(sets: u32, ways: u8) -> Self {
        assert!(
            sets > 0 && sets.is_power_of_two(),
            "sets must be a power of two"
        );
        assert!(ways > 0, "ways must be positive");
        CacheGeometry { sets, ways }
    }

    /// Creates a geometry from a capacity in bytes and associativity.
    ///
    /// # Panics
    ///
    /// Panics if the implied set count is not a positive power of two.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::config::CacheGeometry;
    /// let g = CacheGeometry::from_capacity(32 * 1024, 8); // 32 KB, 8-way
    /// assert_eq!(g.sets, 64);
    /// assert_eq!(g.blocks(), 512);
    /// ```
    pub fn from_capacity(bytes: u64, ways: u8) -> Self {
        let blocks = bytes / crate::addr::LINE_BYTES;
        let sets = blocks / ways as u64;
        assert!(sets > 0, "capacity too small for associativity");
        Self::new(sets as u32, ways)
    }

    /// Total number of blocks (tags) in the structure.
    #[inline]
    pub const fn blocks(&self) -> u64 {
        self.sets as u64 * self.ways as u64
    }

    /// Capacity in bytes.
    #[inline]
    pub const fn capacity_bytes(&self) -> u64 {
        self.blocks() * crate::addr::LINE_BYTES
    }

    /// The set a line maps to (simple modulo indexing, as the paper's
    /// tag-length analysis assumes "simple hash functions").
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> SetIdx {
        (line.raw() & (self.sets as u64 - 1)) as SetIdx
    }

    /// The tag of a line for this geometry.
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        line.raw() >> self.sets.trailing_zeros()
    }

    /// Reconstructs a line address from a tag and set index.
    #[inline]
    pub fn line_of(&self, tag: u64, set: SetIdx) -> LineAddr {
        LineAddr::new((tag << self.sets.trailing_zeros()) | set as u64)
    }
}

/// Configuration of the shared banked LLC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcConfig {
    /// Number of LLC banks (each with an associated sparse-directory
    /// slice). Must be a power of two.
    pub banks: usize,
    /// Geometry of a single bank.
    pub bank_geometry: CacheGeometry,
    /// Tag-array lookup latency in cycles (Table I: 2).
    pub tag_latency: u64,
    /// Data-array access latency in cycles (Table I: 5).
    pub data_latency: u64,
}

impl LlcConfig {
    /// Creates an LLC configuration from total capacity.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a power of two or the geometry is invalid.
    pub fn from_total_capacity(total_bytes: u64, ways: u8, banks: usize) -> Self {
        assert!(banks.is_power_of_two(), "banks must be a power of two");
        let bank_geometry = CacheGeometry::from_capacity(total_bytes / banks as u64, ways);
        LlcConfig {
            banks,
            bank_geometry,
            tag_latency: 2,
            data_latency: 5,
        }
    }

    /// The home bank of a line (low-order line-address interleaving).
    #[inline]
    pub fn bank_of(&self, line: LineAddr) -> BankId {
        BankId::new((line.raw() & (self.banks as u64 - 1)) as usize)
    }

    /// The set within the home bank that a line maps to.
    #[inline]
    pub fn set_of(&self, line: LineAddr) -> SetIdx {
        let within = line.raw() >> self.banks.trailing_zeros();
        (within & (self.bank_geometry.sets as u64 - 1)) as SetIdx
    }

    /// The tag of a line within its bank.
    #[inline]
    pub fn tag_of(&self, line: LineAddr) -> u64 {
        let within = line.raw() >> self.banks.trailing_zeros();
        within >> self.bank_geometry.sets.trailing_zeros()
    }

    /// Reconstructs a line address from bank, set, and tag.
    #[inline]
    pub fn line_of(&self, bank: BankId, set: SetIdx, tag: u64) -> LineAddr {
        let within = (tag << self.bank_geometry.sets.trailing_zeros()) | set as u64;
        LineAddr::new((within << self.banks.trailing_zeros()) | bank.index() as u64)
    }

    /// Total LLC capacity in bytes.
    #[inline]
    pub fn total_capacity_bytes(&self) -> u64 {
        self.bank_geometry.capacity_bytes() * self.banks as u64
    }

    /// Total number of LLC blocks.
    #[inline]
    pub fn total_blocks(&self) -> u64 {
        self.bank_geometry.blocks() * self.banks as u64
    }
}

/// The per-core L2 capacity options evaluated in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum L2Size {
    /// 256 KB 8-way, 4-cycle lookup (Table I).
    K256,
    /// 512 KB 8-way, 5-cycle lookup (Table I).
    K512,
    /// 768 KB 12-way, 6-cycle lookup (Table I).
    K768,
    /// 1 MB 16-way, 7-cycle lookup (the Fig 14 sensitivity study).
    M1,
    /// 128 KB 8-way, 4-cycle lookup (the 128-core TPC-E configuration).
    K128,
}

impl L2Size {
    /// All Table I options, in the order the figures sweep them.
    pub const TABLE1: [L2Size; 3] = [L2Size::K256, L2Size::K512, L2Size::K768];

    /// Capacity in bytes at full (paper) scale.
    pub fn capacity_bytes(self) -> u64 {
        match self {
            L2Size::K128 => 128 * 1024,
            L2Size::K256 => 256 * 1024,
            L2Size::K512 => 512 * 1024,
            L2Size::K768 => 768 * 1024,
            L2Size::M1 => 1024 * 1024,
        }
    }

    /// Associativity (Table I: 8-way except the 12-way 768 KB point).
    pub fn ways(self) -> u8 {
        match self {
            L2Size::K768 => 12,
            L2Size::M1 => 16,
            _ => 8,
        }
    }

    /// Lookup latency in cycles (Table I: 4 / 5 / 6 with increasing size).
    pub fn latency(self) -> u64 {
        match self {
            L2Size::K128 | L2Size::K256 => 4,
            L2Size::K512 => 5,
            L2Size::K768 => 6,
            L2Size::M1 => 7,
        }
    }

    /// Short label used in figure output ("256KB", ...).
    pub fn label(self) -> &'static str {
        match self {
            L2Size::K128 => "128KB",
            L2Size::K256 => "256KB",
            L2Size::K512 => "512KB",
            L2Size::K768 => "768KB",
            L2Size::M1 => "1MB",
        }
    }
}

/// DDR3-2133-like main-memory parameters (Table I), in DRAM clock cycles
/// unless noted. Consumed by `ziv-dram`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramParams {
    /// Independent single-channel controllers (Table I: two).
    pub channels: usize,
    /// Ranks per channel.
    pub ranks_per_channel: usize,
    /// Banks per rank.
    pub banks_per_rank: usize,
    /// Row-buffer size in bytes (Table I: 1 KB).
    pub row_bytes: u64,
    /// CAS latency (Table I: 14).
    pub t_cas: u64,
    /// RAS-to-CAS delay (Table I: 14).
    pub t_rcd: u64,
    /// Row precharge (Table I: 14).
    pub t_rp: u64,
    /// Row active time (Table I: 35).
    pub t_ras: u64,
    /// Data burst length in transfers (Table I: BL=8, i.e. 4 DRAM cycles
    /// on a DDR bus).
    pub burst_len: u64,
    /// CPU cycles per DRAM cycle (4 GHz core, 1066 MHz DDR3-2133 clock ≈
    /// 3.75; we carry it as a rational pair to stay in integers).
    pub cpu_cycles_per_dram_cycle_num: u64,
    /// Denominator of the CPU-per-DRAM cycle ratio.
    pub cpu_cycles_per_dram_cycle_den: u64,
}

impl DramParams {
    /// The Table I DDR3-2133 configuration.
    pub fn ddr3_2133() -> Self {
        DramParams {
            channels: 2,
            ranks_per_channel: 2,
            banks_per_rank: 8,
            row_bytes: 1024,
            t_cas: 14,
            t_rcd: 14,
            t_rp: 14,
            t_ras: 35,
            burst_len: 8,
            cpu_cycles_per_dram_cycle_num: 15,
            cpu_cycles_per_dram_cycle_den: 4,
        }
    }

    /// Converts a duration in DRAM cycles to CPU cycles (rounding up).
    #[inline]
    pub fn to_cpu_cycles(&self, dram_cycles: u64) -> u64 {
        (dram_cycles * self.cpu_cycles_per_dram_cycle_num)
            .div_ceil(self.cpu_cycles_per_dram_cycle_den)
    }
}

/// Interconnect parameters: a 2D mesh with per-hop router and link delays
/// (Table I: 1 ns routing, 0.5 ns links at a 4 GHz core clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NocParams {
    /// Router traversal delay per hop, in CPU cycles.
    pub router_cycles: u64,
    /// Link traversal delay per hop, in CPU cycles.
    pub link_cycles: u64,
}

impl NocParams {
    /// The Table I mesh parameters at 4 GHz (1 ns routing = 4 cycles,
    /// 0.5 ns link = 2 cycles).
    pub fn table1() -> Self {
        NocParams {
            router_cycles: 4,
            link_cycles: 2,
        }
    }

    /// Delay of a path with `hops` hops, one way.
    #[inline]
    pub fn one_way(&self, hops: u64) -> u64 {
        hops * (self.router_cycles + self.link_cycles)
    }
}

/// Sparse-directory provisioning relative to the aggregate private
/// last-level (L2) tag count. The paper's default is 2×; Fig 15 sweeps
/// down to 1/4×.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DirRatio {
    /// 2× the aggregate L2 tags (the default).
    X2,
    /// 1× the aggregate L2 tags.
    X1,
    /// Half the aggregate L2 tags.
    Half,
    /// A quarter of the aggregate L2 tags.
    Quarter,
}

impl DirRatio {
    /// All the ratios Fig 15 sweeps, largest first.
    pub const SWEEP: [DirRatio; 4] = [
        DirRatio::X2,
        DirRatio::X1,
        DirRatio::Half,
        DirRatio::Quarter,
    ];

    /// Entries as a multiple of aggregate L2 tags (numerator, denominator).
    pub fn fraction(self) -> (u64, u64) {
        match self {
            DirRatio::X2 => (2, 1),
            DirRatio::X1 => (1, 1),
            DirRatio::Half => (1, 2),
            DirRatio::Quarter => (1, 4),
        }
    }

    /// Label used in figure output.
    pub fn label(self) -> &'static str {
        match self {
            DirRatio::X2 => "2x",
            DirRatio::X1 => "1x",
            DirRatio::Half => "0.5x",
            DirRatio::Quarter => "0.25x",
        }
    }
}

/// Full configuration of the simulated CMP.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemConfig {
    /// Number of cores.
    pub cores: usize,
    /// Per-core L1 instruction cache geometry.
    pub l1i: CacheGeometry,
    /// Per-core L1 data cache geometry.
    pub l1d: CacheGeometry,
    /// Extra latency of an L1 hit beyond the pipelined access, in cycles.
    pub l1_latency: u64,
    /// Per-core private L2 geometry.
    pub l2: CacheGeometry,
    /// L2 lookup latency in cycles.
    pub l2_latency: u64,
    /// Shared LLC configuration.
    pub llc: LlcConfig,
    /// Sparse-directory provisioning ratio.
    pub dir_ratio: DirRatio,
    /// Sparse-directory associativity target (the paper uses 8, widening
    /// to 12 when exact 2× sizing requires it).
    pub dir_base_ways: u8,
    /// Interconnect parameters.
    pub noc: NocParams,
    /// Main-memory parameters.
    pub dram: DramParams,
    /// Base CPI of the core on non-memory work (a 4-wide core ≈ 0.25).
    pub base_cpi: f64,
    /// Capacity scale factor relative to Table I (1 = full scale).
    pub scale_denominator: u64,
}

impl SystemConfig {
    /// The full-scale Table I configuration with the given L2 option.
    pub fn paper_with_l2(l2: L2Size) -> Self {
        Self::build(8, 8 * 1024 * 1024, 16, 8, l2, 1)
    }

    /// The full-scale Table I configuration (256 KB L2 default).
    pub fn paper() -> Self {
        Self::paper_with_l2(L2Size::K256)
    }

    /// The default 1/8-scaled configuration with the given L2 option.
    pub fn scaled_with_l2(l2: L2Size) -> Self {
        Self::build(8, 8 * 1024 * 1024, 16, 8, l2, 8)
    }

    /// The default 1/8-scaled configuration (256 KB-class L2).
    pub fn scaled() -> Self {
        Self::scaled_with_l2(L2Size::K256)
    }

    /// The Fig 14 sensitivity configuration: 16 MB LLC, 1 MB per-core L2
    /// (scaled by the same denominator as [`SystemConfig::scaled`]).
    pub fn big_llc(scale_denominator: u64) -> Self {
        Self::build(8, 16 * 1024 * 1024, 16, 8, L2Size::M1, scale_denominator)
    }

    /// The 128-core TPC-E configuration: 32 MB 16-way LLC, 128 KB L2
    /// (Section IV). `scale_denominator` scales capacities as elsewhere.
    pub fn server_128(scale_denominator: u64) -> Self {
        Self::build(
            128,
            32 * 1024 * 1024,
            16,
            8,
            L2Size::K128,
            scale_denominator,
        )
    }

    fn build(
        cores: usize,
        llc_bytes_full: u64,
        llc_ways: u8,
        llc_banks: usize,
        l2: L2Size,
        scale_denominator: u64,
    ) -> Self {
        let s = scale_denominator;
        let l1_bytes = (32 * 1024) / s;
        let l2_bytes = l2.capacity_bytes() / s;
        let llc_bytes = llc_bytes_full / s;
        SystemConfig {
            cores,
            l1i: CacheGeometry::from_capacity(l1_bytes, 8),
            l1d: CacheGeometry::from_capacity(l1_bytes, 8),
            l1_latency: 0,
            l2: CacheGeometry::from_capacity(l2_bytes, l2.ways()),
            l2_latency: l2.latency(),
            llc: LlcConfig::from_total_capacity(llc_bytes, llc_ways, llc_banks),
            dir_ratio: DirRatio::X2,
            dir_base_ways: 8,
            noc: NocParams::table1(),
            dram: DramParams::ddr3_2133(),
            base_cpi: 0.25,
            scale_denominator: s,
        }
    }

    /// Returns a copy with a different sparse-directory ratio (Fig 15).
    pub fn with_dir_ratio(mut self, ratio: DirRatio) -> Self {
        self.dir_ratio = ratio;
        self
    }

    /// Feeds every behavior-determining field into a stable content
    /// digest (the campaign harness's cell addressing). Two configs
    /// that digest equally produce identical simulations.
    pub fn digest_into(&self, h: &mut crate::digest::Fnv1a) {
        let geom = |h: &mut crate::digest::Fnv1a, g: &CacheGeometry| {
            h.write_u64(g.sets as u64);
            h.write_u64(g.ways as u64);
        };
        h.write_usize(self.cores);
        geom(h, &self.l1i);
        geom(h, &self.l1d);
        h.write_u64(self.l1_latency);
        geom(h, &self.l2);
        h.write_u64(self.l2_latency);
        h.write_usize(self.llc.banks);
        geom(h, &self.llc.bank_geometry);
        h.write_u64(self.llc.tag_latency);
        h.write_u64(self.llc.data_latency);
        let (num, den) = self.dir_ratio.fraction();
        h.write_u64(num);
        h.write_u64(den);
        h.write_u64(self.dir_base_ways as u64);
        h.write_u64(self.noc.router_cycles);
        h.write_u64(self.noc.link_cycles);
        h.write_usize(self.dram.channels);
        h.write_usize(self.dram.ranks_per_channel);
        h.write_usize(self.dram.banks_per_rank);
        h.write_u64(self.dram.row_bytes);
        h.write_u64(self.dram.t_cas);
        h.write_u64(self.dram.t_rcd);
        h.write_u64(self.dram.t_rp);
        h.write_u64(self.dram.t_ras);
        h.write_u64(self.dram.burst_len);
        h.write_u64(self.dram.cpu_cycles_per_dram_cycle_num);
        h.write_u64(self.dram.cpu_cycles_per_dram_cycle_den);
        h.write_f64(self.base_cpi);
        h.write_u64(self.scale_denominator);
    }

    /// Aggregate private L2 tags across all cores.
    pub fn aggregate_l2_tags(&self) -> u64 {
        self.l2.blocks() * self.cores as u64
    }

    /// Sparse-directory slice geometry for the current ratio.
    ///
    /// The paper sizes the directory to `ratio ×` aggregate L2 tags,
    /// sliced evenly across banks, preferring 8-way sets and widening the
    /// associativity when exact sizing requires it (e.g. 2048 × 12 for
    /// the 768 KB L2 point).
    pub fn dir_slice_geometry(&self) -> CacheGeometry {
        let (num, den) = self.dir_ratio.fraction();
        let total = self.aggregate_l2_tags() * num / den;
        let per_slice = (total / self.llc.banks as u64).max(self.dir_base_ways as u64);
        // Largest power-of-two set count that keeps ways >= dir_base_ways.
        let mut sets = (per_slice / self.dir_base_ways as u64).max(1);
        sets = if sets.is_power_of_two() {
            sets
        } else {
            1 << (63 - sets.leading_zeros())
        };
        let ways = (per_slice / sets).clamp(1, 255) as u8;
        CacheGeometry::new(sets as u32, ways)
    }

    /// The home bank of a line.
    #[inline]
    pub fn home_bank(&self, line: LineAddr) -> BankId {
        self.llc.bank_of(line)
    }

    /// Extra LLC-lookup latency (beyond a normal sequential tag+data
    /// lookup) for an access served from a **relocated** block, per the
    /// paper's Section III-C1 CACTI analysis: 1, 2, or 3 cycles for the
    /// 256 KB / 512 KB / 768 KB-class directories.
    pub fn relocated_access_penalty(&self) -> u64 {
        let dir_entries = self.dir_slice_geometry().blocks();
        // Larger directory arrays have longer lookup latency; the paper's
        // CACTI results map the three directory sizes to +1/+2/+3 cycles.
        match dir_entries {
            0..=8192 => 1,
            8193..=16384 => 2,
            _ => 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_capacity_round_trip() {
        let g = CacheGeometry::from_capacity(256 * 1024, 8);
        assert_eq!(g.capacity_bytes(), 256 * 1024);
        assert_eq!(g.sets, 512);
    }

    #[test]
    fn geometry_set_tag_round_trip() {
        let g = CacheGeometry::from_capacity(32 * 1024, 8);
        for raw in [0u64, 1, 63, 64, 12345, 1 << 30] {
            let line = LineAddr::new(raw);
            let set = g.set_of(line);
            let tag = g.tag_of(line);
            assert_eq!(g.line_of(tag, set), line);
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn geometry_rejects_non_pow2_sets() {
        CacheGeometry::new(3, 8);
    }

    #[test]
    fn llc_bank_set_tag_round_trip() {
        let llc = LlcConfig::from_total_capacity(8 * 1024 * 1024, 16, 8);
        for raw in [0u64, 7, 8, 0xdead_beef, (1 << 40) + 5] {
            let line = LineAddr::new(raw);
            let (b, s, t) = (llc.bank_of(line), llc.set_of(line), llc.tag_of(line));
            assert_eq!(llc.line_of(b, s, t), line);
        }
    }

    #[test]
    fn paper_llc_matches_table1() {
        let cfg = SystemConfig::paper();
        assert_eq!(cfg.llc.total_capacity_bytes(), 8 * 1024 * 1024);
        assert_eq!(cfg.llc.banks, 8);
        assert_eq!(cfg.llc.bank_geometry.ways, 16);
        // 1 MB 16-way bank => 1024 sets.
        assert_eq!(cfg.llc.bank_geometry.sets, 1024);
    }

    #[test]
    fn paper_dir_sizes_match_section3c() {
        // Section III-C3: 2x sparse directory has 8192 (1024x8), 16384
        // (2048x8), 24576 (2048x12) entries per slice for the 256/512/768
        // KB L2 configurations.
        let g256 = SystemConfig::paper_with_l2(L2Size::K256).dir_slice_geometry();
        assert_eq!((g256.sets, g256.ways), (1024, 8));
        let g512 = SystemConfig::paper_with_l2(L2Size::K512).dir_slice_geometry();
        assert_eq!((g512.sets, g512.ways), (2048, 8));
        let g768 = SystemConfig::paper_with_l2(L2Size::K768).dir_slice_geometry();
        assert_eq!((g768.sets, g768.ways), (2048, 12));
    }

    #[test]
    fn relocated_penalty_tracks_directory_size() {
        assert_eq!(
            SystemConfig::paper_with_l2(L2Size::K256).relocated_access_penalty(),
            1
        );
        assert_eq!(
            SystemConfig::paper_with_l2(L2Size::K512).relocated_access_penalty(),
            2
        );
        assert_eq!(
            SystemConfig::paper_with_l2(L2Size::K768).relocated_access_penalty(),
            3
        );
    }

    #[test]
    fn scaled_preserves_capacity_ratios() {
        for l2 in L2Size::TABLE1 {
            let full = SystemConfig::paper_with_l2(l2);
            let scaled = SystemConfig::scaled_with_l2(l2);
            let ratio_full = full.aggregate_l2_tags() as f64 / full.llc.total_blocks() as f64;
            let ratio_scaled = scaled.aggregate_l2_tags() as f64 / scaled.llc.total_blocks() as f64;
            assert!((ratio_full - ratio_scaled).abs() < 1e-9);
        }
    }

    #[test]
    fn dir_ratio_sweep_shrinks_directory() {
        let base = SystemConfig::scaled();
        let mut prev = u64::MAX;
        for r in DirRatio::SWEEP {
            let entries = base.clone().with_dir_ratio(r).dir_slice_geometry().blocks();
            assert!(entries < prev, "{r:?} should shrink the directory");
            prev = entries;
        }
    }

    #[test]
    fn dram_cycle_conversion_rounds_up() {
        let d = DramParams::ddr3_2133();
        // 14 DRAM cycles * 15/4 = 52.5 -> 53 CPU cycles.
        assert_eq!(d.to_cpu_cycles(14), 53);
        assert_eq!(d.to_cpu_cycles(0), 0);
    }

    #[test]
    fn noc_one_way_latency() {
        let n = NocParams::table1();
        assert_eq!(n.one_way(3), 18);
    }

    #[test]
    fn server_config_matches_section4() {
        let cfg = SystemConfig::server_128(1);
        assert_eq!(cfg.cores, 128);
        assert_eq!(cfg.llc.total_capacity_bytes(), 32 * 1024 * 1024);
        assert_eq!(cfg.l2.capacity_bytes(), 128 * 1024);
    }

    #[test]
    fn l2_size_table_matches_table1() {
        assert_eq!(L2Size::K256.latency(), 4);
        assert_eq!(L2Size::K512.latency(), 5);
        assert_eq!(L2Size::K768.latency(), 6);
        assert_eq!(L2Size::K768.ways(), 12);
        assert_eq!(L2Size::K256.ways(), 8);
    }
}
