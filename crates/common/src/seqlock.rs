//! Seqlock primitives for single-writer shared-memory records.
//!
//! A seqlock protects a block of plain data words with a single sequence
//! counter: the writer bumps the counter to an *odd* value before touching
//! the data, writes, then bumps it back to *even*. A reader snapshots the
//! counter, copies the data, and re-checks the counter — if the value
//! changed (or was odd to begin with) the copy may be torn and the reader
//! retries. The writer never blocks and never allocates; readers never
//! write, so any number of them can poll a record that lives in a
//! memory-mapped file shared between processes.
//!
//! All data here is `AtomicU64` words accessed with `Relaxed` loads and
//! stores, bracketed by the fences below, so there is no undefined
//! behaviour even when a reader races the writer mid-update — the worst
//! case is a retry. This is the substrate `ziv-telemetry` builds its
//! segment records on.
//!
//! The memory-ordering recipe is the classic one:
//!
//! * writer: `seq.store(odd, Relaxed)`, `fence(Release)`, relaxed data
//!   stores, `seq.store(even, Release)`;
//! * reader: `seq.load(Acquire)`, relaxed data loads, `fence(Acquire)`,
//!   `seq.load(Relaxed)`, compare.

use std::sync::atomic::{fence, AtomicU64, Ordering};

/// How many times [`read`] re-attempts a torn snapshot before giving up.
///
/// A healthy writer holds the odd state for nanoseconds, so a bounded
/// retry loop distinguishes "caught mid-write, try again" from "writer
/// wedged with the sequence odd" without ever spinning forever.
pub const MAX_READ_RETRIES: usize = 64;

/// Begin a write section: bump `seq` to odd and fence so the data stores
/// that follow cannot be observed under the old (even) sequence value.
///
/// Returns the odd in-progress value; pass it to [`end_write`]. The
/// caller must be the *only* writer of this record — the debug assertion
/// catches nested or concurrent writers.
#[inline]
pub fn begin_write(seq: &AtomicU64) -> u64 {
    let s = seq.load(Ordering::Relaxed);
    debug_assert!(s.is_multiple_of(2), "seqlock write section entered twice");
    seq.store(s.wrapping_add(1), Ordering::Relaxed);
    fence(Ordering::Release);
    s.wrapping_add(1)
}

/// End a write section started by [`begin_write`]: publish the new even
/// sequence value with `Release` so readers that observe it also observe
/// every data store made inside the section.
#[inline]
pub fn end_write(seq: &AtomicU64, odd: u64) {
    debug_assert!(
        !odd.is_multiple_of(2),
        "end_write called with an even token"
    );
    seq.store(odd.wrapping_add(1), Ordering::Release);
}

/// Run `f` inside a write section on `seq`.
///
/// `f` should store the record's data words with `Relaxed` ordering; the
/// bracketing done here makes the whole update appear atomic to [`read`].
#[inline]
pub fn write_with<F: FnOnce()>(seq: &AtomicU64, f: F) {
    let odd = begin_write(seq);
    f();
    end_write(seq, odd);
}

/// Take a consistent snapshot of the record guarded by `seq`.
///
/// `f` performs the relaxed data loads and builds the snapshot value; it
/// may run several times (its observations are discarded on a torn read).
/// Returns the snapshot together with the even sequence value it was
/// consistent at, or `None` if `retries` attempts all raced the writer.
#[inline]
pub fn read<T, F: FnMut() -> T>(seq: &AtomicU64, retries: usize, mut f: F) -> Option<(T, u64)> {
    for _ in 0..retries.max(1) {
        let s1 = seq.load(Ordering::Acquire);
        if !s1.is_multiple_of(2) {
            std::hint::spin_loop();
            continue;
        }
        let value = f();
        fence(Ordering::Acquire);
        let s2 = seq.load(Ordering::Relaxed);
        if s1 == s2 {
            return Some((value, s2));
        }
        std::hint::spin_loop();
    }
    None
}

/// Copy `data` words into `out` under the seqlock `seq` (convenience
/// wrapper over [`read`] for slice-shaped records).
pub fn read_words(seq: &AtomicU64, data: &[AtomicU64], out: &mut [u64]) -> Option<u64> {
    assert!(
        out.len() <= data.len(),
        "snapshot buffer larger than record"
    );
    let n = out.len();
    let (_, s) = read(seq, MAX_READ_RETRIES, || {
        for i in 0..n {
            out[i] = data[i].load(Ordering::Relaxed);
        }
    })?;
    Some(s)
}

/// Store `payload` into `data` words under the seqlock `seq`.
pub fn write_words(seq: &AtomicU64, data: &[AtomicU64], payload: &[u64]) {
    assert!(payload.len() <= data.len(), "payload larger than record");
    write_with(seq, || {
        for (slot, value) in data.iter().zip(payload.iter()) {
            slot.store(*value, Ordering::Relaxed);
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atoms(n: usize) -> Vec<AtomicU64> {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let seq = AtomicU64::new(0);
        let data = atoms(4);
        write_words(&seq, &data, &[1, 2, 3, 4]);
        let mut out = [0u64; 4];
        let s = read_words(&seq, &data, &mut out).expect("consistent");
        assert_eq!(out, [1, 2, 3, 4]);
        assert_eq!(s, 2);
        write_words(&seq, &data, &[5, 6, 7, 8]);
        let s = read_words(&seq, &data, &mut out).expect("consistent");
        assert_eq!(out, [5, 6, 7, 8]);
        assert_eq!(s, 4);
    }

    #[test]
    fn odd_sequence_is_reported_as_torn() {
        let seq = AtomicU64::new(3); // writer wedged mid-update
        let data = atoms(2);
        let mut out = [0u64; 2];
        assert_eq!(read_words(&seq, &data, &mut out), None);
    }

    #[test]
    fn sequence_change_mid_read_retries_until_stable() {
        // Simulate one torn attempt by flipping the sequence from inside
        // the reader closure on its first invocation.
        let seq = AtomicU64::new(2);
        let data = atoms(1);
        data[0].store(42, Ordering::Relaxed);
        let mut first = true;
        let result = read(&seq, MAX_READ_RETRIES, || {
            if first {
                first = false;
                seq.store(4, Ordering::Release); // moves on while we read
            }
            data[0].load(Ordering::Relaxed)
        });
        let (value, s) = result.expect("second attempt is stable");
        assert_eq!(value, 42);
        assert_eq!(s, 4);
    }

    #[test]
    fn write_with_brackets_sequence() {
        let seq = AtomicU64::new(0);
        write_with(&seq, || {
            assert_eq!(seq.load(Ordering::Relaxed) % 2, 1);
        });
        assert_eq!(seq.load(Ordering::Relaxed), 2);
    }
}
