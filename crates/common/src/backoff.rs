//! Deterministic retry backoff for the campaign supervisor.
//!
//! A [`BackoffSchedule`] maps a 1-based attempt number to a delay that is
//! *monotone* (later attempts never wait less), *bounded* (never above
//! `max_ms`), and *deterministic per seed* (the jitter is a pure function
//! of `(seed, attempt)`, so a replayed campaign waits the same schedule).
//! [`RetryPolicy`] pairs a schedule with an attempt cap and the
//! transience test from [`SimError::is_transient`].

use crate::error::SimError;

/// Exponential backoff with bounded deterministic jitter.
///
/// The core delay for attempt `n` (1-based) is `base_ms · 2^(n-1)`,
/// saturating; a jitter strictly below `base_ms / 2 + 1` is added, and
/// the sum is clamped to `max_ms`. Because the core at least doubles
/// while the jitter stays below one `base_ms`, the sequence is monotone
/// non-decreasing even across jitter draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    /// Delay before the first retry, in milliseconds.
    pub base_ms: u64,
    /// Upper bound on any single delay, in milliseconds.
    pub max_ms: u64,
    /// Seed for the deterministic jitter.
    pub seed: u64,
}

impl BackoffSchedule {
    /// A schedule suited to transient filesystem hiccups: 50ms base,
    /// 2s cap.
    pub fn standard(seed: u64) -> Self {
        BackoffSchedule {
            base_ms: 50,
            max_ms: 2_000,
            seed,
        }
    }

    /// The delay, in milliseconds, to sleep before retry `attempt`
    /// (1-based: `attempt = 1` is the delay after the first failure).
    /// `attempt = 0` is treated as 1.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let attempt = attempt.max(1);
        let core = self
            .base_ms
            .checked_shl(attempt - 1)
            .unwrap_or(u64::MAX)
            .min(self.max_ms);
        let span = self.base_ms / 2 + 1;
        let jitter = jitter_hash(self.seed, attempt) % span;
        core.saturating_add(jitter).min(self.max_ms)
    }
}

/// SplitMix64 finalizer over `(seed, attempt)` — a cheap, well-mixed,
/// dependency-free hash for jitter draws.
fn jitter_hash(seed: u64, attempt: u32) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(attempt).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// When (and how often) the supervisor re-runs a failed cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts allowed per cell, including the first. `1` means
    /// no retries.
    pub max_attempts: u32,
    /// Delay schedule between attempts.
    pub backoff: BackoffSchedule,
}

impl RetryPolicy {
    /// No retries: every cell gets exactly one attempt.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            backoff: BackoffSchedule::standard(0),
        }
    }

    /// Up to `retries` re-runs after the first attempt, with the
    /// standard schedule jittered by `seed`.
    pub fn with_retries(retries: u32, seed: u64) -> Self {
        RetryPolicy {
            max_attempts: retries.saturating_add(1),
            backoff: BackoffSchedule::standard(seed),
        }
    }

    /// Whether a failure on `attempt` (1-based) should be retried:
    /// the error must be transient and attempts must remain.
    pub fn should_retry(&self, error: &SimError, attempt: u32) -> bool {
        error.is_transient() && attempt < self.max_attempts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_monotone_and_bounded() {
        for seed in [0u64, 1, 0x2026, u64::MAX] {
            let s = BackoffSchedule {
                base_ms: 50,
                max_ms: 2_000,
                seed,
            };
            let mut prev = 0;
            for attempt in 1..=40 {
                let d = s.delay_ms(attempt);
                assert!(d <= s.max_ms, "attempt {attempt} delay {d} over cap");
                assert!(d >= prev, "attempt {attempt}: {d} < previous {prev}");
                prev = d;
            }
        }
    }

    #[test]
    fn schedule_is_deterministic_per_seed() {
        let a = BackoffSchedule::standard(7);
        let b = BackoffSchedule::standard(7);
        let c = BackoffSchedule::standard(8);
        let seq = |s: &BackoffSchedule| (1..=10).map(|n| s.delay_ms(n)).collect::<Vec<_>>();
        assert_eq!(seq(&a), seq(&b));
        assert_ne!(seq(&a), seq(&c), "different seeds should jitter apart");
    }

    #[test]
    fn zero_base_never_waits() {
        let s = BackoffSchedule {
            base_ms: 0,
            max_ms: 100,
            seed: 3,
        };
        assert_eq!(s.delay_ms(1), 0);
        assert_eq!(s.delay_ms(30), 0);
    }

    #[test]
    fn huge_attempt_saturates_at_cap() {
        let s = BackoffSchedule::standard(0);
        assert_eq!(s.delay_ms(63), s.max_ms);
        assert_eq!(s.delay_ms(u32::MAX), s.max_ms);
    }

    #[test]
    fn policy_retries_only_transient_errors_within_budget() {
        let p = RetryPolicy::with_retries(2, 0x2026);
        assert_eq!(p.max_attempts, 3);
        let io = SimError::io("write", "/tmp/x", std::io::Error::other("disk full"));
        assert!(p.should_retry(&io, 1));
        assert!(p.should_retry(&io, 2));
        assert!(!p.should_retry(&io, 3), "attempt cap must hold");
        let cfg = SimError::Config("bad".into());
        assert!(!p.should_retry(&cfg, 1), "deterministic errors never retry");
        assert!(!RetryPolicy::none().should_retry(&io, 1));
    }
}
