//! Stable content digests for experiment-cell addressing.
//!
//! The campaign harness addresses each `(RunSpec, workload recipe)`
//! cell by a 64-bit FNV-1a digest over the cell's *semantic* fields.
//! The digest must be identical across processes, thread counts, and
//! machines, so everything fed into it goes through the explicit,
//! byte-ordered `write_*` methods below — never through `std::hash`
//! (whose `Hasher` values are allowed to vary between executions).

/// A 64-bit FNV-1a streaming hasher.
///
/// # Examples
///
/// ```
/// use ziv_common::digest::Fnv1a;
///
/// let mut h = Fnv1a::new();
/// h.write_str("hello");
/// h.write_u64(42);
/// let a = h.finish();
/// let mut h2 = Fnv1a::new();
/// h2.write_str("hello");
/// h2.write_u64(42);
/// assert_eq!(a, h2.finish());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fnv1a(u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv1a {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv1a {
    /// Creates a hasher at the FNV-1a offset basis.
    pub fn new() -> Self {
        Fnv1a(FNV_OFFSET)
    }

    /// Feeds raw bytes.
    #[inline]
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    /// Feeds a string, length-prefixed so adjacent fields cannot alias
    /// (`"ab" + "c"` digests differently from `"a" + "bc"`).
    #[inline]
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Feeds a `u64` in little-endian byte order.
    #[inline]
    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Feeds a `usize` (widened to `u64` so 32- and 64-bit hosts agree).
    #[inline]
    pub fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }

    /// Feeds a boolean.
    #[inline]
    pub fn write_bool(&mut self, v: bool) {
        self.write_bytes(&[v as u8]);
    }

    /// Feeds an `f64` by its IEEE-754 bit pattern (exact, not lossy).
    #[inline]
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// The digest of everything written so far.
    #[inline]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_known_fnv1a_vectors() {
        // Classic FNV-1a test vectors (64-bit).
        let mut h = Fnv1a::new();
        h.write_bytes(b"");
        assert_eq!(h.finish(), 0xcbf29ce484222325);
        let mut h = Fnv1a::new();
        h.write_bytes(b"a");
        assert_eq!(h.finish(), 0xaf63dc4c8601ec8c);
        let mut h = Fnv1a::new();
        h.write_bytes(b"foobar");
        assert_eq!(h.finish(), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_prevents_field_aliasing() {
        let mut a = Fnv1a::new();
        a.write_str("ab");
        a.write_str("c");
        let mut b = Fnv1a::new();
        b.write_str("a");
        b.write_str("bc");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn scalar_writes_are_deterministic() {
        let digest = |f: &dyn Fn(&mut Fnv1a)| {
            let mut h = Fnv1a::new();
            f(&mut h);
            h.finish()
        };
        assert_eq!(
            digest(&|h| {
                h.write_u64(7);
                h.write_bool(true);
                h.write_f64(0.25);
            }),
            digest(&|h| {
                h.write_u64(7);
                h.write_bool(true);
                h.write_f64(0.25);
            }),
        );
        assert_ne!(
            digest(&|h| h.write_f64(0.25)),
            digest(&|h| h.write_f64(0.5))
        );
    }
}
