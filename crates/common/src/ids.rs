//! Small identifier newtypes used throughout the simulator.

use std::fmt;

/// Identifies one processing core of the simulated CMP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(u16);

impl CoreId {
    /// Creates a core identifier.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::ids::CoreId;
    /// assert_eq!(CoreId::new(3).index(), 3);
    /// ```
    #[inline]
    pub const fn new(index: usize) -> Self {
        CoreId(index as u16)
    }

    /// The zero-based index of this core.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

/// Identifies one bank of the shared LLC (and its associated sparse
/// directory slice — the paper co-locates a directory slice with each
/// LLC bank, Section III-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BankId(u16);

impl BankId {
    /// Creates a bank identifier.
    #[inline]
    pub const fn new(index: usize) -> Self {
        BankId(index as u16)
    }

    /// The zero-based index of this bank.
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for BankId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bank{}", self.0)
    }
}

/// A way index within one cache set.
pub type WayIdx = u8;

/// A set index within one cache bank.
pub type SetIdx = u32;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_round_trips() {
        for i in [0usize, 1, 7, 127] {
            assert_eq!(CoreId::new(i).index(), i);
        }
    }

    #[test]
    fn bank_id_round_trips() {
        assert_eq!(BankId::new(5).index(), 5);
    }

    #[test]
    fn ids_order_by_index() {
        assert!(CoreId::new(1) < CoreId::new(2));
        assert!(BankId::new(0) < BankId::new(7));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(CoreId::new(2).to_string(), "core2");
        assert_eq!(BankId::new(3).to_string(), "bank3");
    }
}
