//! Typed errors for the simulation run path.
//!
//! Everything that can go wrong while building, running, or persisting an
//! experiment is funneled into [`SimError`] so faults propagate as values
//! instead of panics: the campaign runner records a failing cell and keeps
//! going, and `zivsim replay` can reconstruct the exact failure later.
//!
//! [`AuditViolation`] lives here (rather than next to the auditor in
//! `ziv-core`) so that `SimError` can carry one without this crate growing
//! a dependency on the model.

use crate::LineAddr;
use std::fmt;
use std::path::{Path, PathBuf};

/// The category of invariant an audit walk found violated.
///
/// The discriminant names are stable strings (see
/// [`ViolationKind::as_str`]) because failure records serialize them to
/// JSON and `zivsim replay` compares them across processes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ViolationKind {
    /// A valid private-cache line has no sparse-directory entry.
    UntrackedPrivateLine,
    /// A valid private-cache line's directory entry exists but the core's
    /// sharer bit is clear.
    MissingSharerBit,
    /// A directory entry claims a sharer whose private caches do not
    /// actually hold the block.
    StaleSharerBit,
    /// Under an inclusive mode, a privately cached block has neither a
    /// home LLC copy nor a tracked relocated copy (an inclusion hole).
    InclusionHole,
    /// A directory `Relocated` pointer does not land on an LLC block in
    /// relocated state for that line, or a relocated LLC block is not
    /// pointed at by its directory entry.
    DanglingRelocation,
    /// An LLC block's `not_in_prc` hint disagrees with the directory's
    /// private-residency answer.
    NotInPrcMismatch,
    /// A directory entry's dirty owner is not a member of its sharer set.
    OwnerNotSharer,
    /// ZIV mode generated an inclusion victim without accounting for it
    /// as a relocation-set-exhaustion fallback — the zero-inclusion-victim
    /// guarantee was violated.
    ZivGuarantee,
    /// A metric conservation law failed (e.g. hits + misses != accesses).
    MetricConservation,
}

impl ViolationKind {
    /// Stable string form used in failure records and ledger entries.
    pub fn as_str(self) -> &'static str {
        match self {
            ViolationKind::UntrackedPrivateLine => "untracked-private-line",
            ViolationKind::MissingSharerBit => "missing-sharer-bit",
            ViolationKind::StaleSharerBit => "stale-sharer-bit",
            ViolationKind::InclusionHole => "inclusion-hole",
            ViolationKind::DanglingRelocation => "dangling-relocation",
            ViolationKind::NotInPrcMismatch => "not-in-prc-mismatch",
            ViolationKind::OwnerNotSharer => "owner-not-sharer",
            ViolationKind::ZivGuarantee => "ziv-guarantee",
            ViolationKind::MetricConservation => "metric-conservation",
        }
    }

    /// Parses the stable string form back (for replaying failure records).
    pub fn from_str_opt(s: &str) -> Option<Self> {
        Some(match s {
            "untracked-private-line" => ViolationKind::UntrackedPrivateLine,
            "missing-sharer-bit" => ViolationKind::MissingSharerBit,
            "stale-sharer-bit" => ViolationKind::StaleSharerBit,
            "inclusion-hole" => ViolationKind::InclusionHole,
            "dangling-relocation" => ViolationKind::DanglingRelocation,
            "not-in-prc-mismatch" => ViolationKind::NotInPrcMismatch,
            "owner-not-sharer" => ViolationKind::OwnerNotSharer,
            "ziv-guarantee" => ViolationKind::ZivGuarantee,
            "metric-conservation" => ViolationKind::MetricConservation,
            _ => return None,
        })
    }
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A single invariant violation found by an audit walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// Which invariant failed.
    pub kind: ViolationKind,
    /// 0-based index of the access after which the violation was first
    /// observed (the auditor runs between accesses, so this is the index
    /// of the access that completed immediately before detection).
    pub access_index: u64,
    /// The block involved, when the violation is about a specific block.
    pub line: Option<LineAddr>,
    /// Human-readable description of the mismatch.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "audit violation [{}] after access {}",
            self.kind, self.access_index
        )?;
        if let Some(line) = self.line {
            write!(f, " (line {:#x})", line.raw())?;
        }
        write!(f, ": {}", self.detail)
    }
}

/// Typed error for the simulation run path.
///
/// Carries enough context (paths, line numbers, access indices) that a
/// failing campaign cell can be recorded, reported, and deterministically
/// replayed without a debugger.
#[derive(Debug)]
#[non_exhaustive]
pub enum SimError {
    /// An I/O operation failed; `context` says what we were doing.
    Io {
        /// What operation failed (e.g. "create results dir").
        context: String,
        /// The file or directory involved.
        path: PathBuf,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// A text input (trace file, ledger line, repro record) failed to
    /// parse.
    Parse {
        /// The file the input came from, when known.
        path: Option<PathBuf>,
        /// 1-based line number of the offending line (0 when the error is
        /// not tied to a line, e.g. "empty file").
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// An invalid configuration or CLI request.
    Config(String),
    /// An audit walk found the model in an inconsistent state.
    Audit(AuditViolation),
    /// A cell exceeded its cycle budget — the watchdog verdict for a
    /// livelocked or pathologically slow model.
    BudgetExceeded {
        /// The per-core cycle budget that was in force.
        budget_cycles: u64,
        /// The core whose clock crossed the budget.
        core: usize,
        /// That core's cycle count when the watchdog fired.
        cycles: u64,
        /// 0-based global index of the access that crossed the budget.
        access_index: u64,
    },
    /// A cell was cancelled by the supervisor — its wall-clock or
    /// access-count budget expired while the cell was still running.
    Timeout {
        /// Why the supervisor fired (e.g. "wall-clock budget 5000ms
        /// exceeded" or "access deadline 1000 reached").
        reason: String,
        /// 0-based global index of the last access the cell had issued
        /// when the cancellation was observed.
        access_index: u64,
    },
    /// The cell's worker panicked; the panic was contained by the
    /// supervisor and converted into this error instead of taking the
    /// whole campaign down.
    Internal(String),
}

impl SimError {
    /// Convenience constructor for I/O errors with path context.
    pub fn io(context: impl Into<String>, path: impl AsRef<Path>, source: std::io::Error) -> Self {
        SimError::Io {
            context: context.into(),
            path: path.as_ref().to_path_buf(),
            source,
        }
    }

    /// Convenience constructor for parse errors with file context.
    pub fn parse(path: Option<&Path>, line: usize, message: impl Into<String>) -> Self {
        SimError::Parse {
            path: path.map(Path::to_path_buf),
            line,
            message: message.into(),
        }
    }

    /// The audit violation carried by this error, if it is one.
    pub fn violation(&self) -> Option<&AuditViolation> {
        match self {
            SimError::Audit(v) => Some(v),
            _ => None,
        }
    }

    /// Short machine-readable tag for ledgers and failure records.
    pub fn kind_tag(&self) -> &'static str {
        match self {
            SimError::Io { .. } => "io",
            SimError::Parse { .. } => "parse",
            SimError::Config(_) => "config",
            SimError::Audit(_) => "audit",
            SimError::BudgetExceeded { .. } => "budget-exceeded",
            SimError::Timeout { .. } => "timeout",
            SimError::Internal(_) => "internal",
        }
    }

    /// The access index at which the failure was detected, when the
    /// failure is tied to one (audit violations and watchdog trips).
    pub fn access_index(&self) -> Option<u64> {
        match self {
            SimError::Audit(v) => Some(v.access_index),
            SimError::BudgetExceeded { access_index, .. } => Some(*access_index),
            SimError::Timeout { access_index, .. } => Some(*access_index),
            _ => None,
        }
    }

    /// Whether retrying the same cell could plausibly succeed.
    ///
    /// Only I/O errors qualify: a full disk, a transient NFS hiccup, or
    /// an EINTR-class failure can clear between attempts. Everything
    /// else — audit violations, budget trips, timeouts, panics, bad
    /// configs — is deterministic, so the supervisor's retry policy
    /// must not burn attempts on it.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Io { .. })
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Io {
                context,
                path,
                source,
            } => write!(f, "{context} ({}): {source}", path.display()),
            SimError::Parse {
                path,
                line,
                message,
            } => {
                match path {
                    Some(p) => write!(f, "parse error in {}", p.display())?,
                    None => write!(f, "parse error")?,
                }
                if *line > 0 {
                    write!(f, " at line {line}")?;
                }
                write!(f, ": {message}")
            }
            SimError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            SimError::Audit(v) => v.fmt(f),
            SimError::BudgetExceeded {
                budget_cycles,
                core,
                cycles,
                access_index,
            } => write!(
                f,
                "cell budget exceeded: core {core} at {cycles} cycles \
                 (budget {budget_cycles}) after access {access_index} — \
                 livelocked or pathologically slow model"
            ),
            SimError::Timeout {
                reason,
                access_index,
            } => write!(
                f,
                "cell cancelled by supervisor after access {access_index}: {reason}"
            ),
            SimError::Internal(msg) => write!(f, "internal error (contained panic): {msg}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<AuditViolation> for SimError {
    fn from(v: AuditViolation) -> Self {
        SimError::Audit(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_kind_round_trips_through_strings() {
        let kinds = [
            ViolationKind::UntrackedPrivateLine,
            ViolationKind::MissingSharerBit,
            ViolationKind::StaleSharerBit,
            ViolationKind::InclusionHole,
            ViolationKind::DanglingRelocation,
            ViolationKind::NotInPrcMismatch,
            ViolationKind::OwnerNotSharer,
            ViolationKind::ZivGuarantee,
            ViolationKind::MetricConservation,
        ];
        for k in kinds {
            assert_eq!(ViolationKind::from_str_opt(k.as_str()), Some(k));
        }
        assert_eq!(ViolationKind::from_str_opt("nonsense"), None);
    }

    #[test]
    fn display_includes_context() {
        let v = AuditViolation {
            kind: ViolationKind::InclusionHole,
            access_index: 42,
            line: Some(LineAddr::new(0x40)),
            detail: "no LLC copy".into(),
        };
        let s = SimError::from(v).to_string();
        assert!(s.contains("inclusion-hole"), "{s}");
        assert!(s.contains("access 42"), "{s}");
        assert!(s.contains("0x40"), "{s}");

        let io = SimError::io(
            "open trace",
            "/tmp/t.trace",
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone"),
        );
        assert!(io.to_string().contains("/tmp/t.trace"));
        assert_eq!(io.kind_tag(), "io");

        let p = SimError::parse(Some(Path::new("x.csv")), 7, "bad field");
        assert!(p.to_string().contains("line 7"), "{p}");
    }

    #[test]
    fn access_index_is_surfaced_for_replayable_errors() {
        let v = AuditViolation {
            kind: ViolationKind::StaleSharerBit,
            access_index: 9,
            line: None,
            detail: String::new(),
        };
        assert_eq!(SimError::from(v).access_index(), Some(9));
        let b = SimError::BudgetExceeded {
            budget_cycles: 10,
            core: 1,
            cycles: 20,
            access_index: 3,
        };
        assert_eq!(b.access_index(), Some(3));
        assert_eq!(SimError::Config("x".into()).access_index(), None);
        let t = SimError::Timeout {
            reason: "wall-clock budget 10ms exceeded".into(),
            access_index: 17,
        };
        assert_eq!(t.access_index(), Some(17));
        assert_eq!(t.kind_tag(), "timeout");
        assert!(t.to_string().contains("access 17"), "{t}");
        let i = SimError::Internal("index out of bounds".into());
        assert_eq!(i.kind_tag(), "internal");
        assert_eq!(i.access_index(), None);
    }

    #[test]
    fn only_io_errors_are_transient() {
        let io = SimError::io(
            "append ledger",
            "/tmp/ledger.jsonl",
            std::io::Error::new(std::io::ErrorKind::Interrupted, "EINTR"),
        );
        assert!(io.is_transient());
        for err in [
            SimError::Config("x".into()),
            SimError::parse(None, 0, "bad"),
            SimError::Timeout {
                reason: "deadline".into(),
                access_index: 0,
            },
            SimError::Internal("boom".into()),
            SimError::BudgetExceeded {
                budget_cycles: 1,
                core: 0,
                cycles: 2,
                access_index: 0,
            },
        ] {
            assert!(!err.is_transient(), "{err}");
        }
    }
}
