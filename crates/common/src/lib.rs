//! # ziv-common
//!
//! Shared foundation types for the ZIV (Zero Inclusion Victim) LLC
//! reproduction: physical addresses and cache geometry, system
//! configuration (the paper's Table I, both at full scale and at the
//! default 1/8 scale), deterministic random number generation, and
//! statistics helpers used by the simulator and the benchmark harness.
//!
//! Everything in this crate is policy-free: it knows nothing about
//! replacement policies, coherence, or the ZIV mechanism itself.
//!
//! # Examples
//!
//! ```
//! use ziv_common::{config::SystemConfig, addr::LineAddr};
//!
//! let cfg = SystemConfig::scaled();
//! let line = LineAddr::new(0x4_2000 >> 6);
//! let bank = cfg.llc.bank_of(line);
//! assert!(bank.index() < cfg.llc.banks);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod addr;
pub mod backoff;
pub mod config;
pub mod digest;
pub mod error;
pub mod fsutil;
pub mod ids;
pub mod json;
pub mod rng;
pub mod seqlock;
pub mod stats;

pub use addr::{Addr, LineAddr};
pub use backoff::{BackoffSchedule, RetryPolicy};
pub use config::{CacheGeometry, L2Size, LlcConfig, SystemConfig};
pub use digest::Fnv1a;
pub use error::{AuditViolation, SimError, ViolationKind};
pub use ids::{BankId, CoreId, WayIdx};
pub use rng::SimRng;

/// A simulation clock value, in CPU cycles.
///
/// Kept as a plain alias (rather than a newtype) because cycle values are
/// combined arithmetically on the simulator's hottest paths.
pub type Cycle = u64;
