//! A minimal, dependency-free JSON representation used by the result
//! ledger (`ziv-harness`) and the `Metrics` round-trip.
//!
//! Design constraints (why this exists instead of serde):
//!
//! - the build must stay offline / dependency-free;
//! - `u64` counters must round-trip **exactly** (a plain `f64` number
//!   type silently corrupts counts above 2^53), so [`Number`] keeps
//!   integers and floats in separate variants;
//! - `f64` fields round-trip exactly too: the emitter uses Rust's
//!   shortest-round-trip formatting and the parser `str::parse`s it
//!   back to the identical bit pattern;
//! - object key order is preserved (ledger lines stay byte-stable).
//!
//! # Examples
//!
//! ```
//! use ziv_common::json::{parse, JsonValue};
//!
//! let v = parse(r#"{"hits": 18446744073709551615, "rate": 0.1}"#).unwrap();
//! assert_eq!(v.get("hits").and_then(JsonValue::as_u64), Some(u64::MAX));
//! assert_eq!(parse(&v.to_string()).unwrap(), v);
//! ```

use std::fmt;

/// A JSON number: exact unsigned integers kept apart from floats.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// A non-negative integer literal (no fraction, no exponent).
    U64(u64),
    /// Any other numeric literal.
    F64(f64),
}

/// A parsed or constructed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Num(Number),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object, with key order preserved.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Constructs an exact integer number.
    pub fn u64(v: u64) -> Self {
        JsonValue::Num(Number::U64(v))
    }

    /// Constructs a float number.
    pub fn f64(v: f64) -> Self {
        JsonValue::Num(Number::F64(v))
    }

    /// Constructs a string value.
    pub fn str(v: impl Into<String>) -> Self {
        JsonValue::Str(v.into())
    }

    /// Looks up a key in an object; `None` for non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is a `Number::U64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(Number::U64(v)) => Some(*v as f64),
            JsonValue::Num(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

impl fmt::Display for JsonValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonValue::Null => f.write_str("null"),
            JsonValue::Bool(b) => write!(f, "{b}"),
            JsonValue::Num(Number::U64(v)) => write!(f, "{v}"),
            JsonValue::Num(Number::F64(v)) => {
                if v.is_finite() {
                    // `{:?}` is Rust's shortest round-trip float form;
                    // it always includes a '.' or 'e' so the parser
                    // reads it back as F64, preserving the variant.
                    write!(f, "{v:?}")
                } else {
                    // JSON has no inf/NaN; encode as null (parsed back
                    // as an error by the typed readers, which is the
                    // honest outcome for a poisoned metric).
                    f.write_str("null")
                }
            }
            JsonValue::Str(s) => {
                let mut buf = String::with_capacity(s.len() + 2);
                escape_into(&mut buf, s);
                f.write_str(&buf)
            }
            JsonValue::Arr(items) => {
                f.write_str("[")?;
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str("]")
            }
            JsonValue::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    let mut key = String::with_capacity(k.len() + 2);
                    escape_into(&mut key, k);
                    write!(f, "{key}:{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message with the byte offset of the first syntax error,
/// or on trailing non-whitespace input.
pub fn parse(input: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing input at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') if self.eat_literal("true") => Ok(JsonValue::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(JsonValue::Bool(false)),
            Some(b'n') if self.eat_literal("null") => Ok(JsonValue::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            fields.push((key, v));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| format!("invalid UTF-8 at byte {start}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the
                            // ledger (we never emit them); reject.
                            let c = char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                _ => return Err("unterminated string".into()),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number bytes".to_string())?;
        if !is_float && !text.starts_with('-') {
            if let Ok(v) = text.parse::<u64>() {
                return Ok(JsonValue::u64(v));
            }
        }
        text.parse::<f64>()
            .map(JsonValue::f64)
            .map_err(|e| format!("bad number '{text}': {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        for src in [
            "null",
            "true",
            "false",
            "0",
            "12345",
            "18446744073709551615",
        ] {
            let v = parse(src).unwrap();
            assert_eq!(v.to_string(), src);
        }
        assert_eq!(
            parse("18446744073709551615").unwrap().as_u64(),
            Some(u64::MAX)
        );
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [0.25f64, 1.0 / 3.0, 1e300, -4.75e-12, f64::MIN_POSITIVE] {
            let v = JsonValue::f64(x);
            let back = parse(&v.to_string()).unwrap();
            assert_eq!(back.as_f64().unwrap().to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn strings_escape_and_parse() {
        let s = "say \"hi\"\\ \n\tctrl:\u{1}";
        let v = JsonValue::str(s);
        assert_eq!(parse(&v.to_string()).unwrap().as_str(), Some(s));
    }

    #[test]
    fn nested_structures_round_trip() {
        let src = r#"{"a":[1,2.5,"x"],"b":{"c":null,"d":true}}"#;
        let v = parse(src).unwrap();
        assert_eq!(v.to_string(), src);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("d").unwrap().as_bool(), Some(true));
    }

    #[test]
    fn integers_and_floats_stay_distinct() {
        let v = parse("[1, 1.0]").unwrap();
        let items = v.as_array().unwrap();
        assert_eq!(items[0].as_u64(), Some(1));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[1].as_f64(), Some(1.0));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", "{1:2}"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn whitespace_is_tolerated() {
        let v = parse(" { \"a\" : [ 1 , 2 ] } ").unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 2);
    }

    #[test]
    fn nonfinite_floats_serialize_as_null() {
        assert_eq!(JsonValue::f64(f64::NAN).to_string(), "null");
        assert_eq!(JsonValue::f64(f64::INFINITY).to_string(), "null");
    }
}
