//! Physical addresses and cache-line addresses.
//!
//! The simulated machine uses 48-bit physical addresses and 64-byte cache
//! blocks, matching the paper's Section III-C3 storage analysis. Two
//! newtypes keep byte addresses and line (block) addresses statically
//! distinct: confusing the two is a classic cache-simulator bug.

use std::fmt;

/// log2 of the cache block size in bytes (64-byte blocks).
pub const LINE_SHIFT: u32 = 6;

/// Cache block size in bytes.
pub const LINE_BYTES: u64 = 1 << LINE_SHIFT;

/// Number of physical address bits modeled (the paper assumes 48).
pub const PHYS_ADDR_BITS: u32 = 48;

/// A byte-granularity physical address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates a physical byte address.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::addr::Addr;
    /// let a = Addr::new(0x1040);
    /// assert_eq!(a.line().raw(), 0x41);
    /// ```
    #[inline]
    pub const fn new(raw: u64) -> Self {
        Addr(raw & ((1 << PHYS_ADDR_BITS) - 1))
    }

    /// The raw 48-bit address value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The cache line containing this byte.
    #[inline]
    pub const fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }

    /// Offset of this byte within its cache line.
    #[inline]
    pub const fn line_offset(self) -> u64 {
        self.0 & (LINE_BYTES - 1)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr::new(raw)
    }
}

/// A cache-line (block) address: a byte address shifted right by
/// [`LINE_SHIFT`].
///
/// All cache structures in the simulator operate on `LineAddr`; only the
/// workload generators deal in byte addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineAddr(u64);

impl LineAddr {
    /// Creates a line address from its raw (already shifted) value.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::addr::{Addr, LineAddr};
    /// assert_eq!(LineAddr::new(0x41), Addr::new(0x1040).line());
    /// ```
    #[inline]
    pub const fn new(raw: u64) -> Self {
        LineAddr(raw & ((1 << (PHYS_ADDR_BITS - LINE_SHIFT)) - 1))
    }

    /// The raw line-address value (byte address / 64).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// The first byte address of this line.
    #[inline]
    pub const fn base_addr(self) -> Addr {
        Addr(self.0 << LINE_SHIFT)
    }

    /// The line `n` lines after this one (wrapping within the physical
    /// address space).
    #[inline]
    pub const fn offset(self, n: u64) -> LineAddr {
        LineAddr::new(self.0.wrapping_add(n))
    }
}

impl fmt::Display for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

impl fmt::LowerHex for LineAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for LineAddr {
    fn from(raw: u64) -> Self {
        LineAddr::new(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addr_masks_to_48_bits() {
        let a = Addr::new(u64::MAX);
        assert_eq!(a.raw(), (1 << 48) - 1);
    }

    #[test]
    fn line_extraction() {
        let a = Addr::new(0x1234_5678);
        assert_eq!(a.line().raw(), 0x1234_5678 >> 6);
        assert_eq!(a.line_offset(), 0x38);
    }

    #[test]
    fn line_base_addr_round_trips() {
        let l = LineAddr::new(0xdead_beef);
        assert_eq!(l.base_addr().line(), l);
        assert_eq!(l.base_addr().line_offset(), 0);
    }

    #[test]
    fn line_offset_wraps_in_phys_space() {
        let max = LineAddr::new((1 << (PHYS_ADDR_BITS - LINE_SHIFT)) - 1);
        assert_eq!(max.offset(1), LineAddr::new(0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Addr::new(0x40).to_string(), "0x40");
        assert_eq!(LineAddr::new(0x1).to_string(), "L0x1");
        assert_eq!(format!("{:x}", Addr::new(0xff)), "ff");
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(Addr::from(64u64), Addr::new(64));
        assert_eq!(LineAddr::from(7u64), LineAddr::new(7));
    }
}
