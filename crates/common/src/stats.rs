//! Statistics helpers: histograms (used for the Fig 18 relocation-interval
//! CDF), and aggregate summaries (geometric means, speedup ranges) used by
//! the experiment harness.

use std::fmt;

/// Geometric mean of a non-empty set of positive values.
///
/// Returns `None` for an empty input or if any value is non-positive.
///
/// # Examples
///
/// ```
/// use ziv_common::stats::geomean;
/// let g = geomean([2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean; `None` for empty input.
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Summary of a set of per-workload results: mean, min, max — the paper's
/// figures annotate bars with the observed range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Geometric mean over workloads.
    pub gmean: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of workloads aggregated.
    pub count: usize,
}

impl Summary {
    /// Builds a summary; returns `None` if `values` is empty or any value
    /// is non-positive (speedups are always positive).
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let gmean = geomean(values.iter().copied())?;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            gmean,
            min,
            max,
            count: values.len(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} [{:.3}..{:.3}] (n={})",
            self.gmean, self.min, self.max, self.count
        )
    }
}

/// A power-of-two-bucketed histogram of u64 samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(max(v,1))) == i`;
/// matches the log-scaled x-axis of the paper's Fig 18.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Records a sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::stats::Log2Histogram;
    /// let mut h = Log2Histogram::new();
    /// h.record(5); // bucket 2 (4..8)
    /// assert_eq!(h.count_in_bucket(2), 1);
    /// ```
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `log2`.
    pub fn count_in_bucket(&self, log2: usize) -> u64 {
        self.buckets.get(log2).copied().unwrap_or(0)
    }

    /// Cumulative fraction of samples with `log2(value) <= log2`.
    /// Returns 0.0 when the histogram is empty.
    pub fn cdf_at(&self, log2: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.buckets.iter().take(log2 + 1).sum();
        c as f64 / self.total as f64
    }

    /// Fraction of samples strictly below `2^threshold_log2`.
    /// (Used for the paper's "fraction of relocation intervals < 5
    /// cycles" observation.) Because bucket `i` holds exactly the values
    /// in `[2^i, 2^(i+1))`, a power-of-two threshold lands on a bucket
    /// boundary and the result is **exact**: every sample in buckets
    /// `0..threshold_log2` is strictly below the threshold, and no
    /// sample in later buckets is.
    pub fn fraction_below_pow2(&self, threshold_log2: usize) -> f64 {
        if threshold_log2 == 0 {
            return 0.0;
        }
        self.cdf_at(threshold_log2 - 1)
    }

    /// The largest non-empty bucket index, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The raw per-bucket counts (index = log2 bucket), for
    /// serialization.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts (the inverse of
    /// [`Log2Histogram::buckets`]); missing trailing buckets are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 buckets are provided.
    pub fn from_buckets(counts: &[u64]) -> Self {
        assert!(counts.len() <= 64, "at most 64 log2 buckets");
        let mut h = Log2Histogram::new();
        h.buckets[..counts.len()].copy_from_slice(counts);
        h.total = counts.iter().sum();
        h
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The value below which a fraction `q` (in `0.0..=1.0`) of the
    /// recorded samples fall, linearly interpolated within the
    /// containing power-of-two bucket. `None` when the histogram is
    /// empty; `q` outside `[0, 1]` is clamped.
    ///
    /// Bucket `i` holds values in `[2^i, 2^(i+1))` (bucket 0 holds
    /// `0..2`), so the estimate is exact at bucket boundaries and never
    /// overshoots the bucket's upper edge: for any `k`,
    /// `percentile(fraction_below_pow2(k)) <= 2^k`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::stats::Log2Histogram;
    /// let mut h = Log2Histogram::new();
    /// for _ in 0..100 { h.record(4); } // all in bucket 2 ([4, 8))
    /// let p50 = h.percentile(0.50).unwrap();
    /// assert!((4.0..=8.0).contains(&p50));
    /// assert!(Log2Histogram::new().percentile(0.5).is_none());
    /// ```
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        if target <= 0.0 {
            // q == 0 (or a fraction so small it rounds to zero mass):
            // the infimum of the value range.
            return Some(0.0);
        }
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cum_before = cum;
            cum += c;
            if cum as f64 >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u128 << (i + 1)) as f64;
                let within = ((target - cum_before as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + within * (hi - lo));
            }
        }
        // Float rounding pushed `target` past the final cumulative
        // count: report the upper edge of the highest non-empty bucket.
        let top = self.max_bucket().unwrap_or(0);
        Some((1u128 << (top + 1)) as f64)
    }
}

/// A dense 2-D grid of `u64` counters, indexed `(row, col)` — the
/// backing store for the observability heatmaps (bank × set access,
/// eviction, and relocation counts).
///
/// # Examples
///
/// ```
/// use ziv_common::stats::CountGrid;
/// let mut g = CountGrid::new(2, 4);
/// g.inc(1, 3);
/// g.inc(1, 3);
/// assert_eq!(g.get(1, 3), 2);
/// assert_eq!(g.total(), 2);
/// assert_eq!(g.row(0), &[0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountGrid {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl CountGrid {
    /// Creates a zeroed `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        CountGrid {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Increments cell `(row, col)` by one.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[inline]
    pub fn inc(&mut self, row: usize, col: usize) {
        self.add(row, col, 1);
    }

    /// Adds `n` to cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, n: u64) {
        assert!(
            row < self.rows && col < self.cols,
            "CountGrid index out of bounds"
        );
        self.data[row * self.cols + col] += n;
    }

    /// Reads cell `(row, col)`; out-of-bounds cells read as zero.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col]
        } else {
            0
        }
    }

    /// One full row as a slice (length [`CountGrid::cols`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "CountGrid row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Sum of every cell.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// The largest single cell value (zero for an empty grid).
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

/// Renders a simple aligned text table; used by the figure benches so
/// their output reads like the paper's data series.
///
/// # Examples
///
/// ```
/// use ziv_common::stats::render_table;
/// let t = render_table(
///     &["config", "speedup"],
///     &[vec!["I-LRU".into(), "1.000".into()]],
/// );
/// assert!(t.contains("I-LRU"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    if cols == 0 {
        // No columns: nothing to align (and the separator-width
        // arithmetic below would underflow `cols - 1`).
        return String::new();
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!(geomean([]).is_none());
        assert!(geomean([1.0, -1.0]).is_none());
        assert!((geomean([4.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0, 16.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert!(mean([]).is_none());
        assert!((mean([1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn summary_tracks_range() {
        let s = Summary::of(&[0.5, 1.0, 2.0]).unwrap();
        assert!((s.gmean - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_displays() {
        let s = Summary::of(&[1.0]).unwrap();
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Log2Histogram::new();
        h.record(0); // clamps to bucket 0
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count_in_bucket(0), 2);
        assert_eq!(h.count_in_bucket(1), 2);
        assert_eq!(h.count_in_bucket(10), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_bucket(), Some(10));
    }

    #[test]
    fn histogram_cdf_is_monotone_and_reaches_one() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 5, 9, 100, 5000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for b in 0..64 {
            let c = h.cdf_at(b);
            assert!(c >= prev);
            prev = c;
        }
        assert!((h.cdf_at(63) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Log2Histogram::new();
        h.record(2);
        h.record(3);
        h.record(100);
        // values < 4 (2^2): both bucket-1 entries.
        assert!((h.fraction_below_pow2(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fraction_below_pow2(0), 0.0);
    }

    #[test]
    fn fraction_below_pow2_is_exact_at_pow2_thresholds() {
        // Samples straddling the 2^3 = 8 boundary: 7 (bucket 2) is
        // strictly below, 8 and 9 (bucket 3) are not. A pow2 threshold
        // aligns with the bucket boundary, so the count is exact, not a
        // conservative approximation.
        let mut h = Log2Histogram::new();
        for v in [1u64, 7, 8, 9, 64] {
            h.record(v);
        }
        let exact = [1u64, 7, 8, 9, 64].iter().filter(|&&v| v < 8).count();
        assert_eq!(h.fraction_below_pow2(3), exact as f64 / 5.0);
        // Exactness holds at every pow2 threshold for pow2 samples too:
        // 2^k itself is never counted as "below 2^k".
        let mut p = Log2Histogram::new();
        p.record(16);
        assert_eq!(p.fraction_below_pow2(4), 0.0);
        assert_eq!(p.fraction_below_pow2(5), 1.0);
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        assert!(Log2Histogram::new().percentile(0.5).is_none());
        assert!(Log2Histogram::new().percentile(0.0).is_none());
        assert!(Log2Histogram::new().percentile(1.0).is_none());
    }

    #[test]
    fn percentile_single_bucket_interpolates_linearly() {
        // All mass in bucket 3 ([8, 16)): percentiles sweep the bucket.
        let mut h = Log2Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        assert_eq!(h.percentile(0.0), Some(0.0));
        let p25 = h.percentile(0.25).unwrap();
        let p50 = h.percentile(0.50).unwrap();
        let p100 = h.percentile(1.0).unwrap();
        assert!((p25 - 10.0).abs() < 1e-9, "p25 = {p25}");
        assert!((p50 - 12.0).abs() < 1e-9, "p50 = {p50}");
        assert_eq!(p100, 16.0, "p100 is the bucket's upper edge");
        assert!(p25 <= p50 && p50 <= p100);
    }

    #[test]
    fn percentile_p0_and_p100_edges() {
        let mut h = Log2Histogram::new();
        h.record(3); // bucket 1
        h.record(100); // bucket 6
        assert_eq!(h.percentile(0.0), Some(0.0));
        assert_eq!(h.percentile(1.0), Some(128.0), "upper edge of bucket 6");
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn percentile_saturating_top_bucket() {
        // u64::MAX lands in bucket 63; its upper edge 2^64 does not fit
        // in u64, so the interpolation must widen internally.
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        let p100 = h.percentile(1.0).unwrap();
        assert_eq!(p100, (1u128 << 64) as f64);
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 >= (1u64 << 63) as f64 && p50 <= p100);
    }

    #[test]
    fn percentile_is_monotone_and_bounded_by_pow2_fractions() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 7, 8, 9, 100, 5000, 70_000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0).unwrap();
            assert!(p >= prev, "percentile must be monotone in q");
            prev = p;
        }
        // The bucket-boundary guarantee stated in the docs.
        for k in 1..20usize {
            let q = h.fraction_below_pow2(k);
            let p = h.percentile(q).unwrap();
            assert!(
                p <= (1u64 << k) as f64 * (1.0 + 1e-9),
                "percentile({q}) = {p} overshoots 2^{k}"
            );
        }
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(4);
        b.record(4);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_in_bucket(2), 2);
    }

    #[test]
    fn empty_histogram_cdf_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.cdf_at(63), 0.0);
        assert_eq!(h.max_bucket(), None);
    }

    #[test]
    fn count_grid_indexes_row_major() {
        let mut g = CountGrid::new(3, 2);
        g.inc(0, 0);
        g.inc(2, 1);
        g.add(2, 1, 4);
        assert_eq!(g.get(0, 0), 1);
        assert_eq!(g.get(2, 1), 5);
        assert_eq!(g.get(9, 9), 0, "out-of-bounds reads are zero");
        assert_eq!(g.row(2), &[0, 5]);
        assert_eq!(g.total(), 6);
        assert_eq!(g.max(), 5);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn count_grid_write_out_of_bounds_panics() {
        let mut g = CountGrid::new(1, 1);
        g.inc(1, 0);
    }

    #[test]
    fn table_with_no_headers_is_empty() {
        // Regression: `2 * (cols - 1)` underflowed usize for an empty
        // header slice and panicked.
        assert_eq!(render_table(&[], &[]), "");
        assert_eq!(render_table(&[], &[vec!["orphan".into()]]), "");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }
}
