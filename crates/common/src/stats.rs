//! Statistics helpers: histograms (used for the Fig 18 relocation-interval
//! CDF), and aggregate summaries (geometric means, speedup ranges) used by
//! the experiment harness.

use std::fmt;

/// Geometric mean of a non-empty set of positive values.
///
/// Returns `None` for an empty input or if any value is non-positive.
///
/// # Examples
///
/// ```
/// use ziv_common::stats::geomean;
/// let g = geomean([2.0, 8.0]).unwrap();
/// assert!((g - 4.0).abs() < 1e-12);
/// ```
pub fn geomean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v <= 0.0 || !v.is_finite() {
            return None;
        }
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some((log_sum / n as f64).exp())
    }
}

/// Arithmetic mean; `None` for empty input or if any value is
/// non-finite (mirroring [`geomean`]'s guard — a NaN/Inf sample would
/// otherwise silently poison the whole summary).
pub fn mean<I: IntoIterator<Item = f64>>(values: I) -> Option<f64> {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if !v.is_finite() {
            return None;
        }
        sum += v;
        n += 1;
    }
    if n == 0 {
        None
    } else {
        Some(sum / n as f64)
    }
}

/// Summary of a set of per-workload results: mean, min, max — the paper's
/// figures annotate bars with the observed range.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Geometric mean over workloads.
    pub gmean: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
    /// Number of workloads aggregated.
    pub count: usize,
}

impl Summary {
    /// Builds a summary; returns `None` if `values` is empty or any value
    /// is non-positive (speedups are always positive).
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let gmean = geomean(values.iter().copied())?;
        let min = values.iter().copied().fold(f64::INFINITY, f64::min);
        let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            gmean,
            min,
            max,
            count: values.len(),
        })
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.3} [{:.3}..{:.3}] (n={})",
            self.gmean, self.min, self.max, self.count
        )
    }
}

/// A power-of-two-bucketed histogram of u64 samples.
///
/// Bucket `i` counts samples `v` with `floor(log2(max(v,1))) == i`;
/// matches the log-scaled x-axis of the paper's Fig 18.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    buckets: Vec<u64>,
    total: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Log2Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Log2Histogram {
            buckets: vec![0; 64],
            total: 0,
        }
    }

    /// Records a sample.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::stats::Log2Histogram;
    /// let mut h = Log2Histogram::new();
    /// h.record(5); // bucket 2 (4..8)
    /// assert_eq!(h.count_in_bucket(2), 1);
    /// ```
    #[inline]
    pub fn record(&mut self, value: u64) {
        let b = 63 - value.max(1).leading_zeros() as usize;
        self.buckets[b] += 1;
        self.total += 1;
    }

    /// Number of samples recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Count in bucket `log2`.
    pub fn count_in_bucket(&self, log2: usize) -> u64 {
        self.buckets.get(log2).copied().unwrap_or(0)
    }

    /// Cumulative fraction of samples with `log2(value) <= log2`.
    /// Returns 0.0 when the histogram is empty.
    pub fn cdf_at(&self, log2: usize) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let c: u64 = self.buckets.iter().take(log2 + 1).sum();
        c as f64 / self.total as f64
    }

    /// Fraction of samples strictly below `2^threshold_log2`.
    /// (Used for the paper's "fraction of relocation intervals < 5
    /// cycles" observation.) Because bucket `i` holds exactly the values
    /// in `[2^i, 2^(i+1))`, a power-of-two threshold lands on a bucket
    /// boundary and the result is **exact**: every sample in buckets
    /// `0..threshold_log2` is strictly below the threshold, and no
    /// sample in later buckets is.
    pub fn fraction_below_pow2(&self, threshold_log2: usize) -> f64 {
        if threshold_log2 == 0 {
            return 0.0;
        }
        self.cdf_at(threshold_log2 - 1)
    }

    /// The largest non-empty bucket index, or `None` when empty.
    pub fn max_bucket(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }

    /// The raw per-bucket counts (index = log2 bucket), for
    /// serialization.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts (the inverse of
    /// [`Log2Histogram::buckets`]); missing trailing buckets are zero.
    ///
    /// # Panics
    ///
    /// Panics if more than 64 buckets are provided.
    pub fn from_buckets(counts: &[u64]) -> Self {
        assert!(counts.len() <= 64, "at most 64 log2 buckets");
        let mut h = Log2Histogram::new();
        h.buckets[..counts.len()].copy_from_slice(counts);
        h.total = counts.iter().sum();
        h
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.total += other.total;
    }

    /// The value below which a fraction `q` (in `0.0..=1.0`) of the
    /// recorded samples fall, linearly interpolated within the
    /// containing power-of-two bucket. `None` when the histogram is
    /// empty; `q` outside `[0, 1]` is clamped.
    ///
    /// Bucket `i` holds values in `[2^i, 2^(i+1))` (bucket 0 holds
    /// `0..2`), so the estimate is exact at bucket boundaries and never
    /// overshoots the bucket's upper edge: for any `k`,
    /// `percentile(fraction_below_pow2(k)) <= 2^k`. `percentile(0.0)`
    /// is the infimum of the recorded value range — the lower edge of
    /// the lowest non-empty bucket.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_common::stats::Log2Histogram;
    /// let mut h = Log2Histogram::new();
    /// for _ in 0..100 { h.record(4); } // all in bucket 2 ([4, 8))
    /// let p50 = h.percentile(0.50).unwrap();
    /// assert!((4.0..=8.0).contains(&p50));
    /// assert!(Log2Histogram::new().percentile(0.5).is_none());
    /// ```
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.total as f64;
        if target <= 0.0 {
            // q == 0 (or a fraction so small it rounds to zero mass):
            // the infimum of the value range, i.e. the lower edge of the
            // lowest non-empty bucket — not an unconditional 0.
            let lowest = self
                .buckets
                .iter()
                .position(|&c| c > 0)
                .expect("total > 0 implies a non-empty bucket");
            let lo = if lowest == 0 {
                0.0
            } else {
                (1u64 << lowest) as f64
            };
            return Some(lo);
        }
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let cum_before = cum;
            cum += c;
            if cum as f64 >= target {
                let lo = if i == 0 { 0.0 } else { (1u64 << i) as f64 };
                let hi = (1u128 << (i + 1)) as f64;
                let within = ((target - cum_before as f64) / c as f64).clamp(0.0, 1.0);
                return Some(lo + within * (hi - lo));
            }
        }
        // Float rounding pushed `target` past the final cumulative
        // count: report the upper edge of the highest non-empty bucket.
        let top = self.max_bucket().unwrap_or(0);
        Some((1u128 << (top + 1)) as f64)
    }
}

/// Confidence levels supported by the hardcoded Student-t quantile
/// table (the build is dependency-free, so the quantiles are tabulated
/// rather than computed from the incomplete beta function).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Confidence {
    /// 90% two-sided confidence.
    P90,
    /// 95% two-sided confidence.
    P95,
    /// 99% two-sided confidence.
    P99,
}

impl Confidence {
    /// The level as an integer percentage (90, 95, 99).
    pub fn percent(self) -> u8 {
        match self {
            Confidence::P90 => 90,
            Confidence::P95 => 95,
            Confidence::P99 => 99,
        }
    }

    /// Parses an integer percentage; only the tabulated levels are
    /// accepted.
    pub fn from_percent(p: u8) -> Option<Confidence> {
        match p {
            90 => Some(Confidence::P90),
            95 => Some(Confidence::P95),
            99 => Some(Confidence::P99),
            _ => None,
        }
    }
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}%", self.percent())
    }
}

/// Two-sided Student-t critical values for 1..=30 degrees of freedom,
/// then the 40 / 60 / 120 / normal-asymptote rows. Columns: 90%, 95%,
/// 99%.
const STUDENT_T_TWO_SIDED: [[f64; 3]; 30] = [
    [6.314, 12.706, 63.657],
    [2.920, 4.303, 9.925],
    [2.353, 3.182, 5.841],
    [2.132, 2.776, 4.604],
    [2.015, 2.571, 4.032],
    [1.943, 2.447, 3.707],
    [1.895, 2.365, 3.499],
    [1.860, 2.306, 3.355],
    [1.833, 2.262, 3.250],
    [1.812, 2.228, 3.169],
    [1.796, 2.201, 3.106],
    [1.782, 2.179, 3.055],
    [1.771, 2.160, 3.012],
    [1.761, 2.145, 2.977],
    [1.753, 2.131, 2.947],
    [1.746, 2.120, 2.921],
    [1.740, 2.110, 2.898],
    [1.734, 2.101, 2.878],
    [1.729, 2.093, 2.861],
    [1.725, 2.086, 2.845],
    [1.721, 2.080, 2.831],
    [1.717, 2.074, 2.819],
    [1.714, 2.069, 2.807],
    [1.711, 2.064, 2.797],
    [1.708, 2.060, 2.787],
    [1.706, 2.056, 2.779],
    [1.703, 2.052, 2.771],
    [1.701, 2.048, 2.763],
    [1.699, 2.045, 2.756],
    [1.697, 2.042, 2.750],
];
const STUDENT_T_40: [f64; 3] = [1.684, 2.021, 2.704];
const STUDENT_T_60: [f64; 3] = [1.671, 2.000, 2.660];
const STUDENT_T_120: [f64; 3] = [1.658, 1.980, 2.617];
const STUDENT_T_INF: [f64; 3] = [1.645, 1.960, 2.576];

/// The two-sided Student-t critical value `t*` such that a
/// `confidence`-level interval is `mean ± t* · s/√n` with `df = n − 1`
/// degrees of freedom.
///
/// Between tabulated rows (df 31..=120) the value from the *lower* df
/// band is used — conservative: the interval is at worst slightly
/// wider than nominal, never narrower.
///
/// # Panics
///
/// Panics if `df == 0` (a single sample has no dispersion estimate).
pub fn student_t_two_sided(confidence: Confidence, df: usize) -> f64 {
    assert!(df > 0, "Student-t requires at least 1 degree of freedom");
    let col = match confidence {
        Confidence::P90 => 0,
        Confidence::P95 => 1,
        Confidence::P99 => 2,
    };
    if df <= 30 {
        STUDENT_T_TWO_SIDED[df - 1][col]
    } else if df < 40 {
        STUDENT_T_TWO_SIDED[29][col]
    } else if df < 60 {
        STUDENT_T_40[col]
    } else if df < 120 {
        STUDENT_T_60[col]
    } else if df < 1000 {
        STUDENT_T_120[col]
    } else {
        STUDENT_T_INF[col]
    }
}

/// A two-sided confidence interval `mean ± half_width` at a stated
/// confidence level.
///
/// # Examples
///
/// ```
/// use ziv_common::stats::{Confidence, ConfidenceInterval};
/// let ci = ConfidenceInterval { mean: 1.5, half_width: 0.2, confidence: Confidence::P95 };
/// assert!(ci.contains(1.4));
/// assert!(ci.excludes_zero());
/// assert_eq!(ci.low(), 1.3);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConfidenceInterval {
    /// Point estimate (the sample mean).
    pub mean: f64,
    /// Half-width of the interval (`t* · s/√n`); always ≥ 0.
    pub half_width: f64,
    /// The confidence level the half-width was computed for.
    pub confidence: Confidence,
}

impl ConfidenceInterval {
    /// Lower bound of the interval.
    pub fn low(&self) -> f64 {
        self.mean - self.half_width
    }

    /// Upper bound of the interval.
    pub fn high(&self) -> f64 {
        self.mean + self.half_width
    }

    /// Whether `value` lies inside the closed interval.
    pub fn contains(&self, value: f64) -> bool {
        value >= self.low() && value <= self.high()
    }

    /// Whether the interval excludes zero — the auto-stop criterion for
    /// "the ZIV-vs-inclusive delta is statistically resolved".
    pub fn excludes_zero(&self) -> bool {
        !self.contains(0.0)
    }

    /// Half-width as a fraction of the (absolute) mean; `None` when the
    /// mean is zero.
    pub fn relative_half_width(&self) -> Option<f64> {
        if self.mean == 0.0 {
            None
        } else {
            Some(self.half_width / self.mean.abs())
        }
    }
}

impl fmt::Display for ConfidenceInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} ± {:.4} ({})",
            self.mean, self.half_width, self.confidence
        )
    }
}

/// Welford's online algorithm for running mean and variance — the
/// per-interval estimator accumulator of the sampling engine. Single
/// pass, O(1) state, numerically stable (no catastrophic cancellation
/// of large sums of squares).
///
/// # Examples
///
/// ```
/// use ziv_common::stats::{Confidence, RunningMoments};
/// let mut m = RunningMoments::new();
/// for v in [1.0, 2.0, 3.0, 4.0] { m.push(v); }
/// assert_eq!(m.count(), 4);
/// assert_eq!(m.mean(), Some(2.5));
/// let ci = m.confidence_interval(Confidence::P95).unwrap();
/// assert!(ci.contains(2.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningMoments {
    n: u64,
    mean: f64,
    m2: f64,
}

impl RunningMoments {
    /// An empty accumulator.
    pub fn new() -> Self {
        RunningMoments::default()
    }

    /// Adds a sample. Non-finite samples are ignored (consistent with
    /// [`mean`]'s refusal to aggregate them — here the stream must keep
    /// flowing, so the poisoned sample is dropped instead).
    pub fn push(&mut self, value: f64) {
        if !value.is_finite() {
            return;
        }
        self.n += 1;
        let delta = value - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of (finite) samples accumulated.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Unbiased sample variance (`m2 / (n − 1)`); `None` when fewer
    /// than two samples.
    pub fn sample_variance(&self) -> Option<f64> {
        if self.n < 2 {
            None
        } else {
            Some(self.m2 / (self.n - 1) as f64)
        }
    }

    /// Sample standard deviation; `None` when fewer than two samples.
    pub fn sample_stddev(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Standard error of the mean (`s/√n`); `None` when fewer than two
    /// samples.
    pub fn standard_error(&self) -> Option<f64> {
        self.sample_stddev().map(|s| s / (self.n as f64).sqrt())
    }

    /// The Student-t confidence interval on the mean at the given
    /// level; `None` when fewer than two samples (no dispersion
    /// estimate exists).
    pub fn confidence_interval(&self, confidence: Confidence) -> Option<ConfidenceInterval> {
        let se = self.standard_error()?;
        let t = student_t_two_sided(confidence, (self.n - 1) as usize);
        Some(ConfidenceInterval {
            mean: self.mean,
            half_width: t * se,
            confidence,
        })
    }

    /// Merges another accumulator into this one (Chan's parallel
    /// update), so per-interval moments can be combined across cores.
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
    }
}

/// A dense 2-D grid of `u64` counters, indexed `(row, col)` — the
/// backing store for the observability heatmaps (bank × set access,
/// eviction, and relocation counts).
///
/// # Examples
///
/// ```
/// use ziv_common::stats::CountGrid;
/// let mut g = CountGrid::new(2, 4);
/// g.inc(1, 3);
/// g.inc(1, 3);
/// assert_eq!(g.get(1, 3), 2);
/// assert_eq!(g.total(), 2);
/// assert_eq!(g.row(0), &[0, 0, 0, 0]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CountGrid {
    rows: usize,
    cols: usize,
    data: Vec<u64>,
}

impl CountGrid {
    /// Creates a zeroed `rows × cols` grid.
    pub fn new(rows: usize, cols: usize) -> Self {
        CountGrid {
            rows,
            cols,
            data: vec![0; rows * cols],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Increments cell `(row, col)` by one.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[inline]
    pub fn inc(&mut self, row: usize, col: usize) {
        self.add(row, col, 1);
    }

    /// Adds `n` to cell `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell is out of bounds.
    #[inline]
    pub fn add(&mut self, row: usize, col: usize, n: u64) {
        assert!(
            row < self.rows && col < self.cols,
            "CountGrid index out of bounds"
        );
        self.data[row * self.cols + col] += n;
    }

    /// Reads cell `(row, col)`; out-of-bounds cells read as zero.
    pub fn get(&self, row: usize, col: usize) -> u64 {
        if row < self.rows && col < self.cols {
            self.data[row * self.cols + col]
        } else {
            0
        }
    }

    /// One full row as a slice (length [`CountGrid::cols`]).
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> &[u64] {
        assert!(row < self.rows, "CountGrid row out of bounds");
        &self.data[row * self.cols..(row + 1) * self.cols]
    }

    /// Sum of every cell.
    pub fn total(&self) -> u64 {
        self.data.iter().sum()
    }

    /// The largest single cell value (zero for an empty grid).
    pub fn max(&self) -> u64 {
        self.data.iter().copied().max().unwrap_or(0)
    }
}

/// Renders a simple aligned text table; used by the figure benches so
/// their output reads like the paper's data series.
///
/// # Examples
///
/// ```
/// use ziv_common::stats::render_table;
/// let t = render_table(
///     &["config", "speedup"],
///     &[vec!["I-LRU".into(), "1.000".into()]],
/// );
/// assert!(t.contains("I-LRU"));
/// ```
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    if cols == 0 {
        // No columns: nothing to align (and the separator-width
        // arithmetic below would underflow `cols - 1`).
        return String::new();
    }
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    let header_cells: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!(geomean([]).is_none());
        assert!(geomean([1.0, -1.0]).is_none());
        assert!((geomean([4.0]).unwrap() - 4.0).abs() < 1e-12);
        assert!((geomean([1.0, 4.0, 16.0]).unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_basics() {
        assert!(mean([]).is_none());
        assert!((mean([1.0, 2.0, 3.0]).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mean_rejects_non_finite_like_geomean() {
        // Regression: a NaN/Inf sample used to propagate silently into
        // summaries; the guard now mirrors geomean's.
        assert!(mean([1.0, f64::NAN]).is_none());
        assert!(mean([f64::INFINITY]).is_none());
        assert!(mean([1.0, f64::NEG_INFINITY, 2.0]).is_none());
        assert!(mean([-1.0, 1.0]).is_some(), "negatives are still fine");
    }

    #[test]
    fn summary_tracks_range() {
        let s = Summary::of(&[0.5, 1.0, 2.0]).unwrap();
        assert!((s.gmean - 1.0).abs() < 1e-12);
        assert_eq!(s.min, 0.5);
        assert_eq!(s.max, 2.0);
        assert_eq!(s.count, 3);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn summary_displays() {
        let s = Summary::of(&[1.0]).unwrap();
        assert!(s.to_string().contains("n=1"));
    }

    #[test]
    fn histogram_buckets_by_log2() {
        let mut h = Log2Histogram::new();
        h.record(0); // clamps to bucket 0
        h.record(1);
        h.record(2);
        h.record(3);
        h.record(1024);
        assert_eq!(h.count_in_bucket(0), 2);
        assert_eq!(h.count_in_bucket(1), 2);
        assert_eq!(h.count_in_bucket(10), 1);
        assert_eq!(h.total(), 5);
        assert_eq!(h.max_bucket(), Some(10));
    }

    #[test]
    fn histogram_cdf_is_monotone_and_reaches_one() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 5, 9, 100, 5000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for b in 0..64 {
            let c = h.cdf_at(b);
            assert!(c >= prev);
            prev = c;
        }
        assert!((h.cdf_at(63) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_fraction_below() {
        let mut h = Log2Histogram::new();
        h.record(2);
        h.record(3);
        h.record(100);
        // values < 4 (2^2): both bucket-1 entries.
        assert!((h.fraction_below_pow2(2) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(h.fraction_below_pow2(0), 0.0);
    }

    #[test]
    fn fraction_below_pow2_is_exact_at_pow2_thresholds() {
        // Samples straddling the 2^3 = 8 boundary: 7 (bucket 2) is
        // strictly below, 8 and 9 (bucket 3) are not. A pow2 threshold
        // aligns with the bucket boundary, so the count is exact, not a
        // conservative approximation.
        let mut h = Log2Histogram::new();
        for v in [1u64, 7, 8, 9, 64] {
            h.record(v);
        }
        let exact = [1u64, 7, 8, 9, 64].iter().filter(|&&v| v < 8).count();
        assert_eq!(h.fraction_below_pow2(3), exact as f64 / 5.0);
        // Exactness holds at every pow2 threshold for pow2 samples too:
        // 2^k itself is never counted as "below 2^k".
        let mut p = Log2Histogram::new();
        p.record(16);
        assert_eq!(p.fraction_below_pow2(4), 0.0);
        assert_eq!(p.fraction_below_pow2(5), 1.0);
    }

    #[test]
    fn percentile_empty_histogram_is_none() {
        assert!(Log2Histogram::new().percentile(0.5).is_none());
        assert!(Log2Histogram::new().percentile(0.0).is_none());
        assert!(Log2Histogram::new().percentile(1.0).is_none());
    }

    #[test]
    fn percentile_single_bucket_interpolates_linearly() {
        // All mass in bucket 3 ([8, 16)): percentiles sweep the bucket.
        let mut h = Log2Histogram::new();
        for _ in 0..100 {
            h.record(10);
        }
        // p0 is the infimum of the recorded range: bucket 3's lower
        // edge, not 0.
        assert_eq!(h.percentile(0.0), Some(8.0));
        let p25 = h.percentile(0.25).unwrap();
        let p50 = h.percentile(0.50).unwrap();
        let p100 = h.percentile(1.0).unwrap();
        assert!((p25 - 10.0).abs() < 1e-9, "p25 = {p25}");
        assert!((p50 - 12.0).abs() < 1e-9, "p50 = {p50}");
        assert_eq!(p100, 16.0, "p100 is the bucket's upper edge");
        assert!(p25 <= p50 && p50 <= p100);
    }

    #[test]
    fn percentile_p0_and_p100_edges() {
        let mut h = Log2Histogram::new();
        h.record(3); // bucket 1
        h.record(100); // bucket 6
        assert_eq!(h.percentile(0.0), Some(2.0), "lower edge of bucket 1");
        assert_eq!(h.percentile(1.0), Some(128.0), "upper edge of bucket 6");
        // A histogram whose lowest non-empty bucket is bucket 0 still
        // reports a zero infimum.
        let mut z = Log2Histogram::new();
        z.record(1);
        assert_eq!(z.percentile(0.0), Some(0.0));
        // Out-of-range q clamps rather than extrapolating.
        assert_eq!(h.percentile(-1.0), h.percentile(0.0));
        assert_eq!(h.percentile(2.0), h.percentile(1.0));
    }

    #[test]
    fn percentile_saturating_top_bucket() {
        // u64::MAX lands in bucket 63; its upper edge 2^64 does not fit
        // in u64, so the interpolation must widen internally.
        let mut h = Log2Histogram::new();
        h.record(u64::MAX);
        let p100 = h.percentile(1.0).unwrap();
        assert_eq!(p100, (1u128 << 64) as f64);
        let p50 = h.percentile(0.5).unwrap();
        assert!(p50 >= (1u64 << 63) as f64 && p50 <= p100);
    }

    #[test]
    fn percentile_is_monotone_and_bounded_by_pow2_fractions() {
        let mut h = Log2Histogram::new();
        for v in [1u64, 2, 3, 7, 8, 9, 100, 5000, 70_000] {
            h.record(v);
        }
        let mut prev = 0.0;
        for i in 0..=100 {
            let p = h.percentile(i as f64 / 100.0).unwrap();
            assert!(p >= prev, "percentile must be monotone in q");
            prev = p;
        }
        // The bucket-boundary guarantee stated in the docs.
        for k in 1..20usize {
            let q = h.fraction_below_pow2(k);
            let p = h.percentile(q).unwrap();
            assert!(
                p <= (1u64 << k) as f64 * (1.0 + 1e-9),
                "percentile({q}) = {p} overshoots 2^{k}"
            );
        }
    }

    #[test]
    fn histogram_merge_adds() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        a.record(4);
        b.record(4);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.total(), 3);
        assert_eq!(a.count_in_bucket(2), 2);
    }

    #[test]
    fn empty_histogram_cdf_is_zero() {
        let h = Log2Histogram::new();
        assert_eq!(h.cdf_at(63), 0.0);
        assert_eq!(h.max_bucket(), None);
    }

    #[test]
    fn count_grid_indexes_row_major() {
        let mut g = CountGrid::new(3, 2);
        g.inc(0, 0);
        g.inc(2, 1);
        g.add(2, 1, 4);
        assert_eq!(g.get(0, 0), 1);
        assert_eq!(g.get(2, 1), 5);
        assert_eq!(g.get(9, 9), 0, "out-of-bounds reads are zero");
        assert_eq!(g.row(2), &[0, 5]);
        assert_eq!(g.total(), 6);
        assert_eq!(g.max(), 5);
        assert_eq!(g.rows(), 3);
        assert_eq!(g.cols(), 2);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn count_grid_write_out_of_bounds_panics() {
        let mut g = CountGrid::new(1, 1);
        g.inc(1, 0);
    }

    #[test]
    fn student_t_table_is_sane() {
        // Spot checks against the standard table.
        assert_eq!(student_t_two_sided(Confidence::P95, 1), 12.706);
        assert_eq!(student_t_two_sided(Confidence::P95, 10), 2.228);
        assert_eq!(student_t_two_sided(Confidence::P99, 30), 2.750);
        assert_eq!(student_t_two_sided(Confidence::P90, 10_000), 1.645);
        // Monotone non-increasing in df, for every level.
        for conf in [Confidence::P90, Confidence::P95, Confidence::P99] {
            let mut prev = f64::INFINITY;
            for df in 1..200 {
                let t = student_t_two_sided(conf, df);
                assert!(t <= prev, "t({conf:?}, {df}) = {t} rose above {prev}");
                assert!(t >= 1.0);
                prev = t;
            }
        }
        // Wider confidence => wider quantile.
        for df in [1, 5, 30, 100] {
            assert!(
                student_t_two_sided(Confidence::P90, df) < student_t_two_sided(Confidence::P95, df)
            );
            assert!(
                student_t_two_sided(Confidence::P95, df) < student_t_two_sided(Confidence::P99, df)
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least 1 degree of freedom")]
    fn student_t_zero_df_panics() {
        student_t_two_sided(Confidence::P95, 0);
    }

    #[test]
    fn running_moments_match_direct_computation() {
        let samples = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut m = RunningMoments::new();
        for &s in &samples {
            m.push(s);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean().unwrap() - 5.0).abs() < 1e-12);
        // Direct unbiased variance: sum((x-5)^2) / 7 = 32/7.
        assert!((m.sample_variance().unwrap() - 32.0 / 7.0).abs() < 1e-12);
        assert!(m.sample_stddev().unwrap() > 0.0);
        let se = m.standard_error().unwrap();
        assert!((se - (32.0f64 / 7.0).sqrt() / 8.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn running_moments_empty_and_singleton() {
        let mut m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert!(m.mean().is_none());
        assert!(m.sample_variance().is_none());
        assert!(m.confidence_interval(Confidence::P95).is_none());
        m.push(3.5);
        assert_eq!(m.mean(), Some(3.5));
        assert!(
            m.confidence_interval(Confidence::P95).is_none(),
            "one sample has no dispersion estimate"
        );
    }

    #[test]
    fn running_moments_ignore_non_finite() {
        let mut m = RunningMoments::new();
        m.push(1.0);
        m.push(f64::NAN);
        m.push(f64::INFINITY);
        m.push(3.0);
        assert_eq!(m.count(), 2);
        assert_eq!(m.mean(), Some(2.0));
    }

    #[test]
    fn running_moments_merge_matches_single_stream() {
        let (left, right) = ([1.0, 2.0, 3.0], [10.0, 11.0, 12.0, 13.0]);
        let mut a = RunningMoments::new();
        let mut b = RunningMoments::new();
        let mut whole = RunningMoments::new();
        for &v in &left {
            a.push(v);
            whole.push(v);
        }
        for &v in &right {
            b.push(v);
            whole.push(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert!((a.mean().unwrap() - whole.mean().unwrap()).abs() < 1e-12);
        assert!(
            (a.sample_variance().unwrap() - whole.sample_variance().unwrap()).abs() < 1e-9,
            "merged variance diverged"
        );
        // Merging into/from empty is the identity.
        let mut empty = RunningMoments::new();
        empty.merge(&a);
        assert_eq!(empty, a);
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
    }

    #[test]
    fn confidence_interval_geometry() {
        let ci = ConfidenceInterval {
            mean: 2.0,
            half_width: 0.5,
            confidence: Confidence::P95,
        };
        assert_eq!(ci.low(), 1.5);
        assert_eq!(ci.high(), 2.5);
        assert!(ci.contains(1.5) && ci.contains(2.5) && ci.contains(2.0));
        assert!(!ci.contains(1.49) && !ci.contains(2.51));
        assert!(ci.excludes_zero());
        assert_eq!(ci.relative_half_width(), Some(0.25));
        let straddling = ConfidenceInterval {
            mean: 0.1,
            half_width: 0.2,
            confidence: Confidence::P95,
        };
        assert!(!straddling.excludes_zero());
        let degenerate = ConfidenceInterval {
            mean: 0.0,
            half_width: 0.0,
            confidence: Confidence::P90,
        };
        assert!(degenerate.relative_half_width().is_none());
        assert!(!degenerate.excludes_zero(), "closed interval contains 0");
        assert!(ci.to_string().contains("95%"));
    }

    #[test]
    fn confidence_interval_from_moments_covers_known_mean() {
        // Samples symmetric around 10: the CI must contain 10 and be
        // wider at 99% than at 90%.
        let mut m = RunningMoments::new();
        for v in [8.0, 9.0, 10.0, 11.0, 12.0] {
            m.push(v);
        }
        let c90 = m.confidence_interval(Confidence::P90).unwrap();
        let c95 = m.confidence_interval(Confidence::P95).unwrap();
        let c99 = m.confidence_interval(Confidence::P99).unwrap();
        for ci in [&c90, &c95, &c99] {
            assert!(ci.contains(10.0));
        }
        assert!(c90.half_width < c95.half_width);
        assert!(c95.half_width < c99.half_width);
        // Exact: t(95, df=4) = 2.776, s = sqrt(2.5), se = sqrt(0.5).
        let expected = 2.776 * 0.5f64.sqrt();
        assert!((c95.half_width - expected).abs() < 1e-9);
    }

    #[test]
    fn confidence_parsing_round_trips() {
        for conf in [Confidence::P90, Confidence::P95, Confidence::P99] {
            assert_eq!(Confidence::from_percent(conf.percent()), Some(conf));
        }
        assert_eq!(Confidence::from_percent(80), None);
        assert_eq!(Confidence::from_percent(0), None);
    }

    #[test]
    fn table_with_no_headers_is_empty() {
        // Regression: `2 * (cols - 1)` underflowed usize for an empty
        // header slice and panicked.
        assert_eq!(render_table(&[], &[]), "");
        assert_eq!(render_table(&[], &[vec!["orphan".into()]]), "");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["a", "bee"],
            &[
                vec!["x".into(), "1".into()],
                vec!["longer".into(), "2".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("x"));
    }
}
