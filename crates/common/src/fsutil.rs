//! Small filesystem helpers shared by the CLI and the harness.

use crate::error::SimError;
use std::path::Path;

/// Creates every missing parent directory of `path`, so a subsequent
/// `File::create(path)` cannot fail with "No such file or directory"
/// just because the caller pointed `--out` into a fresh directory.
///
/// A bare filename (no parent component) is a no-op.
///
/// # Errors
///
/// Returns [`SimError::Io`] when directory creation fails.
///
/// # Examples
///
/// ```
/// use ziv_common::fsutil::create_parent_dirs;
/// // Bare filenames have no parent to create.
/// create_parent_dirs("report.json").unwrap();
/// ```
pub fn create_parent_dirs(path: impl AsRef<Path>) -> Result<(), SimError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            std::fs::create_dir_all(parent)
                .map_err(|e| SimError::io("create parent directory", parent, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_nested_parents() {
        let dir = std::env::temp_dir().join(format!("ziv_fsutil_{}", std::process::id()));
        let target = dir.join("a/b/c/out.csv");
        // Clean slate.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!target.parent().unwrap().exists());
        create_parent_dirs(&target).unwrap();
        assert!(target.parent().unwrap().exists());
        // Idempotent on an existing parent.
        create_parent_dirs(&target).unwrap();
        std::fs::write(&target, "x").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bare_filename_is_noop() {
        create_parent_dirs("just_a_name.json").unwrap();
    }
}
