//! Small filesystem helpers shared by the CLI and the harness.

use crate::error::SimError;
use std::path::Path;

/// Creates every missing parent directory of `path`, so a subsequent
/// `File::create(path)` cannot fail with "No such file or directory"
/// just because the caller pointed `--out` into a fresh directory.
///
/// A bare filename (no parent component) is a no-op.
///
/// # Errors
///
/// Returns [`SimError::Io`] when directory creation fails.
///
/// # Examples
///
/// ```
/// use ziv_common::fsutil::create_parent_dirs;
/// // Bare filenames have no parent to create.
/// create_parent_dirs("report.json").unwrap();
/// ```
pub fn create_parent_dirs(path: impl AsRef<Path>) -> Result<(), SimError> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() && !parent.exists() {
            std::fs::create_dir_all(parent)
                .map_err(|e| SimError::io("create parent directory", parent, e))?;
        }
    }
    Ok(())
}

/// Writes `contents` to `path` atomically: the bytes go to a sibling
/// temporary file, are fsynced, and the temp file is renamed over the
/// target. Readers either see the old file or the complete new one —
/// never a torn prefix — so a kill -9 mid-write cannot corrupt the
/// target. The containing directory is fsynced best-effort afterwards
/// so the rename itself is durable.
///
/// # Errors
///
/// Returns [`SimError::Io`] when any step (create, write, sync, rename)
/// fails; a failed rename leaves the old target untouched.
pub fn atomic_write(path: impl AsRef<Path>, contents: &[u8]) -> Result<(), SimError> {
    use std::io::Write;
    let path = path.as_ref();
    create_parent_dirs(path)?;
    let tmp = path.with_extension("tmp");
    {
        let mut f = std::fs::File::create(&tmp)
            .map_err(|e| SimError::io("create temporary file", &tmp, e))?;
        f.write_all(contents)
            .map_err(|e| SimError::io("write temporary file", &tmp, e))?;
        f.sync_all()
            .map_err(|e| SimError::io("sync temporary file", &tmp, e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| SimError::io("rename into place", path, e))?;
    // Durability of the rename needs a directory fsync; failure here is
    // not fatal (the data is already safely in place on all sane
    // filesystems), so it is best-effort.
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            if let Ok(dir) = std::fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn creates_nested_parents() {
        let dir = std::env::temp_dir().join(format!("ziv_fsutil_{}", std::process::id()));
        let target = dir.join("a/b/c/out.csv");
        // Clean slate.
        let _ = std::fs::remove_dir_all(&dir);
        assert!(!target.parent().unwrap().exists());
        create_parent_dirs(&target).unwrap();
        assert!(target.parent().unwrap().exists());
        // Idempotent on an existing parent.
        create_parent_dirs(&target).unwrap();
        std::fs::write(&target, "x").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bare_filename_is_noop() {
        create_parent_dirs("just_a_name.json").unwrap();
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_tmp() {
        let dir = std::env::temp_dir().join(format!("ziv_fsutil_aw_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let target = dir.join("ledger.jsonl");
        atomic_write(&target, b"first\n").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"first\n");
        atomic_write(&target, b"second\n").unwrap();
        assert_eq!(std::fs::read(&target).unwrap(), b"second\n");
        assert!(
            !target.with_extension("tmp").exists(),
            "temp file must not survive a successful write"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
