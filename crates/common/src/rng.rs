//! Deterministic pseudo-random number generation.
//!
//! The simulator must be exactly reproducible: the same seed must produce
//! the same trace, the same victim choices (SHARP's random fallback), and
//! the same statistics on every platform. We therefore implement a small,
//! well-known generator — xoshiro256** seeded via SplitMix64 — rather than
//! depending on an external crate whose output could change across
//! versions.

/// A deterministic xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use ziv_common::rng::SimRng;
///
/// let mut a = SimRng::seed_from_u64(42);
/// let mut b = SimRng::seed_from_u64(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimRng {
    s: [u64; 4],
}

/// SplitMix64 step, used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derives an independent child generator; used to give each core,
    /// bank, and workload stream its own stream without correlation.
    pub fn fork(&mut self, salt: u64) -> Self {
        let mixed = self.next_u64() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seed_from_u64(mixed)
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below() requires a positive bound");
        // Lemire's unbiased bounded generation.
        let mut x = self.next_u64();
        let mut m = (x as u128).wrapping_mul(bound as u128);
        let mut l = m as u64;
        if l < bound {
            let t = bound.wrapping_neg() % bound;
            while l < t {
                x = self.next_u64();
                m = (x as u128).wrapping_mul(bound as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Returns a uniform `usize` in `0..bound`.
    #[inline]
    pub fn below_usize(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns a uniform value in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    #[inline]
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "range() requires lo < hi");
        lo + self.below(hi - lo)
    }

    /// Returns a uniform float in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Picks a uniformly random element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    #[inline]
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "pick() requires a non-empty slice");
        &items[self.below_usize(items.len())]
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below_usize(i + 1);
            items.swap(i, j);
        }
    }

    /// Samples a (truncated) geometric-ish distribution: returns `k` with
    /// probability proportional to `p * (1-p)^k`, capped at `max`.
    /// Used by workload generators for instruction-gap modeling.
    pub fn geometric(&mut self, p: f64, max: u64) -> u64 {
        debug_assert!(p > 0.0 && p <= 1.0);
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        let k = (u.ln() / (1.0 - p).max(f64::MIN_POSITIVE).ln()).floor() as u64;
        k.min(max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from_u64(7);
        let mut b = SimRng::seed_from_u64(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn below_covers_all_values() {
        let mut r = SimRng::seed_from_u64(4);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[r.below(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "positive bound")]
    fn below_zero_panics() {
        SimRng::seed_from_u64(0).below(0);
    }

    #[test]
    fn range_within_bounds() {
        let mut r = SimRng::seed_from_u64(5);
        for _ in 0..1_000 {
            let v = r.range(10, 20);
            assert!((10..20).contains(&v));
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SimRng::seed_from_u64(6);
        for _ in 0..1_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn forked_rngs_are_independent() {
        let mut parent = SimRng::seed_from_u64(8);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn chance_rates_are_plausible() {
        let mut r = SimRng::seed_from_u64(10);
        let hits = (0..100_000).filter(|_| r.chance(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "got {hits}");
    }

    #[test]
    fn geometric_is_capped() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1_000 {
            assert!(r.geometric(0.1, 50) <= 50);
        }
    }

    #[test]
    fn geometric_mean_is_plausible() {
        let mut r = SimRng::seed_from_u64(12);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| r.geometric(0.5, 1_000)).sum();
        let mean = sum as f64 / n as f64;
        // E[geometric(p=0.5)] = (1-p)/p = 1.0
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }
}
