//! Constant-based DRAM energy model (Micron TN-41-01 class numbers,
//! DESIGN.md §5.5): per-access energy split into a row-activation
//! component (paid on row-buffer misses) and a burst-transfer component.

/// Energy of one row activation + precharge pair, in picojoules.
pub const ACTIVATE_ENERGY_PJ: f64 = 2500.0;

/// Energy of one 64-byte read burst (I/O + array column access), in
/// picojoules.
pub const BURST_ENERGY_PJ: f64 = 3500.0;

/// Extra energy of a write burst over a read burst, in picojoules.
pub const WRITE_EXTRA_PJ: f64 = 500.0;

/// Per-access DRAM energy accounting.
#[derive(Debug, Clone, Copy)]
pub struct DramEnergyModel {
    /// Activation energy (row miss only), pJ.
    pub activate_pj: f64,
    /// Burst energy (every access), pJ.
    pub burst_pj: f64,
    /// Write surcharge, pJ.
    pub write_extra_pj: f64,
}

impl Default for DramEnergyModel {
    fn default() -> Self {
        DramEnergyModel {
            activate_pj: ACTIVATE_ENERGY_PJ,
            burst_pj: BURST_ENERGY_PJ,
            write_extra_pj: WRITE_EXTRA_PJ,
        }
    }
}

impl DramEnergyModel {
    /// Energy of one access, in picojoules.
    pub fn access_energy_pj(&self, row_hit: bool, is_write: bool) -> f64 {
        let mut e = self.burst_pj;
        if !row_hit {
            e += self.activate_pj;
        }
        if is_write {
            e += self.write_extra_pj;
        }
        e
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_hit_read_is_cheapest() {
        let m = DramEnergyModel::default();
        let hit_read = m.access_energy_pj(true, false);
        assert!(hit_read < m.access_energy_pj(false, false));
        assert!(hit_read < m.access_energy_pj(true, true));
    }

    #[test]
    fn components_add_up() {
        let m = DramEnergyModel::default();
        assert!(
            (m.access_energy_pj(false, true)
                - (BURST_ENERGY_PJ + ACTIVATE_ENERGY_PJ + WRITE_EXTRA_PJ))
                .abs()
                < 1e-12
        );
    }
}
