//! # ziv-dram
//!
//! A simplified DDR3-2133 main-memory model standing in for the paper's
//! DRAMSim2 (Rosenfeld et al.) configuration: two single-channel
//! controllers, two ranks per channel, eight banks per rank, 1 KB row
//! buffers, and 14-14-14-35 timing (Table I).
//!
//! The model captures what the evaluation needs from main memory:
//!
//! - **Latency magnitude**: row-buffer hit vs miss vs closed-row timing,
//!   converted to CPU cycles at the Table I clock ratio.
//! - **Contention trend**: per-channel data-bus serialization and
//!   per-bank busy windows, so miss-heavy configurations see queueing.
//! - **Energy**: per-access energy (activation + burst) in picojoules,
//!   feeding the Fig 19 EPI accounting (a Micron-power-calculator-class
//!   constant model; see DESIGN.md §5.5).
//!
//! # Examples
//!
//! ```
//! use ziv_dram::DramModel;
//! use ziv_common::{config::DramParams, LineAddr};
//!
//! let mut mem = DramModel::new(DramParams::ddr3_2133());
//! let first = mem.access(LineAddr::new(0x1000), 0, false);
//! let second = mem.access(LineAddr::new(0x1002), first.ready_at, false);
//! assert!(second.row_hit, "nearby line in the same row hits the row buffer");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod energy;

pub use energy::{DramEnergyModel, ACTIVATE_ENERGY_PJ, BURST_ENERGY_PJ};

use ziv_common::config::DramParams;
use ziv_common::{Cycle, LineAddr};

/// Result of one memory access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DramAccess {
    /// CPU cycle at which the critical word is available.
    pub ready_at: Cycle,
    /// Whether the access hit the open row buffer.
    pub row_hit: bool,
    /// Energy expended by this access, in picojoules.
    pub energy_pj: f64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Bank {
    open_row: Option<u64>,
    busy_until: Cycle,
}

#[derive(Debug, Clone)]
struct Channel {
    data_bus_free: Cycle,
    banks: Vec<Bank>,
}

/// The banked, multi-channel DRAM timing and energy model.
#[derive(Debug, Clone)]
pub struct DramModel {
    params: DramParams,
    channels: Vec<Channel>,
    energy: DramEnergyModel,
    accesses: u64,
    row_hits: u64,
    total_energy_pj: f64,
}

impl DramModel {
    /// Creates the model from Table I parameters.
    pub fn new(params: DramParams) -> Self {
        let banks_per_channel = params.ranks_per_channel * params.banks_per_rank;
        let channels = (0..params.channels)
            .map(|_| Channel {
                data_bus_free: 0,
                banks: vec![Bank::default(); banks_per_channel],
            })
            .collect();
        DramModel {
            params,
            channels,
            energy: DramEnergyModel::default(),
            accesses: 0,
            row_hits: 0,
            total_energy_pj: 0.0,
        }
    }

    /// Lines per row buffer.
    fn lines_per_row(&self) -> u64 {
        (self.params.row_bytes / ziv_common::addr::LINE_BYTES).max(1)
    }

    /// Address mapping: channel-interleaved at line granularity, then
    /// bank-interleaved, row = remaining bits (an open-page-friendly map).
    fn map(&self, line: LineAddr) -> (usize, usize, u64) {
        let channels = self.params.channels as u64;
        let banks = (self.params.ranks_per_channel * self.params.banks_per_rank) as u64;
        let lpr = self.lines_per_row();
        let raw = line.raw();
        let channel = (raw % channels) as usize;
        let within_channel = raw / channels;
        let row_chunk = within_channel / lpr;
        let bank = (row_chunk % banks) as usize;
        let row = row_chunk / banks;
        (channel, bank, row)
    }

    /// Performs one 64-byte access starting no earlier than `now`.
    pub fn access(&mut self, line: LineAddr, now: Cycle, is_write: bool) -> DramAccess {
        let (ch_idx, bank_idx, row) = self.map(line);
        let p = self.params;
        let burst_cpu = p.to_cpu_cycles(p.burst_len / 2);
        let ch = &mut self.channels[ch_idx];
        let bank = &mut ch.banks[bank_idx];

        let start = now.max(bank.busy_until);
        let row_hit = bank.open_row == Some(row);
        let array_cycles = if row_hit {
            p.t_cas
        } else if bank.open_row.is_some() {
            p.t_rp + p.t_rcd + p.t_cas
        } else {
            p.t_rcd + p.t_cas
        };
        let array_cpu = p.to_cpu_cycles(array_cycles);
        // Data transfer serializes on the channel's data bus.
        let data_start = (start + array_cpu).max(ch.data_bus_free);
        let ready_at = data_start + burst_cpu;

        ch.data_bus_free = ready_at;
        bank.open_row = Some(row);
        bank.busy_until = ready_at;

        let energy_pj = self.energy.access_energy_pj(row_hit, is_write);
        self.accesses += 1;
        if row_hit {
            self.row_hits += 1;
        }
        self.total_energy_pj += energy_pj;
        DramAccess {
            ready_at,
            row_hit,
            energy_pj,
        }
    }

    /// Unloaded row-hit latency in CPU cycles (diagnostics / tests).
    pub fn row_hit_latency(&self) -> Cycle {
        let p = self.params;
        p.to_cpu_cycles(p.t_cas) + p.to_cpu_cycles(p.burst_len / 2)
    }

    /// Total accesses served.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Row-buffer hit count.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Total energy in picojoules.
    pub fn total_energy_pj(&self) -> f64 {
        self.total_energy_pj
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> DramModel {
        DramModel::new(DramParams::ddr3_2133())
    }

    #[test]
    fn first_access_is_closed_row() {
        let mut m = model();
        let r = m.access(LineAddr::new(0), 0, false);
        assert!(!r.row_hit);
        // tRCD + tCAS = 28 DRAM cycles -> 105 CPU cycles, + burst 15.
        assert_eq!(r.ready_at, 105 + 15);
    }

    #[test]
    fn same_row_second_access_hits() {
        let mut m = model();
        let a = m.access(LineAddr::new(0), 0, false);
        let b = m.access(LineAddr::new(2), a.ready_at, false);
        assert!(b.row_hit);
        assert_eq!(b.ready_at - a.ready_at, m.row_hit_latency());
    }

    #[test]
    fn row_conflict_pays_precharge() {
        let mut m = model();
        let lpr = m.lines_per_row();
        let banks = 16u64;
        let a = m.access(LineAddr::new(0), 0, false);
        // Same channel (even), same bank, different row.
        let conflict = LineAddr::new(lpr * banks * 2);
        let b = m.access(conflict, a.ready_at + 1000, false);
        assert!(!b.row_hit);
        let p = DramParams::ddr3_2133();
        let expected =
            p.to_cpu_cycles(p.t_rp + p.t_rcd + p.t_cas) + p.to_cpu_cycles(p.burst_len / 2);
        assert_eq!(b.ready_at - (a.ready_at + 1000), expected);
    }

    #[test]
    fn channels_are_independent() {
        let mut m = model();
        let a = m.access(LineAddr::new(0), 0, false); // channel 0
        let b = m.access(LineAddr::new(1), 0, false); // channel 1
        assert_eq!(a.ready_at, b.ready_at, "no cross-channel contention");
    }

    #[test]
    fn same_channel_bus_serializes() {
        let mut m = model();
        let lpr = m.lines_per_row();
        let a = m.access(LineAddr::new(0), 0, false);
        // Same channel, different bank (next row-chunk).
        let b = m.access(LineAddr::new(lpr * 2), 0, false);
        assert!(b.ready_at > a.ready_at, "data bus is shared");
    }

    #[test]
    fn energy_accumulates_and_misses_cost_more() {
        let mut m = model();
        let miss = m.access(LineAddr::new(0), 0, false);
        let hit = m.access(LineAddr::new(2), miss.ready_at, false);
        assert!(miss.energy_pj > hit.energy_pj);
        assert!((m.total_energy_pj() - (miss.energy_pj + hit.energy_pj)).abs() < 1e-9);
        assert_eq!(m.accesses(), 2);
        assert_eq!(m.row_hits(), 1);
    }

    #[test]
    fn queueing_pushes_ready_time() {
        let mut m = model();
        // Two back-to-back accesses to the same bank, same row.
        let a = m.access(LineAddr::new(0), 0, false);
        let b = m.access(LineAddr::new(2), 0, false);
        assert!(b.ready_at >= a.ready_at + m.row_hit_latency() - 1);
    }
}
