//! True LRU replacement (Table I's baseline LLC and private-cache policy).

use crate::{AccessCtx, ReplacementPolicy};
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

/// Per-set true-LRU state, implemented with monotonically increasing
/// per-way use stamps (one u64 counter per set).
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    /// stamp[set * ways + way]; 0 means "never touched" (oldest).
    stamps: Vec<u64>,
    /// Per-set stamp counter.
    clocks: Vec<u64>,
}

impl Lru {
    /// Creates LRU state for a structure of the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let sets = geom.sets as usize;
        let ways = geom.ways as usize;
        Lru {
            ways,
            stamps: vec![0; sets * ways],
            clocks: vec![0; sets],
        }
    }

    #[inline]
    fn touch(&mut self, set: SetIdx, way: WayIdx) {
        let s = set as usize;
        self.clocks[s] += 1;
        self.stamps[s * self.ways + way as usize] = self.clocks[s];
    }

    /// The use stamp of a way (exposed for tests; larger = more recent).
    #[inline]
    pub fn stamp(&self, set: SetIdx, way: WayIdx) -> u64 {
        self.stamps[set as usize * self.ways + way as usize]
    }
}

impl ReplacementPolicy for Lru {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        self.stamps[set as usize * self.ways + way as usize] = 0;
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        let mut best: WayIdx = 0;
        let mut best_stamp = u64::MAX;
        for w in 0..self.ways {
            let s = self.stamps[base + w];
            if s < best_stamp {
                best_stamp = s;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        out.sort_by_key(|&w| self.stamps[base + w as usize]);
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        self.touch(set, way);
    }

    fn name(&self) -> &'static str {
        "LRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx() -> AccessCtx {
        AccessCtx::demand(LineAddr::new(0), 0, CoreId::new(0), 0, 0)
    }

    fn lru4() -> Lru {
        Lru::new(CacheGeometry::new(4, 4))
    }

    #[test]
    fn satisfies_policy_contract() {
        crate::check_policy_contract(&mut lru4(), 4, 4);
    }

    #[test]
    fn evicts_least_recently_used() {
        let mut p = lru4();
        let c = ctx();
        for w in 0..4 {
            p.on_fill(0, w, &c);
        }
        p.on_hit(0, 0, &c); // way 0 becomes MRU, way 1 is now LRU
        assert_eq!(p.victim(0, &c), 1);
        p.on_hit(0, 1, &c);
        assert_eq!(p.victim(0, &c), 2);
    }

    #[test]
    fn rank_orders_lru_to_mru() {
        let mut p = lru4();
        let c = ctx();
        for w in [2u8, 0, 3, 1] {
            p.on_fill(0, w, &c);
        }
        let mut order = Vec::new();
        p.rank(0, &c, &mut order);
        assert_eq!(order, vec![2, 0, 3, 1]);
    }

    #[test]
    fn protect_moves_to_mru() {
        let mut p = lru4();
        let c = ctx();
        for w in 0..4 {
            p.on_fill(0, w, &c);
        }
        p.protect(0, 0);
        assert_eq!(p.victim(0, &c), 1);
        let mut order = Vec::new();
        p.rank(0, &c, &mut order);
        assert_eq!(*order.last().unwrap(), 0);
    }

    #[test]
    fn eviction_makes_way_oldest() {
        let mut p = lru4();
        let c = ctx();
        for w in 0..4 {
            p.on_fill(0, w, &c);
        }
        p.on_evict(0, 3);
        assert_eq!(p.victim(0, &c), 3);
    }

    #[test]
    fn sets_are_independent() {
        let mut p = lru4();
        let c = ctx();
        for set in 0..4 {
            for w in 0..4 {
                p.on_fill(set, w, &c);
            }
        }
        p.on_hit(2, 0, &c);
        assert_eq!(p.victim(0, &c), 0); // set 0 unaffected
        assert_eq!(p.victim(2, &c), 1);
    }
}
