//! OPTgen: Hawkeye's per-sampled-set reconstruction of Belady's MIN.
//!
//! OPTgen maintains an occupancy vector over a sliding window of set
//! accesses (time is measured in accesses to the sampled set). A reuse at
//! time `t` of a block last accessed at time `p` would have been an OPT
//! hit iff the occupancy in every time slot of `[p, t)` is below the set
//! capacity; in that case OPT would have kept the block and the occupancy
//! of the interval is incremented.

/// Occupancy-vector OPT simulator for one sampled set.
#[derive(Debug, Clone)]
pub struct OptGen {
    capacity: u8,
    occ: Vec<u8>,
    /// Next time slot (monotonic; slot index is `time % occ.len()`).
    time: u64,
}

impl OptGen {
    /// Creates an OPTgen instance modeling a set of `capacity` ways with
    /// a history window of `history` accesses.
    ///
    /// # Panics
    ///
    /// Panics if `history` is zero.
    pub fn new(capacity: u8, history: usize) -> Self {
        assert!(history > 0, "history window must be positive");
        OptGen {
            capacity,
            occ: vec![0; history],
            time: 0,
        }
    }

    /// Current time (number of accesses observed).
    pub fn now(&self) -> u64 {
        self.time
    }

    /// Length of the history window.
    pub fn history(&self) -> usize {
        self.occ.len()
    }

    /// Processes a reuse whose previous access was at `prev_time` and
    /// returns whether OPT would have hit. Reuses older than the history
    /// window are conservatively misses.
    ///
    /// Call [`OptGen::add_access`] afterwards to open the new time slot.
    pub fn would_hit(&mut self, prev_time: u64) -> bool {
        let history = self.occ.len() as u64;
        if self.time.saturating_sub(prev_time) >= history {
            return false;
        }
        let (lo, hi) = (prev_time, self.time);
        for t in lo..hi {
            if self.occ[(t % history) as usize] >= self.capacity {
                return false;
            }
        }
        for t in lo..hi {
            self.occ[(t % history) as usize] += 1;
        }
        true
    }

    /// Opens the time slot for the current access and advances time.
    pub fn add_access(&mut self) -> u64 {
        let history = self.occ.len() as u64;
        let t = self.time;
        self.occ[(t % history) as usize] = 0;
        self.time += 1;
        t
    }

    /// Occupancy of the slot covering time `t` (for tests).
    pub fn occupancy_at(&self, t: u64) -> u8 {
        self.occ[(t % self.occ.len() as u64) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reuse_within_capacity_hits() {
        let mut g = OptGen::new(2, 16);
        let t0 = g.add_access(); // block A at t=0
        let _t1 = g.add_access(); // block B at t=1
        assert!(
            g.would_hit(t0),
            "capacity 2 holds A across one intervening access"
        );
        assert_eq!(g.occupancy_at(t0), 1);
    }

    #[test]
    fn over_capacity_interval_misses() {
        let mut g = OptGen::new(1, 16);
        let t0 = g.add_access(); // A
        let ta = g.add_access(); // X
        assert!(
            g.would_hit(ta),
            "X reused immediately: empty interval trivially hits"
        );
        // Interval [t0, now) includes slot ta whose occupancy is now 1 == capacity.
        assert!(!g.would_hit(t0));
    }

    #[test]
    fn empty_interval_always_hits() {
        let mut g = OptGen::new(1, 8);
        let t = g.add_access();
        assert!(
            g.would_hit(t),
            "[t, t) is empty when time hasn't advanced... "
        );
    }

    #[test]
    fn stale_reuse_misses() {
        let mut g = OptGen::new(4, 4);
        let t0 = g.add_access();
        for _ in 0..4 {
            g.add_access();
        }
        assert!(
            !g.would_hit(t0),
            "reuse distance >= history window is a miss"
        );
    }

    #[test]
    fn circular_pattern_beyond_capacity_partially_hits() {
        // Classic MIN behavior: with capacity 2 and 3 blocks accessed
        // round-robin, OPT keeps hitting on a subset.
        let mut g = OptGen::new(2, 64);
        let mut last = [None::<u64>; 3];
        let mut hits = 0;
        for i in 0..30 {
            let b = i % 3;
            if let Some(p) = last[b] {
                if g.would_hit(p) {
                    hits += 1;
                }
            }
            last[b] = Some(g.add_access());
        }
        assert!(hits > 0, "OPT should salvage some hits");
        assert!(hits < 27, "but not all of them");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_history_panics() {
        OptGen::new(1, 0);
    }
}
