//! The Hawkeye replacement policy (Jain & Lin, "Back to the Future:
//! Leveraging Belady's Algorithm for Improved Cache Replacement",
//! ISCA 2016) — the paper's second baseline LLC policy.
//!
//! Hawkeye learns, per load PC, whether Belady's MIN would have kept the
//! blocks that PC loads. A sampled subset of sets feeds OPTgen (a
//! reconstruction of MIN over the set's access stream); OPTgen's verdicts
//! train a PC-indexed predictor; the predictor classifies every fill as
//! *cache-friendly* (inserted at RRPV 0) or *cache-averse* (inserted at
//! RRPV 7). Victims are cache-averse blocks when available; otherwise the
//! oldest friendly block is evicted and its PC detrained.
//!
//! The paper's ZIV property `MaxRRPVNotInPrC` keys directly off this
//! module's RRPV grading (Section III-D5).

mod optgen;
mod predictor;

pub use optgen::OptGen;
pub use predictor::{pc_signature, OccupancyPredictor, PcSig};

use crate::{AccessCtx, ReplacementPolicy, RRPV_MAX};
use std::collections::HashMap;
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

/// Tuning knobs for Hawkeye.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HawkeyeConfig {
    /// Every `sample_stride`-th set is a sampled set feeding OPTgen.
    pub sample_stride: u32,
    /// OPTgen history window as a multiple of associativity.
    pub history_per_way: usize,
    /// log2 of the predictor table size.
    pub predictor_index_bits: u32,
}

impl Default for HawkeyeConfig {
    fn default() -> Self {
        HawkeyeConfig {
            sample_stride: 8,
            history_per_way: 8,
            predictor_index_bits: 12,
        }
    }
}

/// Per-way metadata Hawkeye maintains.
#[derive(Debug, Clone, Copy, Default)]
struct WayState {
    rrpv: u8,
    sig: PcSig,
    friendly: bool,
}

/// One sampled set's training state.
#[derive(Debug)]
struct SampledSet {
    optgen: OptGen,
    /// line-address → (last access time in this set's OPTgen clock, sig).
    history: HashMap<u64, (u64, PcSig)>,
    cap: usize,
}

impl SampledSet {
    fn new(ways: u8, history_per_way: usize) -> Self {
        let window = ways as usize * history_per_way;
        SampledSet {
            optgen: OptGen::new(ways, window),
            history: HashMap::new(),
            cap: 2 * window,
        }
    }

    /// Records an access; returns `(prev_sig, opt_hit)` when the line had
    /// a tracked previous access.
    fn access(&mut self, line_raw: u64, sig: PcSig) -> Option<(PcSig, bool)> {
        let verdict = self
            .history
            .get(&line_raw)
            .copied()
            .map(|(prev_t, prev_sig)| (prev_sig, self.optgen.would_hit(prev_t)));
        let t = self.optgen.add_access();
        if self.history.len() >= self.cap && !self.history.contains_key(&line_raw) {
            // Bound the sampler: drop the stalest entry.
            if let Some((&oldest, _)) = self.history.iter().min_by_key(|(_, (t, _))| *t) {
                self.history.remove(&oldest);
            }
        }
        self.history.insert(line_raw, (t, sig));
        verdict
    }
}

/// The Hawkeye policy for one cache bank.
#[derive(Debug)]
pub struct Hawkeye {
    ways: usize,
    cfg: HawkeyeConfig,
    state: Vec<WayState>,
    predictor: OccupancyPredictor,
    sampled: HashMap<SetIdx, SampledSet>,
    geom: CacheGeometry,
}

impl Hawkeye {
    /// Creates Hawkeye state for the given geometry with default tuning.
    pub fn new(geom: CacheGeometry) -> Self {
        Self::with_config(geom, HawkeyeConfig::default())
    }

    /// Creates Hawkeye state with explicit tuning.
    pub fn with_config(geom: CacheGeometry, cfg: HawkeyeConfig) -> Self {
        Hawkeye {
            ways: geom.ways as usize,
            cfg,
            state: vec![WayState::default(); geom.sets as usize * geom.ways as usize],
            predictor: OccupancyPredictor::new(cfg.predictor_index_bits),
            sampled: HashMap::new(),
            geom,
        }
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        set as usize * self.ways + way as usize
    }

    fn is_sampled(&self, set: SetIdx) -> bool {
        set.is_multiple_of(self.cfg.sample_stride)
    }

    /// Trains OPTgen/predictor for an access to a sampled set.
    fn train(&mut self, set: SetIdx, ctx: &AccessCtx) {
        if !self.is_sampled(set) {
            return;
        }
        let ways = self.geom.ways;
        let hpw = self.cfg.history_per_way;
        let entry = self
            .sampled
            .entry(set)
            .or_insert_with(|| SampledSet::new(ways, hpw));
        let sig = pc_signature(ctx.pc);
        if let Some((prev_sig, opt_hit)) = entry.access(ctx.line.raw(), sig) {
            if opt_hit {
                self.predictor.train_hit(prev_sig);
            } else {
                self.predictor.train_miss(prev_sig);
            }
        }
    }

    /// Applies the RRIP update Hawkeye performs on every demand access.
    fn rrip_update(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx, is_fill: bool) {
        let sig = pc_signature(ctx.pc);
        let friendly = self.predictor.is_friendly(sig);
        if friendly && is_fill {
            // Age the other cache-friendly blocks (saturating below max,
            // so averse blocks stay distinguishable at RRPV 7).
            let base = set as usize * self.ways;
            for w in 0..self.ways {
                if w != way as usize {
                    let st = &mut self.state[base + w];
                    if st.friendly && st.rrpv < RRPV_MAX - 1 {
                        st.rrpv += 1;
                    }
                }
            }
        }
        let i = self.idx(set, way);
        let st = &mut self.state[i];
        st.sig = sig;
        st.friendly = friendly;
        st.rrpv = if friendly { 0 } else { RRPV_MAX };
    }

    /// Access to the predictor (for tests and diagnostics).
    pub fn predictor(&self) -> &OccupancyPredictor {
        &self.predictor
    }

    /// Whether the block in `(set, way)` is currently classified as
    /// cache-averse (RRPV = 7). This is what the paper's
    /// `MaxRRPVNotInPrC` property tests.
    pub fn is_cache_averse(&self, set: SetIdx, way: WayIdx) -> bool {
        self.state[self.idx(set, way)].rrpv == RRPV_MAX
    }
}

impl ReplacementPolicy for Hawkeye {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        self.train(set, ctx);
        self.rrip_update(set, way, ctx, true);
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        self.train(set, ctx);
        self.rrip_update(set, way, ctx, false);
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        let st = self.state[self.idx(set, way)];
        if st.friendly {
            // Evicting a block the predictor promised was friendly:
            // detrain its PC (Hawkeye's feedback path).
            self.predictor.train_miss(st.sig);
        }
        let i = self.idx(set, way);
        self.state[i] = WayState {
            rrpv: RRPV_MAX,
            sig: 0,
            friendly: false,
        };
    }

    fn on_relocate_in(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        // A ZIV relocation inserts the block without a demand access: no
        // OPTgen training and no predictor consultation (the original
        // load PC is not available at the relocation datapath). The block
        // is graded distant-but-not-averse so it neither displaces the
        // set's working set nor becomes the immediate next victim (which
        // would trigger a re-relocation storm), and it is marked
        // non-friendly so its eventual eviction detrains nothing.
        let i = self.idx(set, way);
        self.state[i] = WayState {
            rrpv: RRPV_MAX - 1,
            sig: 0,
            friendly: false,
        };
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        // Prefer a cache-averse block (RRPV 7); otherwise the oldest
        // (highest-RRPV) friendly block.
        let mut best: WayIdx = 0;
        let mut best_r = 0u8;
        for w in 0..self.ways {
            let r = self.state[base + w].rrpv;
            if w == 0 || r > best_r {
                best_r = r;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        out.sort_by(|&a, &b| {
            self.state[base + b as usize]
                .rrpv
                .cmp(&self.state[base + a as usize].rrpv)
        });
    }

    fn rrpv(&self, set: SetIdx, way: WayIdx) -> Option<u8> {
        Some(self.state[self.idx(set, way)].rrpv)
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.state[i].rrpv = 0;
    }

    fn name(&self) -> &'static str {
        "Hawkeye"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx(line: u64, pc: u64) -> AccessCtx {
        AccessCtx::demand(LineAddr::new(line), pc, CoreId::new(0), 0, 0)
    }

    fn hawkeye(sets: u32, ways: u8) -> Hawkeye {
        Hawkeye::new(CacheGeometry::new(sets, ways))
    }

    #[test]
    fn satisfies_policy_contract() {
        crate::check_policy_contract(&mut hawkeye(8, 4), 8, 4);
    }

    #[test]
    fn cold_fills_are_friendly_rrpv_zero() {
        let mut h = hawkeye(8, 4);
        h.on_fill(1, 0, &ctx(100, 0x400));
        assert_eq!(h.rrpv(1, 0), Some(0));
        assert!(!h.is_cache_averse(1, 0));
    }

    #[test]
    fn friendly_insertion_ages_other_friendly_blocks() {
        let mut h = hawkeye(8, 4);
        h.on_fill(1, 0, &ctx(100, 0x400));
        h.on_fill(1, 1, &ctx(101, 0x404));
        assert_eq!(h.rrpv(1, 0), Some(1), "way 0 aged by way 1's friendly fill");
        assert_eq!(h.rrpv(1, 1), Some(0));
    }

    #[test]
    fn averse_pc_inserts_at_max_rrpv() {
        let mut h = hawkeye(8, 4);
        let pc = 0x500;
        let sig = pc_signature(pc);
        for _ in 0..8 {
            h.predictor.train_miss(sig);
        }
        h.on_fill(1, 2, &ctx(200, pc));
        assert!(h.is_cache_averse(1, 2));
        assert_eq!(h.victim(1, &ctx(0, 0)), 2);
    }

    #[test]
    fn evicting_friendly_block_detrains_its_pc() {
        let mut h = hawkeye(8, 4);
        let pc = 0x600;
        let sig = pc_signature(pc);
        let before = h.predictor.counter(sig);
        h.on_fill(1, 0, &ctx(300, pc));
        h.on_evict(1, 0);
        assert_eq!(h.predictor.counter(sig), before - 1);
    }

    #[test]
    fn streaming_pc_on_sampled_set_becomes_averse() {
        // A PC that streams through far more lines than the set holds
        // never reuses within OPTgen's window -> predictor learns averse.
        let mut h = hawkeye(8, 4);
        let pc = 0x700;
        let set: SetIdx = 0; // sampled (stride 8)
                             // Two passes over 64 lines: the second pass produces OPTgen
                             // misses (reuse distance far beyond the window).
        for _pass in 0..2 {
            for i in 0..64u64 {
                let way = (i % 4) as WayIdx;
                h.on_fill(set, way, &ctx(i * 8, pc));
            }
        }
        assert!(!h.predictor.is_friendly(pc_signature(pc)));
    }

    #[test]
    fn tight_reuse_on_sampled_set_stays_friendly() {
        let mut h = hawkeye(8, 4);
        let pc = 0x800;
        for _ in 0..50 {
            for i in 0..2u64 {
                h.on_hit(0, i as WayIdx, &ctx(i * 8, pc));
            }
        }
        assert!(h.predictor.is_friendly(pc_signature(pc)));
    }

    #[test]
    fn relocate_in_does_not_train_optgen() {
        let mut h = hawkeye(8, 4);
        let pc = 0x900;
        let sig = pc_signature(pc);
        let before = h.predictor.counter(sig);
        // Repeated relocation insertions of the same line into a sampled
        // set would corrupt the predictor if they trained OPTgen.
        for _ in 0..10 {
            h.on_relocate_in(0, 0, &ctx(42, pc));
        }
        assert_eq!(h.predictor.counter(sig), before);
    }

    #[test]
    fn protect_clears_rrpv() {
        let mut h = hawkeye(8, 4);
        let pc = 0xa00;
        let sig = pc_signature(pc);
        for _ in 0..8 {
            h.predictor.train_miss(sig);
        }
        h.on_fill(1, 1, &ctx(123, pc));
        assert_eq!(h.rrpv(1, 1), Some(RRPV_MAX));
        h.protect(1, 1);
        assert_eq!(h.rrpv(1, 1), Some(0));
    }
}
