//! Hawkeye's PC-based binary classifier: a table of 3-bit saturating
//! counters indexed by a hash of the load PC. Positive training comes
//! from OPTgen hits, negative training from OPTgen misses and from
//! evicting cache-friendly blocks (detraining).

/// PC signature type stored per cache block (a truncated PC hash).
pub type PcSig = u16;

/// 3-bit saturating-counter predictor.
#[derive(Debug, Clone)]
pub struct OccupancyPredictor {
    counters: Vec<u8>,
    mask: usize,
}

const COUNTER_MAX: u8 = 7;
const FRIENDLY_THRESHOLD: u8 = 4;

/// Hashes a PC into a table/storage signature.
#[inline]
pub fn pc_signature(pc: u64) -> PcSig {
    // SplitMix-style finalizer, truncated to 16 bits.
    let mut z = pc.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    (z ^ (z >> 31)) as PcSig
}

impl OccupancyPredictor {
    /// Creates a predictor with `2^index_bits` counters, initialized to
    /// the weakly-friendly threshold so cold PCs default to friendly
    /// (matching Hawkeye's optimistic start).
    ///
    /// # Panics
    ///
    /// Panics if `index_bits` is 0 or exceeds 24.
    pub fn new(index_bits: u32) -> Self {
        assert!((1..=24).contains(&index_bits), "index_bits out of range");
        let n = 1usize << index_bits;
        OccupancyPredictor {
            counters: vec![FRIENDLY_THRESHOLD; n],
            mask: n - 1,
        }
    }

    #[inline]
    fn idx(&self, sig: PcSig) -> usize {
        sig as usize & self.mask
    }

    /// Predicts whether blocks loaded by this PC are cache-friendly.
    #[inline]
    pub fn is_friendly(&self, sig: PcSig) -> bool {
        self.counters[self.idx(sig)] >= FRIENDLY_THRESHOLD
    }

    /// Positive training (OPTgen says the reuse would have hit).
    #[inline]
    pub fn train_hit(&mut self, sig: PcSig) {
        let i = self.idx(sig);
        if self.counters[i] < COUNTER_MAX {
            self.counters[i] += 1;
        }
    }

    /// Negative training (OPTgen miss, or detraining on the eviction of a
    /// cache-friendly block).
    #[inline]
    pub fn train_miss(&mut self, sig: PcSig) {
        let i = self.idx(sig);
        if self.counters[i] > 0 {
            self.counters[i] -= 1;
        }
    }

    /// Raw counter value (for tests).
    pub fn counter(&self, sig: PcSig) -> u8 {
        self.counters[self.idx(sig)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_predictor_is_friendly() {
        let p = OccupancyPredictor::new(10);
        assert!(p.is_friendly(pc_signature(0x1234)));
    }

    #[test]
    fn training_flips_classification() {
        let mut p = OccupancyPredictor::new(10);
        let s = pc_signature(0xabcd);
        p.train_miss(s);
        assert!(!p.is_friendly(s));
        p.train_hit(s);
        assert!(p.is_friendly(s));
    }

    #[test]
    fn counters_saturate() {
        let mut p = OccupancyPredictor::new(8);
        let s = pc_signature(0x10);
        for _ in 0..20 {
            p.train_hit(s);
        }
        assert_eq!(p.counter(s), 7);
        for _ in 0..20 {
            p.train_miss(s);
        }
        assert_eq!(p.counter(s), 0);
    }

    #[test]
    fn signatures_spread() {
        let sigs: std::collections::HashSet<PcSig> =
            (0..1000u64).map(|pc| pc_signature(pc * 4)).collect();
        assert!(sigs.len() > 950, "hash should rarely collide on 1000 PCs");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_index_bits_panics() {
        OccupancyPredictor::new(0);
    }
}
