//! Not-recently-used (NRU) replacement with one reference bit per way —
//! the policy Table I assigns to the sparse directory ("1-bit NRU").

use crate::{AccessCtx, ReplacementPolicy};
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

/// 1-bit NRU: a reference bit is set on every touch; the victim is the
/// first way (lowest index) with a clear bit. When every bit in the set
/// is set, all bits except the just-touched way's are cleared.
#[derive(Debug, Clone)]
pub struct Nru {
    ways: usize,
    ref_bits: Vec<bool>,
}

impl Nru {
    /// Creates NRU state for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Nru {
            ways: geom.ways as usize,
            ref_bits: vec![false; geom.sets as usize * geom.ways as usize],
        }
    }

    fn touch(&mut self, set: SetIdx, way: WayIdx) {
        let base = set as usize * self.ways;
        self.ref_bits[base + way as usize] = true;
        if self.ref_bits[base..base + self.ways].iter().all(|&b| b) {
            for (w, bit) in self.ref_bits[base..base + self.ways].iter_mut().enumerate() {
                *bit = w == way as usize;
            }
        }
    }

    /// Whether the reference bit of `(set, way)` is currently set.
    pub fn referenced(&self, set: SetIdx, way: WayIdx) -> bool {
        self.ref_bits[set as usize * self.ways + way as usize]
    }
}

impl ReplacementPolicy for Nru {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        self.ref_bits[set as usize * self.ways + way as usize] = false;
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        for w in 0..self.ways {
            if !self.ref_bits[base + w] {
                return w as WayIdx;
            }
        }
        // touch() guarantees at least one clear bit, but a freshly
        // constructed policy whose bits were set externally could reach
        // here; fall back to way 0.
        0
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend((0..self.ways as WayIdx).filter(|&w| !self.ref_bits[base + w as usize]));
        out.extend((0..self.ways as WayIdx).filter(|&w| self.ref_bits[base + w as usize]));
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        self.touch(set, way);
    }

    fn name(&self) -> &'static str {
        "NRU"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx() -> AccessCtx {
        AccessCtx::demand(LineAddr::new(0), 0, CoreId::new(0), 0, 0)
    }

    #[test]
    fn satisfies_policy_contract() {
        // After filling all ways, the last fill resets the other bits, so
        // the contract's victim==rank[0] still holds.
        crate::check_policy_contract(&mut Nru::new(CacheGeometry::new(4, 4)), 4, 4);
    }

    #[test]
    fn victim_prefers_unreferenced() {
        let mut p = Nru::new(CacheGeometry::new(1, 4));
        let c = ctx();
        p.on_fill(0, 0, &c);
        p.on_fill(0, 1, &c);
        assert_eq!(p.victim(0, &c), 2);
    }

    #[test]
    fn saturation_clears_all_but_last() {
        let mut p = Nru::new(CacheGeometry::new(1, 3));
        let c = ctx();
        p.on_fill(0, 0, &c);
        p.on_fill(0, 1, &c);
        p.on_fill(0, 2, &c); // saturates: clears bits of ways 0 and 1
        assert!(!p.referenced(0, 0));
        assert!(!p.referenced(0, 1));
        assert!(p.referenced(0, 2));
        assert_eq!(p.victim(0, &c), 0);
    }

    #[test]
    fn eviction_clears_bit() {
        let mut p = Nru::new(CacheGeometry::new(1, 4));
        let c = ctx();
        p.on_fill(0, 0, &c);
        p.on_evict(0, 0);
        assert!(!p.referenced(0, 0));
        assert_eq!(p.victim(0, &c), 0);
    }

    #[test]
    fn rank_puts_unreferenced_first() {
        let mut p = Nru::new(CacheGeometry::new(1, 4));
        let c = ctx();
        p.on_hit(0, 1, &c);
        p.on_hit(0, 3, &c);
        let mut order = Vec::new();
        p.rank(0, &c, &mut order);
        assert_eq!(order, vec![0, 2, 1, 3]);
    }
}
