//! Belady's MIN as an offline LLC replacement oracle (the `I-MIN`
//! configuration of the paper's Fig 2).
//!
//! Per the paper's footnote 2, MIN is driven by the **global L1 access
//! stream** (which is independent of LLC victim choices), not the
//! LLC-filtered stream. The oracle therefore consults a
//! [`FutureKnowledge`] precomputed from the full trace: the victim is the
//! resident block whose next use in the global stream is furthest away
//! (never-used-again blocks are furthest of all).

use crate::{AccessCtx, FutureKnowledge, ReplacementPolicy};
use std::rc::Rc;
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::{CacheGeometry, LineAddr};

/// Offline MIN oracle for one cache bank.
#[derive(Debug)]
pub struct MinOracle {
    ways: usize,
    /// Line resident in each way (the oracle tracks contents itself so it
    /// can ask the future about them).
    lines: Vec<Option<LineAddr>>,
    future: Rc<dyn FutureKnowledge>,
}

impl MinOracle {
    /// Creates a MIN oracle with the given future knowledge.
    pub fn new(geom: CacheGeometry, future: Rc<dyn FutureKnowledge>) -> Self {
        MinOracle {
            ways: geom.ways as usize,
            lines: vec![None; geom.sets as usize * geom.ways as usize],
            future,
        }
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        set as usize * self.ways + way as usize
    }

    /// Sort key: distance to next use, with "never again" = MAX.
    fn next_use_key(&self, way_line: Option<LineAddr>, seq: u64) -> u64 {
        match way_line {
            None => u64::MAX, // empty ways should never be ranked but are maximally evictable
            Some(line) => self.future.next_use(line, seq).unwrap_or(u64::MAX),
        }
    }
}

impl ReplacementPolicy for MinOracle {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.lines[i] = Some(ctx.line);
    }

    fn on_hit(&mut self, _set: SetIdx, _way: WayIdx, _ctx: &AccessCtx) {
        // MIN needs no recency state: the future is already known.
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.lines[i] = None;
    }

    fn on_relocate_in(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.lines[i] = Some(ctx.line);
    }

    fn victim(&self, set: SetIdx, ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        let mut best: WayIdx = 0;
        let mut best_key = 0u64;
        for w in 0..self.ways {
            let key = self.next_use_key(self.lines[base + w], ctx.seq);
            if w == 0 || key > best_key {
                best_key = key;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        out.sort_by(|&a, &b| {
            let ka = self.next_use_key(self.lines[base + a as usize], ctx.seq);
            let kb = self.next_use_key(self.lines[base + b as usize], ctx.seq);
            kb.cmp(&ka)
        });
    }

    fn protect(&mut self, _set: SetIdx, _way: WayIdx) {
        // The oracle cannot be overridden by QBS-style promotion; MIN is
        // only used as a standalone baseline (I-MIN in Fig 2).
    }

    fn name(&self) -> &'static str {
        "MIN"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrecomputedFuture;
    use ziv_common::CoreId;

    fn ctx(line: u64, seq: u64) -> AccessCtx {
        AccessCtx::demand(LineAddr::new(line), 0, CoreId::new(0), 0, seq)
    }

    fn oracle(stream: &[(u64, u64)]) -> MinOracle {
        let future =
            PrecomputedFuture::from_stream(stream.iter().map(|&(s, l)| (s, LineAddr::new(l))));
        MinOracle::new(CacheGeometry::new(1, 2), Rc::new(future))
    }

    #[test]
    fn evicts_furthest_next_use() {
        // Stream: A@0 B@1 A@2 B@10  -> at seq=1, B (next use 10) is
        // further than A (next use 2).
        let mut m = oracle(&[(0, 1), (1, 2), (2, 1), (10, 2)]);
        m.on_fill(0, 0, &ctx(1, 0));
        m.on_fill(0, 1, &ctx(2, 1));
        assert_eq!(m.victim(0, &ctx(0, 1)), 1);
    }

    #[test]
    fn never_used_again_is_evicted_first() {
        let mut m = oracle(&[(0, 1), (1, 2), (5, 1)]);
        m.on_fill(0, 0, &ctx(1, 0));
        m.on_fill(0, 1, &ctx(2, 1)); // line 2 never accessed after seq 1
        assert_eq!(m.victim(0, &ctx(0, 2)), 1);
    }

    #[test]
    fn circular_pattern_victimizes_most_recent_fill() {
        // The paper's Section I observation: in a circular pattern
        // (B1 B2 B3 B1 B2 B3 ...) over a 2-way set, the most recently
        // accessed block has the furthest reuse, so MIN victimizes it.
        let stream: Vec<(u64, u64)> = (0..30).map(|s| (s, 1 + s % 3)).collect();
        let mut m = oracle(&stream);
        m.on_fill(0, 0, &ctx(1, 0)); // B1 at seq 0
        m.on_fill(0, 1, &ctx(2, 1)); // B2 at seq 1
                                     // At seq 2 (B3 arrives): B2's next use (seq 4) is after B1's
                                     // (seq 3) -> MIN evicts B2, the most recently filled block.
        assert_eq!(m.victim(0, &ctx(3, 2)), 1);
    }

    #[test]
    fn rank_orders_by_distance() {
        let mut m = oracle(&[(0, 1), (1, 2), (3, 2), (9, 1)]);
        m.on_fill(0, 0, &ctx(1, 0));
        m.on_fill(0, 1, &ctx(2, 1));
        let mut order = Vec::new();
        m.rank(0, &ctx(0, 1), &mut order);
        assert_eq!(
            order,
            vec![0, 1],
            "line 1 (next use 9) before line 2 (next use 3)"
        );
    }

    #[test]
    fn eviction_clears_tracking() {
        let mut m = oracle(&[(0, 1), (100, 1)]);
        m.on_fill(0, 0, &ctx(1, 0));
        m.on_evict(0, 0);
        // Empty way has maximal key and would be picked first.
        assert_eq!(m.victim(0, &ctx(0, 1)), 0);
    }
}
