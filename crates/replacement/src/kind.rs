//! Policy selection: a small factory enum so the cache controller and
//! experiment configurations can name policies declaratively.

use crate::{Drrip, FutureKnowledge, Hawkeye, Lru, MinOracle, Nru, ReplacementPolicy, Ship, Srrip};
use std::rc::Rc;
use ziv_common::CacheGeometry;

/// The replacement policies available to the LLC and directory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True LRU (Table I baseline).
    Lru,
    /// 1-bit not-recently-used (the sparse directory's policy).
    Nru,
    /// Static RRIP.
    Srrip,
    /// Dynamic RRIP (set-dueling SRRIP/BRRIP).
    Drrip,
    /// Signature-based hit prediction over RRIP (Wu et al., MICRO 2011).
    Ship,
    /// Hawkeye (OPTgen-trained PC predictor over RRIP).
    Hawkeye,
    /// Offline Belady MIN; requires future knowledge via
    /// [`PolicyKind::build_with_future`].
    Min,
}

impl PolicyKind {
    /// Builds a policy instance for one bank of the given geometry.
    ///
    /// # Panics
    ///
    /// Panics for [`PolicyKind::Min`], which needs future knowledge; use
    /// [`PolicyKind::build_with_future`].
    pub fn build(self, geom: CacheGeometry, seed: u64) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Lru => Box::new(Lru::new(geom)),
            PolicyKind::Nru => Box::new(Nru::new(geom)),
            PolicyKind::Srrip => Box::new(Srrip::new(geom)),
            PolicyKind::Drrip => Box::new(Drrip::new(geom, seed)),
            PolicyKind::Ship => Box::new(Ship::new(geom)),
            PolicyKind::Hawkeye => Box::new(Hawkeye::new(geom)),
            PolicyKind::Min => panic!("MIN requires future knowledge; use build_with_future"),
        }
    }

    /// Builds a policy instance, supplying future knowledge for MIN.
    pub fn build_with_future(
        self,
        geom: CacheGeometry,
        seed: u64,
        future: Option<Rc<dyn FutureKnowledge>>,
    ) -> Box<dyn ReplacementPolicy> {
        match self {
            PolicyKind::Min => {
                let f = future.expect("MIN requires future knowledge");
                Box::new(MinOracle::new(geom, f))
            }
            other => other.build(geom, seed),
        }
    }

    /// Whether this policy grades blocks with RRPVs (drives the choice
    /// between `LRUNotInPrC`-style and `MaxRRPVNotInPrC`-style ZIV
    /// properties).
    pub fn is_rrpv_based(self) -> bool {
        matches!(
            self,
            PolicyKind::Srrip | PolicyKind::Drrip | PolicyKind::Ship | PolicyKind::Hawkeye
        )
    }

    /// Display label matching the paper's figure legends.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Nru => "NRU",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Hawkeye => "Hawkeye",
            PolicyKind::Min => "MIN",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrecomputedFuture;

    #[test]
    fn builds_every_policy() {
        let geom = CacheGeometry::new(8, 4);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Nru,
            PolicyKind::Srrip,
            PolicyKind::Drrip,
            PolicyKind::Ship,
            PolicyKind::Hawkeye,
        ] {
            let p = kind.build(geom, 0);
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn min_builds_with_future() {
        let geom = CacheGeometry::new(8, 4);
        let f: Rc<dyn FutureKnowledge> = Rc::new(PrecomputedFuture::from_stream([]));
        let p = PolicyKind::Min.build_with_future(geom, 0, Some(f));
        assert_eq!(p.name(), "MIN");
    }

    #[test]
    #[should_panic(expected = "future knowledge")]
    fn min_without_future_panics() {
        PolicyKind::Min.build(CacheGeometry::new(8, 4), 0);
    }

    #[test]
    fn rrpv_classification() {
        assert!(PolicyKind::Hawkeye.is_rrpv_based());
        assert!(PolicyKind::Srrip.is_rrpv_based());
        assert!(!PolicyKind::Lru.is_rrpv_based());
        assert!(!PolicyKind::Min.is_rrpv_based());
    }
}
