//! Access context passed to replacement-policy hooks, and the future-
//! knowledge interface used by the offline MIN oracle.

use std::collections::HashMap;
use ziv_common::{CoreId, Cycle, LineAddr};

/// Context of one cache access, carrying everything any policy needs:
/// the line, the requesting PC (Hawkeye's predictor index), the core, the
/// simulation clock, and the **global access sequence number** (the MIN
/// oracle's notion of time, per the paper's footnote 2: MIN operates on
/// the global L1 access stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessCtx {
    /// Line being accessed.
    pub line: LineAddr,
    /// Program counter of the access (synthesized by the workload
    /// generators; hashes into Hawkeye's predictor).
    pub pc: u64,
    /// Requesting core.
    pub core: CoreId,
    /// Simulation clock in cycles.
    pub now: Cycle,
    /// Position of this access in the global (policy-independent) L1
    /// access stream.
    pub seq: u64,
    /// Whether this access is a write.
    pub is_write: bool,
}

impl AccessCtx {
    /// Creates a demand-read context.
    pub fn demand(line: LineAddr, pc: u64, core: CoreId, now: Cycle, seq: u64) -> Self {
        AccessCtx {
            line,
            pc,
            core,
            now,
            seq,
            is_write: false,
        }
    }

    /// Returns a copy marked as a write.
    pub fn write(mut self) -> Self {
        self.is_write = true;
        self
    }
}

/// Oracle knowledge of the future access stream, consumed by
/// [`crate::MinOracle`].
///
/// The paper (footnote 2) feeds MIN the *global* L1 access stream because
/// the LLC-local stream is perturbed by the choice of LLC victims. Our
/// simulator precomputes, per line, the ordered list of global sequence
/// numbers at which the line is accessed.
pub trait FutureKnowledge: std::fmt::Debug {
    /// The first global sequence number strictly greater than `after_seq`
    /// at which `line` is accessed, or `None` if it is never accessed
    /// again.
    fn next_use(&self, line: LineAddr, after_seq: u64) -> Option<u64>;
}

/// [`FutureKnowledge`] backed by a precomputed map from line to its
/// sorted access positions in the global stream.
#[derive(Debug, Default, Clone)]
pub struct PrecomputedFuture {
    uses: HashMap<LineAddr, Vec<u64>>,
}

impl PrecomputedFuture {
    /// Builds future knowledge from the global access stream, given as
    /// `(seq, line)` pairs in any order.
    ///
    /// # Examples
    ///
    /// ```
    /// use ziv_replacement::{PrecomputedFuture, FutureKnowledge};
    /// use ziv_common::LineAddr;
    ///
    /// let f = PrecomputedFuture::from_stream(
    ///     [(0, LineAddr::new(1)), (5, LineAddr::new(1)), (9, LineAddr::new(2))],
    /// );
    /// assert_eq!(f.next_use(LineAddr::new(1), 0), Some(5));
    /// assert_eq!(f.next_use(LineAddr::new(1), 5), None);
    /// ```
    pub fn from_stream<I: IntoIterator<Item = (u64, LineAddr)>>(stream: I) -> Self {
        let mut uses: HashMap<LineAddr, Vec<u64>> = HashMap::new();
        for (seq, line) in stream {
            uses.entry(line).or_default().push(seq);
        }
        for v in uses.values_mut() {
            v.sort_unstable();
        }
        PrecomputedFuture { uses }
    }

    /// Number of distinct lines with known futures.
    pub fn distinct_lines(&self) -> usize {
        self.uses.len()
    }
}

impl FutureKnowledge for PrecomputedFuture {
    fn next_use(&self, line: LineAddr, after_seq: u64) -> Option<u64> {
        let v = self.uses.get(&line)?;
        let idx = v.partition_point(|&s| s <= after_seq);
        v.get(idx).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn ctx_write_marks_write() {
        let c = AccessCtx::demand(line(1), 2, CoreId::new(0), 3, 4);
        assert!(!c.is_write);
        assert!(c.write().is_write);
    }

    #[test]
    fn future_next_use_is_strictly_after() {
        let f = PrecomputedFuture::from_stream([(3, line(9)), (7, line(9))]);
        assert_eq!(f.next_use(line(9), 0), Some(3));
        assert_eq!(f.next_use(line(9), 3), Some(7));
        assert_eq!(f.next_use(line(9), 7), None);
    }

    #[test]
    fn future_unknown_line_is_none() {
        let f = PrecomputedFuture::from_stream([]);
        assert_eq!(f.next_use(line(1), 0), None);
        assert_eq!(f.distinct_lines(), 0);
    }

    #[test]
    fn future_handles_unsorted_input() {
        let f = PrecomputedFuture::from_stream([(9, line(1)), (2, line(1)), (5, line(1))]);
        assert_eq!(f.next_use(line(1), 2), Some(5));
    }
}
