//! # ziv-replacement
//!
//! Replacement policies for the ZIV LLC reproduction.
//!
//! The paper evaluates LLC replacement with **LRU** and **Hawkeye**
//! (Jain & Lin, ISCA 2016), uses an offline **Belady MIN** oracle for its
//! motivation study (Fig 2), and relies on **NRU** for the sparse
//! directory and **RRPV** machinery (SRRIP, Jaleel et al., ISCA 2010) for
//! the Hawkeye-side ZIV properties. All of these are implemented here
//! behind one [`ReplacementPolicy`] trait.
//!
//! The trait's [`rank`](ReplacementPolicy::rank) hook — an evict-first
//! ordering of a set's ways — is what makes every proposal in the paper
//! composable with every baseline policy: QBS walks candidates in rank
//! order, SHARP's steps search in rank order, and the ZIV relocation-set
//! replacement picks "the NotInPrC block closest to the LRU position" or
//! "with as high an RRPV as possible" by scanning the same ordering.
//!
//! # Examples
//!
//! ```
//! use ziv_replacement::{PolicyKind, ReplacementPolicy, AccessCtx};
//! use ziv_common::{CacheGeometry, LineAddr};
//!
//! let geom = CacheGeometry::new(16, 4);
//! let mut lru = PolicyKind::Lru.build(geom, 1);
//! let ctx = AccessCtx::demand(LineAddr::new(7), 0x400, ziv_common::CoreId::new(0), 0, 0);
//! lru.on_fill(3, 0, &ctx);
//! assert_eq!(lru.victim(3, &ctx), 1); // untouched ways are older than way 0
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ctx;
mod drrip;
mod hawkeye;
mod kind;
mod lru;
mod min;
mod nru;
mod ship;
mod srrip;

pub use ctx::{AccessCtx, FutureKnowledge, PrecomputedFuture};
pub use drrip::Drrip;
pub use hawkeye::{pc_signature, Hawkeye, HawkeyeConfig, OccupancyPredictor, OptGen, PcSig};
pub use kind::PolicyKind;
pub use lru::Lru;
pub use min::MinOracle;
pub use nru::Nru;
pub use ship::Ship;
pub use srrip::Srrip;

use ziv_common::ids::{SetIdx, WayIdx};

/// Maximum RRPV value used by the 3-bit RRIP policies (the "cache-averse"
/// mark in Hawkeye's classification).
pub const RRPV_MAX: u8 = 7;

/// A per-bank replacement policy over a set-associative structure.
///
/// One policy instance manages the replacement state for *all* sets of a
/// single cache bank. Implementations are deterministic.
pub trait ReplacementPolicy: std::fmt::Debug {
    /// Records a demand fill of `(set, way)`.
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx);

    /// Records a demand hit on `(set, way)`.
    fn on_hit(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx);

    /// Records that `(set, way)` was evicted or invalidated. Policies that
    /// learn from evictions (Hawkeye's detraining) hook this.
    fn on_evict(&mut self, set: SetIdx, way: WayIdx);

    /// Records a **relocation insertion** into `(set, way)` (ZIV moving a
    /// block into a relocation set). Like a fill for aging purposes but
    /// must not train access-stream predictors, because no demand access
    /// occurred. Default: treated as a fill.
    fn on_relocate_in(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        self.on_fill(set, way, ctx);
    }

    /// The way the policy would evict from `set`, assuming all ways are
    /// valid. (Invalid-way preference is handled by the cache controller,
    /// which is also where the paper puts it: the `Invalid` property has
    /// top priority.)
    fn victim(&self, set: SetIdx, ctx: &AccessCtx) -> WayIdx;

    /// Writes the ways of `set` into `out` ordered evict-first →
    /// evict-last (e.g. LRU→MRU, or RRPV descending).
    fn rank(&self, set: SetIdx, ctx: &AccessCtx, out: &mut Vec<WayIdx>);

    /// The RRPV of `(set, way)` if this is an RRPV-graded policy
    /// (Section III-D5 keys the `MaxRRPVNotInPrC` property off this).
    fn rrpv(&self, _set: SetIdx, _way: WayIdx) -> Option<u8> {
        None
    }

    /// Moves `(set, way)` away from eviction (QBS "move to MRU position";
    /// RRPV policies set RRPV to 0).
    fn protect(&mut self, set: SetIdx, way: WayIdx);

    /// Human-readable policy name.
    fn name(&self) -> &'static str;
}

/// Asserts the basic contract every policy must satisfy; shared by the
/// per-policy test modules.
#[cfg(test)]
pub(crate) fn check_policy_contract(
    policy: &mut dyn ReplacementPolicy,
    sets: SetIdx,
    ways: WayIdx,
) {
    use ziv_common::{CoreId, LineAddr};
    let ctx = AccessCtx::demand(LineAddr::new(1), 0x400, CoreId::new(0), 0, 0);
    for set in 0..sets {
        for way in 0..ways {
            policy.on_fill(set, way, &ctx);
        }
        let mut order = Vec::new();
        policy.rank(set, &ctx, &mut order);
        assert_eq!(order.len(), ways as usize, "rank must cover all ways");
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(
            sorted,
            (0..ways).collect::<Vec<_>>(),
            "rank must be a permutation"
        );
        let v = policy.victim(set, &ctx);
        assert_eq!(v, order[0], "victim must be the first-ranked way");
    }
}
