//! Dynamic re-reference interval prediction (DRRIP, Jaleel et al.,
//! ISCA 2010): set-dueling between SRRIP insertion and bimodal (BRRIP)
//! insertion. An RRPV-graded policy, so the ZIV `MaxRRPVNotInPrC`
//! property composes with it (the paper's Section III-D5 notes the
//! property applies to any RRPV-graded policy).

use crate::{AccessCtx, ReplacementPolicy, RRPV_MAX};
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::{CacheGeometry, SimRng};

/// Sets with `set % DUEL_MODULUS == SRRIP_LEADER` always insert SRRIP-
/// style; `== BRRIP_LEADER` always BRRIP-style; the rest follow PSEL.
const DUEL_MODULUS: u32 = 32;
const SRRIP_LEADER: u32 = 0;
const BRRIP_LEADER: u32 = 1;
/// BRRIP inserts "long" (RRPV_MAX-1) with probability 1/32, else
/// "distant" (RRPV_MAX).
const BRRIP_LONG_ONE_IN: u64 = 32;
const PSEL_MAX: i32 = 1023;

/// DRRIP for one cache bank.
#[derive(Debug)]
pub struct Drrip {
    ways: usize,
    rrpvs: Vec<u8>,
    /// Policy-selection counter: positive values favor BRRIP (SRRIP
    /// leaders missing increments it), negative favor SRRIP.
    psel: i32,
    rng: SimRng,
}

impl Drrip {
    /// Creates DRRIP state for the given geometry.
    pub fn new(geom: CacheGeometry, seed: u64) -> Self {
        Drrip {
            ways: geom.ways as usize,
            rrpvs: vec![RRPV_MAX; geom.sets as usize * geom.ways as usize],
            psel: 0,
            rng: SimRng::seed_from_u64(seed ^ 0xD881),
        }
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        set as usize * self.ways + way as usize
    }

    fn insertion_rrpv(&mut self, set: SetIdx) -> u8 {
        let srrip_style = match set % DUEL_MODULUS {
            SRRIP_LEADER => true,
            BRRIP_LEADER => false,
            _ => self.psel <= 0,
        };
        if srrip_style || self.rng.below(BRRIP_LONG_ONE_IN) == 0 {
            RRPV_MAX - 1
        } else {
            RRPV_MAX
        }
    }

    fn duel_on_miss(&mut self, set: SetIdx) {
        match set % DUEL_MODULUS {
            SRRIP_LEADER => self.psel = (self.psel + 1).min(PSEL_MAX),
            BRRIP_LEADER => self.psel = (self.psel - 1).max(-PSEL_MAX),
            _ => {}
        }
    }

    /// Current PSEL value (diagnostics).
    pub fn psel(&self) -> i32 {
        self.psel
    }
}

impl ReplacementPolicy for Drrip {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        self.duel_on_miss(set);
        let r = self.insertion_rrpv(set);
        let i = self.idx(set, way);
        self.rrpvs[i] = r;
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = 0;
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = RRPV_MAX;
    }

    fn on_relocate_in(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        // Relocated blocks insert distant-but-not-averse, without
        // training the duel (no demand miss occurred).
        let i = self.idx(set, way);
        self.rrpvs[i] = RRPV_MAX - 1;
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        let mut best: WayIdx = 0;
        let mut best_r = 0u8;
        for w in 0..self.ways {
            let r = self.rrpvs[base + w];
            if w == 0 || r > best_r {
                best_r = r;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        out.sort_by(|&a, &b| self.rrpvs[base + b as usize].cmp(&self.rrpvs[base + a as usize]));
    }

    fn rrpv(&self, set: SetIdx, way: WayIdx) -> Option<u8> {
        Some(self.rrpvs[self.idx(set, way)])
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = 0;
    }

    fn name(&self) -> &'static str {
        "DRRIP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx() -> AccessCtx {
        AccessCtx::demand(LineAddr::new(0), 0, CoreId::new(0), 0, 0)
    }

    #[test]
    fn satisfies_policy_contract() {
        // Use non-leader sets so insertion is deterministic enough for
        // the shared contract (victim == rank[0] always holds anyway).
        crate::check_policy_contract(&mut Drrip::new(CacheGeometry::new(64, 4), 1), 64, 4);
    }

    #[test]
    fn srrip_leader_inserts_long() {
        let mut d = Drrip::new(CacheGeometry::new(64, 4), 1);
        d.on_fill(SRRIP_LEADER, 0, &ctx());
        assert_eq!(d.rrpv(SRRIP_LEADER, 0), Some(RRPV_MAX - 1));
    }

    #[test]
    fn brrip_leader_mostly_inserts_distant() {
        let mut d = Drrip::new(CacheGeometry::new(64, 4), 1);
        let mut distant = 0;
        for _ in 0..64 {
            d.on_fill(BRRIP_LEADER, 0, &ctx());
            if d.rrpv(BRRIP_LEADER, 0) == Some(RRPV_MAX) {
                distant += 1;
            }
        }
        assert!(
            distant > 48,
            "BRRIP insertions should be mostly distant: {distant}/64"
        );
    }

    #[test]
    fn dueling_moves_psel() {
        let mut d = Drrip::new(CacheGeometry::new(64, 4), 1);
        for _ in 0..10 {
            d.on_fill(SRRIP_LEADER, 0, &ctx());
        }
        assert!(d.psel() > 0, "SRRIP-leader misses push PSEL toward BRRIP");
        for _ in 0..30 {
            d.on_fill(BRRIP_LEADER, 0, &ctx());
        }
        assert!(d.psel() < 10);
    }

    #[test]
    fn hit_resets_rrpv() {
        let mut d = Drrip::new(CacheGeometry::new(64, 4), 1);
        d.on_fill(5, 2, &ctx());
        d.on_hit(5, 2, &ctx());
        assert_eq!(d.rrpv(5, 2), Some(0));
    }
}
