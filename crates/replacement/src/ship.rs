//! SHiP: signature-based hit prediction (Wu et al., MICRO 2011) — the
//! paper's reference [59] for RRPV-graded LLC policies. A per-PC
//! signature history counter table (SHCT) learns whether blocks filled
//! by a signature are reused; unreused signatures insert at distant
//! RRPV.

use crate::hawkeye::{pc_signature, PcSig};
use crate::{AccessCtx, ReplacementPolicy, RRPV_MAX};
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

const SHCT_BITS: u32 = 13;
const SHCT_MAX: u8 = 3;

#[derive(Debug, Clone, Copy, Default)]
struct WayMeta {
    rrpv: u8,
    sig: PcSig,
    reused: bool,
    valid_meta: bool,
}

/// SHiP-PC for one cache bank.
#[derive(Debug)]
pub struct Ship {
    ways: usize,
    meta: Vec<WayMeta>,
    shct: Vec<u8>,
}

impl Ship {
    /// Creates SHiP state for the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        Ship {
            ways: geom.ways as usize,
            meta: vec![
                WayMeta {
                    rrpv: RRPV_MAX,
                    ..Default::default()
                };
                geom.sets as usize * geom.ways as usize
            ],
            // Weakly reused so cold signatures are given a chance.
            shct: vec![1; 1 << SHCT_BITS],
        }
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        set as usize * self.ways + way as usize
    }

    #[inline]
    fn shct_idx(sig: PcSig) -> usize {
        sig as usize & ((1 << SHCT_BITS) - 1)
    }

    /// SHCT counter for a signature (diagnostics / tests).
    pub fn counter(&self, sig: PcSig) -> u8 {
        self.shct[Self::shct_idx(sig)]
    }

    fn train_eviction(&mut self, i: usize) {
        let m = self.meta[i];
        if m.valid_meta && !m.reused {
            let c = &mut self.shct[Self::shct_idx(m.sig)];
            *c = c.saturating_sub(1);
        }
    }
}

impl ReplacementPolicy for Ship {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, ctx: &AccessCtx) {
        let sig = pc_signature(ctx.pc);
        let predicted_reused = self.shct[Self::shct_idx(sig)] > 0;
        let i = self.idx(set, way);
        self.meta[i] = WayMeta {
            rrpv: if predicted_reused {
                RRPV_MAX - 1
            } else {
                RRPV_MAX
            },
            sig,
            reused: false,
            valid_meta: true,
        };
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        let i = self.idx(set, way);
        let sig = self.meta[i].sig;
        if !self.meta[i].reused {
            let c = &mut self.shct[Self::shct_idx(sig)];
            if *c < SHCT_MAX {
                *c += 1;
            }
        }
        let m = &mut self.meta[i];
        m.reused = true;
        m.rrpv = 0;
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.train_eviction(i);
        self.meta[i] = WayMeta {
            rrpv: RRPV_MAX,
            ..Default::default()
        };
    }

    fn on_relocate_in(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.meta[i] = WayMeta {
            rrpv: RRPV_MAX - 1,
            sig: 0,
            reused: true, // do not detrain on the relocated copy's death
            valid_meta: false,
        };
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        let base = set as usize * self.ways;
        let mut best: WayIdx = 0;
        let mut best_r = 0u8;
        for w in 0..self.ways {
            let r = self.meta[base + w].rrpv;
            if w == 0 || r > best_r {
                best_r = r;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        out.sort_by(|&a, &b| {
            self.meta[base + b as usize]
                .rrpv
                .cmp(&self.meta[base + a as usize].rrpv)
        });
    }

    fn rrpv(&self, set: SetIdx, way: WayIdx) -> Option<u8> {
        Some(self.meta[self.idx(set, way)].rrpv)
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.meta[i].rrpv = 0;
    }

    fn name(&self) -> &'static str {
        "SHiP"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx(pc: u64) -> AccessCtx {
        AccessCtx::demand(LineAddr::new(1), pc, CoreId::new(0), 0, 0)
    }

    #[test]
    fn satisfies_policy_contract() {
        crate::check_policy_contract(&mut Ship::new(CacheGeometry::new(4, 4)), 4, 4);
    }

    #[test]
    fn unreused_signature_becomes_distant() {
        let mut s = Ship::new(CacheGeometry::new(4, 4));
        let pc = 0x900;
        // Fill and evict without reuse: SHCT decays to 0.
        s.on_fill(0, 0, &ctx(pc));
        s.on_evict(0, 0);
        assert_eq!(s.counter(pc_signature(pc)), 0);
        // Next fill by the same PC inserts at distant RRPV.
        s.on_fill(0, 1, &ctx(pc));
        assert_eq!(s.rrpv(0, 1), Some(RRPV_MAX));
    }

    #[test]
    fn reused_signature_stays_long() {
        let mut s = Ship::new(CacheGeometry::new(4, 4));
        let pc = 0xa00;
        s.on_fill(0, 0, &ctx(pc));
        s.on_hit(0, 0, &ctx(pc));
        s.on_evict(0, 0);
        assert!(s.counter(pc_signature(pc)) > 0);
        s.on_fill(0, 1, &ctx(pc));
        assert_eq!(s.rrpv(0, 1), Some(RRPV_MAX - 1));
    }

    #[test]
    fn reuse_trains_once_per_generation() {
        let mut s = Ship::new(CacheGeometry::new(4, 4));
        let pc = 0xb00;
        s.on_fill(0, 0, &ctx(pc));
        for _ in 0..10 {
            s.on_hit(0, 0, &ctx(pc));
        }
        assert!(
            s.counter(pc_signature(pc)) <= 2,
            "repeated hits train SHCT once"
        );
    }

    #[test]
    fn relocated_insertion_does_not_detrain() {
        let mut s = Ship::new(CacheGeometry::new(4, 4));
        let before = s.counter(0);
        s.on_relocate_in(0, 2, &ctx(0));
        s.on_evict(0, 2);
        assert_eq!(s.counter(0), before);
    }
}
