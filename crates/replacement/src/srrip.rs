//! Static re-reference interval prediction (SRRIP, Jaleel et al., ISCA
//! 2010): the RRPV-graded policy family the paper's `MaxRRPVNotInPrC`
//! property builds on (Section III-D5 notes the property "can also be
//! used with other LLC replacement policies that employ RRPVs").

use crate::{AccessCtx, ReplacementPolicy, RRPV_MAX};
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

/// 3-bit SRRIP with hit-priority (RRPV=0 on hit) and long-interval
/// insertion (RRPV = max-1 on fill).
#[derive(Debug, Clone)]
pub struct Srrip {
    ways: usize,
    rrpvs: Vec<u8>,
}

impl Srrip {
    /// Creates SRRIP state for the given geometry; all ways start at the
    /// distant value `RRPV_MAX` so cold sets evict way 0 first.
    pub fn new(geom: CacheGeometry) -> Self {
        Srrip {
            ways: geom.ways as usize,
            rrpvs: vec![RRPV_MAX; geom.sets as usize * geom.ways as usize],
        }
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        set as usize * self.ways + way as usize
    }

    /// Ages the set so that at least one way reaches `RRPV_MAX`.
    fn age_until_max(&mut self, set: SetIdx) {
        let base = set as usize * self.ways;
        loop {
            if self.rrpvs[base..base + self.ways]
                .iter()
                .any(|&r| r >= RRPV_MAX)
            {
                return;
            }
            for r in &mut self.rrpvs[base..base + self.ways] {
                *r += 1;
            }
        }
    }
}

impl ReplacementPolicy for Srrip {
    fn on_fill(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = RRPV_MAX - 1;
    }

    fn on_hit(&mut self, set: SetIdx, way: WayIdx, _ctx: &AccessCtx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = 0;
    }

    fn on_evict(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = RRPV_MAX;
    }

    fn victim(&self, set: SetIdx, _ctx: &AccessCtx) -> WayIdx {
        // Without mutating (victim is a pure query), report the way that
        // aging would select: the highest RRPV, lowest way index first.
        let base = set as usize * self.ways;
        let mut best: WayIdx = 0;
        let mut best_r = 0u8;
        for w in 0..self.ways {
            let r = self.rrpvs[base + w];
            if w == 0 || r > best_r {
                best_r = r;
                best = w as WayIdx;
            }
        }
        best
    }

    fn rank(&self, set: SetIdx, _ctx: &AccessCtx, out: &mut Vec<WayIdx>) {
        let base = set as usize * self.ways;
        out.clear();
        out.extend(0..self.ways as WayIdx);
        // RRPV descending; stable on way index for determinism.
        out.sort_by(|&a, &b| self.rrpvs[base + b as usize].cmp(&self.rrpvs[base + a as usize]));
    }

    fn rrpv(&self, set: SetIdx, way: WayIdx) -> Option<u8> {
        Some(self.rrpvs[self.idx(set, way)])
    }

    fn protect(&mut self, set: SetIdx, way: WayIdx) {
        let i = self.idx(set, way);
        self.rrpvs[i] = 0;
    }

    fn name(&self) -> &'static str {
        "SRRIP"
    }
}

impl Srrip {
    /// Performs the aging step a real SRRIP victim selection would do;
    /// the cache controller calls this after consuming
    /// [`ReplacementPolicy::victim`] on a miss so subsequent queries see
    /// aged state.
    pub fn age_for_replacement(&mut self, set: SetIdx) {
        self.age_until_max(set);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::{CoreId, LineAddr};

    fn ctx() -> AccessCtx {
        AccessCtx::demand(LineAddr::new(0), 0, CoreId::new(0), 0, 0)
    }

    #[test]
    fn satisfies_policy_contract() {
        crate::check_policy_contract(&mut Srrip::new(CacheGeometry::new(4, 4)), 4, 4);
    }

    #[test]
    fn fill_inserts_with_long_interval() {
        let mut p = Srrip::new(CacheGeometry::new(1, 4));
        p.on_fill(0, 1, &ctx());
        assert_eq!(p.rrpv(0, 1), Some(RRPV_MAX - 1));
    }

    #[test]
    fn hit_promotes_to_zero() {
        let mut p = Srrip::new(CacheGeometry::new(1, 4));
        p.on_fill(0, 1, &ctx());
        p.on_hit(0, 1, &ctx());
        assert_eq!(p.rrpv(0, 1), Some(0));
    }

    #[test]
    fn victim_is_highest_rrpv() {
        let mut p = Srrip::new(CacheGeometry::new(1, 4));
        for w in 0..4 {
            p.on_fill(0, w, &ctx());
        }
        p.on_hit(0, 0, &ctx());
        p.on_hit(0, 2, &ctx());
        // ways 1 and 3 at RRPV_MAX-1; lowest index wins.
        assert_eq!(p.victim(0, &ctx()), 1);
    }

    #[test]
    fn aging_reaches_max() {
        let mut p = Srrip::new(CacheGeometry::new(1, 2));
        p.on_hit(0, 0, &ctx());
        p.on_hit(0, 1, &ctx());
        p.age_for_replacement(0);
        assert_eq!(p.rrpv(0, 0), Some(RRPV_MAX));
        assert_eq!(p.rrpv(0, 1), Some(RRPV_MAX));
    }

    #[test]
    fn rank_is_rrpv_descending() {
        let mut p = Srrip::new(CacheGeometry::new(1, 3));
        for w in 0..3 {
            p.on_fill(0, w, &ctx());
        }
        p.on_hit(0, 1, &ctx());
        let mut order = Vec::new();
        p.rank(0, &ctx(), &mut order);
        assert_eq!(order, vec![0, 2, 1]);
    }
}
