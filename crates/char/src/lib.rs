//! # ziv-char
//!
//! The paper's adaptation of **CHAR** (cache hierarchy-aware
//! replacement, Chaudhuri et al., PACT 2012) used to implement the
//! `LikelyDead` relocation-set properties (Sections III-D6 and III-D7,
//! Fig 7).
//!
//! CHAR classifies every block evicted from an L2 cache into a group
//! based on how it was filled (LLC hit vs miss), how many demand reuses
//! it saw in the L2, and whether it is dirty. For each group it counts
//! L2 **evictions** and LLC **recalls** (the block coming back to the
//! same core after eviction). A block evicted from a group whose
//! recall/eviction ratio is below a threshold `τ = 1/2^d` is *inferred
//! dead*; the inference rides one header bit on the eviction notice or
//! writeback, and the LLC sets the block's `LikelyDead` state.
//!
//! The paper's twist is the **dynamic threshold**: each LLC bank holds a
//! `d` register (initialized to 6) and a *threshold request bitvector*
//! (TRBV, one bit per core). When a relocation finds the
//! `LikelyDeadNotInPrC` property vector empty and `d > 1`, the bank
//! decrements `d` (rate-limited to one decrement per 4096 eviction
//! notices) and sets every TRBV bit; the new `d` is piggybacked on the
//! next eviction-notice acknowledgment to each core, whose L2 controller
//! adopts it if smaller. `d` is periodically reset to 6 to track phase
//! changes.
//!
//! # Examples
//!
//! ```
//! use ziv_char::{CharEngine, CharConfig, L2BlockMeta};
//!
//! let mut char_ = CharEngine::new(8, 8, CharConfig::default());
//! let meta = L2BlockMeta::filled(false); // filled from an LLC miss
//! let group = CharEngine::classify(&meta, false);
//! // A group that is never recalled is quickly inferred dead.
//! let mut dead = false;
//! for _ in 0..200 {
//!     dead = char_.infer_dead(0, group);
//! }
//! assert!(dead);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Number of CHAR groups: prefetch (2) × fill source (2) × reuse
/// bucket (4) × dirty (2) — the paper's four attributes (i)–(iv).
pub const GROUP_COUNT: usize = 32;

/// A CHAR group identifier (0..[`GROUP_COUNT`]).
pub type GroupId = u8;

/// Per-L2-block metadata CHAR needs (the paper's "two state bits per L2
/// cache block": fill source and a saturating reuse counter; the dirty
/// attribute comes from the cache state itself).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct L2BlockMeta {
    /// Whether the block was brought in by a prefetch rather than a
    /// demand request (attribute (i) of Section III-D6).
    pub prefetched: bool,
    /// Whether the block was filled into the private caches via an LLC
    /// hit (attribute (ii)).
    pub filled_from_llc_hit: bool,
    /// Demand reuses observed in the L2, saturating at 3 (attribute
    /// (iii)).
    pub reuses: u8,
}

impl L2BlockMeta {
    /// Metadata for a block just demand-filled into the L2.
    pub fn filled(from_llc_hit: bool) -> Self {
        L2BlockMeta {
            prefetched: false,
            filled_from_llc_hit: from_llc_hit,
            reuses: 0,
        }
    }

    /// Metadata for a block prefetched into the L2.
    pub fn prefetched(from_llc_hit: bool) -> Self {
        L2BlockMeta {
            prefetched: true,
            filled_from_llc_hit: from_llc_hit,
            reuses: 0,
        }
    }

    /// Records one L2 demand reuse.
    pub fn on_reuse(&mut self) {
        self.reuses = (self.reuses + 1).min(3);
    }
}

/// CHAR tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CharConfig {
    /// Initial (and reset) value of `d`; `τ = 1/2^d`.
    pub init_d: u8,
    /// Lower bound on `d` (the paper stops at 1).
    pub min_d: u8,
    /// Minimum eviction notices between consecutive decrements of `d`
    /// at one bank (the paper uses 4096).
    pub decrement_interval: u64,
    /// Eviction notices between periodic resets of `d` back to
    /// `init_d` (phase-change tracking).
    pub reset_interval: u64,
    /// Halve a group's counters when its eviction count reaches this
    /// value, keeping the ratio adaptive.
    pub decay_at: u64,
}

impl Default for CharConfig {
    fn default() -> Self {
        CharConfig {
            init_d: 6,
            min_d: 1,
            decrement_interval: 4096,
            reset_interval: 1 << 18,
            decay_at: 1 << 16,
        }
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct GroupCounters {
    evictions: u64,
    recalls: u64,
}

/// Per-core (L2 controller) CHAR state.
#[derive(Debug, Clone)]
struct CharCore {
    d: u8,
    groups: [GroupCounters; GROUP_COUNT],
}

/// Per-LLC-bank CHAR state: the `d` register, TRBV, and rate limiting.
#[derive(Debug, Clone)]
struct CharBank {
    d: u8,
    trbv: Vec<bool>,
    notices_since_decrement: u64,
    notices_since_reset: u64,
}

/// The CHAR dead-block inference engine for the whole CMP.
#[derive(Debug, Clone)]
pub struct CharEngine {
    cores: Vec<CharCore>,
    banks: Vec<CharBank>,
    cfg: CharConfig,
    dead_inferences: u64,
    threshold_decrements: u64,
}

impl CharEngine {
    /// Creates the engine for `cores` cores and `banks` LLC banks.
    pub fn new(cores: usize, banks: usize, cfg: CharConfig) -> Self {
        CharEngine {
            cores: vec![
                CharCore {
                    d: cfg.init_d,
                    groups: [GroupCounters::default(); GROUP_COUNT]
                };
                cores
            ],
            banks: vec![
                CharBank {
                    d: cfg.init_d,
                    trbv: vec![false; cores],
                    notices_since_decrement: 0,
                    notices_since_reset: 0,
                };
                banks
            ],
            cfg,
            dead_inferences: 0,
            threshold_decrements: 0,
        }
    }

    /// Classifies an evicted L2 block into its CHAR group.
    pub fn classify(meta: &L2BlockMeta, dirty: bool) -> GroupId {
        let pf = meta.prefetched as u8;
        let fill = meta.filled_from_llc_hit as u8;
        let reuse = meta.reuses.min(3);
        (pf << 4) | (fill << 3) | (reuse << 1) | dirty as u8
    }

    /// Called when core `core` evicts an L2 block of group `group` (the
    /// eviction-notice / writeback send side). Returns whether the block
    /// is inferred dead — the one header bit of Fig 7.
    pub fn infer_dead(&mut self, core: usize, group: GroupId) -> bool {
        let d = self.cores[core].d;
        let g = &mut self.cores[core].groups[group as usize];
        g.evictions += 1;
        if g.evictions >= self.cfg.decay_at {
            g.evictions /= 2;
            g.recalls /= 2;
        }
        // RecallCount / EvictionCount < 1/2^d  <=>  (RecallCount << d) < EvictionCount
        let dead = (g.recalls << d) < g.evictions;
        if dead {
            self.dead_inferences += 1;
        }
        dead
    }

    /// Called when an LLC hit recalls a block that core `core` had
    /// evicted from its L2 with group `group`.
    pub fn on_recall(&mut self, core: usize, group: GroupId) {
        self.cores[core].groups[group as usize].recalls += 1;
    }

    /// Bank-side processing of an eviction notice or writeback arriving
    /// from `core`: advances the rate-limit and reset clocks, and returns
    /// the `d` value to piggyback on the acknowledgment if this core's
    /// TRBV bit is set (Fig 7's "(d)" annotation).
    pub fn bank_notice(&mut self, bank: usize, core: usize) -> Option<u8> {
        let cfg = self.cfg;
        let b = &mut self.banks[bank];
        b.notices_since_decrement += 1;
        b.notices_since_reset += 1;
        if b.notices_since_reset >= cfg.reset_interval {
            b.notices_since_reset = 0;
            b.d = cfg.init_d;
        }
        if b.trbv[core] {
            b.trbv[core] = false;
            Some(b.d)
        } else {
            None
        }
    }

    /// Core-side receipt of a piggybacked `d`: adopt it if smaller than
    /// the core's own value (Section III-D6's monotonic-decrease rule).
    pub fn core_receive_d(&mut self, core: usize, new_d: u8) {
        if new_d < self.cores[core].d {
            self.cores[core].d = new_d;
        }
    }

    /// A relocation at `bank` found the `LikelyDeadNotInPrC` PV empty:
    /// request a lower threshold. Returns whether `d` was decremented.
    pub fn request_lower_threshold(&mut self, bank: usize) -> bool {
        let cfg = self.cfg;
        let b = &mut self.banks[bank];
        if b.d > cfg.min_d && b.notices_since_decrement >= cfg.decrement_interval {
            b.d -= 1;
            b.notices_since_decrement = 0;
            for bit in &mut b.trbv {
                *bit = true;
            }
            self.threshold_decrements += 1;
            return true;
        }
        false
    }

    /// Periodically resets every core's `d` as well (cores learn the
    /// reset value through the normal piggyback path in hardware; the
    /// simulator calls this alongside the bank resets).
    pub fn reset_core_thresholds(&mut self) {
        for c in &mut self.cores {
            c.d = self.cfg.init_d;
        }
    }

    /// Current `d` at a bank (diagnostics).
    pub fn bank_d(&self, bank: usize) -> u8 {
        self.banks[bank].d
    }

    /// Current `d` at a core's L2 controller (diagnostics).
    pub fn core_d(&self, core: usize) -> u8 {
        self.cores[core].d
    }

    /// Total dead inferences made.
    pub fn dead_inferences(&self) -> u64 {
        self.dead_inferences
    }

    /// Total threshold decrements performed.
    pub fn threshold_decrements(&self) -> u64 {
        self.threshold_decrements
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> CharEngine {
        CharEngine::new(2, 2, CharConfig::default())
    }

    #[test]
    fn classify_spreads_groups() {
        let mut seen = std::collections::HashSet::new();
        for pf in [false, true] {
            for hit in [false, true] {
                for reuses in 0..4u8 {
                    for dirty in [false, true] {
                        let meta = L2BlockMeta {
                            prefetched: pf,
                            filled_from_llc_hit: hit,
                            reuses,
                        };
                        seen.insert(CharEngine::classify(&meta, dirty));
                    }
                }
            }
        }
        assert_eq!(seen.len(), 32);
        assert!(seen.iter().all(|&g| (g as usize) < GROUP_COUNT));
    }

    #[test]
    fn reuse_counter_saturates() {
        let mut m = L2BlockMeta::filled(true);
        for _ in 0..10 {
            m.on_reuse();
        }
        assert_eq!(m.reuses, 3);
    }

    #[test]
    fn never_recalled_group_becomes_dead() {
        let mut e = engine();
        let mut dead = false;
        for _ in 0..10 {
            dead = e.infer_dead(0, 0);
        }
        assert!(dead);
        assert!(e.dead_inferences() > 0);
    }

    #[test]
    fn frequently_recalled_group_stays_live() {
        let mut e = engine();
        for _ in 0..100 {
            e.infer_dead(0, 3);
            e.on_recall(0, 3);
        }
        assert!(!e.infer_dead(0, 3), "recall ratio 1.0 >= tau");
    }

    #[test]
    fn threshold_controls_strictness() {
        // With d=6, a group recalled 1/8 of the time is NOT dead
        // (1/8 > 1/64); with d=1 it still isn't (1/8 > 1/2 is false ->
        // it IS dead). Check the boundary flips with d.
        let mut e = engine();
        for i in 0..640u32 {
            e.infer_dead(0, 5);
            if i % 8 == 0 {
                e.on_recall(0, 5);
            }
        }
        assert!(!e.infer_dead(0, 5), "ratio 1/8 above tau=1/64");
        e.core_receive_d(0, 2); // tau = 1/4 > 1/8 -> dead
        assert!(e.infer_dead(0, 5));
    }

    #[test]
    fn core_receive_d_only_decreases() {
        let mut e = engine();
        e.core_receive_d(0, 3);
        assert_eq!(e.core_d(0), 3);
        e.core_receive_d(0, 5);
        assert_eq!(e.core_d(0), 3, "larger d must be ignored");
    }

    #[test]
    fn decrement_is_rate_limited() {
        let mut e = engine();
        assert!(!e.request_lower_threshold(0), "no notices yet");
        for _ in 0..4096 {
            e.bank_notice(0, 0);
        }
        assert!(e.request_lower_threshold(0));
        assert_eq!(e.bank_d(0), 5);
        assert!(!e.request_lower_threshold(0), "must wait another interval");
    }

    #[test]
    fn decrement_stops_at_min() {
        let cfg = CharConfig {
            decrement_interval: 1,
            ..CharConfig::default()
        };
        let mut e = CharEngine::new(1, 1, cfg);
        for _ in 0..20 {
            e.bank_notice(0, 0);
            e.request_lower_threshold(0);
        }
        assert_eq!(e.bank_d(0), cfg.min_d);
    }

    #[test]
    fn trbv_piggybacks_new_d_once_per_core() {
        let cfg = CharConfig {
            decrement_interval: 1,
            ..CharConfig::default()
        };
        let mut e = CharEngine::new(2, 1, cfg);
        e.bank_notice(0, 0);
        assert!(e.request_lower_threshold(0));
        assert_eq!(e.bank_notice(0, 0), Some(5));
        assert_eq!(
            e.bank_notice(0, 0),
            None,
            "TRBV bit cleared after piggyback"
        );
        assert_eq!(e.bank_notice(0, 1), Some(5), "other core still pending");
    }

    #[test]
    fn periodic_reset_restores_d() {
        let cfg = CharConfig {
            decrement_interval: 1,
            reset_interval: 10,
            ..CharConfig::default()
        };
        let mut e = CharEngine::new(1, 1, cfg);
        e.bank_notice(0, 0);
        e.request_lower_threshold(0);
        assert_eq!(e.bank_d(0), 5);
        for _ in 0..10 {
            e.bank_notice(0, 0);
        }
        assert_eq!(e.bank_d(0), 6, "reset interval elapsed");
    }

    #[test]
    fn counter_decay_keeps_ratio() {
        let cfg = CharConfig {
            decay_at: 8,
            ..CharConfig::default()
        };
        let mut e = CharEngine::new(1, 1, cfg);
        for _ in 0..7 {
            e.infer_dead(0, 1);
            e.on_recall(0, 1);
        }
        // 8th eviction triggers decay; counters halve but behavior
        // (live group) persists.
        assert!(!e.infer_dead(0, 1));
    }

    #[test]
    fn reset_core_thresholds_restores_init() {
        let mut e = engine();
        e.core_receive_d(0, 1);
        e.reset_core_thresholds();
        assert_eq!(e.core_d(0), 6);
    }
}
