//! # ziv-bench
//!
//! Shared support for the figure-regeneration benches. Every table and
//! figure of the paper's evaluation has a `harness = false` bench target
//! in `benches/` that reruns the experiment and prints the same data
//! series the paper reports; this crate holds the common plumbing
//! (workload suites, spec construction, banners, assertions).
//!
//! Run everything with `cargo bench`, or one figure with e.g.
//! `cargo bench --bench fig08_lru_perf`. `ZIV_FAST=1` shrinks the
//! workloads; `ZIV_FULL=1` enlarges them.

#![warn(missing_docs)]

use ziv_common::config::{L2Size, SystemConfig};
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{Effort, RunSpec};
use ziv_workloads::{mixes, ScaleParams, Workload};

/// Builds the multiprogrammed workload suite (all homogeneous mixes plus
/// the effort's heterogeneous count). Footprints are sized against the
/// 256 KB-class machine so the *same traces* drive every configuration
/// of an L2-capacity sweep, as the paper's fixed SimPoint traces do.
pub fn mp_suite(effort: &Effort, cores: usize) -> Vec<Workload> {
    let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
    mixes::default_suite(
        effort.hetero_mixes,
        cores,
        effort.accesses_per_core,
        0x2026,
        scale,
    )
}

/// A compact suite (homogeneous mixes of the four most contention-
/// sensitive profiles + two heterogeneous) for the more expensive
/// sweeps (Fig 15's 24-configuration grid).
pub fn mp_suite_small(effort: &Effort, cores: usize) -> Vec<Workload> {
    let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
    let mut suite: Vec<Workload> = ["circset", "hotl2big", "zipfdb", "scanphase"]
        .iter()
        .map(|name| {
            mixes::homogeneous(
                ziv_workloads::apps::app_by_name(name).expect("known app"),
                cores,
                effort.accesses_per_core,
                0x2026,
                scale,
            )
        })
        .collect();
    suite.extend(mixes::all_heterogeneous(
        2,
        cores,
        effort.accesses_per_core,
        0x2026,
        scale,
    ));
    suite
}

/// Builds a spec for `(mode, policy)` on the scaled machine with the
/// given L2 option, labeled the way the paper's figures are.
pub fn spec(mode: LlcMode, policy: PolicyKind, l2: L2Size) -> RunSpec {
    let label = format!("{}-{} {}", mode.label(), policy.label(), l2.label());
    RunSpec::new(label, SystemConfig::scaled_with_l2(l2))
        .with_mode(mode)
        .with_policy(policy)
}

/// The LRU-baseline mode set of Fig 8 (leftmost-to-rightmost bars).
pub fn lru_modes() -> Vec<LlcMode> {
    use ziv_core::ZivProperty::*;
    vec![
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::Ziv(NotInPrC),
        LlcMode::Ziv(LruNotInPrC),
        LlcMode::Ziv(LikelyDead),
    ]
}

/// The Hawkeye-baseline mode set of Fig 11.
pub fn hawkeye_modes() -> Vec<LlcMode> {
    use ziv_core::ZivProperty::*;
    vec![
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::Ziv(MaxRrpvNotInPrC),
        LlcMode::Ziv(MaxRrpvLikelyDead),
    ]
}

/// Results directory for a campaign-backed figure bench:
/// `$ZIV_RESULTS_DIR/<name>`, defaulting to `results/<name>` under the
/// current directory. Reruns of a campaign bench reuse the ledger
/// there, so only cells missing from previous runs are simulated.
pub fn campaign_results_dir(name: &str) -> std::path::PathBuf {
    let base = std::env::var_os("ZIV_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));
    base.join(name)
}

/// Runs a registered campaign with the figure benches' parameters
/// (seed `0x2026`, effort from the environment) through the resumable
/// cached runner, printing live progress to stderr.
///
/// # Panics
///
/// Panics if `name` is not a registered campaign or on results-dir I/O
/// errors.
pub fn run_figure_campaign(name: &str) -> (ziv_harness::Campaign, ziv_harness::CampaignOutcome) {
    use ziv_harness::{campaigns, run_campaign, CampaignParams, RunnerConfig, StderrProgress};
    let params = CampaignParams::from_env();
    let campaign = campaigns::by_name(name, &params)
        .unwrap_or_else(|| panic!("campaign '{name}' is not registered"));
    let cfg = RunnerConfig {
        threads: params.effort.threads,
        resume: true,
        params: Some(params),
        ..RunnerConfig::new(campaign_results_dir(name))
    };
    let outcome = run_campaign(&campaign, &cfg, &StderrProgress)
        .unwrap_or_else(|e| panic!("campaign '{name}' failed: {e}"));
    assert!(
        outcome.failures.is_empty(),
        "campaign '{name}': {} cell(s) failed — see {}/failures/",
        outcome.failures.len(),
        campaign_results_dir(name).display()
    );
    (campaign, outcome)
}

/// One timed cell of the hot-path throughput bench: a `spec` ×
/// `workload` pair driven end-to-end through [`ziv_sim::run_one`] with
/// a wall clock around the whole run.
#[derive(Debug, Clone)]
pub struct ThroughputSample {
    /// Figure-style spec label (`I-LRU 256KB`, …).
    pub label: String,
    /// Workload name.
    pub workload: String,
    /// Simulated accesses actually served, summed over cores (restart
    /// laps included, so this can exceed the nominal trace length).
    pub accesses: u64,
    /// Best (minimum) wall-clock seconds over the timed repeats.
    pub wall_seconds: f64,
}

impl ThroughputSample {
    /// End-to-end simulated accesses per wall-clock second.
    pub fn accesses_per_sec(&self) -> f64 {
        if self.wall_seconds > 0.0 {
            self.accesses as f64 / self.wall_seconds
        } else {
            0.0
        }
    }
}

/// Times every cell (spec × recipe) of the named registered campaign
/// through the plain unchecked driver — no auditor, no budget, no
/// result cache, so the numbers measure the simulator hot path itself.
/// Each cell runs `repeats` times (at least once) and keeps the fastest
/// wall time; the access count is identical across repeats because runs
/// are deterministic.
///
/// # Panics
///
/// Panics if `name` is not a registered campaign.
pub fn run_throughput_bench(
    name: &str,
    params: &ziv_harness::CampaignParams,
    repeats: usize,
) -> Vec<ThroughputSample> {
    run_throughput_bench_with(name, params, repeats, ziv_sim::ObserveConfig::disabled())
}

/// [`run_throughput_bench`] with the flight recorder configured — the
/// instrument behind the tracing-on vs tracing-off overhead comparison
/// (`zivsim bench-throughput --traced`, recorded non-gating by CI).
/// With `observe` disabled this *is* `run_throughput_bench`: the same
/// unchecked driver, one `Option` branch per event site.
///
/// # Panics
///
/// Panics if `name` is not a registered campaign.
pub fn run_throughput_bench_with(
    name: &str,
    params: &ziv_harness::CampaignParams,
    repeats: usize,
    observe: ziv_sim::ObserveConfig,
) -> Vec<ThroughputSample> {
    let campaign = ziv_harness::campaigns::by_name(name, params)
        .unwrap_or_else(|| panic!("campaign '{name}' is not registered"));
    let workloads: Vec<Workload> = campaign.recipes.iter().map(|r| r.build()).collect();
    let opts = ziv_sim::RunOptions {
        observe,
        ..ziv_sim::RunOptions::default()
    };
    let mut out = Vec::with_capacity(campaign.specs.len() * workloads.len());
    for spec in &campaign.specs {
        for wl in &workloads {
            let mut best = f64::INFINITY;
            let mut accesses = 0u64;
            for _ in 0..repeats.max(1) {
                let t0 = std::time::Instant::now();
                let (r, _) = ziv_sim::run_one_traced(spec, wl, &opts);
                let dt = t0.elapsed().as_secs_f64();
                let r = r.expect("throughput bench runs unchecked: no audit, no budget");
                accesses = r.metrics.per_core.iter().map(|c| c.accesses).sum();
                if dt < best {
                    best = dt;
                }
            }
            out.push(ThroughputSample {
                label: spec.label.clone(),
                workload: wl.name.clone(),
                accesses,
                wall_seconds: best,
            });
        }
    }
    out
}

/// Per-mode aggregate of throughput samples: cells summed across
/// workloads, in first-seen spec-label order.
pub fn throughput_per_mode(samples: &[ThroughputSample]) -> Vec<ThroughputSample> {
    let mut order: Vec<ThroughputSample> = Vec::new();
    for s in samples {
        match order.iter_mut().find(|m| m.label == s.label) {
            Some(m) => {
                m.accesses += s.accesses;
                m.wall_seconds += s.wall_seconds;
            }
            None => order.push(ThroughputSample {
                workload: String::from("(all)"),
                ..s.clone()
            }),
        }
    }
    order
}

/// One sample as a compact JSON object row (escaping and float
/// formatting via the workspace's own [`ziv_common::json`]).
fn sample_json(s: &ThroughputSample) -> ziv_common::json::JsonValue {
    use ziv_common::json::JsonValue;
    // Round the derived/noisy floats so the file diffs readably.
    let wall = (s.wall_seconds * 1e6).round() / 1e6;
    let rate = (s.accesses_per_sec() * 10.0).round() / 10.0;
    JsonValue::Obj(vec![
        ("label".into(), JsonValue::str(s.label.clone())),
        ("workload".into(), JsonValue::str(s.workload.clone())),
        ("accesses".into(), JsonValue::u64(s.accesses)),
        ("wall_seconds".into(), JsonValue::f64(wall)),
        ("accesses_per_sec".into(), JsonValue::f64(rate)),
    ])
}

/// Renders throughput samples as the `BENCH_hotpath.json` document:
/// one row per cell, a per-mode aggregate (cells summed across
/// workloads), and a grand total. Wall-clock numbers vary run to run —
/// the file is a recorded baseline, not a gating artifact
/// (DESIGN.md §8).
pub fn throughput_report_json(
    campaign: &str,
    repeats: usize,
    samples: &[ThroughputSample],
) -> String {
    use std::fmt::Write as _;
    use ziv_common::json::JsonValue;
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"hotpath-throughput\",");
    let _ = writeln!(out, "  \"campaign\": {},", JsonValue::str(campaign));
    let _ = writeln!(out, "  \"repeats\": {repeats},");
    out.push_str("  \"cells\": [\n");
    for (i, s) in samples.iter().enumerate() {
        let comma = if i + 1 < samples.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", sample_json(s));
    }
    out.push_str("  ],\n  \"per_mode\": [\n");
    let per_mode = throughput_per_mode(samples);
    for (i, s) in per_mode.iter().enumerate() {
        let comma = if i + 1 < per_mode.len() { "," } else { "" };
        let _ = writeln!(out, "    {}{comma}", sample_json(s));
    }
    let total = ThroughputSample {
        label: String::from("(total)"),
        workload: String::from("(all)"),
        accesses: samples.iter().map(|s| s.accesses).sum(),
        wall_seconds: samples.iter().map(|s| s.wall_seconds).sum(),
    };
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"total\": {}", sample_json(&total));
    out.push_str("}\n");
    out
}

/// One `(label, workload)` row of a throughput-report comparison.
#[derive(Debug, Clone)]
pub struct BenchDelta {
    /// Spec label (`"(total)"` for the grand-total row).
    pub label: String,
    /// Workload name (`"(all)"` for aggregate rows).
    pub workload: String,
    /// Baseline accesses/second.
    pub old_rate: f64,
    /// New accesses/second.
    pub new_rate: f64,
}

impl BenchDelta {
    /// Signed percent change in throughput; negative is a slowdown.
    pub fn delta_pct(&self) -> f64 {
        if self.old_rate > 0.0 {
            (self.new_rate - self.old_rate) / self.old_rate * 100.0
        } else {
            0.0
        }
    }
}

/// The diff of two throughput-report JSON files
/// (`zivsim bench-compare`).
#[derive(Debug, Clone, Default)]
pub struct BenchComparison {
    /// Per-cell deltas, in the new report's order.
    pub cells: Vec<BenchDelta>,
    /// Per-mode aggregate deltas.
    pub per_mode: Vec<BenchDelta>,
    /// The grand-total delta.
    pub total: Option<BenchDelta>,
    /// Rows present in only one report (renamed specs, changed
    /// campaign) — listed, never silently dropped.
    pub unmatched: Vec<String>,
}

impl BenchComparison {
    /// The rows that regressed more than `threshold_pct`. Only the
    /// per-mode aggregates and the total gate: single cells are noisy
    /// (best-of-N wall clocks), aggregates are what CI should fail on.
    pub fn regressions(&self, threshold_pct: f64) -> Vec<&BenchDelta> {
        self.per_mode
            .iter()
            .chain(self.total.as_ref())
            .filter(|d| d.delta_pct() < -threshold_pct)
            .collect()
    }

    /// Renders the comparison as a fixed-width table, flagging rows
    /// beyond the threshold.
    pub fn render(&self, threshold_pct: f64) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<8} {:<26} {:<18} {:>14} {:>14} {:>9}",
            "scope", "label", "workload", "old acc/s", "new acc/s", "delta%"
        );
        let sections = [("cell", &self.cells), ("mode", &self.per_mode)];
        let total_rows: Vec<BenchDelta> = self.total.clone().into_iter().collect();
        for (scope, rows) in sections.into_iter().chain([("total", &total_rows)]) {
            for d in rows {
                let flag = if d.delta_pct() < -threshold_pct {
                    "  << regression"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "{:<8} {:<26} {:<18} {:>14.1} {:>14.1} {:>+9.2}{}",
                    scope,
                    d.label,
                    d.workload,
                    d.old_rate,
                    d.new_rate,
                    d.delta_pct(),
                    flag
                );
            }
        }
        for u in &self.unmatched {
            let _ = writeln!(out, "unmatched: {u}");
        }
        out
    }
}

fn bench_row(
    row: &ziv_common::json::JsonValue,
    key: &str,
) -> Result<(String, String, f64), String> {
    let field = |name: &str| {
        row.get(name)
            .ok_or_else(|| format!("'{key}' row is missing '{name}'"))
    };
    let label = field("label")?
        .as_str()
        .ok_or_else(|| format!("'{key}' row has a non-string label"))?
        .to_string();
    let workload = field("workload")?
        .as_str()
        .ok_or_else(|| format!("'{key}' row has a non-string workload"))?
        .to_string();
    let rate = field("accesses_per_sec")?
        .as_f64()
        .ok_or_else(|| format!("'{key}' row has a non-numeric accesses_per_sec"))?;
    Ok((label, workload, rate))
}

fn bench_rows(
    doc: &ziv_common::json::JsonValue,
    key: &str,
) -> Result<Vec<(String, String, f64)>, String> {
    use ziv_common::json::JsonValue;
    doc.get(key)
        .and_then(JsonValue::as_array)
        .ok_or_else(|| format!("missing '{key}' array"))?
        .iter()
        .map(|row| bench_row(row, key))
        .collect()
}

fn pair_rows(
    scope: &str,
    old: &[(String, String, f64)],
    new: &[(String, String, f64)],
    unmatched: &mut Vec<String>,
) -> Vec<BenchDelta> {
    let mut out = Vec::new();
    for (label, workload, new_rate) in new {
        match old.iter().find(|(l, w, _)| l == label && w == workload) {
            Some((_, _, old_rate)) => out.push(BenchDelta {
                label: label.clone(),
                workload: workload.clone(),
                old_rate: *old_rate,
                new_rate: *new_rate,
            }),
            None => unmatched.push(format!(
                "{scope} '{label}' × '{workload}' only in new report"
            )),
        }
    }
    for (label, workload, _) in old {
        if !new.iter().any(|(l, w, _)| l == label && w == workload) {
            unmatched.push(format!(
                "{scope} '{label}' × '{workload}' only in old report"
            ));
        }
    }
    out
}

/// Compares two throughput-report JSON documents (the
/// `BENCH_hotpath.json` format of [`throughput_report_json`]) cell by
/// cell, mode by mode, and in total.
///
/// # Errors
///
/// Returns a description when either document fails to parse, the two
/// reports are different bench kinds, or a required field is missing.
pub fn compare_throughput_reports(old: &str, new: &str) -> Result<BenchComparison, String> {
    use ziv_common::json::JsonValue;
    let old_doc = ziv_common::json::parse(old).map_err(|e| format!("old report: {e}"))?;
    let new_doc = ziv_common::json::parse(new).map_err(|e| format!("new report: {e}"))?;
    let old_bench = old_doc.get("bench").and_then(JsonValue::as_str);
    let new_bench = new_doc.get("bench").and_then(JsonValue::as_str);
    if old_bench.is_none() || old_bench != new_bench {
        return Err(format!(
            "bench kind mismatch: old is {old_bench:?}, new is {new_bench:?}"
        ));
    }
    let mut cmp = BenchComparison::default();
    for (key, scope) in [("cells", "cell"), ("per_mode", "mode")] {
        let old_rows = bench_rows(&old_doc, key).map_err(|e| format!("old report: {e}"))?;
        let new_rows = bench_rows(&new_doc, key).map_err(|e| format!("new report: {e}"))?;
        let paired = pair_rows(scope, &old_rows, &new_rows, &mut cmp.unmatched);
        match key {
            "cells" => cmp.cells = paired,
            _ => cmp.per_mode = paired,
        }
    }
    let old_total = old_doc
        .get("total")
        .ok_or_else(|| String::from("old report: missing 'total'"))
        .and_then(|t| bench_row(t, "total").map_err(|e| format!("old report: {e}")))?;
    let new_total = new_doc
        .get("total")
        .ok_or_else(|| String::from("new report: missing 'total'"))
        .and_then(|t| bench_row(t, "total").map_err(|e| format!("new report: {e}")))?;
    cmp.total = Some(BenchDelta {
        label: new_total.0,
        workload: new_total.1,
        old_rate: old_total.2,
        new_rate: new_total.2,
    });
    Ok(cmp)
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, title: &str, expectation: &str) {
    println!("==============================================================");
    println!("{figure}: {title}");
    println!("--------------------------------------------------------------");
    println!("paper-shape expectation: {expectation}");
    println!("==============================================================");
}

/// Prints a timing footer (so `cargo bench` output records run cost).
pub fn footer(started: std::time::Instant, runs: usize) {
    let dt = started.elapsed();
    println!(
        "\n[{} runs in {:.1}s — effort: {:?}]",
        runs,
        dt.as_secs_f64(),
        Effort::from_env()
    );
}

/// Asserts that every grid cell whose spec is a ZIV mode reports zero
/// inclusion victims — the guarantee every figure must uphold.
pub fn assert_ziv_guarantee(grid: &[ziv_sim::GridResult], specs: &[RunSpec]) {
    for cell in grid {
        if specs[cell.spec_index].mode.is_ziv() {
            assert_eq!(
                cell.result.metrics.inclusion_victims, 0,
                "{} on {} generated inclusion victims",
                cell.result.label, cell.result.workload
            );
            assert_eq!(
                cell.result.metrics.ziv_guarantee_fallbacks, 0,
                "{} on {} hit the defensive fallback",
                cell.result.label, cell.result.workload
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty() {
        let effort = Effort {
            accesses_per_core: 100,
            hetero_mixes: 1,
            mt_accesses_per_core: 100,
            tpce_accesses_per_core: 100,
            threads: 1,
        };
        assert!(mp_suite(&effort, 2).len() > 10);
        assert_eq!(mp_suite_small(&effort, 2).len(), 6);
    }

    #[test]
    fn spec_labels_match_figures() {
        let s = spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K256);
        assert_eq!(s.label, "I-LRU 256KB");
    }

    #[test]
    fn mode_sets_match_paper() {
        assert_eq!(lru_modes().len(), 7);
        assert_eq!(hawkeye_modes().len(), 6);
    }

    fn sample(label: &str, workload: &str, accesses: u64, wall: f64) -> ThroughputSample {
        ThroughputSample {
            label: label.into(),
            workload: workload.into(),
            accesses,
            wall_seconds: wall,
        }
    }

    #[test]
    fn per_mode_sums_across_workloads_in_label_order() {
        let samples = vec![
            sample("B", "w0", 100, 1.0),
            sample("A", "w0", 200, 2.0),
            sample("B", "w1", 300, 3.0),
        ];
        let agg = throughput_per_mode(&samples);
        assert_eq!(agg.len(), 2);
        assert_eq!(agg[0].label, "B");
        assert_eq!(agg[0].accesses, 400);
        assert_eq!(agg[0].wall_seconds, 4.0);
        assert_eq!(agg[1].label, "A");
        assert_eq!(agg[1].accesses, 200);
    }

    #[test]
    fn accesses_per_sec_handles_zero_wall() {
        assert_eq!(sample("A", "w", 10, 0.0).accesses_per_sec(), 0.0);
        assert_eq!(sample("A", "w", 10, 2.0).accesses_per_sec(), 5.0);
    }

    #[test]
    fn report_json_parses_with_the_workspace_parser() {
        use ziv_common::json::JsonValue;
        let samples = vec![
            sample("I-LRU 256KB", "w\"0", 1000, 0.5),
            sample("Z-LRU 256KB", "w1", 3000, 1.0),
        ];
        let json = throughput_report_json("smoke", 3, &samples);
        let doc = ziv_common::json::parse(&json).expect("report must be valid JSON");
        assert_eq!(
            doc.get("bench").and_then(JsonValue::as_str),
            Some("hotpath-throughput")
        );
        assert_eq!(
            doc.get("campaign").and_then(JsonValue::as_str),
            Some("smoke")
        );
        assert_eq!(doc.get("repeats").and_then(JsonValue::as_u64), Some(3));
        let cells = doc.get("cells").and_then(JsonValue::as_array).unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(
            cells[0].get("workload").and_then(JsonValue::as_str),
            Some("w\"0")
        );
        assert_eq!(
            cells[0].get("accesses_per_sec").and_then(JsonValue::as_f64),
            Some(2000.0)
        );
        let total = doc.get("total").unwrap();
        assert_eq!(
            total.get("accesses").and_then(JsonValue::as_u64),
            Some(4000)
        );
        assert_eq!(
            doc.get("per_mode")
                .and_then(JsonValue::as_array)
                .unwrap()
                .len(),
            2
        );
    }

    #[test]
    fn compare_reports_flags_aggregate_regressions_only() {
        let old = throughput_report_json(
            "smoke",
            1,
            &[sample("A", "w0", 1000, 1.0), sample("B", "w0", 1000, 1.0)],
        );
        // A's cell slows 50%; B speeds up. The per-mode and total rows
        // gate, single cells only inform.
        let new = throughput_report_json(
            "smoke",
            1,
            &[sample("A", "w0", 1000, 2.0), sample("B", "w0", 1000, 0.5)],
        );
        let cmp = compare_throughput_reports(&old, &new).unwrap();
        assert_eq!(cmp.cells.len(), 2);
        assert_eq!(cmp.per_mode.len(), 2);
        assert!(cmp.unmatched.is_empty());
        let total = cmp.total.as_ref().unwrap();
        assert_eq!(total.old_rate, 1000.0);
        assert_eq!(total.new_rate, 800.0);
        let regs = cmp.regressions(5.0);
        assert_eq!(regs.len(), 2, "mode A and the total regressed: {regs:?}");
        assert!(regs.iter().any(|d| d.label == "A"));
        assert!(regs.iter().any(|d| d.label == "(total)"));
        assert!(cmp.regressions(60.0).is_empty(), "threshold respected");
        let table = cmp.render(5.0);
        assert!(table.contains("<< regression"), "{table}");
        assert!(table.lines().next().unwrap().contains("delta%"));
    }

    #[test]
    fn compare_reports_rejects_mismatched_kinds_and_lists_unmatched() {
        let old = throughput_report_json("smoke", 1, &[sample("A", "w0", 1000, 1.0)]);
        let new = throughput_report_json("smoke", 1, &[sample("B", "w0", 1000, 1.0)]);
        let cmp = compare_throughput_reports(&old, &new).unwrap();
        assert!(cmp.cells.is_empty());
        assert_eq!(cmp.unmatched.len(), 4, "{:?}", cmp.unmatched);
        assert!(cmp.unmatched.iter().any(|u| u.contains("only in old")));
        assert!(cmp.unmatched.iter().any(|u| u.contains("only in new")));

        let other_kind = old.replace("hotpath-throughput", "something-else");
        let err = compare_throughput_reports(&old, &other_kind).unwrap_err();
        assert!(err.contains("bench kind mismatch"), "{err}");
        let err = compare_throughput_reports("not json", &old).unwrap_err();
        assert!(err.starts_with("old report:"), "{err}");
    }

    #[test]
    fn throughput_bench_runs_the_smoke_campaign() {
        let params = ziv_harness::CampaignParams::tiny();
        let samples = run_throughput_bench("smoke", &params, 1);
        let campaign = ziv_harness::campaigns::by_name("smoke", &params).unwrap();
        assert_eq!(samples.len(), campaign.total_cells());
        for s in &samples {
            assert!(
                s.accesses > 0,
                "{} × {} served no accesses",
                s.label,
                s.workload
            );
            assert!(s.wall_seconds >= 0.0);
        }
    }
}
