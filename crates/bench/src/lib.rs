//! # ziv-bench
//!
//! Shared support for the figure-regeneration benches. Every table and
//! figure of the paper's evaluation has a `harness = false` bench target
//! in `benches/` that reruns the experiment and prints the same data
//! series the paper reports; this crate holds the common plumbing
//! (workload suites, spec construction, banners, assertions).
//!
//! Run everything with `cargo bench`, or one figure with e.g.
//! `cargo bench --bench fig08_lru_perf`. `ZIV_FAST=1` shrinks the
//! workloads; `ZIV_FULL=1` enlarges them.

#![warn(missing_docs)]

use ziv_common::config::{L2Size, SystemConfig};
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{Effort, RunSpec};
use ziv_workloads::{mixes, ScaleParams, Workload};

/// Builds the multiprogrammed workload suite (all homogeneous mixes plus
/// the effort's heterogeneous count). Footprints are sized against the
/// 256 KB-class machine so the *same traces* drive every configuration
/// of an L2-capacity sweep, as the paper's fixed SimPoint traces do.
pub fn mp_suite(effort: &Effort, cores: usize) -> Vec<Workload> {
    let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
    mixes::default_suite(
        effort.hetero_mixes,
        cores,
        effort.accesses_per_core,
        0x2026,
        scale,
    )
}

/// A compact suite (homogeneous mixes of the four most contention-
/// sensitive profiles + two heterogeneous) for the more expensive
/// sweeps (Fig 15's 24-configuration grid).
pub fn mp_suite_small(effort: &Effort, cores: usize) -> Vec<Workload> {
    let scale = ScaleParams::from_system(&SystemConfig::scaled_with_l2(L2Size::K256));
    let mut suite: Vec<Workload> = ["circset", "hotl2big", "zipfdb", "scanphase"]
        .iter()
        .map(|name| {
            mixes::homogeneous(
                ziv_workloads::apps::app_by_name(name).expect("known app"),
                cores,
                effort.accesses_per_core,
                0x2026,
                scale,
            )
        })
        .collect();
    suite.extend(mixes::all_heterogeneous(
        2,
        cores,
        effort.accesses_per_core,
        0x2026,
        scale,
    ));
    suite
}

/// Builds a spec for `(mode, policy)` on the scaled machine with the
/// given L2 option, labeled the way the paper's figures are.
pub fn spec(mode: LlcMode, policy: PolicyKind, l2: L2Size) -> RunSpec {
    let label = format!("{}-{} {}", mode.label(), policy.label(), l2.label());
    RunSpec::new(label, SystemConfig::scaled_with_l2(l2))
        .with_mode(mode)
        .with_policy(policy)
}

/// The LRU-baseline mode set of Fig 8 (leftmost-to-rightmost bars).
pub fn lru_modes() -> Vec<LlcMode> {
    use ziv_core::ZivProperty::*;
    vec![
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::Ziv(NotInPrC),
        LlcMode::Ziv(LruNotInPrC),
        LlcMode::Ziv(LikelyDead),
    ]
}

/// The Hawkeye-baseline mode set of Fig 11.
pub fn hawkeye_modes() -> Vec<LlcMode> {
    use ziv_core::ZivProperty::*;
    vec![
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::Ziv(MaxRrpvNotInPrC),
        LlcMode::Ziv(MaxRrpvLikelyDead),
    ]
}

/// Results directory for a campaign-backed figure bench:
/// `$ZIV_RESULTS_DIR/<name>`, defaulting to `results/<name>` under the
/// current directory. Reruns of a campaign bench reuse the ledger
/// there, so only cells missing from previous runs are simulated.
pub fn campaign_results_dir(name: &str) -> std::path::PathBuf {
    let base = std::env::var_os("ZIV_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"));
    base.join(name)
}

/// Runs a registered campaign with the figure benches' parameters
/// (seed `0x2026`, effort from the environment) through the resumable
/// cached runner, printing live progress to stderr.
///
/// # Panics
///
/// Panics if `name` is not a registered campaign or on results-dir I/O
/// errors.
pub fn run_figure_campaign(name: &str) -> (ziv_harness::Campaign, ziv_harness::CampaignOutcome) {
    use ziv_harness::{campaigns, run_campaign, CampaignParams, RunnerConfig, StderrProgress};
    let params = CampaignParams::from_env();
    let campaign = campaigns::by_name(name, &params)
        .unwrap_or_else(|| panic!("campaign '{name}' is not registered"));
    let cfg = RunnerConfig {
        threads: params.effort.threads,
        resume: true,
        params: Some(params),
        ..RunnerConfig::new(campaign_results_dir(name))
    };
    let outcome = run_campaign(&campaign, &cfg, &StderrProgress)
        .unwrap_or_else(|e| panic!("campaign '{name}' failed: {e}"));
    assert!(
        outcome.failures.is_empty(),
        "campaign '{name}': {} cell(s) failed — see {}/failures/",
        outcome.failures.len(),
        campaign_results_dir(name).display()
    );
    (campaign, outcome)
}

/// Prints the standard figure banner.
pub fn banner(figure: &str, title: &str, expectation: &str) {
    println!("==============================================================");
    println!("{figure}: {title}");
    println!("--------------------------------------------------------------");
    println!("paper-shape expectation: {expectation}");
    println!("==============================================================");
}

/// Prints a timing footer (so `cargo bench` output records run cost).
pub fn footer(started: std::time::Instant, runs: usize) {
    let dt = started.elapsed();
    println!(
        "\n[{} runs in {:.1}s — effort: {:?}]",
        runs,
        dt.as_secs_f64(),
        Effort::from_env()
    );
}

/// Asserts that every grid cell whose spec is a ZIV mode reports zero
/// inclusion victims — the guarantee every figure must uphold.
pub fn assert_ziv_guarantee(grid: &[ziv_sim::GridResult], specs: &[RunSpec]) {
    for cell in grid {
        if specs[cell.spec_index].mode.is_ziv() {
            assert_eq!(
                cell.result.metrics.inclusion_victims, 0,
                "{} on {} generated inclusion victims",
                cell.result.label, cell.result.workload
            );
            assert_eq!(
                cell.result.metrics.ziv_guarantee_fallbacks, 0,
                "{} on {} hit the defensive fallback",
                cell.result.label, cell.result.workload
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suites_are_nonempty() {
        let effort = Effort {
            accesses_per_core: 100,
            hetero_mixes: 1,
            mt_accesses_per_core: 100,
            tpce_accesses_per_core: 100,
            threads: 1,
        };
        assert!(mp_suite(&effort, 2).len() > 10);
        assert_eq!(mp_suite_small(&effort, 2).len(), 6);
    }

    #[test]
    fn spec_labels_match_figures() {
        let s = spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K256);
        assert_eq!(s.label, "I-LRU 256KB");
    }

    #[test]
    fn mode_sets_match_paper() {
        assert_eq!(lru_modes().len(), 7);
        assert_eq!(hawkeye_modes().len(), 6);
    }
}
