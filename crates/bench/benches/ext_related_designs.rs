//! Extension: the complete related-work landscape on one table — every
//! design the paper's Sections I/II discuss, at the 512 KB L2 point
//! under LRU: baselines (I, NI), the TLA trio (TLH, ECI, QBS), SHARP,
//! CHARonBase, RIC, way-partitioning, and the ZIV designs.
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Extension: related-design landscape",
        "every discussed design @ 512KB L2, LRU baseline",
        "only NI and the ZIV designs are inclusion-victim-free by \
         construction (NI by giving up inclusion; ZIV while keeping it); \
         TLH/ECI/QBS/SHARP/CHARonBase/RIC reduce victims without a \
         guarantee; partitioning trades capacity for isolation",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let modes: Vec<LlcMode> = vec![
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Tlh { hint_one_in: 8 },
        LlcMode::Eci,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::CharOnBase,
        LlcMode::Ric,
        LlcMode::WayPartitioned,
        LlcMode::Ziv(ZivProperty::NotInPrC),
        LlcMode::Ziv(ZivProperty::LikelyDead),
    ];
    let specs: Vec<_> = modes
        .into_iter()
        .map(|m| spec(m, PolicyKind::Lru, L2Size::K512))
        .collect();
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        (r.metrics.inclusion_victims + 1) as f64
    });
    println!("{}", rows.to_table("incl.victims+1 (norm)"));
    // The guarantee rows.
    for cell in &grid {
        let m = &cell.result.metrics;
        if cell.result.label.starts_with("ZIV") || cell.result.label.starts_with("NI") {
            assert_eq!(m.inclusion_victims, 0, "{}", cell.result.label);
        }
    }
    footer(t0, grid.len());
}
