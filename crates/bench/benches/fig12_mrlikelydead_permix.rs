//! Fig 12: per-mix speedup of the ZIV LLC with the MRLikelyDead
//! property at 512 KB L2 (Hawkeye baseline), normalized to I-LRU-256KB
//! equivalents (here: I-Hawkeye-512KB as the co-baseline column).
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 12",
        "per-mix speedup, ZIV-MRLikelyDead @ 512KB L2 (Hawkeye baseline)",
        "broad gains over the inclusive Hawkeye baseline; heterogeneous \
         mixes benefit most",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let specs = vec![
        spec(LlcMode::Inclusive, PolicyKind::Hawkeye, L2Size::K512),
        spec(
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
            PolicyKind::Hawkeye,
            L2Size::K512,
        ),
    ];
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    println!("{:<16} {:>8} {:>12}", "mix", "speedup", "relocations");
    let mut speedups = Vec::new();
    for (b, z) in grid.iter().take(wls.len()).zip(grid.iter().skip(wls.len())) {
        let s = z.result.weighted_speedup(&b.result);
        speedups.push(s);
        println!(
            "{:<16} {:>8.3} {:>12}",
            z.result.workload, s, z.result.metrics.relocations
        );
    }
    println!(
        "\naverage {}",
        ziv_common::stats::Summary::of(&speedups).unwrap()
    );
    footer(t0, grid.len());
}
