//! Fig 9: per-mix speedup of the ZIV LLC with the LikelyDead property
//! at 512 KB L2 (vs I-LRU), plus the relocation rate the paper quotes
//! (12% of LLC misses on average, max 33%).
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 9",
        "per-mix speedup, ZIV-LikelyDead @ 512KB L2 (LRU baseline)",
        "heterogeneous mixes benefit more than homogeneous ones; a modest \
         fraction of LLC misses requires relocation",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let specs = vec![
        spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512),
        spec(
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
            L2Size::K512,
        ),
    ];
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    println!(
        "{:<16} {:>8} {:>14} {:>12}",
        "mix", "speedup", "reloc/LLCmiss", "relocations"
    );
    let mut speedups = Vec::new();
    let mut max_rate = 0.0f64;
    for (b, z) in grid.iter().take(wls.len()).zip(grid.iter().skip(wls.len())) {
        let s = z.result.weighted_speedup(&b.result);
        let rate = z.result.metrics.relocation_rate();
        max_rate = max_rate.max(rate);
        speedups.push(s);
        println!(
            "{:<16} {:>8.3} {:>13.1}% {:>12}",
            z.result.workload,
            s,
            100.0 * rate,
            z.result.metrics.relocations
        );
    }
    let summary = ziv_common::stats::Summary::of(&speedups).unwrap();
    println!(
        "\naverage {summary}   max relocation rate {:.1}%",
        100.0 * max_rate
    );
    footer(t0, grid.len());
}
