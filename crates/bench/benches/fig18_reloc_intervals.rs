//! Fig 18: cumulative distribution of relocation intervals (in CPU
//! cycles, log2 x-axis) for three ZIV designs at 512 KB L2:
//! LikelyDead (LRU), MRNotInPrC (Hawkeye), MRLikelyDead (Hawkeye).
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 18",
        "CDF of relocation intervals (512KB L2)",
        "a vanishing fraction of intervals is under 5 cycles (the nextRS \
         logic latency of 3 cycles is covered); the Hawkeye-side designs \
         have a knee far to the left of LikelyDead (more frequent \
         relocations)",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let specs = vec![
        spec(
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
            L2Size::K512,
        ),
        spec(
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
            PolicyKind::Hawkeye,
            L2Size::K512,
        ),
        spec(
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
            PolicyKind::Hawkeye,
            L2Size::K512,
        ),
    ];
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);

    // Merge histograms per spec across workloads.
    let mut hists = vec![ziv_common::stats::Log2Histogram::new(); specs.len()];
    for cell in &grid {
        hists[cell.spec_index].merge(&cell.result.metrics.relocation_intervals);
    }
    println!(
        "{:<14} {:>16} {:>16} {:>16}",
        "log2(cycles)", "LikelyDead", "MRNotInPrC", "MRLikelyDead"
    );
    let max_bucket = hists
        .iter()
        .filter_map(|h| h.max_bucket())
        .max()
        .unwrap_or(0);
    for b in 0..=max_bucket {
        println!(
            "{:<14} {:>16.4} {:>16.4} {:>16.4}",
            b,
            hists[0].cdf_at(b),
            hists[1].cdf_at(b),
            hists[2].cdf_at(b)
        );
    }
    for (h, s) in hists.iter().zip(&specs) {
        println!(
            "{:<40} intervals<32cyc: {:.2}%  total relocations observed: {}",
            s.label,
            100.0 * h.fraction_below_pow2(5),
            h.total()
        );
    }
    footer(t0, grid.len());
}
