//! Fig 1: performance of inclusive vs non-inclusive LLCs under LRU and
//! Hawkeye across the three Table I L2 capacities, normalized to
//! I-LRU-256KB.
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 1",
        "inclusive (I) vs non-inclusive (NI) x {LRU, Hawkeye} x L2 capacity",
        "NI > I at every point; the gap grows with Hawkeye and with L2 size; \
         I degrades slowly as L2 grows while NI improves",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Hawkeye] {
        for l2 in L2Size::TABLE1 {
            for mode in [LlcMode::Inclusive, LlcMode::NonInclusive] {
                specs.push(spec(mode, policy, l2));
            }
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup"));
    footer(t0, grid.len());
}
