//! Fig 16: multithreaded workloads with LRU as the baseline LLC policy
//! (canneal, facesim, vips, 316.applu at 8 cores with 512KB-class L2;
//! TPC-E at 128 cores), normalized per-application to I-LRU.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer};
use ziv_common::config::{L2Size, SystemConfig};
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort, RunSpec};
use ziv_workloads::{multithreaded, ScaleParams};

fn modes() -> Vec<(&'static str, LlcMode)> {
    vec![
        ("I", LlcMode::Inclusive),
        ("NI", LlcMode::NonInclusive),
        ("QBS", LlcMode::Qbs),
        ("SHARP", LlcMode::Sharp),
        ("ZIV-NotInPrC", LlcMode::Ziv(ZivProperty::NotInPrC)),
        ("ZIV-LikelyDead", LlcMode::Ziv(ZivProperty::LikelyDead)),
    ]
}

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 16",
        "multithreaded performance, LRU baseline",
        "canneal/facesim/vips barely sensitive to inclusion victims; \
         applu and TPC-E favor ZIV-LikelyDead (>= NI)",
    );
    let effort = Effort::from_env();
    let policy = PolicyKind::Lru;
    let mut total_runs = 0;

    // PARSEC/OMP at 8 cores, 512KB-class L2 (the paper's configuration).
    let sys = SystemConfig::scaled_with_l2(L2Size::K512);
    let wls = multithreaded::parsec_omp_suite(
        8,
        effort.mt_accesses_per_core,
        7,
        ScaleParams::from_system(&sys),
    );
    let specs: Vec<RunSpec> = modes()
        .into_iter()
        .map(|(name, mode)| {
            RunSpec::new(name, sys.clone())
                .with_mode(mode)
                .with_policy(policy)
        })
        .collect();
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    total_runs += grid.len();
    println!(
        "{:<18} {}",
        "config",
        wls.iter()
            .map(|w| format!("{:>10}", w.name))
            .collect::<String>()
    );
    for s in 0..specs.len() {
        let mut line = format!("{:<18}", specs[s].label);
        for w in 0..wls.len() {
            let r = &grid[s * wls.len() + w].result;
            let b = &grid[w].result; // spec 0 = I
            line.push_str(&format!("{:>10.3}", r.runtime_speedup(b)));
        }
        println!("{line}");
    }

    // TPC-E at 128 cores (32MB-class LLC, 128KB-class L2).
    let server = SystemConfig::server_128(8);
    let tpce = vec![multithreaded::tpce(
        128,
        effort.tpce_accesses_per_core,
        9,
        ScaleParams::from_system(&server),
    )];
    let tspecs: Vec<RunSpec> = modes()
        .into_iter()
        .map(|(name, mode)| {
            RunSpec::new(name, server.clone())
                .with_mode(mode)
                .with_policy(policy)
        })
        .collect();
    let tgrid = run_grid(&tspecs, &tpce, effort.threads);
    assert_ziv_guarantee(&tgrid, &tspecs);
    total_runs += tgrid.len();
    println!("\n{:<18} {:>10}", "config", "TPC-E");
    for (s, _) in tspecs.iter().enumerate() {
        let r = &tgrid[s].result;
        println!(
            "{:<18} {:>10.3}",
            tspecs[s].label,
            r.runtime_speedup(&tgrid[0].result)
        );
    }
    footer(t0, total_runs);
}
