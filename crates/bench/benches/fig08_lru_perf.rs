//! Fig 8: multiprogrammed performance with LRU as the baseline LLC
//! policy — I, NI, QBS, SHARP, and the three LRU-side ZIV designs, per
//! L2 capacity, normalized to I-LRU-256KB.
//!
//! Runs through the `ziv-harness` campaign runner: results are cached
//! in a content-addressed ledger under `results/fig08-lru-perf/`, so a
//! rerun (or an interrupted run relaunched) only simulates cells
//! missing from the ledger. Cells shared with other campaigns (e.g.
//! the I-LRU column of Fig 2) are shared through their digests.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, run_figure_campaign};
use ziv_sim::speedup_summary;

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 8",
        "multiprogrammed performance, LRU baseline (I, NI, QBS, SHARP, ZIV x3)",
        "QBS/SHARP close to NI at 256KB but do not scale with L2 capacity; \
         ZIV-LikelyDead best across the board, meeting or beating NI at \
         256/512KB; ZIV guarantees zero inclusion victims",
    );
    let (campaign, outcome) = run_figure_campaign("fig08-lru-perf");
    assert_ziv_guarantee(&outcome.grid, &campaign.specs);
    let rows = speedup_summary(&outcome.grid, campaign.specs.len(), campaign.baseline_spec);
    println!("{}", rows.to_table("speedup"));
    println!(
        "[{} of {} cells from cache; grid: {}]",
        outcome.telemetry.cached_cells,
        outcome.telemetry.total_cells,
        outcome.grid_csv.display()
    );
    footer(t0, outcome.telemetry.executed_cells);
}
