//! Fig 8: multiprogrammed performance with LRU as the baseline LLC
//! policy — I, NI, QBS, SHARP, and the three LRU-side ZIV designs, per
//! L2 capacity, normalized to I-LRU-256KB.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, lru_modes, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 8",
        "multiprogrammed performance, LRU baseline (I, NI, QBS, SHARP, ZIV x3)",
        "QBS/SHARP close to NI at 256KB but do not scale with L2 capacity; \
         ZIV-LikelyDead best across the board, meeting or beating NI at \
         256/512KB; ZIV guarantees zero inclusion victims",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for l2 in L2Size::TABLE1 {
        for mode in lru_modes() {
            specs.push(spec(mode, PolicyKind::Lru, l2));
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup"));
    footer(t0, grid.len());
}
