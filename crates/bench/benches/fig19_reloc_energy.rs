//! Fig 19: relocation energy as an addition to energy-per-instruction
//! (EPI) for the multiprogrammed workloads, per L2 capacity, for the
//! LikelyDead (LRU) and MRLikelyDead (Hawkeye) ZIV designs — plus the
//! paper's cost/benefit comparison against L2/LLC/DRAM EPI savings.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 19",
        "relocation contribution to EPI (pJ/instruction)",
        "EPI contribution grows with L2 capacity (more relocations); the \
         Hawkeye-side design spends more; the cost stays small against \
         the DRAM EPI saved",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for l2 in L2Size::TABLE1 {
        specs.push(spec(
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
            l2,
        ));
        specs.push(spec(
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
            PolicyKind::Hawkeye,
            l2,
        ));
        // The inclusive baseline at the same L2 point for the savings
        // comparison.
        specs.push(spec(LlcMode::Inclusive, PolicyKind::Lru, l2));
        specs.push(spec(LlcMode::Inclusive, PolicyKind::Hawkeye, l2));
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    println!(
        "{:<34} {:>14} {:>14} {:>14}",
        "config", "reloc EPI (pJ)", "total EPI (pJ)", "dEPI vs I"
    );
    for (s, sp) in specs.iter().enumerate() {
        if !sp.mode.is_ziv() {
            continue;
        }
        let cells: Vec<_> = grid.iter().filter(|g| g.spec_index == s).collect();
        let reloc_epi: f64 = cells
            .iter()
            .map(|c| c.result.metrics.relocation_epi_pj())
            .sum::<f64>()
            / cells.len() as f64;
        let total_epi: f64 = cells
            .iter()
            .map(|c| c.result.metrics.total_epi_pj())
            .sum::<f64>()
            / cells.len() as f64;
        // Matching inclusive baseline: same L2, same policy family
        // (specs are laid out [ZIV-LRU, ZIV-Hawkeye, I-LRU, I-Hawkeye]
        // per L2 point, so the baseline sits two slots later).
        let base_idx = s + 2;
        let base_cells: Vec<_> = grid.iter().filter(|g| g.spec_index == base_idx).collect();
        let base_epi: f64 = base_cells
            .iter()
            .map(|c| c.result.metrics.total_epi_pj())
            .sum::<f64>()
            / base_cells.len() as f64;
        println!(
            "{:<34} {:>14.2} {:>14.1} {:>+14.1}",
            sp.label,
            reloc_epi,
            total_epi,
            total_epi - base_epi
        );
    }
    footer(t0, grid.len());
}
