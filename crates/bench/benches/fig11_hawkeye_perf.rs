//! Fig 11: multiprogrammed performance with Hawkeye as the baseline LLC
//! policy — I, NI, QBS, SHARP, ZIV-MRNotInPrC, ZIV-MRLikelyDead per L2
//! capacity, normalized to I-LRU-256KB.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, hawkeye_modes, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 11",
        "multiprogrammed performance, Hawkeye baseline",
        "MRLikelyDead best of the inclusive designs, close to NI at \
         256/512KB but never beating it (unlike the LRU case); \
         I-Hawkeye crippled by inclusion victims",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    // The normalization baseline is I-LRU 256KB (spec 0), as in every
    // paper figure.
    let mut specs = vec![spec(
        ziv_core::LlcMode::Inclusive,
        PolicyKind::Lru,
        L2Size::K256,
    )];
    for l2 in L2Size::TABLE1 {
        for mode in hawkeye_modes() {
            specs.push(spec(mode, PolicyKind::Hawkeye, l2));
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup"));
    footer(t0, grid.len());
}
