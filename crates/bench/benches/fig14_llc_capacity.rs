//! Fig 14: sensitivity to LLC capacity — a 16 MB LLC with 1 MB per-core
//! L2 (capacity-scaled), LRU group and Hawkeye group, normalized to the
//! 8 MB I-LRU-256KB baseline.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::{L2Size, SystemConfig};
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort, RunSpec};

fn big(label: &str, mode: LlcMode, policy: PolicyKind) -> RunSpec {
    RunSpec::new(format!("{label} 16MB/1MB"), SystemConfig::big_llc(8))
        .with_mode(mode)
        .with_policy(policy)
}

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 14",
        "16MB LLC + 1MB per-core L2 sensitivity",
        "LRU group: ZIV-LikelyDead continues to surpass NI; Hawkeye group: \
         MRNotInPrC / MRLikelyDead close to NI",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let specs = vec![
        spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K256), // baseline (8MB-class)
        big("I-LRU", LlcMode::Inclusive, PolicyKind::Lru),
        big("NI-LRU", LlcMode::NonInclusive, PolicyKind::Lru),
        big(
            "ZIV-LikelyDead-LRU",
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
        ),
        big("I-Hawkeye", LlcMode::Inclusive, PolicyKind::Hawkeye),
        big("NI-Hawkeye", LlcMode::NonInclusive, PolicyKind::Hawkeye),
        big(
            "ZIV-MRNotInPrC-Hawkeye",
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
            PolicyKind::Hawkeye,
        ),
        big(
            "ZIV-MRLikelyDead-Hawkeye",
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
            PolicyKind::Hawkeye,
        ),
    ];
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup"));
    footer(t0, grid.len());
}
