//! Extension: prefetching × inclusion (the paper's reference [1],
//! Backes & Jimenez MEMSYS 2019, studied in Section II). A stride
//! prefetcher raises LLC fill pressure, which multiplies inclusion
//! victims in the inclusive baseline — and leaves the ZIV guarantee
//! intact.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::prefetch::PrefetchConfig;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Extension: prefetching x inclusion",
        "I / NI / ZIV-LikelyDead with and without a stride prefetcher @ 512KB",
        "prefetch fills raise LLC pressure and inclusion-victim volume in \
         the inclusive baseline; the ZIV design absorbs the pressure with \
         relocations and keeps its guarantee",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for (pf, tag) in [(None, ""), (Some(PrefetchConfig::default()), "+PF")] {
        for (name, mode) in [
            ("I", LlcMode::Inclusive),
            ("NI", LlcMode::NonInclusive),
            ("ZIV-LikelyDead", LlcMode::Ziv(ZivProperty::LikelyDead)),
        ] {
            let mut s = spec(mode, PolicyKind::Lru, L2Size::K512);
            s.label = format!("{name}{tag} 512KB");
            if let Some(p) = pf {
                s = s.with_prefetch(p);
            }
            specs.push(s);
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I (no PF)"));
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        (r.metrics.inclusion_victims + 1) as f64
    });
    println!("{}", rows.to_table("incl.victims+1 (norm)"));
    footer(t0, grid.len());
}
