//! Ablation: relocation-set property quality at 512 KB L2 — the
//! DESIGN.md-flagged design choice the paper calls "the primary
//! performance determinant of the ZIV LLC design" (Section III-G).
//! Every variant is inclusion-victim-free; only victim quality differs.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Ablation: ZIV properties",
        "all five relocation-set properties @ 512KB L2",
        "richer properties (LikelyDead / MRLikelyDead) beat plain NotInPrC; \
         graded properties sit in between",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = vec![spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512)];
    for p in [
        ZivProperty::NotInPrC,
        ZivProperty::LruNotInPrC,
        ZivProperty::LikelyDead,
    ] {
        specs.push(spec(LlcMode::Ziv(p), PolicyKind::Lru, L2Size::K512));
    }
    // The same NotInPrC/LikelyDead properties under Hawkeye, plus the
    // RRPV-graded ones.
    for p in [
        ZivProperty::NotInPrC,
        ZivProperty::LikelyDead,
        ZivProperty::MaxRrpvNotInPrC,
        ZivProperty::MaxRrpvLikelyDead,
    ] {
        specs.push(spec(LlcMode::Ziv(p), PolicyKind::Hawkeye, L2Size::K512));
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    footer(t0, grid.len());
}
