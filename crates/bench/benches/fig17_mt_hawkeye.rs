//! Fig 17: multithreaded workloads with Hawkeye as the baseline LLC
//! policy, normalized per-application to I-LRU (the paper normalizes
//! both figures to the LRU baseline).
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer};
use ziv_common::config::{L2Size, SystemConfig};
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, Effort, RunSpec};
use ziv_workloads::{multithreaded, ScaleParams};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 17",
        "multithreaded performance, Hawkeye baseline (normalized to I-LRU)",
        "both ZIV designs close to NI; QBS/SHARP lose on facesim/vips by \
         sacrificing LLC reuses to avoid (harmless) inclusion victims",
    );
    let effort = Effort::from_env();
    let sys = SystemConfig::scaled_with_l2(L2Size::K512);
    let wls = multithreaded::parsec_omp_suite(
        8,
        effort.mt_accesses_per_core,
        7,
        ScaleParams::from_system(&sys),
    );
    // Spec 0: the I-LRU normalization baseline.
    let mut specs = vec![RunSpec::new("I-LRU", sys.clone()).with_mode(LlcMode::Inclusive)];
    for (name, mode) in [
        ("I-Hawkeye", LlcMode::Inclusive),
        ("NI-Hawkeye", LlcMode::NonInclusive),
        ("QBS-Hawkeye", LlcMode::Qbs),
        ("SHARP-Hawkeye", LlcMode::Sharp),
        ("ZIV-MRNotInPrC", LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC)),
        (
            "ZIV-MRLikelyDead",
            LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
        ),
    ] {
        specs.push(
            RunSpec::new(name, sys.clone())
                .with_mode(mode)
                .with_policy(PolicyKind::Hawkeye),
        );
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    println!(
        "{:<18} {}",
        "config",
        wls.iter()
            .map(|w| format!("{:>10}", w.name))
            .collect::<String>()
    );
    for s in 0..specs.len() {
        let mut line = format!("{:<18}", specs[s].label);
        for w in 0..wls.len() {
            let r = &grid[s * wls.len() + w].result;
            let b = &grid[w].result;
            line.push_str(&format!("{:>10.3}", r.runtime_speedup(b)));
        }
        println!("{line}");
    }
    footer(t0, grid.len());
}
