//! Ablation: CHAR's dead-block threshold. The paper adapts d (tau =
//! 1/2^d) dynamically, decrementing on relocation demand and resetting
//! periodically; this ablation pins d to static values.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_char::CharConfig;
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn static_d(d: u8) -> CharConfig {
    CharConfig {
        init_d: d,
        min_d: d,
        decrement_interval: u64::MAX,
        reset_interval: u64::MAX,
        ..CharConfig::default()
    }
}

fn main() {
    let t0 = Instant::now();
    banner(
        "Ablation: CHAR threshold",
        "static d in {1, 3, 6} vs the paper's dynamic d (ZIV-LikelyDead @ 512KB)",
        "a loose threshold (d=1) over-declares dead blocks; a tight one \
         (d=6) starves the LikelyDead PV; dynamic adaptation tracks demand",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = vec![spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512)];
    for d in [1u8, 3, 6] {
        let mut s = spec(
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
            L2Size::K512,
        );
        s.label = format!("ZIV-LikelyDead d={d} (static)");
        specs.push(s.with_char(static_d(d)));
    }
    let mut dynamic = spec(
        LlcMode::Ziv(ZivProperty::LikelyDead),
        PolicyKind::Lru,
        L2Size::K512,
    );
    dynamic.label = "ZIV-LikelyDead dynamic d".into();
    specs.push(dynamic);
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    footer(t0, grid.len());
}
