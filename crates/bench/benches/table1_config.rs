//! Table I: the simulated CMP configuration, printed from the live
//! `SystemConfig` values (both full scale and the default 1/8 scale).
use ziv_common::config::{L2Size, SystemConfig};

fn describe(name: &str, cfg: &SystemConfig) {
    println!("--- {name} ---");
    println!(
        "cores: {}   base CPI: {}   scale: 1/{}",
        cfg.cores, cfg.base_cpi, cfg.scale_denominator
    );
    println!(
        "L1 (i & d): {} KB {}-way   L2: {} KB {}-way, {} cycles",
        cfg.l1d.capacity_bytes() / 1024,
        cfg.l1d.ways,
        cfg.l2.capacity_bytes() / 1024,
        cfg.l2.ways,
        cfg.l2_latency
    );
    println!(
        "LLC: {} MB {}-way, {} banks, tag {} cycles, data {} cycles",
        cfg.llc.total_capacity_bytes() / (1024 * 1024),
        cfg.llc.bank_geometry.ways,
        cfg.llc.banks,
        cfg.llc.tag_latency,
        cfg.llc.data_latency
    );
    let dir = cfg.dir_slice_geometry();
    println!(
        "sparse directory: {:?}, {} sets x {} ways per slice ({} entries)",
        cfg.dir_ratio,
        dir.sets,
        dir.ways,
        dir.blocks()
    );
    println!(
        "mesh: {} + {} cycles/hop   DRAM: {} channels DDR3-2133 14-14-14-35",
        cfg.noc.router_cycles, cfg.noc.link_cycles, cfg.dram.channels
    );
}

fn main() {
    ziv_bench::banner(
        "Table I",
        "baseline simulation environment",
        "configuration only",
    );
    for l2 in L2Size::TABLE1 {
        describe(
            &format!("paper scale, {} L2", l2.label()),
            &SystemConfig::paper_with_l2(l2),
        );
    }
    describe("default 1/8 scale, 256KB-class L2", &SystemConfig::scaled());
    describe(
        "128-core server (TPC-E), 1/8 scale",
        &SystemConfig::server_128(8),
    );
}
