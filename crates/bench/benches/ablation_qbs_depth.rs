//! Ablation: QBS query depth. The paper's QBS queries victim candidates
//! until it finds one not resident in the private caches (up to the
//! whole set); this ablation bounds the number of queries and shows how
//! the inclusion-victim count and performance respond.
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Ablation: QBS query depth",
        "QBS with 1/2/4/8/16 queries vs full-set QBS @ 512KB L2 (LRU)",
        "shallow query depths degenerate toward the inclusive baseline \
         (more inclusion victims); depth 16 == full QBS on a 16-way LLC",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = vec![spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512)];
    for n in [1u8, 2, 4, 8, 16] {
        specs.push(spec(LlcMode::QbsBounded(n), PolicyKind::Lru, L2Size::K512));
    }
    specs.push(spec(LlcMode::Qbs, PolicyKind::Lru, L2Size::K512));
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        r.metrics.inclusion_victims as f64
    });
    println!("{}", rows.to_table("incl.victims (norm)"));
    footer(t0, grid.len());
}
