//! Fig 10: normalized LLC misses (upper panel) and L2 misses (lower
//! panel) for the Fig 8 configurations (LRU baseline).
use std::time::Instant;
use ziv_bench::{banner, footer, lru_modes, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 10",
        "normalized LLC and L2 misses, LRU baseline",
        "QBS/SHARP/ZIV save nearly the same L2 misses as NI; \
         ZIV-LikelyDead saves the most LLC misses",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for l2 in L2Size::TABLE1 {
        for mode in lru_modes() {
            specs.push(spec(mode, PolicyKind::Lru, l2));
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    println!("--- upper panel: LLC misses (normalized to I-LRU 256KB) ---");
    let rows = normalized_metric(&grid, specs.len(), 0, |r| r.metrics.llc_misses as f64);
    println!("{}", rows.to_table("LLC misses (norm)"));
    println!("--- lower panel: L2 misses (normalized to I-LRU 256KB) ---");
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        r.metrics.total_l2_misses() as f64
    });
    println!("{}", rows.to_table("L2 misses (norm)"));
    footer(t0, grid.len());
}
