//! Fig 3: normalized LLC miss counts for inclusive and non-inclusive
//! LLCs under LRU and Hawkeye across L2 capacities.
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 3",
        "normalized LLC miss counts (I/NI x LRU/Hawkeye x L2 capacity)",
        "NI misses decrease slightly with L2 capacity; inclusive Hawkeye \
         loses its advantage to inclusion victims",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Hawkeye] {
        for l2 in L2Size::TABLE1 {
            for mode in [LlcMode::Inclusive, LlcMode::NonInclusive] {
                specs.push(spec(mode, policy, l2));
            }
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows = normalized_metric(&grid, specs.len(), 0, |r| r.metrics.llc_misses as f64);
    println!("{}", rows.to_table("LLC misses (norm)"));
    footer(t0, grid.len());
}
