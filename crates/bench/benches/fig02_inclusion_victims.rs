//! Fig 2: normalized inclusion-victim counts for the inclusive LLC under
//! LRU, Hawkeye, and the offline MIN oracle, across L2 capacities
//! (normalized to I-LRU-256KB).
//!
//! Runs through the `ziv-harness` campaign runner: results are cached
//! in a content-addressed ledger under `results/fig02-inclusion-victims/`,
//! so a rerun (or an interrupted run relaunched) only simulates cells
//! missing from the ledger.
use std::time::Instant;
use ziv_bench::{banner, footer, run_figure_campaign};
use ziv_sim::normalized_metric;

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 2",
        "normalized inclusion-victim counts (I-LRU, I-Hawkeye, I-MIN)",
        "Hawkeye and MIN generate far more inclusion victims than LRU at \
         every L2 capacity; counts grow with L2 capacity",
    );
    let (campaign, outcome) = run_figure_campaign("fig02-inclusion-victims");
    let rows = normalized_metric(
        &outcome.grid,
        campaign.specs.len(),
        campaign.baseline_spec,
        |r| r.metrics.inclusion_victims as f64,
    );
    println!("{}", rows.to_table("incl.victims (norm)"));
    println!(
        "[{} of {} cells from cache; grid: {}]",
        outcome.telemetry.cached_cells,
        outcome.telemetry.total_cells,
        outcome.grid_csv.display()
    );
    footer(t0, outcome.telemetry.executed_cells);
}
