//! Fig 2: normalized inclusion-victim counts for the inclusive LLC under
//! LRU, Hawkeye, and the offline MIN oracle, across L2 capacities
//! (normalized to I-LRU-256KB).
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 2",
        "normalized inclusion-victim counts (I-LRU, I-Hawkeye, I-MIN)",
        "Hawkeye and MIN generate far more inclusion victims than LRU at \
         every L2 capacity; counts grow with L2 capacity",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Hawkeye, PolicyKind::Min] {
        for l2 in L2Size::TABLE1 {
            specs.push(spec(LlcMode::Inclusive, policy, l2));
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows =
        normalized_metric(&grid, specs.len(), 0, |r| r.metrics.inclusion_victims as f64);
    println!("{}", rows.to_table("incl.victims (norm)"));
    footer(t0, grid.len());
}
