//! Fig 4: normalized L2 miss counts. For a non-inclusive LLC the L2
//! miss count is independent of the LLC policy; inclusive LLCs inflate
//! it through inclusion victims.
use std::time::Instant;
use ziv_bench::{banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::LlcMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 4",
        "normalized L2 miss counts (I/NI x LRU/Hawkeye x L2 capacity)",
        "NI-LRU == NI-Hawkeye (policy-independent); I variants are higher, \
         tracking inclusion-victim volume; misses drop as L2 grows",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = Vec::new();
    for policy in [PolicyKind::Lru, PolicyKind::Hawkeye] {
        for l2 in L2Size::TABLE1 {
            for mode in [LlcMode::Inclusive, LlcMode::NonInclusive] {
                specs.push(spec(mode, policy, l2));
            }
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        r.metrics.total_l2_misses() as f64
    });
    println!("{}", rows.to_table("L2 misses (norm)"));
    footer(t0, grid.len());
}
