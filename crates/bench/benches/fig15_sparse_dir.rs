//! Fig 15: sensitivity to sparse-directory size (2x -> 1/4x) under the
//! traditional MESI protocol (left half) and ZeroDEV (right half), with
//! Hawkeye and 256 KB L2s.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite_small};
use ziv_common::config::{DirRatio, L2Size, SystemConfig};
use ziv_core::{LlcMode, ZivProperty};
use ziv_directory::DirectoryMode;
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort, RunSpec};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 15",
        "sparse-directory size sweep, MESI vs ZeroDEV (Hawkeye, 256KB L2)",
        "under MESI all designs degrade as the directory shrinks (NI loses \
         its lead to directory back-invalidations; ZIV tracks NI); under \
         ZeroDEV performance is nearly invariant",
    );
    let effort = Effort::from_env();
    let wls = mp_suite_small(&effort, 8);
    let mut specs = Vec::new();
    for dir_mode in [DirectoryMode::Mesi, DirectoryMode::ZeroDev] {
        for ratio in DirRatio::SWEEP {
            for (name, mode) in [
                ("I", LlcMode::Inclusive),
                ("NI", LlcMode::NonInclusive),
                (
                    "ZIV-MRLikelyDead",
                    LlcMode::Ziv(ZivProperty::MaxRrpvLikelyDead),
                ),
            ] {
                let label = format!("{name} {} {:?}", ratio.label(), dir_mode);
                specs.push(
                    RunSpec::new(
                        label,
                        SystemConfig::scaled_with_l2(L2Size::K256).with_dir_ratio(ratio),
                    )
                    .with_mode(mode)
                    .with_policy(PolicyKind::Hawkeye)
                    .with_dir_mode(dir_mode),
                );
            }
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-2x-MESI"));
    // ZeroDEV must generate zero directory back-invalidations.
    for cell in &grid {
        if cell.result.label.contains("ZeroDev") {
            assert_eq!(cell.result.metrics.directory_back_invalidations, 0);
        }
    }
    footer(t0, grid.len());
}
