//! Fig 13: normalized LLC misses (upper panel) and L2 misses (lower
//! panel) for the Fig 11 configurations (Hawkeye baseline).
use std::time::Instant;
use ziv_bench::{banner, footer, hawkeye_modes, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_replacement::PolicyKind;
use ziv_sim::{normalized_metric, run_grid, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Fig 13",
        "normalized LLC and L2 misses, Hawkeye baseline",
        "LLC-miss trends follow the Fig 11 performance trends; the L2 \
         panel matches the LRU case",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = vec![spec(
        ziv_core::LlcMode::Inclusive,
        PolicyKind::Lru,
        L2Size::K256,
    )];
    for l2 in L2Size::TABLE1 {
        for mode in hawkeye_modes() {
            specs.push(spec(mode, PolicyKind::Hawkeye, l2));
        }
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    println!("--- upper panel: LLC misses (normalized to I-LRU 256KB) ---");
    let rows = normalized_metric(&grid, specs.len(), 0, |r| r.metrics.llc_misses as f64);
    println!("{}", rows.to_table("LLC misses (norm)"));
    println!("--- lower panel: L2 misses (normalized to I-LRU 256KB) ---");
    let rows = normalized_metric(&grid, specs.len(), 0, |r| {
        r.metrics.total_l2_misses() as f64
    });
    println!("{}", rows.to_table("L2 misses (norm)"));
    footer(t0, grid.len());
}
