//! Extension: the paper's Section VI names as future work computing
//! "the optimal relocation victim from among the LLC blocks that are
//! not resident in the private caches". Pairing the ZIV design with the
//! offline MIN oracle realizes exactly that: the relocation-set victim
//! search walks MIN's rank order, so the first NotInPrC candidate is
//! the not-privately-cached block with the furthest reuse.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Extension: oracle relocation victims",
        "ZIV + MIN oracle vs the practical ZIV properties @ 512KB (Section VI)",
        "the oracle bounds how much better relocation-victim selection \
         could get; the LikelyDead heuristic should close part of the gap \
         from plain NotInPrC",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let specs = vec![
        spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512),
        spec(LlcMode::NonInclusive, PolicyKind::Lru, L2Size::K512),
        spec(
            LlcMode::Ziv(ZivProperty::NotInPrC),
            PolicyKind::Lru,
            L2Size::K512,
        ),
        spec(
            LlcMode::Ziv(ZivProperty::LikelyDead),
            PolicyKind::Lru,
            L2Size::K512,
        ),
        // The oracle: baseline MIN + NotInPrC relocation = optimal
        // victims both in the home set and in relocation sets.
        spec(
            LlcMode::Ziv(ZivProperty::NotInPrC),
            PolicyKind::Min,
            L2Size::K512,
        ),
        spec(LlcMode::Inclusive, PolicyKind::Min, L2Size::K512),
    ];
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    footer(t0, grid.len());
}
