//! Extension ablation: the paper notes (Section III-D5) that the
//! `MaxRRPVNotInPrC` property "can also be used with other LLC
//! replacement policies that employ RRPVs to grade the blocks in a set"
//! [19], [59]. This bench runs the ZIV design over the whole RRPV
//! family: SRRIP, DRRIP, SHiP, and Hawkeye.
use std::time::Instant;
use ziv_bench::{assert_ziv_guarantee, banner, footer, mp_suite, spec};
use ziv_common::config::L2Size;
use ziv_core::{LlcMode, ZivProperty};
use ziv_replacement::PolicyKind;
use ziv_sim::{run_grid, speedup_summary, Effort};

fn main() {
    let t0 = Instant::now();
    banner(
        "Ablation: RRPV policy family",
        "ZIV-MaxRRPVNotInPrC over SRRIP / DRRIP / SHiP / Hawkeye @ 512KB",
        "the ZIV guarantee and mechanism are policy-agnostic; better \
         baselines carry their advantage into the ZIV design",
    );
    let effort = Effort::from_env();
    let wls = mp_suite(&effort, 8);
    let mut specs = vec![spec(LlcMode::Inclusive, PolicyKind::Lru, L2Size::K512)];
    for policy in [
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Hawkeye,
    ] {
        specs.push(spec(LlcMode::Inclusive, policy, L2Size::K512));
        specs.push(spec(
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC),
            policy,
            L2Size::K512,
        ));
    }
    let grid = run_grid(&specs, &wls, effort.threads);
    assert_ziv_guarantee(&grid, &specs);
    let rows = speedup_summary(&grid, specs.len(), 0);
    println!("{}", rows.to_table("speedup vs I-LRU 512KB"));
    footer(t0, grid.len());
}
