//! The relocation FIFO (Section III-D1): an eight-entry buffer holding
//! blocks waiting to be relocated when the decoded `nextRS` is not ready
//! or the bank's write port is busy. It decouples the relocation datapath
//! from the rest of the relocation logic.
//!
//! The simulator performs relocations functionally at request time; this
//! structure models the buffer's *timing* (occupancy, completion cycles,
//! the never-observed-in-the-paper overflow case) and provides the
//! statistics behind Fig 18's discussion.

use std::collections::VecDeque;
use ziv_common::{Cycle, LineAddr};

/// The paper's buffer depth: eight entries per LLC bank.
pub const RELOCATION_FIFO_DEPTH: usize = 8;

/// Latency of the combinational `nextRS` logic (Section III-D8: the
/// synthesized module meets a three-cycle target at 4 GHz).
pub const NEXT_RS_LATENCY: Cycle = 3;

/// A block waiting to be relocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelocationRequest {
    /// The block being relocated.
    pub line: LineAddr,
    /// Cycle at which the relocation was requested.
    pub requested_at: Cycle,
}

/// Error returned when the FIFO is full; the LLC controller responds by
/// stalling private-cache miss requests (Section III-D1 notes this
/// cannot deadlock because relocations do not depend on miss progress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FifoFullError;

impl std::fmt::Display for FifoFullError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "relocation FIFO is full")
    }
}

impl std::error::Error for FifoFullError {}

/// The per-bank relocation FIFO with occupancy statistics.
#[derive(Debug, Clone, Default)]
pub struct RelocationFifo {
    queue: VecDeque<RelocationRequest>,
    /// Cycle at which the bank's relocation datapath becomes free.
    busy_until: Cycle,
    high_water: usize,
    total_pushed: u64,
    overflow_stalls: u64,
}

impl RelocationFifo {
    /// Creates an empty FIFO.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.queue.len()
    }

    /// Whether the FIFO is empty.
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Highest occupancy ever observed.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Total relocation requests accepted.
    pub fn total_pushed(&self) -> u64 {
        self.total_pushed
    }

    /// Times a push found the FIFO full.
    pub fn overflow_stalls(&self) -> u64 {
        self.overflow_stalls
    }

    /// Enqueues a relocation request.
    ///
    /// # Errors
    ///
    /// Returns [`FifoFullError`] when all eight entries are occupied
    /// (the caller must stall private-cache miss handling and retry).
    pub fn push(&mut self, req: RelocationRequest) -> Result<(), FifoFullError> {
        if self.queue.len() >= RELOCATION_FIFO_DEPTH {
            self.overflow_stalls += 1;
            return Err(FifoFullError);
        }
        self.queue.push_back(req);
        self.high_water = self.high_water.max(self.queue.len());
        self.total_pushed += 1;
        Ok(())
    }

    /// Completes the oldest pending relocation, modeling the `nextRS`
    /// computation latency and one write-port slot, and returns the
    /// request with its completion cycle. The relocation datapath is
    /// serialized: a relocation cannot start before the previous one
    /// finished or before its own request cycle.
    pub fn complete_front(&mut self, write_latency: Cycle) -> Option<(RelocationRequest, Cycle)> {
        let req = self.queue.pop_front()?;
        let start = req.requested_at.max(self.busy_until);
        let done = start + NEXT_RS_LATENCY + write_latency;
        self.busy_until = done;
        Some((req, done))
    }

    /// Drains every pending relocation, returning completion cycles.
    pub fn drain_all(&mut self, write_latency: Cycle) -> Vec<(RelocationRequest, Cycle)> {
        let mut out = Vec::with_capacity(self.queue.len());
        while let Some(done) = self.complete_front(write_latency) {
            out.push(done);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn req(line: u64, at: Cycle) -> RelocationRequest {
        RelocationRequest {
            line: LineAddr::new(line),
            requested_at: at,
        }
    }

    #[test]
    fn push_then_complete_round_trips() {
        let mut f = RelocationFifo::new();
        f.push(req(1, 100)).unwrap();
        let (r, done) = f.complete_front(1).unwrap();
        assert_eq!(r.line, LineAddr::new(1));
        assert_eq!(done, 100 + NEXT_RS_LATENCY + 1);
        assert!(f.is_empty());
    }

    #[test]
    fn capacity_is_eight() {
        let mut f = RelocationFifo::new();
        for i in 0..8 {
            f.push(req(i, 0)).unwrap();
        }
        assert_eq!(f.push(req(9, 0)), Err(FifoFullError));
        assert_eq!(f.overflow_stalls(), 1);
        assert_eq!(f.high_water(), 8);
    }

    #[test]
    fn completions_serialize_on_the_datapath() {
        let mut f = RelocationFifo::new();
        f.push(req(1, 10)).unwrap();
        f.push(req(2, 10)).unwrap();
        let (_, d1) = f.complete_front(2).unwrap();
        let (_, d2) = f.complete_front(2).unwrap();
        assert_eq!(d1, 15);
        assert_eq!(d2, 20, "second relocation waits for the datapath");
    }

    #[test]
    fn later_request_does_not_start_early() {
        let mut f = RelocationFifo::new();
        f.push(req(1, 0)).unwrap();
        let _ = f.complete_front(1);
        f.push(req(2, 1000)).unwrap();
        let (_, d) = f.complete_front(1).unwrap();
        assert_eq!(d, 1000 + NEXT_RS_LATENCY + 1);
    }

    #[test]
    fn drain_empties_queue() {
        let mut f = RelocationFifo::new();
        for i in 0..5 {
            f.push(req(i, i * 10)).unwrap();
        }
        let done = f.drain_all(1);
        assert_eq!(done.len(), 5);
        assert!(f.is_empty());
        assert_eq!(f.total_pushed(), 5);
    }

    #[test]
    fn error_displays() {
        assert_eq!(FifoFullError.to_string(), "relocation FIFO is full");
    }
}
