//! A generic set-associative tag array with per-way user state.

use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::CacheGeometry;

#[derive(Debug, Clone)]
struct Slot<S> {
    valid: bool,
    tag: u64,
    state: S,
}

/// A set-associative array of tagged entries carrying user state `S`.
///
/// The array stores validity and tags; everything policy- or
/// protocol-specific (dirty bits, `Relocated`/`NotInPrC` state, sharer
/// vectors) lives in `S`, chosen by each consumer.
#[derive(Debug, Clone)]
pub struct SetAssocArray<S> {
    geom: CacheGeometry,
    slots: Vec<Slot<S>>,
}

/// A read-only view of one valid way: `(way, tag, state)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WayRef<'a, S> {
    /// Way index within the set.
    pub way: WayIdx,
    /// Tag stored in the way.
    pub tag: u64,
    /// User state of the way.
    pub state: &'a S,
}

/// Outcome of a fused tag-lookup / invalid-way walk
/// ([`SetAssocArray::lookup_or_invalid_where`]): both answers from a
/// single O(ways) scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProbeOutcome {
    /// The valid way holding the probed tag (and passing the filter).
    pub hit: Option<WayIdx>,
    /// The lowest-index invalid way of the set.
    pub invalid: Option<WayIdx>,
}

impl<S: Default + Clone> SetAssocArray<S> {
    /// Creates an empty array of the given geometry.
    pub fn new(geom: CacheGeometry) -> Self {
        let n = geom.sets as usize * geom.ways as usize;
        SetAssocArray {
            geom,
            slots: vec![
                Slot {
                    valid: false,
                    tag: 0,
                    state: S::default()
                };
                n
            ],
        }
    }

    /// The array's geometry.
    pub fn geometry(&self) -> CacheGeometry {
        self.geom
    }

    #[inline]
    fn base(&self, set: SetIdx) -> usize {
        debug_assert!(set < self.geom.sets, "set index out of range");
        set as usize * self.geom.ways as usize
    }

    #[inline]
    fn idx(&self, set: SetIdx, way: WayIdx) -> usize {
        debug_assert!(way < self.geom.ways, "way index out of range");
        self.base(set) + way as usize
    }

    /// Finds the valid way holding `tag` in `set`, applying `filter` to
    /// its state (the ZIV LLC looks up "only the blocks with the
    /// Relocated state off", Section III-C1).
    pub fn lookup_where(
        &self,
        set: SetIdx,
        tag: u64,
        mut filter: impl FnMut(&S) -> bool,
    ) -> Option<WayIdx> {
        let base = self.base(set);
        (0..self.geom.ways).find(|&w| {
            let s = &self.slots[base + w as usize];
            s.valid && s.tag == tag && filter(&s.state)
        })
    }

    /// Finds the valid way holding `tag` in `set`.
    pub fn lookup(&self, set: SetIdx, tag: u64) -> Option<WayIdx> {
        self.lookup_where(set, tag, |_| true)
    }

    /// The lowest-index invalid way of `set`, if any.
    pub fn invalid_way(&self, set: SetIdx) -> Option<WayIdx> {
        let base = self.base(set);
        (0..self.geom.ways).find(|&w| !self.slots[base + w as usize].valid)
    }

    /// Fused tag lookup and invalid-way scan: one O(ways) walk answering
    /// both [`lookup_where`](SetAssocArray::lookup_where) and
    /// [`invalid_way`](SetAssocArray::invalid_way), for fill paths that
    /// would otherwise pay two separate scans of the same set. Stops as
    /// soon as both answers are known.
    pub fn lookup_or_invalid_where(
        &self,
        set: SetIdx,
        tag: u64,
        mut filter: impl FnMut(&S) -> bool,
    ) -> ProbeOutcome {
        let base = self.base(set);
        let mut out = ProbeOutcome {
            hit: None,
            invalid: None,
        };
        for w in 0..self.geom.ways {
            let s = &self.slots[base + w as usize];
            if s.valid {
                if out.hit.is_none() && s.tag == tag && filter(&s.state) {
                    out.hit = Some(w);
                }
            } else if out.invalid.is_none() {
                out.invalid = Some(w);
            }
            if out.hit.is_some() && out.invalid.is_some() {
                break;
            }
        }
        out
    }

    /// [`lookup_or_invalid_where`](SetAssocArray::lookup_or_invalid_where)
    /// with no state filter.
    pub fn lookup_or_invalid(&self, set: SetIdx, tag: u64) -> ProbeOutcome {
        self.lookup_or_invalid_where(set, tag, |_| true)
    }

    /// Whether `(set, way)` holds a valid entry.
    pub fn is_valid(&self, set: SetIdx, way: WayIdx) -> bool {
        self.slots[self.idx(set, way)].valid
    }

    /// Number of valid ways in `set`.
    pub fn valid_count(&self, set: SetIdx) -> usize {
        let base = self.base(set);
        (0..self.geom.ways as usize)
            .filter(|&w| self.slots[base + w].valid)
            .count()
    }

    /// Tag stored at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn tag(&self, set: SetIdx, way: WayIdx) -> u64 {
        let s = &self.slots[self.idx(set, way)];
        assert!(s.valid, "tag() on an invalid way");
        s.tag
    }

    /// Overwrites the tag at `(set, way)` in place. The ZIV design reuses
    /// the tag field of a relocated block to store the location of its
    /// sparse-directory entry (Section III-C3); this is the hook for it.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn set_tag(&mut self, set: SetIdx, way: WayIdx, tag: u64) {
        let i = self.idx(set, way);
        assert!(self.slots[i].valid, "set_tag() on an invalid way");
        self.slots[i].tag = tag;
    }

    /// State of the entry at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn state(&self, set: SetIdx, way: WayIdx) -> &S {
        let s = &self.slots[self.idx(set, way)];
        assert!(s.valid, "state() on an invalid way");
        &s.state
    }

    /// Mutable state of the entry at `(set, way)`.
    ///
    /// # Panics
    ///
    /// Panics if the slot is invalid.
    pub fn state_mut(&mut self, set: SetIdx, way: WayIdx) -> &mut S {
        let i = self.idx(set, way);
        assert!(self.slots[i].valid, "state_mut() on an invalid way");
        &mut self.slots[i].state
    }

    /// Fills `(set, way)` with `tag` and `state`, returning the previous
    /// entry's `(tag, state)` if the way was valid.
    pub fn fill(&mut self, set: SetIdx, way: WayIdx, tag: u64, state: S) -> Option<(u64, S)> {
        let i = self.idx(set, way);
        let old = if self.slots[i].valid {
            Some((self.slots[i].tag, std::mem::take(&mut self.slots[i].state)))
        } else {
            None
        };
        self.slots[i] = Slot {
            valid: true,
            tag,
            state,
        };
        old
    }

    /// Invalidates `(set, way)`, returning `(tag, state)` if it was valid.
    pub fn invalidate(&mut self, set: SetIdx, way: WayIdx) -> Option<(u64, S)> {
        let i = self.idx(set, way);
        if !self.slots[i].valid {
            return None;
        }
        self.slots[i].valid = false;
        Some((self.slots[i].tag, std::mem::take(&mut self.slots[i].state)))
    }

    /// Iterates over the valid ways of `set`.
    pub fn iter_set(&self, set: SetIdx) -> impl Iterator<Item = WayRef<'_, S>> {
        let base = self.base(set);
        self.slots[base..base + self.geom.ways as usize]
            .iter()
            .enumerate()
            .filter(|(_, s)| s.valid)
            .map(|(w, s)| WayRef {
                way: w as WayIdx,
                tag: s.tag,
                state: &s.state,
            })
    }

    /// Total number of valid entries across all sets (O(capacity); meant
    /// for tests and occupancy statistics).
    pub fn total_valid(&self) -> usize {
        self.slots.iter().filter(|s| s.valid).count()
    }
}

impl<S: Default + Clone> Default for SetAssocArray<S> {
    fn default() -> Self {
        Self::new(CacheGeometry::new(1, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
    struct St {
        dirty: bool,
    }

    fn arr() -> SetAssocArray<St> {
        SetAssocArray::new(CacheGeometry::new(4, 2))
    }

    #[test]
    fn starts_empty() {
        let a = arr();
        assert_eq!(a.total_valid(), 0);
        assert_eq!(a.invalid_way(0), Some(0));
        assert_eq!(a.lookup(0, 5), None);
    }

    #[test]
    fn fill_and_lookup() {
        let mut a = arr();
        assert!(a.fill(1, 0, 99, St { dirty: true }).is_none());
        assert_eq!(a.lookup(1, 99), Some(0));
        assert_eq!(a.lookup(0, 99), None, "sets are independent");
        assert!(a.state(1, 0).dirty);
    }

    #[test]
    fn fill_returns_displaced_entry() {
        let mut a = arr();
        a.fill(1, 0, 5, St { dirty: true });
        let old = a.fill(1, 0, 6, St::default());
        assert_eq!(old, Some((5, St { dirty: true })));
        assert_eq!(a.lookup(1, 5), None);
        assert_eq!(a.lookup(1, 6), Some(0));
    }

    #[test]
    fn invalidate_round_trips() {
        let mut a = arr();
        a.fill(2, 1, 7, St { dirty: true });
        assert_eq!(a.invalidate(2, 1), Some((7, St { dirty: true })));
        assert_eq!(a.invalidate(2, 1), None);
        assert_eq!(a.lookup(2, 7), None);
        assert_eq!(a.invalid_way(2), Some(0));
    }

    #[test]
    fn fused_probe_matches_separate_walks() {
        let mut a = arr();
        // Empty set: no hit, lowest invalid way.
        assert_eq!(
            a.lookup_or_invalid(0, 5),
            ProbeOutcome {
                hit: None,
                invalid: Some(0)
            }
        );
        // Hit in way 0, way 1 still invalid.
        a.fill(0, 0, 5, St { dirty: true });
        let p = a.lookup_or_invalid(0, 5);
        assert_eq!((p.hit, p.invalid), (a.lookup(0, 5), a.invalid_way(0)));
        assert_eq!((p.hit, p.invalid), (Some(0), Some(1)));
        // Full set, miss: no hit, no invalid way.
        a.fill(0, 1, 6, St::default());
        let p = a.lookup_or_invalid(0, 99);
        assert_eq!((p.hit, p.invalid), (None, None));
        // Filter applies to the hit, not the invalid-way answer.
        a.invalidate(0, 1);
        let p = a.lookup_or_invalid_where(0, 5, |s| !s.dirty);
        assert_eq!((p.hit, p.invalid), (None, Some(1)));
    }

    #[test]
    fn lookup_where_filters() {
        let mut a = arr();
        a.fill(0, 0, 9, St { dirty: true });
        assert_eq!(a.lookup_where(0, 9, |s| !s.dirty), None);
        assert_eq!(a.lookup_where(0, 9, |s| s.dirty), Some(0));
    }

    #[test]
    fn set_tag_rewrites_in_place() {
        let mut a = arr();
        a.fill(0, 1, 11, St::default());
        a.set_tag(0, 1, 22);
        assert_eq!(a.lookup(0, 11), None);
        assert_eq!(a.lookup(0, 22), Some(1));
        assert_eq!(a.tag(0, 1), 22);
    }

    #[test]
    fn iter_set_yields_valid_ways_only() {
        let mut a = arr();
        a.fill(3, 1, 42, St::default());
        let ways: Vec<_> = a.iter_set(3).map(|w| (w.way, w.tag)).collect();
        assert_eq!(ways, vec![(1, 42)]);
    }

    #[test]
    fn valid_count_tracks_fills() {
        let mut a = arr();
        assert_eq!(a.valid_count(0), 0);
        a.fill(0, 0, 1, St::default());
        a.fill(0, 1, 2, St::default());
        assert_eq!(a.valid_count(0), 2);
        assert_eq!(a.invalid_way(0), None);
    }

    #[test]
    #[should_panic(expected = "invalid way")]
    fn state_on_invalid_panics() {
        arr().state(0, 0);
    }

    #[test]
    fn state_mut_mutates() {
        let mut a = arr();
        a.fill(0, 0, 1, St::default());
        a.state_mut(0, 0).dirty = true;
        assert!(a.state(0, 0).dirty);
    }
}
