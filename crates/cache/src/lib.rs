//! # ziv-cache
//!
//! Structural cache building blocks for the ZIV LLC reproduction:
//!
//! - [`SetAssocArray`]: a generic set-associative tag array with
//!   per-way user state, used for the private L1/L2 caches, the LLC
//!   banks, and (via `ziv-directory`) the sparse directory slices.
//! - [`PropertyVector`]: the per-bank, per-property bit vector of
//!   Section III-D with the paper's **Algorithm 1** (`nextRS`
//!   computation) implemented literally on a multi-word bit string,
//!   including the `emptyPV` shortcut bit.
//! - [`RelocationFifo`]: the eight-entry buffer that decouples the
//!   relocation datapath from the rest of the relocation logic
//!   (Section III-D1).
//!
//! # Examples
//!
//! ```
//! use ziv_cache::PropertyVector;
//!
//! let mut pv = PropertyVector::new(64);
//! pv.set(10, true);
//! pv.set(42, true);
//! assert_eq!(pv.take_next_rs(), Some(10));
//! assert_eq!(pv.take_next_rs(), Some(42)); // round-robin
//! assert_eq!(pv.take_next_rs(), Some(10)); // wraps
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod array;
mod fifo;
mod pv;

pub use array::{ProbeOutcome, SetAssocArray, WayRef};
pub use fifo::{FifoFullError, RelocationFifo, RelocationRequest};
pub use pv::PropertyVector;
