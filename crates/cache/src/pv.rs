//! Property vectors (Section III-D1, Fig 6) and Algorithm 1.
//!
//! Each LLC set has one *property bit* per tracked relocation-set
//! property (`Invalid`, `NotInPrC`, `LRUNotInPrC`, ...). The property
//! bits of all sets in a bank form the **property vector (PV)**. A
//! `nextRS` register points to the next round-robin set whose bit is 1 —
//! the next relocation set — and an `emptyPV` bit short-circuits scans of
//! all-zero vectors.
//!
//! The `nextRS` computation is the paper's **Algorithm 1**, which
//! isolates the next set bit after the current position using the
//! two's-complement identity `x & (~x + 1) == lowest set bit of x`. We
//! implement it literally on a multi-word bit string (the hardware's wide
//! bit-vector becomes a `Vec<u64>` with explicit carry propagation), and
//! the unit tests check it against a naive scanning implementation.

use ziv_common::ids::SetIdx;

/// One property vector over the sets of an LLC bank, with its `nextRS`
/// round-robin register and `emptyPV` bit.
#[derive(Debug, Clone)]
pub struct PropertyVector {
    sets: u32,
    words: Vec<u64>,
    ones: u32,
    /// Position last returned as a relocation set (the "decoded RS" input
    /// of Algorithm 1). Starts at the last set so the first selection
    /// wraps to the lowest set bit.
    current_rs: u32,
}

/// `out = !a` over a multi-word bit string (bits beyond `sets` stay 0).
fn word_not(a: &[u64], sets: u32, out: &mut [u64]) {
    for (o, &w) in out.iter_mut().zip(a) {
        *o = !w;
    }
    mask_tail(out, sets);
}

/// `out = a + 1` over a multi-word little-endian bit string.
fn word_add1(a: &[u64], out: &mut [u64]) {
    let mut carry = true;
    for (o, &w) in out.iter_mut().zip(a) {
        let (v, c) = w.overflowing_add(carry as u64);
        *o = v;
        carry = c;
    }
}

/// `out = a & b`.
fn word_and(a: &[u64], b: &[u64], out: &mut [u64]) {
    for ((o, &x), &y) in out.iter_mut().zip(a).zip(b) {
        *o = x & y;
    }
}

/// Clears bits at and above `sets`.
fn mask_tail(words: &mut [u64], sets: u32) {
    let full = (sets / 64) as usize;
    let rem = sets % 64;
    if rem != 0 && full < words.len() {
        words[full] &= (1u64 << rem) - 1;
    }
    for w in words.iter_mut().skip(full + usize::from(rem != 0)) {
        *w = 0;
    }
}

/// Position of the single set bit of a one-hot multi-word string, or
/// `None` if the string is all zeros.
fn one_hot_position(words: &[u64]) -> Option<u32> {
    for (i, &w) in words.iter().enumerate() {
        if w != 0 {
            return Some(i as u32 * 64 + w.trailing_zeros());
        }
    }
    None
}

impl PropertyVector {
    /// Creates an all-zero PV over `sets` sets.
    ///
    /// # Panics
    ///
    /// Panics if `sets` is zero.
    pub fn new(sets: u32) -> Self {
        assert!(sets > 0, "a property vector needs at least one set");
        let words = vec![0u64; sets.div_ceil(64) as usize];
        PropertyVector {
            sets,
            words,
            ones: 0,
            current_rs: sets - 1,
        }
    }

    /// Number of sets covered.
    pub fn sets(&self) -> u32 {
        self.sets
    }

    /// The `emptyPV` bit: true when no set satisfies the property.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.ones == 0
    }

    /// Number of sets currently satisfying the property.
    pub fn count_ones(&self) -> u32 {
        self.ones
    }

    /// Reads the property bit of `set`.
    #[inline]
    pub fn get(&self, set: SetIdx) -> bool {
        debug_assert!(set < self.sets);
        self.words[(set / 64) as usize] >> (set % 64) & 1 == 1
    }

    /// Writes the property bit of `set`, updating `emptyPV` bookkeeping.
    #[inline]
    pub fn set(&mut self, set: SetIdx, value: bool) {
        debug_assert!(set < self.sets);
        let w = (set / 64) as usize;
        let bit = 1u64 << (set % 64);
        let was = self.words[w] & bit != 0;
        if value && !was {
            self.words[w] |= bit;
            self.ones += 1;
        } else if !value && was {
            self.words[w] &= !bit;
            self.ones -= 1;
        }
    }

    /// **Algorithm 1**: computes the decoded `nextRS` — the position of
    /// the next set bit after `current_rs` in round-robin order — without
    /// consuming it. Returns `None` when the PV is empty.
    pub fn peek_next_rs(&self) -> Option<SetIdx> {
        if self.is_empty() {
            return None;
        }
        let n = self.words.len();
        // decoded_RS: one-hot at current_rs.
        let mut decoded_rs = vec![0u64; n];
        decoded_rs[(self.current_rs / 64) as usize] |= 1u64 << (self.current_rs % 64);

        // mask <- ((~decoded_RS) + 1) & (~decoded_RS)
        // = all bit positions strictly above current_rs.
        let mut not_rs = vec![0u64; n];
        // NOTE: the "+1" must ripple through the untruncated complement,
        // so compute on the full-width complement first and mask after.
        for (o, &w) in not_rs.iter_mut().zip(&decoded_rs) {
            *o = !w;
        }
        let mut plus1 = vec![0u64; n];
        word_add1(&not_rs, &mut plus1);
        let mut mask = vec![0u64; n];
        word_and(&plus1, &not_rs, &mut mask);
        mask_tail(&mut mask, self.sets);

        // upperPV <- PV & mask ; lowerPV <- PV & ~mask
        let mut upper = vec![0u64; n];
        word_and(&self.words, &mask, &mut upper);
        let mut not_mask = vec![0u64; n];
        word_not(&mask, self.sets, &mut not_mask);
        let mut lower = vec![0u64; n];
        word_and(&self.words, &not_mask, &mut lower);

        // decoded_nextRS_{upper,lower} <- x & ((~x) + 1)  (isolate lowest set bit)
        let isolate = |x: &[u64]| -> Vec<u64> {
            let mut nx = vec![0u64; n];
            for (o, &w) in nx.iter_mut().zip(x) {
                *o = !w;
            }
            let mut nx1 = vec![0u64; n];
            word_add1(&nx, &mut nx1);
            let mut out = vec![0u64; n];
            word_and(x, &nx1, &mut out);
            out
        };
        let next_upper = isolate(&upper);
        let next_lower = isolate(&lower);

        let decoded_next = if next_upper.iter().all(|&w| w == 0) {
            next_lower
        } else {
            next_upper
        };
        one_hot_position(&decoded_next)
    }

    /// Consumes the current `nextRS`: returns the next relocation set in
    /// round-robin order and advances the register. `None` if empty.
    pub fn take_next_rs(&mut self) -> Option<SetIdx> {
        let next = self.peek_next_rs()?;
        self.current_rs = next;
        Some(next)
    }

    /// Naive reference implementation of the round-robin selection, used
    /// by tests to validate Algorithm 1.
    #[doc(hidden)]
    pub fn reference_next_rs(&self) -> Option<SetIdx> {
        if self.is_empty() {
            return None;
        }
        for d in 1..=self.sets {
            let pos = (self.current_rs + d) % self.sets;
            if self.get(pos) {
                return Some(pos);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_common::SimRng;

    #[test]
    fn empty_pv_yields_none() {
        let mut pv = PropertyVector::new(100);
        assert!(pv.is_empty());
        assert_eq!(pv.take_next_rs(), None);
    }

    #[test]
    fn single_bit_is_selected_repeatedly() {
        let mut pv = PropertyVector::new(100);
        pv.set(37, true);
        assert_eq!(pv.take_next_rs(), Some(37));
        assert_eq!(pv.take_next_rs(), Some(37));
    }

    #[test]
    fn round_robin_over_multiple_bits() {
        let mut pv = PropertyVector::new(256);
        for s in [3u32, 64, 65, 200] {
            pv.set(s, true);
        }
        let picks: Vec<_> = (0..8).map(|_| pv.take_next_rs().unwrap()).collect();
        assert_eq!(picks, vec![3, 64, 65, 200, 3, 64, 65, 200]);
    }

    #[test]
    fn clearing_bits_updates_empty_pv() {
        let mut pv = PropertyVector::new(64);
        pv.set(5, true);
        assert!(!pv.is_empty());
        pv.set(5, false);
        assert!(pv.is_empty());
        assert_eq!(pv.count_ones(), 0);
    }

    #[test]
    fn idempotent_set_does_not_corrupt_count() {
        let mut pv = PropertyVector::new(64);
        pv.set(1, true);
        pv.set(1, true);
        assert_eq!(pv.count_ones(), 1);
        pv.set(1, false);
        pv.set(1, false);
        assert_eq!(pv.count_ones(), 0);
    }

    #[test]
    fn works_at_word_boundaries() {
        let mut pv = PropertyVector::new(128);
        pv.set(63, true);
        pv.set(64, true);
        pv.set(127, true);
        assert_eq!(pv.take_next_rs(), Some(63));
        assert_eq!(pv.take_next_rs(), Some(64));
        assert_eq!(pv.take_next_rs(), Some(127));
        assert_eq!(pv.take_next_rs(), Some(63));
    }

    #[test]
    fn non_multiple_of_64_sets() {
        let mut pv = PropertyVector::new(100);
        pv.set(99, true);
        pv.set(0, true);
        assert_eq!(pv.take_next_rs(), Some(0));
        assert_eq!(pv.take_next_rs(), Some(99));
        assert_eq!(pv.take_next_rs(), Some(0));
    }

    #[test]
    fn selection_distributes_uniformly() {
        // The paper motivates round-robin selection as spreading the
        // relocation load across eligible sets.
        let mut pv = PropertyVector::new(32);
        for s in 0..32 {
            pv.set(s, true);
        }
        let mut counts = [0u32; 32];
        for _ in 0..320 {
            counts[pv.take_next_rs().unwrap() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c == 10), "{counts:?}");
    }

    // Seeded randomized model checks (deterministic stand-ins for the
    // proptest suites, which live in `devtests/` to keep this crate
    // dependency-free).
    #[test]
    fn algorithm1_matches_reference() {
        let mut rng = SimRng::seed_from_u64(0xA160);
        for _ in 0..200 {
            let sets = rng.range(1, 300) as u32;
            let mut pv = PropertyVector::new(sets);
            for _ in 0..rng.below(40) {
                pv.set(rng.below(300) as u32 % sets, true);
            }
            for _ in 0..rng.below(10) {
                assert_eq!(pv.peek_next_rs(), pv.reference_next_rs());
                let _ = pv.take_next_rs();
            }
            assert_eq!(pv.peek_next_rs(), pv.reference_next_rs());
        }
    }

    #[test]
    fn count_ones_matches_popcount() {
        let mut rng = SimRng::seed_from_u64(0xC047);
        for _ in 0..200 {
            let mut pv = PropertyVector::new(128);
            let mut model = std::collections::HashSet::new();
            for _ in 0..rng.below(100) {
                let (s, v) = (rng.below(128) as u32, rng.chance(0.5));
                pv.set(s, v);
                if v {
                    model.insert(s);
                } else {
                    model.remove(&s);
                }
            }
            assert_eq!(pv.count_ones() as usize, model.len());
            assert_eq!(pv.is_empty(), model.is_empty());
        }
    }
}
