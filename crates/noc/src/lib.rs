//! # ziv-noc
//!
//! The 2D mesh interconnect latency model of Table I (1 ns routing
//! delay, 0.5 ns link latency at 4 GHz). Cores and LLC banks are placed
//! on a near-square mesh; request/response latency is the Manhattan hop
//! distance times the per-hop delay. The paper notes the exact topology
//! is not important to the proposal (Section III-A); what matters is
//! that LLC round trips cost "a few tens of cycles" and that non-home
//! bank relocations (Section III-D1) cost extra hops, both of which this
//! model provides.
//!
//! # Examples
//!
//! ```
//! use ziv_noc::Mesh;
//! use ziv_common::{config::NocParams, BankId, CoreId};
//!
//! let mesh = Mesh::new(8, 8, NocParams::table1());
//! let rt = mesh.round_trip(CoreId::new(0), BankId::new(7));
//! assert!(rt > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use ziv_common::config::NocParams;
use ziv_common::{BankId, CoreId, Cycle};

/// Grid placement of cores and LLC banks on a 2D mesh.
///
/// Tiles are laid out row-major on a `cols × rows` grid sized to fit
/// `cores + banks` tiles as squarely as possible: cores first, then
/// banks (an 8-core, 8-bank machine becomes a 4×4 mesh).
#[derive(Debug, Clone)]
pub struct Mesh {
    cols: usize,
    cores: usize,
    params: NocParams,
}

impl Mesh {
    /// Builds a mesh for `cores` cores and `banks` LLC banks.
    ///
    /// # Panics
    ///
    /// Panics if `cores + banks` is zero.
    pub fn new(cores: usize, banks: usize, params: NocParams) -> Self {
        let tiles = cores + banks;
        assert!(tiles > 0, "mesh needs at least one tile");
        let cols = (tiles as f64).sqrt().ceil() as usize;
        Mesh {
            cols,
            cores,
            params,
        }
    }

    fn position(&self, tile: usize) -> (usize, usize) {
        (tile % self.cols, tile / self.cols)
    }

    fn core_tile(&self, core: CoreId) -> usize {
        core.index()
    }

    fn bank_tile(&self, bank: BankId) -> usize {
        self.cores + bank.index()
    }

    /// Manhattan hop distance between a core and a bank.
    pub fn hops(&self, core: CoreId, bank: BankId) -> u64 {
        let (x1, y1) = self.position(self.core_tile(core));
        let (x2, y2) = self.position(self.bank_tile(bank));
        (x1.abs_diff(x2) + y1.abs_diff(y2)) as u64
    }

    /// Hop distance between two LLC banks (cross-bank relocation path).
    pub fn bank_hops(&self, a: BankId, b: BankId) -> u64 {
        let (x1, y1) = self.position(self.bank_tile(a));
        let (x2, y2) = self.position(self.bank_tile(b));
        (x1.abs_diff(x2) + y1.abs_diff(y2)) as u64
    }

    /// One-way latency from a core to a bank, in cycles. At least one
    /// router traversal is paid even for co-located tiles.
    pub fn one_way(&self, core: CoreId, bank: BankId) -> Cycle {
        self.params.one_way(self.hops(core, bank).max(1))
    }

    /// Round-trip latency (request + response), in cycles.
    pub fn round_trip(&self, core: CoreId, bank: BankId) -> Cycle {
        2 * self.one_way(core, bank)
    }

    /// Extra one-way latency of reaching bank `remote` via home bank
    /// `home` instead of stopping at `home` (the non-home relocation
    /// penalty of Section III-D1).
    pub fn detour(&self, home: BankId, remote: BankId) -> Cycle {
        if home == remote {
            0
        } else {
            self.params.one_way(self.bank_hops(home, remote).max(1))
        }
    }

    /// Average round-trip from each core to each bank, in cycles
    /// (diagnostic; Table I's "few tens of cycles" sanity check).
    pub fn average_round_trip(&self, cores: usize, banks: usize) -> f64 {
        let mut sum = 0u64;
        for c in 0..cores {
            for b in 0..banks {
                sum += self.round_trip(CoreId::new(c), BankId::new(b));
            }
        }
        sum as f64 / (cores * banks) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(8, 8, NocParams::table1())
    }

    #[test]
    fn eight_by_eight_is_4x4() {
        let m = mesh();
        assert_eq!(m.cols, 4);
    }

    #[test]
    fn hops_are_symmetric_in_distance() {
        let m = mesh();
        // core 0 is tile (0,0); bank 7 is tile 15 = (3,3).
        assert_eq!(m.hops(CoreId::new(0), BankId::new(7)), 6);
    }

    #[test]
    fn minimum_one_hop() {
        let m = mesh();
        for b in 0..8 {
            assert!(m.one_way(CoreId::new(0), BankId::new(b)) >= 6);
        }
    }

    #[test]
    fn round_trip_is_twice_one_way() {
        let m = mesh();
        let c = CoreId::new(3);
        let b = BankId::new(2);
        assert_eq!(m.round_trip(c, b), 2 * m.one_way(c, b));
    }

    #[test]
    fn detour_to_home_bank_is_free() {
        let m = mesh();
        assert_eq!(m.detour(BankId::new(3), BankId::new(3)), 0);
        assert!(m.detour(BankId::new(0), BankId::new(7)) > 0);
    }

    #[test]
    fn average_round_trip_is_tens_of_cycles() {
        let m = mesh();
        let avg = m.average_round_trip(8, 8);
        assert!((10.0..80.0).contains(&avg), "avg {avg}");
    }

    #[test]
    fn large_mesh_scales() {
        let m = Mesh::new(128, 8, NocParams::table1());
        let avg = m.average_round_trip(128, 8);
        assert!(avg > Mesh::new(8, 8, NocParams::table1()).average_round_trip(8, 8));
    }
}
