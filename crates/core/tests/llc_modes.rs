//! Focused tests of the `SharedLlc` victim-selection modes, driving the
//! LLC and sparse directory directly (no private caches, no timing) for
//! precise control over which blocks are "privately cached".

use ziv_common::config::{LlcConfig, SystemConfig};
use ziv_common::{CoreId, LineAddr};
use ziv_core::llc::{LlcMode, SharedLlc, ZivProperty};
use ziv_directory::{DirectoryMode, SparseDirectory};
use ziv_replacement::{AccessCtx, PolicyKind};

/// 2 banks × 4 sets × 4 ways = 32 blocks.
fn llc(mode: LlcMode, policy: PolicyKind) -> SharedLlc {
    let cfg = LlcConfig::from_total_capacity(32 * 64, 4, 2);
    SharedLlc::new(
        cfg,
        mode,
        policy,
        |b| policy.build(cfg.bank_geometry, b as u64),
        7,
    )
}

fn dir() -> SparseDirectory {
    // Geometry details are irrelevant here; any tracked line counts as
    // privately cached.
    SparseDirectory::new(&SystemConfig::scaled(), DirectoryMode::ZeroDev)
}

fn ctx(line: u64, seq: u64) -> AccessCtx {
    AccessCtx::demand(
        LineAddr::new(line),
        0x400 + line % 8,
        CoreId::new(0),
        seq,
        seq,
    )
}

/// Lines mapping to bank 0, set 0: multiples of 8.
fn l(i: u64) -> LineAddr {
    LineAddr::new(i * 8)
}

/// Fills bank 0 / set 0 with lines l(0)..l(4).
fn fill_set(llc: &mut SharedLlc, dir: &SparseDirectory, seq: &mut u64) {
    for i in 0..4u64 {
        let line = l(i);
        let out = llc.fill(line, &ctx(line.raw(), *seq), dir, CoreId::new(0), *seq);
        assert!(out.evicted.is_none(), "warm-up fills must use invalid ways");
        *seq += 1;
    }
}

#[test]
fn qbs_skips_privately_cached_candidates() {
    let mut c = llc(LlcMode::Qbs, PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    // LRU order is l(0), l(1), l(2), l(3). Mark l(0) and l(1) privately
    // cached: QBS must skip (and protect) them and evict l(2).
    d.record_fill(l(0), CoreId::new(1));
    d.record_fill(l(1), CoreId::new(1));
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    assert_eq!(out.evicted.unwrap().line, l(2));
    assert_eq!(out.qbs_queries, 3, "queried l(0), l(1), then found l(2)");
}

#[test]
fn qbs_falls_back_to_baseline_victim_when_all_cached() {
    let mut c = llc(LlcMode::Qbs, PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    for i in 0..4u64 {
        d.record_fill(l(i), CoreId::new(1));
    }
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    // Every candidate was privately cached: QBS victimizes the (pre-
    // promotion) LRU block, generating the inclusion victim the paper
    // says it cannot avoid.
    assert_eq!(out.evicted.unwrap().line, l(0));
    assert_eq!(out.qbs_queries, 4);
}

#[test]
fn sharp_step2_prefers_requesters_own_blocks() {
    let mut c = llc(LlcMode::Sharp, PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    // All blocks privately cached somewhere; l(2) only by the requester.
    d.record_fill(l(0), CoreId::new(1));
    d.record_fill(l(1), CoreId::new(1));
    d.record_fill(l(2), CoreId::new(0));
    d.record_fill(l(3), CoreId::new(1));
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    assert_eq!(
        out.evicted.unwrap().line,
        l(2),
        "step 2: requester-only block"
    );
    assert!(!out.sharp_alarm);
}

#[test]
fn sharp_step3_raises_alarm_when_everything_is_shared() {
    let mut c = llc(LlcMode::Sharp, PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    for i in 0..4u64 {
        d.record_fill(l(i), CoreId::new(1));
        d.record_fill(l(i), CoreId::new(2));
    }
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    assert!(out.sharp_alarm, "random step 3 must fire");
    assert!(out.evicted.is_some());
}

#[test]
fn ziv_in_set_alternate_picks_not_in_prc_block() {
    let mut c = llc(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    // Fill EVERY set of both banks so the global Invalid PV is empty
    // (the paper gives "global set satisfying Invalid" priority over
    // "original set satisfying NotInPrC" — Section III-D4's order).
    for bank in 0..2u64 {
        for set in 0..4u64 {
            for way in 0..4u64 {
                let line = LineAddr::new(bank + set * 2 + way * 8);
                c.fill(line, &ctx(line.raw(), seq), &d, CoreId::new(0), seq);
                seq += 1;
            }
        }
    }
    // Refresh recency of set 0 so LRU order is l(0)..l(3) again.
    for i in 0..4u64 {
        c.on_hit(c.probe(l(i)).unwrap(), &ctx(l(i).raw(), seq));
        seq += 1;
    }
    // Baseline victim l(0) is privately cached; l(1)..l(3) are not.
    d.record_fill(l(0), CoreId::new(1));
    for i in 1..4u64 {
        let loc = c.probe(l(i)).unwrap();
        c.update_state(loc, |s| s.not_in_prc = true);
    }
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    assert!(
        out.relocation.is_none(),
        "in-set alternate needs no relocation"
    );
    assert!(out.in_set_alternate);
    assert_eq!(out.evicted.unwrap().line, l(1), "NotInPrC closest to LRU");
}

#[test]
fn ziv_relocates_to_another_set_when_own_set_exhausted() {
    let mut c = llc(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    // Every block in set 0 privately cached; set 1 of the same bank has
    // an invalid way -> global Invalid PV finds it.
    for i in 0..4u64 {
        d.record_fill(l(i), CoreId::new(1));
    }
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    let rel = out.relocation.expect("must relocate");
    assert_eq!(rel.moved_line, l(0), "the baseline victim moves");
    assert!(!rel.cross_bank);
    assert_ne!(rel.to.set, 0, "relocated into a different set");
    assert!(
        rel.evicted_from_rs.is_none(),
        "invalid way absorbed the move"
    );
    assert!(out.evicted.is_none());
    // The relocated block is findable only through its recorded
    // location; the home-set probe must miss.
    assert!(c.probe(l(0)).is_none());
    assert_eq!(c.state(rel.to).line, l(0));
    assert!(c.state(rel.to).relocated);
}

#[test]
fn ziv_crosses_banks_when_home_bank_is_all_private() {
    let mut c = llc(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    // Fill ALL of bank 0 (sets 0..4, lines i*2 for even bank bit) and
    // mark everything privately cached.
    for set in 0..4u64 {
        for way in 0..4u64 {
            let line = LineAddr::new(set * 2 + way * 8);
            let out = c.fill(line, &ctx(line.raw(), seq), &d, CoreId::new(0), seq);
            assert!(out.evicted.is_none());
            d.record_fill(line, CoreId::new(1));
            seq += 1;
        }
    }
    // A new fill to bank 0 set 0: no Invalid or NotInPrC candidates in
    // the whole bank -> cross-bank relocation into bank 1.
    let newline = LineAddr::new(16 * 8); // bank 0, set 0
    let out = c.fill(newline, &ctx(newline.raw(), seq), &d, CoreId::new(0), seq);
    let rel = out.relocation.expect("must relocate across banks");
    assert!(rel.cross_bank);
    assert_eq!(rel.to.bank.index(), 1);
    assert!(!out.ziv_fallback);
}

#[test]
fn char_on_base_prefers_likely_dead_blocks() {
    let mut c = llc(LlcMode::CharOnBase, PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    fill_set(&mut c, &d, &mut seq);
    d.record_fill(l(0), CoreId::new(1)); // baseline victim is cached
                                         // l(3) (MRU!) is likely dead and not cached.
    let loc = c.probe(l(3)).unwrap();
    c.update_state(loc, |s| {
        s.likely_dead = true;
        s.not_in_prc = true;
    });
    let out = c.fill(l(9), &ctx(l(9).raw(), seq), &d, CoreId::new(0), seq);
    assert_eq!(out.evicted.unwrap().line, l(3));
}

#[test]
fn relocation_spread_is_round_robin() {
    // The paper motivates round-robin nextRS selection as spreading the
    // relocation load across eligible sets.
    let mut c = llc(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru);
    let mut d = dir();
    let mut seq = 0;
    // Fill sets 1..4 of bank 0 with NotInPrC blocks (relocation fodder).
    for set in 1..4u64 {
        for way in 0..4u64 {
            let line = LineAddr::new(set * 2 + way * 8);
            c.fill(line, &ctx(line.raw(), seq), &d, CoreId::new(0), seq);
            let loc = c.probe(line).unwrap();
            c.update_state(loc, |s| s.not_in_prc = true);
            seq += 1;
        }
    }
    // Set 0: all privately cached.
    fill_set(&mut c, &d, &mut seq);
    for i in 0..4u64 {
        d.record_fill(l(i), CoreId::new(1));
    }
    // Repeated conflicting fills to set 0: each relocates a victim; the
    // targets must rotate across the eligible sets.
    let mut targets = Vec::new();
    for k in 0..6u64 {
        let newline = l(10 + k);
        let out = c.fill(newline, &ctx(newline.raw(), seq), &d, CoreId::new(0), seq);
        seq += 1;
        if let Some(rel) = out.relocation {
            targets.push(rel.to.set);
            // Keep pressure: the newly filled line also becomes private.
            d.record_fill(newline, CoreId::new(1));
        }
    }
    assert!(
        targets.len() >= 3,
        "need several relocations, got {targets:?}"
    );
    let distinct: std::collections::HashSet<_> = targets.iter().collect();
    assert!(
        distinct.len() >= 2,
        "round-robin must use multiple sets: {targets:?}"
    );
}
