//! Behavioral tests of the full cache hierarchy across all LLC modes.

use ziv_common::config::{CacheGeometry, DirRatio, DramParams, LlcConfig, NocParams, SystemConfig};
use ziv_common::{Addr, CoreId, SimRng};
use ziv_core::{Access, CacheHierarchy, HierarchyConfig, LlcMode, ZivProperty};
use ziv_directory::DirectoryMode;
use ziv_replacement::PolicyKind;

/// A tiny machine: 2 cores, 64-block LLC (2 banks × 8 sets × 4 ways),
/// 8-block L2s, 4-block L1s. Aggregate private capacity is well under
/// the LLC capacity, as the inclusion property requires.
fn tiny_system(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(64 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

fn build(mode: LlcMode, policy: PolicyKind, cores: usize) -> CacheHierarchy {
    let cfg = HierarchyConfig::new(tiny_system(cores))
        .with_mode(mode)
        .with_policy(policy);
    CacheHierarchy::new(&cfg)
}

/// Drives a random-but-deterministic workload and returns the hierarchy.
fn stress(
    mode: LlcMode,
    policy: PolicyKind,
    cores: usize,
    accesses: u64,
    seed: u64,
) -> CacheHierarchy {
    let mut h = build(mode, policy, cores);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut now = 0u64;
    for seq in 0..accesses {
        let core = CoreId::new(rng.below_usize(cores));
        // A footprint of 256 lines: large enough to overflow every level.
        let line = rng.below(256);
        let addr = Addr::new(line * 64);
        let pc = 0x400 + (line % 16) * 4;
        let a = if rng.chance(0.2) {
            Access::write(core, addr, pc)
        } else {
            Access::read(core, addr, pc)
        };
        now += 1 + h.access(&a, now, seq);
    }
    h
}

#[test]
fn cold_miss_then_hits_in_l1() {
    let mut h = build(LlcMode::Inclusive, PolicyKind::Lru, 2);
    let a = Access::read(CoreId::new(0), Addr::new(0x1000), 0x400);
    let miss_lat = h.access(&a, 0, 0);
    let hit_lat = h.access(&a, miss_lat, 1);
    assert!(miss_lat > 50, "cold miss should reach DRAM: {miss_lat}");
    assert!(hit_lat <= 1, "L1 hit should be cheap: {hit_lat}");
    assert_eq!(h.metrics().llc_misses, 1);
    assert_eq!(h.metrics().llc_accesses, 1);
}

#[test]
fn llc_hit_latency_between_l2_and_dram() {
    let mut h = build(LlcMode::Inclusive, PolicyKind::Lru, 2);
    let c0 = CoreId::new(0);
    let c1 = CoreId::new(1);
    let a0 = Access::read(c0, Addr::new(0x2000), 0x400);
    h.access(&a0, 0, 0);
    // Another core reads the same line: LLC hit (it was filled).
    let a1 = Access::read(c1, Addr::new(0x2000), 0x404);
    let lat = h.access(&a1, 1000, 1);
    assert!(lat > 4 && lat < 150, "LLC hit latency: {lat}");
    assert_eq!(h.metrics().llc_hits, 1);
}

#[test]
fn inclusive_mode_generates_inclusion_victims() {
    let h = stress(LlcMode::Inclusive, PolicyKind::Lru, 2, 20_000, 7);
    assert!(
        h.metrics().inclusion_victims > 0,
        "tiny LLC must evict hot private blocks"
    );
    h.verify_invariants().unwrap();
}

#[test]
fn noninclusive_mode_never_generates_inclusion_victims() {
    let h = stress(LlcMode::NonInclusive, PolicyKind::Lru, 2, 20_000, 7);
    assert_eq!(h.metrics().inclusion_victims, 0);
    h.verify_invariants().unwrap();
}

#[test]
fn ziv_guarantees_zero_inclusion_victims_lru() {
    for prop in [
        ZivProperty::NotInPrC,
        ZivProperty::LruNotInPrC,
        ZivProperty::LikelyDead,
    ] {
        let h = stress(LlcMode::Ziv(prop), PolicyKind::Lru, 2, 20_000, 11);
        assert_eq!(
            h.metrics().inclusion_victims,
            0,
            "{} must be inclusion-victim-free",
            prop.label()
        );
        assert_eq!(h.metrics().ziv_guarantee_fallbacks, 0);
        assert!(
            h.metrics().relocations + h.metrics().in_set_alternate_victims > 0,
            "{}: the mechanism must actually engage",
            prop.label()
        );
        h.verify_invariants().unwrap();
    }
}

#[test]
fn ziv_guarantees_zero_inclusion_victims_hawkeye() {
    for prop in [ZivProperty::MaxRrpvNotInPrC, ZivProperty::MaxRrpvLikelyDead] {
        let h = stress(LlcMode::Ziv(prop), PolicyKind::Hawkeye, 2, 20_000, 13);
        assert_eq!(h.metrics().inclusion_victims, 0, "{}", prop.label());
        assert_eq!(h.metrics().ziv_guarantee_fallbacks, 0);
        h.verify_invariants().unwrap();
    }
}

#[test]
fn ziv_maintains_inclusion_property() {
    let h = stress(
        LlcMode::Ziv(ZivProperty::NotInPrC),
        PolicyKind::Lru,
        2,
        10_000,
        17,
    );
    // verify_invariants checks: every privately cached block has an LLC
    // copy (home or relocated) and every relocated block has a directory
    // pointer.
    h.verify_invariants().unwrap();
    assert!(h.metrics().relocations > 0);
}

#[test]
fn qbs_reduces_inclusion_victims_vs_inclusive() {
    let incl = stress(LlcMode::Inclusive, PolicyKind::Lru, 2, 20_000, 19);
    let qbs = stress(LlcMode::Qbs, PolicyKind::Lru, 2, 20_000, 19);
    assert!(qbs.metrics().qbs_queries > 0);
    assert!(
        qbs.metrics().inclusion_victims <= incl.metrics().inclusion_victims,
        "QBS {} vs inclusive {}",
        qbs.metrics().inclusion_victims,
        incl.metrics().inclusion_victims
    );
}

#[test]
fn sharp_reduces_inclusion_victims_vs_inclusive() {
    let incl = stress(LlcMode::Inclusive, PolicyKind::Lru, 2, 20_000, 23);
    let sharp = stress(LlcMode::Sharp, PolicyKind::Lru, 2, 20_000, 23);
    assert!(
        sharp.metrics().inclusion_victims <= incl.metrics().inclusion_victims,
        "SHARP {} vs inclusive {}",
        sharp.metrics().inclusion_victims,
        incl.metrics().inclusion_victims
    );
    sharp.verify_invariants().unwrap();
}

#[test]
fn char_on_base_runs_clean() {
    let h = stress(LlcMode::CharOnBase, PolicyKind::Lru, 2, 20_000, 29);
    h.verify_invariants().unwrap();
    // CHARonBase reduces but does not eliminate inclusion victims.
    let incl = stress(LlcMode::Inclusive, PolicyKind::Lru, 2, 20_000, 29);
    assert!(h.metrics().inclusion_victims <= incl.metrics().inclusion_victims);
}

#[test]
fn zerodev_eliminates_directory_back_invalidations() {
    let sys = tiny_system(2).with_dir_ratio(DirRatio::Quarter);
    for (dir_mode, expect_zero) in [(DirectoryMode::Mesi, false), (DirectoryMode::ZeroDev, true)] {
        let cfg = HierarchyConfig::new(sys.clone())
            .with_mode(LlcMode::Ziv(ZivProperty::NotInPrC))
            .with_dir_mode(dir_mode);
        let mut h = CacheHierarchy::new(&cfg);
        let mut rng = SimRng::seed_from_u64(31);
        let mut now = 0;
        for seq in 0..20_000u64 {
            let core = CoreId::new(rng.below_usize(2));
            let a = Access::read(core, Addr::new(rng.below(512) * 64), 0x400);
            now += 1 + h.access(&a, now, seq);
        }
        if expect_zero {
            assert_eq!(h.metrics().directory_back_invalidations, 0, "ZeroDEV");
        }
        h.verify_invariants().unwrap();
    }
}

#[test]
fn write_sharing_uses_coherence_not_inclusion_victims() {
    let mut h = build(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru, 2);
    let line = Addr::new(0x8000);
    let mut now = 0;
    now += h.access(&Access::read(CoreId::new(0), line, 0x400), now, 0);
    now += h.access(&Access::read(CoreId::new(1), line, 0x404), now, 1);
    // Core 1 writes: core 0's copy must be invalidated coherently.
    now += h.access(&Access::write(CoreId::new(1), line, 0x408), now, 2);
    let _ = now;
    assert_eq!(h.metrics().coherence_invalidations, 1);
    assert_eq!(h.metrics().inclusion_victims, 0);
    h.verify_invariants().unwrap();
}

#[test]
fn dirty_data_survives_round_trip_through_llc() {
    let mut h = build(LlcMode::Inclusive, PolicyKind::Lru, 2);
    let line = Addr::new(0x8000);
    let mut now = 0;
    now += h.access(&Access::write(CoreId::new(0), line, 0x400), now, 0);
    // Core 1 reads: data must be fetched from core 0 (dirty owner) and
    // the LLC copy refreshed.
    now += h.access(&Access::read(CoreId::new(1), line, 0x404), now, 1);
    let _ = now;
    let loc = h.llc().probe(line.line()).expect("LLC copy exists");
    assert!(h.llc().state(loc).dirty, "owner's data merged into LLC");
    h.verify_invariants().unwrap();
}

#[test]
fn multithreaded_stress_all_modes() {
    // 4 cores hammering a shared footprint with writes: the coherence
    // paths (upgrades, downgrades, notices) must hold invariants in all
    // modes.
    for mode in [
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
        LlcMode::CharOnBase,
        LlcMode::Ziv(ZivProperty::LikelyDead),
    ] {
        let h = stress(mode, PolicyKind::Lru, 4, 30_000, 37);
        h.verify_invariants()
            .unwrap_or_else(|e| panic!("{} violated invariants: {e}", mode.label()));
        if mode.is_ziv() {
            assert_eq!(h.metrics().inclusion_victims, 0);
        }
    }
}

#[test]
fn hawkeye_modes_stress() {
    for mode in [
        LlcMode::Inclusive,
        LlcMode::NonInclusive,
        LlcMode::Qbs,
        LlcMode::Sharp,
    ] {
        let h = stress(mode, PolicyKind::Hawkeye, 2, 20_000, 41);
        h.verify_invariants()
            .unwrap_or_else(|e| panic!("{} violated invariants: {e}", mode.label()));
    }
}

#[test]
fn deterministic_across_runs() {
    let a = stress(
        LlcMode::Ziv(ZivProperty::LikelyDead),
        PolicyKind::Lru,
        2,
        10_000,
        43,
    );
    let b = stress(
        LlcMode::Ziv(ZivProperty::LikelyDead),
        PolicyKind::Lru,
        2,
        10_000,
        43,
    );
    assert_eq!(a.metrics().llc_misses, b.metrics().llc_misses);
    assert_eq!(a.metrics().relocations, b.metrics().relocations);
    assert_eq!(a.metrics().llc_hits, b.metrics().llc_hits);
}

#[test]
fn relocated_block_is_reachable_and_dies_with_last_copy() {
    // Construct a scenario that forces a relocation, then access the
    // relocated block from another core.
    let mut h = build(LlcMode::Ziv(ZivProperty::NotInPrC), PolicyKind::Lru, 2);
    let mut now = 0;
    let mut seq = 0;
    // Keep line 0 hot in core 0's private caches (L1 hits keep it MRU
    // privately but untouched in the LLC) while streaming fillers that
    // map to the same LLC set — the textbook inclusion-victim pattern.
    let fillers = [16u64, 32, 48, 64, 80];
    let step = |h: &mut CacheHierarchy, line: u64, now: &mut u64, seq: &mut u64| {
        let a = Access::read(CoreId::new(0), Addr::new(line * 64), 0x400 + line);
        *now += 1 + h.access(&a, *now, *seq);
        *seq += 1;
    };
    let mut i = 0;
    while h.metrics().relocations == 0 && seq < 50_000 {
        step(&mut h, 0, &mut now, &mut seq);
        step(&mut h, fillers[i % fillers.len()], &mut now, &mut seq);
        i += 1;
    }
    assert!(h.metrics().relocations > 0, "relocation must occur");
    assert_eq!(h.metrics().inclusion_victims, 0);
    h.verify_invariants().unwrap();
    // Every relocated block is reachable through the directory.
    for (loc, st) in h.llc().resident_blocks() {
        if st.relocated {
            assert_eq!(h.directory().relocated_location(st.line), Some(loc));
        }
    }
}

#[test]
fn min_policy_runs_with_future_knowledge() {
    use std::rc::Rc;
    use ziv_replacement::PrecomputedFuture;
    // Build a short access stream and give MIN its future.
    let lines: Vec<u64> = (0..64).cycle().take(2_000).collect();
    let future = PrecomputedFuture::from_stream(
        lines
            .iter()
            .enumerate()
            .map(|(i, &l)| (i as u64, ziv_common::LineAddr::new(l))),
    );
    let cfg = HierarchyConfig::new(tiny_system(1))
        .with_mode(LlcMode::Inclusive)
        .with_policy(PolicyKind::Min)
        .with_future(Rc::new(future));
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0;
    for (i, &l) in lines.iter().enumerate() {
        let a = Access::read(CoreId::new(0), Addr::new(l * 64), 0x400);
        now += 1 + h.access(&a, now, i as u64);
    }
    assert!(h.metrics().llc_misses > 0);
    h.verify_invariants().unwrap();
}

#[test]
#[should_panic(expected = "RRPV-graded")]
fn max_rrpv_property_requires_rrpv_policy() {
    let cfg = HierarchyConfig::new(tiny_system(2))
        .with_mode(LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC))
        .with_policy(PolicyKind::Lru);
    let _ = CacheHierarchy::new(&cfg);
}

#[test]
fn finalize_collects_relocation_intervals() {
    let mut h = stress(
        LlcMode::Ziv(ZivProperty::NotInPrC),
        PolicyKind::Lru,
        2,
        20_000,
        53,
    );
    let relocations = h.metrics().relocations;
    h.finalize();
    if relocations > 2 {
        assert!(h.metrics().relocation_intervals.total() > 0);
    }
    assert!(h.metrics().dram_energy_pj > 0.0);
}

#[test]
fn energy_accounting_is_populated() {
    let mut h = stress(
        LlcMode::Ziv(ZivProperty::LikelyDead),
        PolicyKind::Lru,
        2,
        20_000,
        59,
    );
    for c in h.metrics_mut().per_core.iter_mut() {
        c.instructions = 100_000;
    }
    h.finalize();
    assert!(h.metrics().relocation_epi_pj() > 0.0);
    assert!(h.metrics().total_epi_pj() > 0.0);
}

#[test]
fn prefetching_preserves_invariants_and_the_ziv_guarantee() {
    use ziv_core::prefetch::PrefetchConfig;
    for mode in [LlcMode::Inclusive, LlcMode::Ziv(ZivProperty::LikelyDead)] {
        let cfg = HierarchyConfig::new(tiny_system(2))
            .with_mode(mode)
            .with_prefetch(PrefetchConfig::default());
        let mut h = CacheHierarchy::new(&cfg);
        let mut now = 0u64;
        // Strided streams (prefetch-friendly) + a hot private set.
        for seq in 0..30_000u64 {
            let core = CoreId::new((seq % 2) as usize);
            let line = if seq % 3 == 0 {
                seq / 3 % 16
            } else {
                64 + (seq / 3) * 2 % 4096
            };
            let a = Access::read(core, Addr::new(line * 64), 0x400 + (seq % 3) * 4);
            now += 1 + h.access(&a, now, seq);
        }
        assert!(h.metrics().prefetches_issued > 0, "{}", mode.label());
        assert!(h.metrics().prefetch_fills > 0, "{}", mode.label());
        h.verify_invariants()
            .unwrap_or_else(|e| panic!("{}: {e}", mode.label()));
        if mode.is_ziv() {
            assert_eq!(h.metrics().inclusion_victims, 0);
        }
    }
}

#[test]
fn prefetched_blocks_fill_l2_but_not_l1() {
    use ziv_core::prefetch::PrefetchConfig;
    let cfg = HierarchyConfig::new(tiny_system(2)).with_prefetch(PrefetchConfig::default());
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0u64;
    // Train a unit stride long enough for confident prefetches.
    for i in 0..10u64 {
        let a = Access::read(CoreId::new(0), Addr::new(i * 64), 0x400);
        now += 1 + h.access(&a, now, i);
    }
    assert!(h.metrics().prefetch_fills > 0);
    // The next line along the stride should now be an L2 hit (not L1):
    // its access latency is the L2 latency, not an LLC round trip.
    let a = Access::read(CoreId::new(0), Addr::new(10 * 64), 0x400);
    let lat = h.access(&a, now, 10);
    assert_eq!(
        lat,
        h.system().l2_latency,
        "prefetched block must be an L2 hit"
    );
}
