//! Tests of the additional related-work designs: TLH, ECI, RIC, and
//! the way-partitioned LLC.

use ziv_common::config::{CacheGeometry, DirRatio, DramParams, LlcConfig, NocParams, SystemConfig};
use ziv_common::{Addr, CoreId, SimRng};
use ziv_core::{Access, CacheHierarchy, HierarchyConfig, LlcMode};

fn tiny(cores: usize) -> SystemConfig {
    SystemConfig {
        cores,
        l1i: CacheGeometry::new(2, 2),
        l1d: CacheGeometry::new(2, 2),
        l1_latency: 0,
        l2: CacheGeometry::new(4, 2),
        l2_latency: 4,
        llc: LlcConfig::from_total_capacity(64 * 64, 4, 2),
        dir_ratio: DirRatio::X2,
        dir_base_ways: 8,
        noc: NocParams::table1(),
        dram: DramParams::ddr3_2133(),
        base_cpi: 0.25,
        scale_denominator: 1,
    }
}

fn stress(mode: LlcMode, cores: usize, accesses: u64, seed: u64, writes: bool) -> CacheHierarchy {
    let cfg = HierarchyConfig::new(tiny(cores)).with_mode(mode);
    let mut h = CacheHierarchy::new(&cfg);
    let mut rng = SimRng::seed_from_u64(seed);
    let mut now = 0;
    for seq in 0..accesses {
        let core = CoreId::new(rng.below_usize(cores));
        let line = rng.below(400);
        let a = if writes && rng.chance(0.2) {
            Access::write(core, Addr::new(line * 64), 0x400 + line % 8)
        } else {
            Access::read(core, Addr::new(line * 64), 0x400 + line % 8)
        };
        now += 1 + h.access(&a, now, seq);
    }
    h
}

#[test]
fn tlh_sends_hints_and_holds_invariants() {
    let h = stress(LlcMode::Tlh { hint_one_in: 4 }, 2, 20_000, 3, true);
    assert!(h.metrics().tlh_hints > 0, "hints must flow");
    h.verify_invariants().unwrap();
}

#[test]
fn tlh_protects_private_hot_blocks_better_than_baseline() {
    // A hot private set + conflicting stream: TLH refreshes the hot
    // blocks' LLC recency, so they suffer fewer inclusion victims.
    let run = |mode: LlcMode| {
        let cfg = HierarchyConfig::new(tiny(2)).with_mode(mode);
        let mut h = CacheHierarchy::new(&cfg);
        let mut now = 0;
        let mut seq = 0;
        let go = |h: &mut CacheHierarchy, core: usize, line: u64, now: &mut u64, seq: &mut u64| {
            let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400 + line % 8);
            *now += 1 + h.access(&a, *now, *seq);
            *seq += 1;
        };
        for i in 0..8_000u64 {
            go(&mut h, 0, i % 4, &mut now, &mut seq); // hot private lines 0..4
            go(&mut h, 1, 8 + i % 512, &mut now, &mut seq); // conflicting stream
        }
        h.metrics().inclusion_victims
    };
    let baseline = run(LlcMode::Inclusive);
    let tlh = run(LlcMode::Tlh { hint_one_in: 2 });
    assert!(tlh <= baseline, "TLH {tlh} vs baseline {baseline}");
}

#[test]
fn eci_performs_early_invalidations() {
    let h = stress(LlcMode::Eci, 2, 20_000, 5, false);
    assert!(h.metrics().eci_early_invalidations > 0);
    // ECI's early invalidations are inclusion victims by definition.
    assert!(h.metrics().inclusion_victims >= h.metrics().eci_early_invalidations);
    h.verify_invariants().unwrap();
}

#[test]
fn ric_skips_back_invalidation_for_read_only_blocks() {
    let read_only = stress(LlcMode::Ric, 2, 20_000, 7, false);
    assert!(
        read_only.metrics().ric_relaxations > 0,
        "read-only evictions relax"
    );
    assert_eq!(
        read_only.metrics().inclusion_victims,
        0,
        "an all-read workload has only read-only blocks"
    );
    read_only.verify_invariants().unwrap();
}

#[test]
fn ric_still_victimizes_written_blocks() {
    let h = stress(LlcMode::Ric, 2, 30_000, 9, true);
    assert!(h.metrics().ric_relaxations > 0);
    assert!(
        h.metrics().inclusion_victims > 0,
        "written blocks must still be back-invalidated (the paper's RIC limitation)"
    );
    h.verify_invariants().unwrap();
}

#[test]
fn ric_relaxed_blocks_are_reachable_after_llc_eviction() {
    // The fourth case under RIC: a read-only block's private copy
    // outlives its LLC copy; another core's access must be served via
    // the directory without panicking, and refill the LLC.
    let cfg = HierarchyConfig::new(tiny(2)).with_mode(LlcMode::Ric);
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0;
    let mut seq = 0;
    let go = |h: &mut CacheHierarchy, core: usize, line: u64, now: &mut u64, seq: &mut u64| {
        let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400);
        *now += 1 + h.access(&a, *now, *seq);
        *seq += 1;
    };
    go(&mut h, 0, 8, &mut now, &mut seq); // read-only block B
                                          // Keep B hot privately while evicting its LLC copy.
    for i in 2..20u64 {
        go(&mut h, 0, i * 8, &mut now, &mut seq);
        go(&mut h, 0, 8, &mut now, &mut seq);
    }
    // Core 1 reads B; regardless of whether B's LLC copy survived, the
    // access must complete and invariants must hold.
    go(&mut h, 1, 8, &mut now, &mut seq);
    h.verify_invariants().unwrap();
}

#[test]
fn way_partitioning_eliminates_cross_core_inclusion_victims() {
    // Two cores with disjoint hot sets conflicting in the LLC: under
    // partitioning, each core can only victimize its own ways, so any
    // inclusion victim a core suffers was caused by itself.
    let cfg = HierarchyConfig::new(tiny(2)).with_mode(LlcMode::WayPartitioned);
    let mut h = CacheHierarchy::new(&cfg);
    let mut now = 0;
    let mut seq = 0;
    let go = |h: &mut CacheHierarchy, core: usize, line: u64, now: &mut u64, seq: &mut u64| {
        let a = Access::read(CoreId::new(core), Addr::new(line * 64), 0x400);
        *now += 1 + h.access(&a, *now, *seq);
        *seq += 1;
    };
    // Core 0 keeps a small hot set; core 1 floods the same LLC sets.
    for i in 0..8_000u64 {
        go(&mut h, 0, i % 4, &mut now, &mut seq);
        go(&mut h, 1, (1 << 20) + i % 512, &mut now, &mut seq);
    }
    h.verify_invariants().unwrap();
    // Core 0's private-resident blocks cannot be victimized by core 1's
    // flood: core 0 suffers no inclusion victims.
    assert_eq!(
        h.metrics().per_core[0].inclusion_victims_suffered,
        0,
        "partitioning must isolate core 0 from core 1's evictions"
    );
}

#[test]
fn all_new_modes_survive_shared_write_stress() {
    for mode in [
        LlcMode::Tlh { hint_one_in: 8 },
        LlcMode::Eci,
        LlcMode::Ric,
        LlcMode::WayPartitioned,
    ] {
        let h = stress(mode, 3, 15_000, 11, true);
        h.verify_invariants()
            .unwrap_or_else(|e| panic!("{} violated invariants: {e}", mode.label()));
    }
}
