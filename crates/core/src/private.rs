//! The per-core private cache hierarchy: L1 instruction, L1 data, and a
//! unified private L2, kept **non-inclusive** among themselves (the
//! paper's footnote 3). The hierarchy emits a dataless *eviction notice*
//! (or a writeback, when dirty) exactly when a block leaves the core's
//! last private copy — the protocol that keeps the sparse directory
//! up-to-date (Section III-A).

use std::collections::HashMap;
use ziv_cache::SetAssocArray;
use ziv_char::L2BlockMeta;
use ziv_common::{CacheGeometry, CoreId, LineAddr};
use ziv_replacement::{AccessCtx, Lru, ReplacementPolicy};

/// Result of a private-hierarchy lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrivLookup {
    /// Hit in the L1 (instruction or data).
    L1Hit,
    /// Miss in L1, hit in the private L2.
    L2Hit,
    /// Miss in both; the shared LLC must be consulted.
    Miss,
}

/// A block has left the core's private hierarchy entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictionNotice {
    /// The departing block.
    pub line: LineAddr,
    /// Whether the departing copy is dirty (notice becomes a writeback).
    pub dirty: bool,
    /// CHAR metadata accumulated while the block lived in the L2.
    pub meta: L2BlockMeta,
}

#[derive(Debug, Clone, Copy, Default)]
struct L1State {
    dirty: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct L2State {
    dirty: bool,
    meta: L2BlockMeta,
}

#[derive(Debug)]
struct Level<S> {
    array: SetAssocArray<S>,
    lru: Lru,
    geom: CacheGeometry,
}

impl<S: Default + Clone> Level<S> {
    fn new(geom: CacheGeometry) -> Self {
        Level {
            array: SetAssocArray::new(geom),
            lru: Lru::new(geom),
            geom,
        }
    }

    fn lookup(&self, line: LineAddr) -> Option<u8> {
        self.array
            .lookup(self.geom.set_of(line), self.geom.tag_of(line))
    }

    fn touch(&mut self, line: LineAddr, way: u8) {
        let ctx = AccessCtx::demand(line, 0, CoreId::new(0), 0, 0);
        self.lru.on_hit(self.geom.set_of(line), way, &ctx);
    }

    /// Fills `line`, evicting if needed; returns `(evicted_line, state)`.
    fn fill(&mut self, line: LineAddr, state: S) -> Option<(LineAddr, S)> {
        let set = self.geom.set_of(line);
        let ctx = AccessCtx::demand(line, 0, CoreId::new(0), 0, 0);
        let way = match self.array.invalid_way(set) {
            Some(w) => w,
            None => {
                let w = self.lru.victim(set, &ctx);
                self.lru.on_evict(set, w);
                w
            }
        };
        let old = self.array.fill(set, way, self.geom.tag_of(line), state);
        self.lru.on_fill(set, way, &ctx);
        old.map(|(tag, s)| (self.geom.line_of(tag, set), s))
    }

    fn invalidate(&mut self, line: LineAddr) -> Option<S> {
        let set = self.geom.set_of(line);
        let way = self.array.lookup(set, self.geom.tag_of(line))?;
        self.lru.on_evict(set, way);
        self.array.invalidate(set, way).map(|(_, s)| s)
    }

    fn state_mut(&mut self, line: LineAddr) -> Option<&mut S> {
        let set = self.geom.set_of(line);
        let way = self.array.lookup(set, self.geom.tag_of(line))?;
        Some(self.array.state_mut(set, way))
    }

    fn occupancy(&self) -> usize {
        self.array.total_valid()
    }
}

/// One core's private L1I + L1D + L2.
#[derive(Debug)]
pub struct PrivateHierarchy {
    l1i: Level<L1State>,
    l1d: Level<L1State>,
    l2: Level<L2State>,
    /// CHAR metadata of blocks evicted from the L2 while still held in an
    /// L1 (the notice is deferred until the L1 copy leaves; the metadata
    /// must survive until then).
    deferred_meta: HashMap<LineAddr, L2BlockMeta>,
}

impl PrivateHierarchy {
    /// Builds the hierarchy from the system configuration's geometries.
    pub fn new(l1i: CacheGeometry, l1d: CacheGeometry, l2: CacheGeometry) -> Self {
        PrivateHierarchy {
            l1i: Level::new(l1i),
            l1d: Level::new(l1d),
            l2: Level::new(l2),
            deferred_meta: HashMap::new(),
        }
    }

    /// Whether the core holds `line` in any private cache — the
    /// presence the sparse directory tracks.
    pub fn contains(&self, line: LineAddr) -> bool {
        self.l1d.lookup(line).is_some()
            || self.l2.lookup(line).is_some()
            || self.l1i.lookup(line).is_some()
    }

    /// Whether the core holds a dirty copy of `line`.
    pub fn is_dirty(&self, line: LineAddr) -> bool {
        let in_l1 = self
            .l1d
            .lookup(line)
            .map(|w| self.l1d.array.state(self.l1d.geom.set_of(line), w).dirty);
        let in_l2 = self
            .l2
            .lookup(line)
            .map(|w| self.l2.array.state(self.l2.geom.set_of(line), w).dirty);
        in_l1.unwrap_or(false) || in_l2.unwrap_or(false)
    }

    /// Clears dirty state (the core supplied data and was downgraded).
    pub fn clean(&mut self, line: LineAddr) {
        if let Some(s) = self.l1d.state_mut(line) {
            s.dirty = false;
        }
        if let Some(s) = self.l2.state_mut(line) {
            s.dirty = false;
        }
    }

    /// Performs a demand access. Fills the L1 on an L2 hit. Any blocks
    /// leaving the hierarchy are appended to `notices`.
    pub fn access(
        &mut self,
        line: LineAddr,
        is_instr: bool,
        is_write: bool,
        notices: &mut Vec<EvictionNotice>,
    ) -> PrivLookup {
        debug_assert!(!(is_instr && is_write), "instruction fetches cannot write");
        let l1 = if is_instr {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some(way) = l1.lookup(line) {
            l1.touch(line, way);
            if is_write {
                l1.array.state_mut(l1.geom.set_of(line), way).dirty = true;
            }
            return PrivLookup::L1Hit;
        }
        if let Some(way) = self.l2.lookup(line) {
            self.l2.touch(line, way);
            let set = self.l2.geom.set_of(line);
            self.l2.array.state_mut(set, way).meta.on_reuse();
            self.fill_l1(line, is_instr, is_write, notices);
            return PrivLookup::L2Hit;
        }
        PrivLookup::Miss
    }

    /// Fills `line` after it was fetched from the LLC or memory.
    /// `from_llc_hit` feeds CHAR's fill-source attribute.
    pub fn fill_from_shared(
        &mut self,
        line: LineAddr,
        is_instr: bool,
        is_write: bool,
        from_llc_hit: bool,
        notices: &mut Vec<EvictionNotice>,
    ) {
        let state = L2State {
            dirty: false,
            meta: L2BlockMeta::filled(from_llc_hit),
        };
        if let Some((ev_line, ev_state)) = self.l2.fill(line, state) {
            self.handle_l2_eviction(ev_line, ev_state, notices);
        }
        self.fill_l1(line, is_instr, is_write, notices);
    }

    /// Fills `line` into the L2 **only** (a prefetch: the L1 is not
    /// polluted). CHAR metadata records the prefetch attribute.
    pub fn prefetch_fill(
        &mut self,
        line: LineAddr,
        from_llc_hit: bool,
        notices: &mut Vec<EvictionNotice>,
    ) {
        if self.contains(line) {
            return;
        }
        let state = L2State {
            dirty: false,
            meta: L2BlockMeta::prefetched(from_llc_hit),
        };
        if let Some((ev_line, ev_state)) = self.l2.fill(line, state) {
            self.handle_l2_eviction(ev_line, ev_state, notices);
        }
    }

    fn fill_l1(
        &mut self,
        line: LineAddr,
        is_instr: bool,
        is_write: bool,
        notices: &mut Vec<EvictionNotice>,
    ) {
        let l1 = if is_instr {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        if let Some((ev_line, ev_state)) = l1.fill(line, L1State { dirty: is_write }) {
            self.handle_l1_eviction(ev_line, ev_state, notices);
        }
    }

    fn handle_l2_eviction(
        &mut self,
        line: LineAddr,
        state: L2State,
        notices: &mut Vec<EvictionNotice>,
    ) {
        let in_l1d = self.l1d.lookup(line).is_some();
        let in_l1i = self.l1i.lookup(line).is_some();
        if in_l1d || in_l1i {
            // The block survives in an L1 (non-inclusive L1/L2): defer the
            // notice and keep the freshest dirty state with the L1 copy.
            if state.dirty && in_l1d {
                if let Some(s) = self.l1d.state_mut(line) {
                    s.dirty = true;
                }
            }
            self.deferred_meta.insert(line, state.meta);
            return;
        }
        notices.push(EvictionNotice {
            line,
            dirty: state.dirty,
            meta: state.meta,
        });
    }

    fn handle_l1_eviction(
        &mut self,
        line: LineAddr,
        state: L1State,
        notices: &mut Vec<EvictionNotice>,
    ) {
        if let Some(s) = self.l2.state_mut(line) {
            // Still in the L2: merge dirty data down, no notice.
            s.dirty |= state.dirty;
            return;
        }
        if self.l1d.lookup(line).is_some() || self.l1i.lookup(line).is_some() {
            // Rare: the same line in the other L1; presence persists.
            return;
        }
        let meta = self.deferred_meta.remove(&line).unwrap_or_default();
        notices.push(EvictionNotice {
            line,
            dirty: state.dirty,
            meta,
        });
    }

    /// Forcefully invalidates every private copy of `line` (a
    /// back-invalidation or coherence invalidation). Returns
    /// `Some(dirty)` if any copy existed.
    pub fn invalidate(&mut self, line: LineAddr) -> Option<bool> {
        let a = self.l1i.invalidate(line).map(|s| s.dirty);
        let b = self.l1d.invalidate(line).map(|s| s.dirty);
        let c = self.l2.invalidate(line).map(|s| s.dirty);
        self.deferred_meta.remove(&line);
        match (a, b, c) {
            (None, None, None) => None,
            _ => Some(a.unwrap_or(false) | b.unwrap_or(false) | c.unwrap_or(false)),
        }
    }

    /// Valid blocks across the three arrays (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.l1i.occupancy() + self.l1d.occupancy() + self.l2.occupancy()
    }

    /// Iterates over every line currently present in the hierarchy
    /// (tests and inclusion-invariant checks; O(capacity)).
    pub fn resident_lines(&self) -> Vec<LineAddr> {
        let mut lines = Vec::new();
        for level_lines in [
            collect_lines(&self.l1i.array, self.l1i.geom),
            collect_lines(&self.l1d.array, self.l1d.geom),
            collect_lines_l2(&self.l2.array, self.l2.geom),
        ] {
            lines.extend(level_lines);
        }
        lines.sort_unstable();
        lines.dedup();
        lines
    }
}

fn collect_lines(array: &SetAssocArray<L1State>, geom: CacheGeometry) -> Vec<LineAddr> {
    let mut out = Vec::new();
    for set in 0..geom.sets {
        for w in array.iter_set(set) {
            out.push(geom.line_of(w.tag, set));
        }
    }
    out
}

fn collect_lines_l2(array: &SetAssocArray<L2State>, geom: CacheGeometry) -> Vec<LineAddr> {
    let mut out = Vec::new();
    for set in 0..geom.sets {
        for w in array.iter_set(set) {
            out.push(geom.line_of(w.tag, set));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> PrivateHierarchy {
        // Tiny caches: 2-set 2-way L1s, 4-set 2-way L2.
        PrivateHierarchy::new(
            CacheGeometry::new(2, 2),
            CacheGeometry::new(2, 2),
            CacheGeometry::new(4, 2),
        )
    }

    fn line(n: u64) -> LineAddr {
        LineAddr::new(n)
    }

    #[test]
    fn miss_then_fill_then_hits() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::Miss);
        h.fill_from_shared(line(1), false, false, true, &mut n);
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::L1Hit);
        assert!(h.contains(line(1)));
        assert!(n.is_empty());
    }

    #[test]
    fn l2_hit_refills_l1() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(1), false, false, false, &mut n);
        // Evict line 1 from L1D (2 sets x 2 ways; lines 1,3,5 share set 1).
        for l in [3u64, 5] {
            h.fill_from_shared(line(l), false, false, false, &mut n);
        }
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::L2Hit);
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::L1Hit);
    }

    #[test]
    fn notice_sent_when_block_leaves_entirely() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        // L2 set 1 holds lines {1, 5}; L1 set 1 holds {1, 3? no: 3 maps
        // to L1 set 1 too}. Fill 1, 5, 9: all map to L2 set 1.
        h.fill_from_shared(line(1), false, false, false, &mut n);
        h.fill_from_shared(line(5), false, false, false, &mut n);
        h.fill_from_shared(line(9), false, false, false, &mut n);
        // L2 evicted line 1; L1D set 1 saw fills 1,5,9 -> line 1 evicted
        // there too. Eventually a notice for line 1 must exist.
        assert!(n.iter().any(|e| e.line == line(1)), "{n:?}");
        assert!(!h.contains(line(1)));
    }

    #[test]
    fn deferred_notice_when_l2_evicts_but_l1_holds() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        // L1D: 2 sets x 2 ways. Lines 1 and 9 land in L1 set 1 and stay.
        h.fill_from_shared(line(1), false, false, false, &mut n);
        h.fill_from_shared(line(9), false, false, false, &mut n);
        // Push line 1 out of L2 (L2 set 1: {1,5,9,13...}).
        h.fill_from_shared(line(5), false, false, false, &mut n);
        h.fill_from_shared(line(13), false, false, false, &mut n);
        // Line 1 may leave L2, but if it survives in L1D there is no
        // notice yet and contains() stays true.
        if h.contains(line(1)) {
            assert!(!n.iter().any(|e| e.line == line(1)));
        }
    }

    #[test]
    fn write_makes_block_dirty_and_notice_carries_it() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(1), false, true, false, &mut n);
        assert!(h.is_dirty(line(1)));
        let inv = h.invalidate(line(1));
        assert_eq!(inv, Some(true));
        assert!(!h.contains(line(1)));
    }

    #[test]
    fn invalidate_absent_line_is_none() {
        let mut h = hierarchy();
        assert_eq!(h.invalidate(line(7)), None);
    }

    #[test]
    fn clean_clears_dirty() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(1), false, true, false, &mut n);
        h.clean(line(1));
        assert!(!h.is_dirty(line(1)));
    }

    #[test]
    fn instruction_fetches_use_l1i() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(2), true, false, false, &mut n);
        assert_eq!(h.access(line(2), true, false, &mut n), PrivLookup::L1Hit);
        // A data access to the same line misses L1D but hits L2.
        assert_eq!(h.access(line(2), false, false, &mut n), PrivLookup::L2Hit);
    }

    #[test]
    fn char_meta_counts_l2_reuses() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(1), false, false, true, &mut n);
        // Evict from L1D, then L2-hit twice.
        for l in [3u64, 5] {
            h.fill_from_shared(line(l), false, false, false, &mut n);
        }
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::L2Hit);
        for l in [3u64, 5] {
            let _ = h.access(line(l), false, false, &mut n);
        }
        assert_eq!(h.access(line(1), false, false, &mut n), PrivLookup::L2Hit);
        // Force line 1 fully out and inspect its notice metadata.
        n.clear();
        h.invalidate(line(3));
        h.invalidate(line(5));
        for l in [5u64, 9, 13, 17] {
            h.fill_from_shared(line(l), false, false, false, &mut n);
        }
        let notice = n.iter().find(|e| e.line == line(1));
        if let Some(e) = notice {
            assert!(e.meta.filled_from_llc_hit);
            assert!(e.meta.reuses >= 2, "L2 reuses recorded: {:?}", e.meta);
        } else {
            // Line 1 must be gone by now.
            assert!(!h.contains(line(1)), "line 1 neither resident nor noticed");
        }
    }

    #[test]
    fn resident_lines_reports_presence() {
        let mut h = hierarchy();
        let mut n = Vec::new();
        h.fill_from_shared(line(1), false, false, false, &mut n);
        h.fill_from_shared(line(2), true, false, false, &mut n);
        let lines = h.resident_lines();
        assert!(lines.contains(&line(1)));
        assert!(lines.contains(&line(2)));
        assert!(h.occupancy() >= 2);
    }
}
