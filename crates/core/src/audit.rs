//! Runtime invariant auditing and deliberate fault injection.
//!
//! The whole point of ZIV is a structural guarantee — an inclusive LLC
//! that never back-invalidates a live core-cache block — so the model
//! proves its own invariants as it runs instead of trusting scattered
//! `debug_assert!`s. [`Auditor`] walks the hierarchy at a configurable
//! cadence (`--audit off|sampled|every-access`) and checks:
//!
//! - **Inclusion**: under a strictly inclusive mode, every valid private
//!   L1/L2 line has a home LLC copy or a tracked `Relocated` copy.
//! - **Directory ↔ LLC ↔ private consistency**: sharer bitvectors match
//!   actual private contents in both directions, relocation pointers are
//!   never dangling (either direction), dirty owners are sharers, and
//!   `NotInPrC` hints agree with the directory.
//! - **The zero-inclusion-victim guarantee**: in ZIV mode an inclusion
//!   victim may exist only if the defensive relocation-set-exhaustion
//!   fallback fired (and was counted).
//! - **Metric conservation**: hits + misses = accesses, demand fills =
//!   LLC misses, LLC accesses = Σ per-core L2 misses, and per-core miss
//!   monotonicity.
//!
//! [`FaultInjection`] is the adversarial half: seeded, deterministic
//! model corruptions (a cleared sharer bit, a skipped back-invalidation,
//! a stalled core) used by mutation tests and campaign fault-isolation
//! tests to prove the auditor actually detects what it claims to.

use crate::hierarchy::CacheHierarchy;
use std::collections::HashMap;
use ziv_common::{AuditViolation, CoreId, ViolationKind};

/// How often the auditor walks the hierarchy during a run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditCadence {
    /// Never audit (the default; zero overhead beyond one branch per
    /// access).
    Off,
    /// Audit every `one_in` accesses.
    Sampled {
        /// Audit interval in accesses (≥ 1).
        one_in: u32,
    },
    /// Audit after every single access — the replay/debug cadence that
    /// pins a violation to the exact access that introduced it.
    EveryAccess,
}

impl AuditCadence {
    /// The interval `--audit sampled` uses when no explicit interval is
    /// given.
    pub const DEFAULT_SAMPLE_INTERVAL: u32 = 1024;

    /// Parses `off`, `sampled`, `sampled:N`, or `every-access`.
    ///
    /// # Errors
    ///
    /// Returns a message describing the accepted forms.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "off" => Ok(AuditCadence::Off),
            "sampled" => Ok(AuditCadence::Sampled {
                one_in: Self::DEFAULT_SAMPLE_INTERVAL,
            }),
            "every-access" => Ok(AuditCadence::EveryAccess),
            other => {
                if let Some(n) = other.strip_prefix("sampled:") {
                    let one_in: u32 = n
                        .parse()
                        .map_err(|e| format!("bad sample interval '{n}': {e}"))?;
                    if one_in == 0 {
                        return Err("sample interval must be >= 1".into());
                    }
                    return Ok(AuditCadence::Sampled { one_in });
                }
                Err(format!(
                    "unknown audit cadence '{other}' \
                     (expected off, sampled, sampled:N, or every-access)"
                ))
            }
        }
    }

    /// Stable string form (inverse of [`AuditCadence::parse`]).
    pub fn label(&self) -> String {
        match self {
            AuditCadence::Off => "off".into(),
            AuditCadence::Sampled { one_in } if *one_in == Self::DEFAULT_SAMPLE_INTERVAL => {
                "sampled".into()
            }
            AuditCadence::Sampled { one_in } => format!("sampled:{one_in}"),
            AuditCadence::EveryAccess => "every-access".into(),
        }
    }

    /// Whether this cadence ever audits.
    pub fn is_enabled(&self) -> bool {
        !matches!(self, AuditCadence::Off)
    }
}

/// Cadence state for audit walks during a run.
///
/// The hot-path contract: [`Auditor::due`] is a single match (and for
/// `Off`, a single branch returning `false`), so `--audit off` costs
/// nothing measurable.
#[derive(Debug, Clone)]
pub struct Auditor {
    cadence: AuditCadence,
    countdown: u32,
}

impl Auditor {
    /// Creates an auditor with the given cadence.
    pub fn new(cadence: AuditCadence) -> Self {
        Auditor {
            cadence,
            countdown: 0,
        }
    }

    /// The configured cadence.
    pub fn cadence(&self) -> AuditCadence {
        self.cadence
    }

    /// Advances the cadence clock by one access and reports whether an
    /// audit walk is due now.
    #[inline]
    pub fn due(&mut self) -> bool {
        match self.cadence {
            AuditCadence::Off => false,
            AuditCadence::EveryAccess => true,
            AuditCadence::Sampled { one_in } => {
                self.countdown += 1;
                if self.countdown >= one_in {
                    self.countdown = 0;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Full audit walk: structural invariants plus metric conservation.
    /// `access_index` is the 0-based index of the access that just
    /// completed (recorded in any violation for deterministic replay).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check(h: &CacheHierarchy, access_index: u64) -> Result<(), AuditViolation> {
        Self::check_structure(h, access_index)?;
        Self::check_conservation(h, access_index)
    }

    /// Structural invariants only: inclusion, directory ↔ LLC ↔ private
    /// consistency, and the ZIV guarantee. Valid at any point between
    /// accesses, including after the driver's end-of-run statistics
    /// snapshotting (which breaks the *conservation* laws on purpose).
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_structure(h: &CacheHierarchy, access_index: u64) -> Result<(), AuditViolation> {
        let mode = h.mode();
        let dir = h.directory();
        let llc = h.llc();
        let strict_inclusive = mode.is_inclusive() && !mode.allows_llc_miss_under_dir_hit();
        let violation = |kind, line, detail: String| AuditViolation {
            kind,
            access_index,
            line: Some(line),
            detail,
        };

        // Private → directory (and the inclusion property itself).
        for (ci, core) in h.private_cores().iter().enumerate() {
            for line in core.resident_lines() {
                let Some(entry) = dir.probe(line) else {
                    return Err(violation(
                        ViolationKind::UntrackedPrivateLine,
                        line,
                        format!("core {ci} caches the block but the directory does not track it"),
                    ));
                };
                if !entry.sharers.contains(CoreId::new(ci)) {
                    return Err(violation(
                        ViolationKind::MissingSharerBit,
                        line,
                        format!("core {ci} caches the block but its sharer bit is clear"),
                    ));
                }
                if strict_inclusive && llc.probe(line).is_none() && entry.relocated.is_none() {
                    return Err(violation(
                        ViolationKind::InclusionHole,
                        line,
                        format!(
                            "core {ci} caches the block under {} but it has neither a home \
                             LLC copy nor a relocated copy",
                            mode.label()
                        ),
                    ));
                }
            }
        }

        // One pass over LLC residency, reused for both pointer directions.
        let resident: HashMap<_, _> = llc.resident_blocks().into_iter().collect();

        // Directory → private and directory → LLC (relocation pointers).
        for (line, entry) in dir.iter_entries() {
            for s in entry.sharers.iter() {
                if !h.private_cores()[s.index()].contains(line) {
                    return Err(violation(
                        ViolationKind::StaleSharerBit,
                        line,
                        format!(
                            "directory lists core {} as a sharer but its private caches \
                             do not hold the block",
                            s.index()
                        ),
                    ));
                }
            }
            if let Some(owner) = entry.dirty_owner {
                if !entry.sharers.contains(owner) {
                    return Err(violation(
                        ViolationKind::OwnerNotSharer,
                        line,
                        format!("dirty owner core {} is not a sharer", owner.index()),
                    ));
                }
            }
            if let Some(loc) = entry.relocated {
                match resident.get(&loc) {
                    Some(st) if st.relocated && st.line == line => {}
                    Some(st) => {
                        return Err(violation(
                            ViolationKind::DanglingRelocation,
                            line,
                            format!(
                                "directory relocation pointer lands on LLC block {} \
                                 (relocated={})",
                                st.line, st.relocated
                            ),
                        ));
                    }
                    None => {
                        return Err(violation(
                            ViolationKind::DanglingRelocation,
                            line,
                            "directory relocation pointer lands on an invalid LLC way".into(),
                        ));
                    }
                }
            }
        }

        // LLC → directory.
        for (loc, st) in &resident {
            if st.relocated && dir.relocated_location(st.line) != Some(*loc) {
                return Err(violation(
                    ViolationKind::DanglingRelocation,
                    st.line,
                    format!(
                        "LLC block is in relocated state but the directory points to {:?}",
                        dir.relocated_location(st.line)
                    ),
                ));
            }
            if st.not_in_prc && dir.is_privately_cached(st.line) {
                return Err(violation(
                    ViolationKind::NotInPrcMismatch,
                    st.line,
                    "LLC block is marked NotInPrC but the directory says it is privately \
                     cached"
                        .into(),
                ));
            }
        }

        // The zero-inclusion-victim guarantee (Section III): ZIV may only
        // create inclusion victims through the counted defensive fallback.
        let m = h.metrics();
        if mode.is_ziv() && m.inclusion_victims > 0 && m.ziv_guarantee_fallbacks == 0 {
            return Err(AuditViolation {
                kind: ViolationKind::ZivGuarantee,
                access_index,
                line: None,
                detail: format!(
                    "{} inclusion victims recorded in ZIV mode with no guarantee fallback",
                    m.inclusion_victims
                ),
            });
        }
        Ok(())
    }

    /// Metric conservation laws. Only valid *during* a run: the driver's
    /// end-of-run per-core snapshot restore deliberately rewinds per-core
    /// counters to each core's first trace completion, after which the
    /// global/per-core sums no longer balance.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_conservation(h: &CacheHierarchy, access_index: u64) -> Result<(), AuditViolation> {
        let m = h.metrics();
        let fail = |detail: String| {
            Err(AuditViolation {
                kind: ViolationKind::MetricConservation,
                access_index,
                line: None,
                detail,
            })
        };
        if m.llc_hits + m.llc_misses != m.llc_accesses {
            return fail(format!(
                "llc_hits ({}) + llc_misses ({}) != llc_accesses ({})",
                m.llc_hits, m.llc_misses, m.llc_accesses
            ));
        }
        if m.llc_demand_fills != m.llc_misses {
            return fail(format!(
                "llc_demand_fills ({}) != llc_misses ({}) — every demand miss must fill",
                m.llc_demand_fills, m.llc_misses
            ));
        }
        let l2_misses: u64 = m.per_core.iter().map(|c| c.l2_misses).sum();
        if l2_misses != m.llc_accesses {
            return fail(format!(
                "sum of per-core l2_misses ({l2_misses}) != llc_accesses ({})",
                m.llc_accesses
            ));
        }
        for (ci, c) in m.per_core.iter().enumerate() {
            if c.llc_misses > c.l2_misses || c.l2_misses > c.l1_misses || c.l1_misses > c.accesses {
                return fail(format!(
                    "core {ci} miss counters are not monotone: accesses {} >= l1_misses {} \
                     >= l2_misses {} >= llc_misses {} must hold",
                    c.accesses, c.l1_misses, c.l2_misses, c.llc_misses
                ));
            }
        }
        Ok(())
    }
}

/// A deliberate, deterministic model corruption, armed from a specific
/// access index. Used by mutation tests to prove the auditor detects
/// real damage, and by campaign tests to exercise per-cell fault
/// isolation end to end.
///
/// Faults are part of [`crate::HierarchyConfig`] (and of `RunSpec`, where
/// they participate in the cell digest), so an injected failure replays
/// bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultInjection {
    /// At access `at_access`, clear one live sharer bit in the sparse
    /// directory (preferring a line owned by a core other than the one
    /// issuing the access, so the very next audit sees the mismatch).
    /// Detected as [`ViolationKind::MissingSharerBit`].
    CorruptDirectory {
        /// 0-based access index at which the corruption is applied (or
        /// as soon after as a victim line exists).
        at_access: u64,
    },
    /// From access `at_access` on, skip the next inclusive-LLC
    /// back-invalidation: the LLC copy leaves but the private copies and
    /// directory entry survive. Detected as
    /// [`ViolationKind::InclusionHole`].
    SkipBackInvalidation {
        /// 0-based access index from which the next back-invalidation is
        /// skipped.
        at_access: u64,
    },
    /// From access `at_access` on, the issuing core stalls: every access
    /// returns an astronomical latency, so the core's clock blows
    /// through any sane cycle budget — the watchdog scenario.
    StallCore {
        /// 0-based access index from which accesses stall.
        at_access: u64,
    },
    /// At access `at_access`, the hierarchy wedges: the access never
    /// completes and the simulation makes no further progress (the
    /// `stall-core` loop variant). Unlike [`FaultInjection::StallCore`]
    /// — which burns simulated cycles and trips the in-loop cycle
    /// budget — a hang burns *wall-clock* time and can only be stopped
    /// by the supervisor's cancellation token.
    HangCore {
        /// 0-based access index at which the hang begins.
        at_access: u64,
    },
    /// At access `at_access`, the model panics (a simulated internal
    /// compiler-error-class bug). The supervisor's `catch_unwind`
    /// containment converts it into one ledgered
    /// `SimError::Internal` failure.
    PanicCore {
        /// 0-based access index at which the panic fires.
        at_access: u64,
    },
}

impl FaultInjection {
    /// Stable kind tag for failure-record serialization.
    pub fn kind_str(&self) -> &'static str {
        match self {
            FaultInjection::CorruptDirectory { .. } => "corrupt-directory",
            FaultInjection::SkipBackInvalidation { .. } => "skip-back-invalidation",
            FaultInjection::StallCore { .. } => "stall-core",
            FaultInjection::HangCore { .. } => "hang-core",
            FaultInjection::PanicCore { .. } => "panic-core",
        }
    }

    /// The access index the fault arms at.
    pub fn at_access(&self) -> u64 {
        match self {
            FaultInjection::CorruptDirectory { at_access }
            | FaultInjection::SkipBackInvalidation { at_access }
            | FaultInjection::StallCore { at_access }
            | FaultInjection::HangCore { at_access }
            | FaultInjection::PanicCore { at_access } => *at_access,
        }
    }

    /// Rebuilds a fault from its `(kind_str, at_access)` serialized form.
    pub fn from_parts(kind: &str, at_access: u64) -> Option<Self> {
        Some(match kind {
            "corrupt-directory" => FaultInjection::CorruptDirectory { at_access },
            "skip-back-invalidation" => FaultInjection::SkipBackInvalidation { at_access },
            "stall-core" => FaultInjection::StallCore { at_access },
            "hang-core" => FaultInjection::HangCore { at_access },
            "panic-core" => FaultInjection::PanicCore { at_access },
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_parse_round_trips() {
        for s in ["off", "sampled", "sampled:64", "every-access"] {
            let c = AuditCadence::parse(s).unwrap();
            assert_eq!(c.label(), s);
            assert_eq!(AuditCadence::parse(&c.label()).unwrap(), c);
        }
        assert!(AuditCadence::parse("sometimes").is_err());
        assert!(AuditCadence::parse("sampled:0").is_err());
        assert!(!AuditCadence::Off.is_enabled());
        assert!(AuditCadence::EveryAccess.is_enabled());
    }

    #[test]
    fn due_honors_cadence() {
        let mut off = Auditor::new(AuditCadence::Off);
        assert!((0..100).all(|_| !off.due()));
        let mut every = Auditor::new(AuditCadence::EveryAccess);
        assert!((0..100).all(|_| every.due()));
        let mut sampled = Auditor::new(AuditCadence::Sampled { one_in: 4 });
        let fired = (0..100).filter(|_| sampled.due()).count();
        assert_eq!(fired, 25);
    }

    #[test]
    fn fault_kinds_round_trip() {
        let faults = [
            FaultInjection::CorruptDirectory { at_access: 5 },
            FaultInjection::SkipBackInvalidation { at_access: 6 },
            FaultInjection::StallCore { at_access: 7 },
            FaultInjection::HangCore { at_access: 8 },
            FaultInjection::PanicCore { at_access: 9 },
        ];
        for f in faults {
            assert_eq!(
                FaultInjection::from_parts(f.kind_str(), f.at_access()),
                Some(f)
            );
        }
        assert_eq!(FaultInjection::from_parts("nope", 0), None);
    }
}
