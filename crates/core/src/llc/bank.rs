//! One LLC bank: the tag/data array with ZIV block state, its
//! replacement policy, its property vectors, and its relocation FIFO.

use crate::llc::{GradedKind, ZivProperty};
use ziv_cache::{PropertyVector, RelocationFifo, SetAssocArray};
use ziv_char::GroupId;
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::stats::Log2Histogram;
use ziv_common::{CacheGeometry, Cycle, LineAddr};
use ziv_replacement::{AccessCtx, ReplacementPolicy, RRPV_MAX};

/// Per-LLC-block state (Sections III-C and III-D): the `Relocated`,
/// `NotInPrC`, and `LikelyDead` state bits, the dirty bit, plus the
/// bookkeeping our simulator carries in place of raw tag bits (the full
/// line address, standing in for the paper's tag-encoded directory
/// pointer) and CHAR's recall-attribution group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LlcState {
    /// The line actually cached here. For a relocated block this is the
    /// block's original address — functionally what the paper recovers
    /// by storing the sparse-directory entry location in the (otherwise
    /// unused) tag of a relocated block (Section III-C3).
    pub line: LineAddr,
    /// Dirty bit.
    pub dirty: bool,
    /// The ZIV `Relocated` state: this block lives outside its home set
    /// and is reachable only through the sparse directory.
    pub relocated: bool,
    /// Set when no private cache holds a copy (Section III-D3).
    pub not_in_prc: bool,
    /// CHAR-inferred dead bit (Section III-D6).
    pub likely_dead: bool,
    /// `(core, group)` recorded at the last private eviction notice, for
    /// CHAR recall counting.
    pub evict_group: Option<(u16, GroupId)>,
}

impl Default for LlcState {
    fn default() -> Self {
        LlcState {
            line: LineAddr::new(0),
            dirty: false,
            relocated: false,
            not_in_prc: false,
            likely_dead: false,
            evict_group: None,
        }
    }
}

/// A block evicted from the LLC by a fill or relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvictedBlock {
    /// The departing line.
    pub line: LineAddr,
    /// Whether the LLC copy was dirty (needs a memory writeback).
    pub dirty: bool,
    /// Whether the block was in the ZIV `Relocated` state.
    pub was_relocated: bool,
}

/// One LLC bank.
#[derive(Debug)]
pub struct LlcBank {
    /// Tag/state array.
    pub array: SetAssocArray<LlcState>,
    /// The bank's replacement policy (baseline LLC policy).
    pub policy: Box<dyn ReplacementPolicy>,
    /// `Invalid` property vector.
    pub pv_invalid: PropertyVector,
    /// `NotInPrC` property vector.
    pub pv_not_in_prc: PropertyVector,
    /// Graded property vector (`LRUNotInPrC` or `MaxRRPVNotInPrC`).
    pub pv_graded: PropertyVector,
    /// `LikelyDeadNotInPrC` property vector.
    pub pv_likely_dead: PropertyVector,
    /// The eight-entry relocation buffer (Section III-D1).
    pub fifo: RelocationFifo,
    /// Cycle of the last relocation in this bank (Fig 18 intervals).
    pub last_relocation: Option<Cycle>,
    /// Histogram of relocation intervals (log2 cycles) — Fig 18.
    pub relocation_intervals: Log2Histogram,
    graded_kind: GradedKind,
    rank_buf: Vec<WayIdx>,
}

impl LlcBank {
    /// Creates a bank with the given geometry, policy, and graded-PV
    /// flavor.
    pub fn new(
        geom: CacheGeometry,
        policy: Box<dyn ReplacementPolicy>,
        graded_kind: GradedKind,
    ) -> Self {
        LlcBank {
            array: SetAssocArray::new(geom),
            policy,
            pv_invalid: full_pv(geom.sets),
            pv_not_in_prc: PropertyVector::new(geom.sets),
            pv_graded: PropertyVector::new(geom.sets),
            pv_likely_dead: PropertyVector::new(geom.sets),
            fifo: RelocationFifo::new(),
            last_relocation: None,
            relocation_intervals: Log2Histogram::new(),
            graded_kind,
            rank_buf: Vec::new(),
        }
    }

    /// Recomputes every property bit of `set` from block and policy
    /// state. Called after any mutation of the set. O(ways).
    pub fn refresh_set(&mut self, set: SetIdx) {
        // One walk derives the Invalid, NotInPrC, and LikelyDeadNotInPrC
        // bits together (an invalid way exists iff fewer than `ways`
        // slots are valid) — this runs after every set mutation, so the
        // fused scan matters.
        let mut valid_ways = 0usize;
        let mut any_nip = false;
        let mut any_dead_nip = false;
        for w in self.array.iter_set(set) {
            valid_ways += 1;
            if !w.state.relocated && w.state.not_in_prc {
                any_nip = true;
                if w.state.likely_dead {
                    any_dead_nip = true;
                }
            }
        }
        self.pv_invalid
            .set(set, valid_ways < self.array.geometry().ways as usize);
        self.pv_not_in_prc.set(set, any_nip);
        self.pv_likely_dead.set(set, any_dead_nip);

        let graded = match self.graded_kind {
            GradedKind::LruPos => {
                // The block entering the LRU (first-ranked) position has
                // NotInPrC set (Section III-D4).
                let ctx = neutral_ctx();
                self.policy.rank(set, &ctx, &mut self.rank_buf);
                self.rank_buf.first().copied().is_some_and(|w| {
                    self.array.is_valid(set, w) && {
                        let s = self.array.state(set, w);
                        !s.relocated && s.not_in_prc
                    }
                })
            }
            GradedKind::MaxRrpv => {
                // The set has a cache-averse (RRPV = 7) block that is not
                // privately cached (Section III-D5).
                self.array.iter_set(set).any(|w| {
                    !w.state.relocated
                        && w.state.not_in_prc
                        && self.policy.rrpv(set, w.way) == Some(RRPV_MAX)
                })
            }
        };
        self.pv_graded.set(set, graded);
    }

    /// Whether `set` satisfies the property at `level` (used for the
    /// "check the original set first" rule of Sections III-D4..7).
    pub fn set_satisfies(&self, set: SetIdx, level: PropertyLevel) -> bool {
        match level {
            PropertyLevel::Invalid => self.pv_invalid.get(set),
            PropertyLevel::Graded => self.pv_graded.get(set),
            PropertyLevel::LikelyDead => self.pv_likely_dead.get(set),
            PropertyLevel::NotInPrC => self.pv_not_in_prc.get(set),
        }
    }

    /// The PV for `level`.
    pub fn pv_mut(&mut self, level: PropertyLevel) -> &mut PropertyVector {
        match level {
            PropertyLevel::Invalid => &mut self.pv_invalid,
            PropertyLevel::Graded => &mut self.pv_graded,
            PropertyLevel::LikelyDead => &mut self.pv_likely_dead,
            PropertyLevel::NotInPrC => &mut self.pv_not_in_prc,
        }
    }

    /// Selects the victim within a relocation set, following the
    /// property-specific priority of Section III-E: invalid first, then
    /// the property-ordered `NotInPrC` scans (the policy's rank order
    /// realizes "closest to LRU" / "as high an RRPV as possible").
    pub fn relocation_victim(&mut self, set: SetIdx, property: ZivProperty) -> Option<WayIdx> {
        if let Some(w) = self.array.invalid_way(set) {
            return Some(w);
        }
        let ctx = neutral_ctx();
        let mut order = std::mem::take(&mut self.rank_buf);
        self.policy.rank(set, &ctx, &mut order);
        let pick = |pred: &dyn Fn(&LlcState, WayIdx) -> bool, order: &[WayIdx]| {
            order
                .iter()
                .copied()
                .find(|&w| self.array.is_valid(set, w) && pred(self.array.state(set, w), w))
        };
        let nip = |s: &LlcState, _w: WayIdx| !s.relocated && s.not_in_prc;
        let dead_nip = |s: &LlcState, _w: WayIdx| !s.relocated && s.not_in_prc && s.likely_dead;
        let averse_nip = |s: &LlcState, w: WayIdx| {
            !s.relocated && s.not_in_prc && self.policy.rrpv(set, w) == Some(RRPV_MAX)
        };
        let found = match property {
            ZivProperty::NotInPrC | ZivProperty::LruNotInPrC | ZivProperty::MaxRrpvNotInPrC => {
                pick(&nip, &order)
            }
            ZivProperty::LikelyDead => pick(&dead_nip, &order).or_else(|| pick(&nip, &order)),
            ZivProperty::MaxRrpvLikelyDead => pick(&averse_nip, &order)
                .or_else(|| pick(&dead_nip, &order))
                .or_else(|| pick(&nip, &order)),
        };
        self.rank_buf = order;
        found
    }

    /// Records a relocation in this bank at `now` (Fig 18 statistics).
    pub fn record_relocation(&mut self, now: Cycle) {
        if let Some(prev) = self.last_relocation {
            self.relocation_intervals
                .record(now.saturating_sub(prev).max(1));
        }
        self.last_relocation = Some(now);
    }
}

/// The property-priority levels of the relocation-set search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PropertyLevel {
    /// An invalid way exists (always the highest priority).
    Invalid,
    /// The graded property (`LRUNotInPrC` / `MaxRRPVNotInPrC`).
    Graded,
    /// `LikelyDeadNotInPrC`.
    LikelyDead,
    /// Plain `NotInPrC` (always the last resort).
    NotInPrC,
}

/// Neutral policy context for rank queries outside a demand access.
pub(crate) fn neutral_ctx() -> AccessCtx {
    AccessCtx::demand(LineAddr::new(0), 0, ziv_common::CoreId::new(0), 0, u64::MAX)
}

/// A PV that starts with every bit set (all sets of an empty bank have
/// invalid ways).
fn full_pv(sets: u32) -> PropertyVector {
    let mut pv = PropertyVector::new(sets);
    for s in 0..sets {
        pv.set(s, true);
    }
    pv
}

#[cfg(test)]
mod tests {
    use super::*;
    use ziv_replacement::{Lru, Srrip};

    fn bank_lru() -> LlcBank {
        let geom = CacheGeometry::new(8, 4);
        LlcBank::new(geom, Box::new(Lru::new(geom)), GradedKind::LruPos)
    }

    fn bank_rrpv() -> LlcBank {
        let geom = CacheGeometry::new(8, 4);
        LlcBank::new(geom, Box::new(Srrip::new(geom)), GradedKind::MaxRrpv)
    }

    fn fill(bank: &mut LlcBank, set: SetIdx, way: WayIdx, line: u64, nip: bool) {
        let l = LineAddr::new(line);
        bank.array.fill(
            set,
            way,
            line,
            LlcState {
                line: l,
                not_in_prc: nip,
                ..Default::default()
            },
        );
        bank.policy.on_fill(
            set,
            way,
            &AccessCtx::demand(l, 0x40, ziv_common::CoreId::new(0), 0, 0),
        );
        bank.refresh_set(set);
    }

    #[test]
    fn empty_bank_has_all_invalid_bits() {
        let b = bank_lru();
        assert_eq!(b.pv_invalid.count_ones(), 8);
        assert!(b.pv_not_in_prc.is_empty());
    }

    #[test]
    fn invalid_bit_clears_when_set_fills() {
        let mut b = bank_lru();
        for w in 0..4 {
            fill(&mut b, 2, w, 100 + w as u64, false);
        }
        assert!(!b.pv_invalid.get(2));
        assert!(b.pv_invalid.get(3));
    }

    #[test]
    fn not_in_prc_pv_tracks_state() {
        let mut b = bank_lru();
        fill(&mut b, 1, 0, 50, true);
        assert!(b.pv_not_in_prc.get(1));
        b.array.state_mut(1, 0).not_in_prc = false;
        b.refresh_set(1);
        assert!(!b.pv_not_in_prc.get(1));
    }

    #[test]
    fn relocated_blocks_never_satisfy_not_in_prc() {
        let mut b = bank_lru();
        fill(&mut b, 1, 0, 50, true);
        b.array.state_mut(1, 0).relocated = true;
        b.refresh_set(1);
        assert!(!b.pv_not_in_prc.get(1));
    }

    #[test]
    fn lru_graded_bit_requires_lru_position() {
        let mut b = bank_lru();
        for w in 0..4 {
            fill(&mut b, 0, w, 10 + w as u64, false);
        }
        // Way 0 is LRU; mark way 3 (MRU) NotInPrC -> graded bit off.
        b.array.state_mut(0, 3).not_in_prc = true;
        b.refresh_set(0);
        assert!(!b.pv_graded.get(0));
        assert!(b.pv_not_in_prc.get(0));
        // Mark way 0 (LRU) NotInPrC -> graded bit on.
        b.array.state_mut(0, 0).not_in_prc = true;
        b.refresh_set(0);
        assert!(b.pv_graded.get(0));
    }

    #[test]
    fn max_rrpv_graded_bit_requires_averse_block() {
        let mut b = bank_rrpv();
        for w in 0..4 {
            fill(&mut b, 0, w, 10 + w as u64, true);
        }
        // SRRIP fills at RRPV_MAX-1: no averse block yet.
        assert!(!b.pv_graded.get(0));
        b.policy.on_evict(0, 2); // forces way 2 to RRPV_MAX
        b.array.state_mut(0, 2).not_in_prc = true;
        b.refresh_set(0);
        assert!(b.pv_graded.get(0));
    }

    #[test]
    fn relocation_victim_prefers_invalid() {
        let mut b = bank_lru();
        fill(&mut b, 0, 0, 10, true);
        assert_eq!(b.relocation_victim(0, ZivProperty::NotInPrC), Some(1));
    }

    #[test]
    fn relocation_victim_picks_nip_closest_to_lru() {
        let mut b = bank_lru();
        for w in 0..4 {
            fill(&mut b, 0, w, 10 + w as u64, false);
        }
        // LRU order is 0,1,2,3; mark ways 2 and 1 NotInPrC.
        b.array.state_mut(0, 2).not_in_prc = true;
        b.array.state_mut(0, 1).not_in_prc = true;
        b.refresh_set(0);
        assert_eq!(b.relocation_victim(0, ZivProperty::NotInPrC), Some(1));
    }

    #[test]
    fn relocation_victim_likely_dead_priority() {
        let mut b = bank_lru();
        for w in 0..4 {
            fill(&mut b, 0, w, 10 + w as u64, true);
        }
        // Way 3 is MRU but LikelyDead: LikelyDead level beats position.
        b.array.state_mut(0, 3).likely_dead = true;
        b.refresh_set(0);
        assert_eq!(b.relocation_victim(0, ZivProperty::LikelyDead), Some(3));
        // Without any LikelyDead, falls back to NotInPrC closest to LRU.
        b.array.state_mut(0, 3).likely_dead = false;
        b.refresh_set(0);
        assert_eq!(b.relocation_victim(0, ZivProperty::LikelyDead), Some(0));
    }

    #[test]
    fn relocation_victim_none_when_all_cached() {
        let mut b = bank_lru();
        for w in 0..4 {
            fill(&mut b, 0, w, 10 + w as u64, false);
        }
        assert_eq!(b.relocation_victim(0, ZivProperty::NotInPrC), None);
    }

    #[test]
    fn relocation_intervals_recorded() {
        let mut b = bank_lru();
        b.record_relocation(100);
        b.record_relocation(228);
        assert_eq!(b.relocation_intervals.total(), 1);
        assert_eq!(b.relocation_intervals.count_in_bucket(7), 1); // 128 cycles
    }
}
