//! The shared, banked LLC with all the victim-selection modes the paper
//! evaluates: the inclusive and non-inclusive baselines, QBS, SHARP,
//! CHARonBase, and the Zero Inclusion Victim design with its five
//! relocation-set properties.

mod bank;

pub use bank::{EvictedBlock, LlcBank, LlcState, PropertyLevel};

use bank::neutral_ctx;
use ziv_common::config::LlcConfig;
use ziv_common::ids::{SetIdx, WayIdx};
use ziv_common::{BankId, Cycle, LineAddr, SimRng};
use ziv_directory::{LlcLocation, SparseDirectory};
use ziv_replacement::{AccessCtx, PolicyKind, ReplacementPolicy};

/// The ZIV relocation-set properties of Section III-D, in increasing
/// implementation complexity. The paper pairs the first three with LRU
/// and the `MaxRRPV*` variants with Hawkeye.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ZivProperty {
    /// A set with any block not resident in private caches (III-D3).
    NotInPrC,
    /// The LRU-position block is not privately cached (III-D4).
    LruNotInPrC,
    /// A cache-averse (RRPV=7) block is not privately cached (III-D5).
    MaxRrpvNotInPrC,
    /// `LikelyDeadNotInPrC`: a CHAR-inferred-dead, not-privately-cached
    /// block exists (III-D6).
    LikelyDead,
    /// `MaxRRPVLikelyDeadNotInPrC`: combines Hawkeye's classification
    /// with CHAR's inference (III-D7).
    MaxRrpvLikelyDead,
}

impl ZivProperty {
    /// The relocation-set search priority: each level is checked first
    /// in the original set, then globally via the level's PV
    /// (Sections III-D4..III-D7).
    pub fn levels(self) -> &'static [PropertyLevel] {
        use PropertyLevel::*;
        match self {
            ZivProperty::NotInPrC => &[Invalid, NotInPrC],
            ZivProperty::LruNotInPrC | ZivProperty::MaxRrpvNotInPrC => &[Invalid, Graded, NotInPrC],
            ZivProperty::LikelyDead => &[Invalid, LikelyDead, NotInPrC],
            ZivProperty::MaxRrpvLikelyDead => &[Invalid, Graded, LikelyDead, NotInPrC],
        }
    }

    /// Whether the property consumes CHAR dead-block inference.
    pub fn uses_char(self) -> bool {
        matches!(
            self,
            ZivProperty::LikelyDead | ZivProperty::MaxRrpvLikelyDead
        )
    }

    /// Figure-legend label (the paper shortens the long names).
    pub fn label(self) -> &'static str {
        match self {
            ZivProperty::NotInPrC => "NotInPrC",
            ZivProperty::LruNotInPrC => "LRUNotInPrC",
            ZivProperty::MaxRrpvNotInPrC => "MRNotInPrC",
            ZivProperty::LikelyDead => "LikelyDead",
            ZivProperty::MaxRrpvLikelyDead => "MRLikelyDead",
        }
    }
}

/// How the LLC manages inclusion and victim selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LlcMode {
    /// Baseline inclusive LLC: back-invalidate on eviction.
    Inclusive,
    /// Baseline non-inclusive LLC: allocate on fill, never
    /// back-invalidate on LLC eviction.
    NonInclusive,
    /// Query-based selection (TLA, Jaleel et al. MICRO 2010) on top of
    /// the baseline policy.
    Qbs,
    /// QBS with a bounded number of victim-candidate queries (an
    /// ablation of the query depth; the paper's QBS scans the whole
    /// set).
    QbsBounded(u8),
    /// SHARP (Yan et al. ISCA 2017) on top of the baseline policy.
    Sharp,
    /// The CHARonBase comparison point of Section V-A.
    CharOnBase,
    /// TLA temporal-locality hints (Jaleel et al. MICRO 2010): every
    /// `hint_one_in`-th private-cache hit refreshes the LLC copy's
    /// replacement state (the paper notes full-rate TLH needs very high
    /// LLC bandwidth, hence the sampling knob).
    Tlh {
        /// Send one hint per this many private-cache hits.
        hint_one_in: u32,
    },
    /// TLA early core invalidation (Jaleel et al. MICRO 2010): at each
    /// replacement, the *next* victim candidate's private copies are
    /// invalidated early so its LLC reuse becomes observable.
    Eci,
    /// Relaxed Inclusion Caches (Kayaalp et al. DAC 2017): inclusion is
    /// relaxed for blocks that were never written — their eviction skips
    /// back-invalidation (no protection for read/write shared data).
    Ric,
    /// Way-partitioned inclusive LLC (DAWG/CATalyst-class isolation,
    /// the paper's references [26], [31]): victim selection is confined
    /// to the requesting core's way partition, eliminating *cross-core*
    /// evictions (and their inclusion victims) at a capacity cost.
    WayPartitioned,
    /// The Zero Inclusion Victim LLC with the given relocation property.
    Ziv(ZivProperty),
}

impl LlcMode {
    /// Whether this mode maintains the inclusion property for every
    /// block. RIC is inclusive except for never-written blocks.
    pub fn is_inclusive(self) -> bool {
        !matches!(self, LlcMode::NonInclusive)
    }

    /// Whether a directory hit may legitimately coexist with an LLC miss
    /// (the "fourth case"): true for non-inclusive LLCs and for RIC's
    /// relaxed read-only blocks.
    pub fn allows_llc_miss_under_dir_hit(self) -> bool {
        matches!(self, LlcMode::NonInclusive | LlcMode::Ric)
    }

    /// Whether this mode guarantees zero inclusion victims.
    pub fn is_ziv(self) -> bool {
        matches!(self, LlcMode::Ziv(_))
    }

    /// Figure-legend label.
    pub fn label(self) -> String {
        match self {
            LlcMode::Inclusive => "I".into(),
            LlcMode::NonInclusive => "NI".into(),
            LlcMode::Qbs => "QBS".into(),
            LlcMode::QbsBounded(n) => format!("QBS{n}"),
            LlcMode::Sharp => "SHARP".into(),
            LlcMode::CharOnBase => "CHARonBase".into(),
            LlcMode::Tlh { hint_one_in } => format!("TLH/{hint_one_in}"),
            LlcMode::Eci => "ECI".into(),
            LlcMode::Ric => "RIC".into(),
            LlcMode::WayPartitioned => "WayPart".into(),
            LlcMode::Ziv(p) => format!("ZIV-{}", p.label()),
        }
    }
}

/// Flavor of the graded PV, derived from the ZIV property in use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GradedKind {
    /// Track the LRU-position block (`LRUNotInPrC`).
    LruPos,
    /// Track cache-averse RRPV=7 blocks (`MaxRRPVNotInPrC`).
    MaxRrpv,
}

/// Why the victim-selection machinery picked the way it did, stamped on
/// every [`FillOutcome`] so the forensics observatory can attach a
/// human-readable cause to each eviction (DESIGN.md §15).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VictimReason {
    /// An invalid way absorbed the fill; nothing was evicted.
    InvalidWay,
    /// The baseline policy's bottom-ranked block (inclusive,
    /// non-inclusive, TLH, RIC, and ECI demand path).
    #[default]
    Baseline,
    /// WayPartitioned: bottom-ranked block inside the requesting core's
    /// way partition.
    Partitioned,
    /// QBS found a candidate with no private copies.
    QbsClean,
    /// QBS exhausted its queries; the baseline victim was evicted
    /// despite private copies.
    QbsFallback,
    /// SHARP step 1: a block with no private copies.
    SharpUnshared,
    /// SHARP step 2: a block private only to the requesting core.
    SharpSelf,
    /// SHARP step 3: random victim (the alarm counter is raised).
    SharpRandom,
    /// CHARonBase: a likely-dead, not-privately-cached block was
    /// preferred over the privately cached baseline victim.
    CharLikelyDead,
    /// ZIV: an alternate not-privately-cached victim existed in the
    /// original set.
    ZivInSet,
    /// ZIV: the baseline victim was relocated; only a guaranteed
    /// not-privately-cached relocation-set block could be evicted.
    ZivRelocation,
    /// ZIV defensive fallback: no `NotInPrC` block existed anywhere
    /// (inclusive eviction; counted in `ziv_guarantee_fallbacks`).
    ZivFallback,
}

impl VictimReason {
    /// Short stable label used in `blame.csv` and the `blame` table.
    pub fn label(self) -> &'static str {
        match self {
            VictimReason::InvalidWay => "invalid-way",
            VictimReason::Baseline => "baseline",
            VictimReason::Partitioned => "partitioned",
            VictimReason::QbsClean => "qbs-clean",
            VictimReason::QbsFallback => "qbs-fallback",
            VictimReason::SharpUnshared => "sharp-unshared",
            VictimReason::SharpSelf => "sharp-self",
            VictimReason::SharpRandom => "sharp-random",
            VictimReason::CharLikelyDead => "char-likely-dead",
            VictimReason::ZivInSet => "ziv-in-set",
            VictimReason::ZivRelocation => "ziv-relocation",
            VictimReason::ZivFallback => "ziv-fallback",
        }
    }
}

/// The ZIV relocation performed as part of a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RelocationOutcome {
    /// The privately cached LLC victim that was moved instead of
    /// back-invalidated.
    pub moved_line: LineAddr,
    /// Its new location (to be recorded in the sparse directory).
    pub to: LlcLocation,
    /// The (guaranteed not-privately-cached) block evicted from the
    /// relocation set, if the target way was valid.
    pub evicted_from_rs: Option<EvictedBlock>,
    /// Whether the relocation crossed banks (Section III-D1 fallback).
    pub cross_bank: bool,
    /// Cycle at which the relocation datapath finished.
    pub completed_at: Cycle,
}

/// Everything a fill did, for the hierarchy to act on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillOutcome {
    /// Where the new line was installed.
    pub loc: LlcLocation,
    /// Block evicted from the target set (plain eviction path).
    pub evicted: Option<EvictedBlock>,
    /// ZIV relocation, if one was performed.
    pub relocation: Option<RelocationOutcome>,
    /// Directory queries issued by QBS for this fill.
    pub qbs_queries: u64,
    /// SHARP fell through to its random step 3.
    pub sharp_alarm: bool,
    /// ZIV found an alternate victim in the original set (no
    /// relocation needed).
    pub in_set_alternate: bool,
    /// Defensive inclusive fallback: no `NotInPrC` block existed
    /// anywhere (violates the paper's capacity assumption; see
    /// `Metrics::ziv_guarantee_fallbacks`).
    pub ziv_fallback: bool,
    /// A relocation consulted the `LikelyDeadNotInPrC` PV and found it
    /// empty — the Section III-D6 trigger for lowering CHAR's threshold.
    pub likely_dead_pv_empty: bool,
    /// ECI: the next victim candidate, whose private copies the
    /// hierarchy must invalidate early.
    pub eci_candidate: Option<LineAddr>,
    /// Why the victim way was chosen (forensics provenance).
    pub victim_reason: VictimReason,
}

/// The shared LLC: banks + mode + policy.
#[derive(Debug)]
pub struct SharedLlc {
    cfg: LlcConfig,
    mode: LlcMode,
    banks: Vec<LlcBank>,
    rng: SimRng,
    /// Number of way partitions for [`LlcMode::WayPartitioned`]
    /// (normally the core count, capped at the associativity).
    partitions: usize,
    /// Reusable victim-order buffer for the per-fill `rank()` queries
    /// (QBS/SHARP/ECI/CHARonBase/WayPartitioned). Taken with
    /// `std::mem::take` for the duration of a query and put back, so the
    /// steady-state fill path performs no heap allocation (DESIGN.md §8).
    rank_scratch: Vec<WayIdx>,
}

impl SharedLlc {
    /// Builds the LLC. `build_policy` creates one policy instance per
    /// bank (policies are per-bank state machines).
    pub fn new(
        cfg: LlcConfig,
        mode: LlcMode,
        policy_kind: PolicyKind,
        mut build_policy: impl FnMut(usize) -> Box<dyn ReplacementPolicy>,
        seed: u64,
    ) -> Self {
        let graded = match mode {
            LlcMode::Ziv(ZivProperty::MaxRrpvNotInPrC | ZivProperty::MaxRrpvLikelyDead) => {
                GradedKind::MaxRrpv
            }
            LlcMode::Ziv(_) => GradedKind::LruPos,
            _ if policy_kind.is_rrpv_based() => GradedKind::MaxRrpv,
            _ => GradedKind::LruPos,
        };
        let banks = (0..cfg.banks)
            .map(|b| LlcBank::new(cfg.bank_geometry, build_policy(b), graded))
            .collect();
        SharedLlc {
            cfg,
            mode,
            banks,
            rng: SimRng::seed_from_u64(seed ^ 0x51ac_c0de),
            partitions: 1,
            rank_scratch: Vec::new(),
        }
    }

    /// Sets the way-partition count (used by [`LlcMode::WayPartitioned`];
    /// normally the number of cores, capped at the associativity).
    pub fn set_partitions(&mut self, partitions: usize) {
        self.partitions = partitions.max(1);
    }

    /// The configured mode.
    pub fn mode(&self) -> LlcMode {
        self.mode
    }

    /// The LLC geometry.
    pub fn config(&self) -> &LlcConfig {
        &self.cfg
    }

    /// Read access to a bank (stats, tests).
    pub fn bank(&self, bank: BankId) -> &LlcBank {
        &self.banks[bank.index()]
    }

    /// Mutable access to a bank (the hierarchy records FIFO timing).
    pub fn bank_mut(&mut self, bank: BankId) -> &mut LlcBank {
        &mut self.banks[bank.index()]
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Looks up `line` in its home set, considering only blocks with the
    /// `Relocated` state off (Section III-C1).
    pub fn probe(&self, line: LineAddr) -> Option<LlcLocation> {
        let bank = self.cfg.bank_of(line);
        let set = self.cfg.set_of(line);
        let tag = self.cfg.tag_of(line);
        self.banks[bank.index()]
            .array
            .lookup_where(set, tag, |s| !s.relocated)
            .map(|way| LlcLocation { bank, set, way })
    }

    /// State at a location.
    pub fn state(&self, loc: LlcLocation) -> &LlcState {
        self.banks[loc.bank.index()].array.state(loc.set, loc.way)
    }

    /// Mutates the state at `loc` and refreshes the set's PVs.
    pub fn update_state(&mut self, loc: LlcLocation, f: impl FnOnce(&mut LlcState)) {
        let bank = &mut self.banks[loc.bank.index()];
        f(bank.array.state_mut(loc.set, loc.way));
        bank.refresh_set(loc.set);
    }

    /// Demand hit on a non-relocated block: policy update, `NotInPrC` /
    /// `LikelyDead` reset (the block is being pulled into a private
    /// cache), and CHAR recall attribution.
    pub fn on_hit(
        &mut self,
        loc: LlcLocation,
        ctx: &AccessCtx,
    ) -> Option<(u16, ziv_char::GroupId)> {
        let bank = &mut self.banks[loc.bank.index()];
        bank.policy.on_hit(loc.set, loc.way, ctx);
        let st = bank.array.state_mut(loc.set, loc.way);
        let recall = st.evict_group.take();
        st.not_in_prc = false;
        st.likely_dead = false;
        bank.refresh_set(loc.set);
        recall
    }

    /// Demand hit on a relocated block (reached through the sparse
    /// directory): only the relocation set's replacement state is
    /// updated "in the background" (Section III-C1).
    pub fn on_relocated_hit(&mut self, loc: LlcLocation, ctx: &AccessCtx) {
        let bank = &mut self.banks[loc.bank.index()];
        debug_assert!(bank.array.state(loc.set, loc.way).relocated);
        bank.policy.on_hit(loc.set, loc.way, ctx);
    }

    /// Invalidates the block at `loc` (relocated-block death, directory
    /// eviction, etc.); returns its final state.
    pub fn invalidate(&mut self, loc: LlcLocation) -> Option<LlcState> {
        let bank = &mut self.banks[loc.bank.index()];
        let out = bank.array.invalidate(loc.set, loc.way).map(|(_, s)| s);
        if out.is_some() {
            bank.policy.on_evict(loc.set, loc.way);
        }
        bank.refresh_set(loc.set);
        out
    }

    /// Fills `line` into its home set, running the mode's victim
    /// selection. `now` drives relocation timing; `core` is the
    /// requesting core (SHARP step 2).
    ///
    /// # Panics
    ///
    /// Debug-panics if `line` is already present (fills must follow a
    /// probe miss).
    pub fn fill(
        &mut self,
        line: LineAddr,
        ctx: &AccessCtx,
        dir: &SparseDirectory,
        core: ziv_common::CoreId,
        now: Cycle,
    ) -> FillOutcome {
        let bank_id = self.cfg.bank_of(line);
        let set = self.cfg.set_of(line);
        let tag = self.cfg.tag_of(line);
        // Fused walk: the resident-line check and the invalid-way scan
        // (every mode's highest-priority choice) share one O(ways) pass.
        let probe = self.banks[bank_id.index()]
            .array
            .lookup_or_invalid_where(set, tag, |s| !s.relocated);
        debug_assert!(probe.hit.is_none(), "fill of a resident line");
        let mut outcome = FillOutcome {
            loc: LlcLocation {
                bank: bank_id,
                set,
                way: 0,
            },
            evicted: None,
            relocation: None,
            qbs_queries: 0,
            sharp_alarm: false,
            in_set_alternate: false,
            ziv_fallback: false,
            likely_dead_pv_empty: false,
            eci_candidate: None,
            victim_reason: VictimReason::Baseline,
        };

        // Invalid way: every mode's highest-priority choice.
        if let Some(way) = probe.invalid {
            self.install(bank_id, set, way, line, ctx);
            outcome.loc.way = way;
            outcome.victim_reason = VictimReason::InvalidWay;
            return outcome;
        }

        let way = match self.mode {
            LlcMode::Inclusive | LlcMode::NonInclusive | LlcMode::Tlh { .. } | LlcMode::Ric => {
                self.banks[bank_id.index()].policy.victim(set, ctx)
            }
            LlcMode::Eci => {
                // Victimize normally, but also surface the next-ranked
                // candidate for early core invalidation.
                let mut order = std::mem::take(&mut self.rank_scratch);
                self.banks[bank_id.index()]
                    .policy
                    .rank(set, ctx, &mut order);
                if let Some(&next) = order.get(1) {
                    if self.banks[bank_id.index()].array.is_valid(set, next) {
                        outcome.eci_candidate =
                            Some(self.banks[bank_id.index()].array.state(set, next).line);
                    }
                }
                let victim = order[0];
                self.rank_scratch = order;
                victim
            }
            LlcMode::WayPartitioned => {
                outcome.victim_reason = VictimReason::Partitioned;
                self.choose_partitioned(bank_id, set, ctx, core)
            }
            LlcMode::Qbs => self.choose_qbs(bank_id, set, ctx, dir, u8::MAX, &mut outcome),
            LlcMode::QbsBounded(n) => self.choose_qbs(bank_id, set, ctx, dir, n, &mut outcome),
            LlcMode::Sharp => self.choose_sharp(bank_id, set, ctx, dir, core, &mut outcome),
            LlcMode::CharOnBase => self.choose_char_on_base(bank_id, set, ctx, dir, &mut outcome),
            LlcMode::Ziv(prop) => {
                match self.choose_ziv(bank_id, set, ctx, dir, prop, &mut outcome, now) {
                    ZivChoice::Evict(w) => w,
                    ZivChoice::Relocated { vacated_way } => vacated_way,
                }
            }
        };

        // Plain eviction of the chosen way (the relocation path has
        // already vacated it).
        if self.banks[bank_id.index()].array.is_valid(set, way) {
            let st = *self.banks[bank_id.index()].array.state(set, way);
            self.banks[bank_id.index()].array.invalidate(set, way);
            self.banks[bank_id.index()].policy.on_evict(set, way);
            outcome.evicted = Some(EvictedBlock {
                line: st.line,
                dirty: st.dirty,
                was_relocated: st.relocated,
            });
        }
        self.install(bank_id, set, way, line, ctx);
        outcome.loc.way = way;
        outcome
    }

    fn install(&mut self, bank: BankId, set: SetIdx, way: WayIdx, line: LineAddr, ctx: &AccessCtx) {
        let tag = self.cfg.tag_of(line);
        let b = &mut self.banks[bank.index()];
        let displaced = b.array.fill(
            set,
            way,
            tag,
            LlcState {
                line,
                ..Default::default()
            },
        );
        debug_assert!(displaced.is_none(), "install must target an empty way");
        b.policy.on_fill(set, way, ctx);
        b.refresh_set(set);
    }

    fn line_at(&self, bank: BankId, set: SetIdx, way: WayIdx) -> LineAddr {
        self.banks[bank.index()].array.state(set, way).line
    }

    /// Way-partitioned victim selection: the first way in policy rank
    /// order that belongs to the requesting core's partition. Partitions
    /// are contiguous, `ways / cores_sharing` wide (at least one way),
    /// assigned by core index modulo the partition count.
    fn choose_partitioned(
        &mut self,
        bank: BankId,
        set: SetIdx,
        ctx: &AccessCtx,
        core: ziv_common::CoreId,
    ) -> WayIdx {
        let ways = self.cfg.bank_geometry.ways as usize;
        // Partition width: fixed at construction from the worst case of
        // one partition per way.
        let parts = ways.min(self.partitions.max(1));
        let width = ways / parts;
        let my_part = core.index() % parts;
        let lo = (my_part * width) as WayIdx;
        let hi = lo + width as WayIdx;
        let mut order = std::mem::take(&mut self.rank_scratch);
        self.banks[bank.index()].policy.rank(set, ctx, &mut order);
        let chosen = order
            .iter()
            .copied()
            .find(|&w| w >= lo && w < hi)
            .expect("every partition has at least one way");
        self.rank_scratch = order;
        chosen
    }

    fn choose_qbs(
        &mut self,
        bank: BankId,
        set: SetIdx,
        ctx: &AccessCtx,
        dir: &SparseDirectory,
        max_queries: u8,
        outcome: &mut FillOutcome,
    ) -> WayIdx {
        let mut order = std::mem::take(&mut self.rank_scratch);
        self.banks[bank.index()].policy.rank(set, ctx, &mut order);
        order.truncate(max_queries.max(1) as usize);
        let fallback = order[0];
        let mut chosen = None;
        for &w in &order {
            let line = self.line_at(bank, set, w);
            outcome.qbs_queries += 1;
            if !dir.is_privately_cached(line) {
                chosen = Some(w);
                break;
            }
            // "The block is moved to the MRU position within the target
            // LLC set and the next victim candidate is considered."
            self.banks[bank.index()].policy.protect(set, w);
        }
        self.rank_scratch = order;
        // Every block is privately cached: QBS gives up and victimizes
        // the baseline victim, generating inclusion victims.
        outcome.victim_reason = if chosen.is_some() {
            VictimReason::QbsClean
        } else {
            VictimReason::QbsFallback
        };
        chosen.unwrap_or(fallback)
    }

    fn choose_sharp(
        &mut self,
        bank: BankId,
        set: SetIdx,
        ctx: &AccessCtx,
        dir: &SparseDirectory,
        core: ziv_common::CoreId,
        outcome: &mut FillOutcome,
    ) -> WayIdx {
        let mut order = std::mem::take(&mut self.rank_scratch);
        self.banks[bank.index()].policy.rank(set, ctx, &mut order);
        // Step 1: a block not resident in any private cache.
        let mut chosen = order
            .iter()
            .copied()
            .find(|&w| !dir.is_privately_cached(self.line_at(bank, set, w)));
        outcome.victim_reason = VictimReason::SharpUnshared;
        // Step 2: a block resident only in the requesting core's caches.
        if chosen.is_none() {
            chosen = order.iter().copied().find(|&w| {
                let line = self.line_at(bank, set, w);
                dir.probe(line)
                    .is_some_and(|s| s.sharers.is_sole_sharer(core))
            });
            outcome.victim_reason = VictimReason::SharpSelf;
        }
        self.rank_scratch = order;
        if let Some(w) = chosen {
            return w;
        }
        // Step 3: a random block; raise the alarm counter.
        outcome.sharp_alarm = true;
        outcome.victim_reason = VictimReason::SharpRandom;
        let ways = self.cfg.bank_geometry.ways as u64;
        self.rng.below(ways) as WayIdx
    }

    fn choose_char_on_base(
        &mut self,
        bank: BankId,
        set: SetIdx,
        ctx: &AccessCtx,
        dir: &SparseDirectory,
        outcome: &mut FillOutcome,
    ) -> WayIdx {
        let baseline = self.banks[bank.index()].policy.victim(set, ctx);
        if !dir.is_privately_cached(self.line_at(bank, set, baseline)) {
            return baseline;
        }
        // Baseline victim is privately cached: prefer a LikelyDead block
        // (closest to eviction in rank order) from the same set.
        let mut order = std::mem::take(&mut self.rank_scratch);
        self.banks[bank.index()].policy.rank(set, ctx, &mut order);
        let chosen = order.iter().copied().find(|&w| {
            let st = self.banks[bank.index()].array.state(set, w);
            !st.relocated && st.likely_dead && st.not_in_prc
        });
        self.rank_scratch = order;
        if chosen.is_some() {
            outcome.victim_reason = VictimReason::CharLikelyDead;
        }
        chosen.unwrap_or(baseline)
    }

    #[allow(clippy::too_many_arguments)]
    fn choose_ziv(
        &mut self,
        bank: BankId,
        set: SetIdx,
        ctx: &AccessCtx,
        dir: &SparseDirectory,
        prop: ZivProperty,
        outcome: &mut FillOutcome,
        now: Cycle,
    ) -> ZivChoice {
        let baseline = self.banks[bank.index()].policy.victim(set, ctx);
        let victim_line = self.line_at(bank, set, baseline);
        if !dir.is_privately_cached(victim_line) {
            debug_assert!(
                !self.banks[bank.index()]
                    .array
                    .state(set, baseline)
                    .relocated,
                "a relocated block must be privately cached"
            );
            return ZivChoice::Evict(baseline);
        }

        // The baseline victim has privately cached copies: find where to
        // put it (or a better victim in this very set).
        for &level in prop.levels() {
            if level == PropertyLevel::LikelyDead
                && !self.banks[bank.index()].set_satisfies(set, level)
                && self.banks[bank.index()].pv_mut(level).is_empty()
            {
                // Record the dead-block starvation for the CHAR
                // threshold adaptation (Fig 7).
                outcome.likely_dead_pv_empty = true;
            }
            // Original set first (except Invalid, already known empty
            // because fills consume invalid ways before victimization).
            if level != PropertyLevel::Invalid && self.banks[bank.index()].set_satisfies(set, level)
            {
                let w = self.banks[bank.index()]
                    .relocation_victim(set, prop)
                    .expect("set property bit guaranteed a victim");
                outcome.in_set_alternate = true;
                outcome.victim_reason = VictimReason::ZivInSet;
                return ZivChoice::Evict(w);
            }
            // Then the global PV of this bank.
            if let Some(rs) = self.banks[bank.index()].pv_mut(level).take_next_rs() {
                if rs != set {
                    return self.relocate(bank, set, baseline, bank, rs, prop, outcome, ctx, now);
                }
                // nextRS pointed back at the original set: treat as the
                // in-set case.
                if let Some(w) = self.banks[bank.index()].relocation_victim(set, prop) {
                    outcome.in_set_alternate = true;
                    outcome.victim_reason = VictimReason::ZivInSet;
                    return ZivChoice::Evict(w);
                }
            }
        }

        // Extremely-rare path (Section III-D1): every block in this bank
        // is privately cached. Relocate to another bank, nearest first.
        let home = bank.index();
        let n = self.banks.len();
        let mut others: Vec<usize> = (0..n).filter(|&b| b != home).collect();
        others.sort_by_key(|&b| {
            let d = (b as i64 - home as i64).unsigned_abs();
            d.min(n as u64 - d)
        });
        for other in others {
            for &level in prop.levels() {
                if let Some(rs) = self.banks[other].pv_mut(level).take_next_rs() {
                    return self.relocate(
                        bank,
                        set,
                        baseline,
                        BankId::new(other),
                        rs,
                        prop,
                        outcome,
                        ctx,
                        now,
                    );
                }
            }
        }

        // No NotInPrC block anywhere: the paper's capacity invariant is
        // violated (tiny test configurations only). Fall back to an
        // inclusive eviction and count it.
        outcome.ziv_fallback = true;
        outcome.victim_reason = VictimReason::ZivFallback;
        ZivChoice::Evict(baseline)
    }

    #[allow(clippy::too_many_arguments)]
    fn relocate(
        &mut self,
        src_bank: BankId,
        src_set: SetIdx,
        src_way: WayIdx,
        dst_bank: BankId,
        dst_set: SetIdx,
        prop: ZivProperty,
        outcome: &mut FillOutcome,
        ctx: &AccessCtx,
        now: Cycle,
    ) -> ZivChoice {
        let moved = *self.banks[src_bank.index()].array.state(src_set, src_way);
        // Vacate the source way.
        self.banks[src_bank.index()]
            .array
            .invalidate(src_set, src_way);
        self.banks[src_bank.index()]
            .policy
            .on_evict(src_set, src_way);

        // Pick and clear the destination way.
        let dst = &mut self.banks[dst_bank.index()];
        let dst_way = dst
            .relocation_victim(dst_set, prop)
            .expect("relocation-set PV guaranteed an eligible victim");
        let evicted_from_rs = dst.array.invalidate(dst_set, dst_way).map(|(_, s)| {
            debug_assert!(
                !s.relocated,
                "never displace a relocated block from a relocation set"
            );
            debug_assert!(
                s.not_in_prc,
                "relocation-set victims are never privately cached"
            );
            EvictedBlock {
                line: s.line,
                dirty: s.dirty,
                was_relocated: s.relocated,
            }
        });
        if evicted_from_rs.is_some() {
            dst.policy.on_evict(dst_set, dst_way);
        }

        // Insert the moved block in the Relocated state. Its tag slot is
        // repurposed (the paper stores the directory-entry pointer; we
        // keep the line in `state.line`, see `LlcState::line`).
        let dst_tag = self.cfg.tag_of(moved.line);
        let dst = &mut self.banks[dst_bank.index()];
        dst.array.fill(
            dst_set,
            dst_way,
            dst_tag,
            LlcState {
                line: moved.line,
                dirty: moved.dirty,
                relocated: true,
                not_in_prc: false,
                likely_dead: false,
                evict_group: None,
            },
        );
        let reloc_ctx = AccessCtx::demand(moved.line, 0, ctx.core, ctx.now, ctx.seq);
        dst.policy.on_relocate_in(dst_set, dst_way, &reloc_ctx);
        dst.refresh_set(dst_set);

        // Timing + statistics through the relocation FIFO.
        let write_latency = self.cfg.data_latency;
        let bank_for_stats = &mut self.banks[dst_bank.index()];
        let _ = bank_for_stats.fifo.push(ziv_cache::RelocationRequest {
            line: moved.line,
            requested_at: now,
        });
        let completed_at = bank_for_stats
            .fifo
            .complete_front(write_latency)
            .map(|(_, done)| done)
            .unwrap_or(now);
        bank_for_stats.record_relocation(now);

        outcome.victim_reason = VictimReason::ZivRelocation;
        outcome.relocation = Some(RelocationOutcome {
            moved_line: moved.line,
            to: LlcLocation {
                bank: dst_bank,
                set: dst_set,
                way: dst_way,
            },
            evicted_from_rs,
            cross_bank: src_bank != dst_bank,
            completed_at,
        });
        ZivChoice::Relocated {
            vacated_way: src_way,
        }
    }

    /// Every line resident in the LLC, with its location and state
    /// (tests and invariant checks; O(capacity)).
    pub fn resident_blocks(&self) -> Vec<(LlcLocation, LlcState)> {
        let mut out = Vec::new();
        for (b, bank) in self.banks.iter().enumerate() {
            for set in 0..self.cfg.bank_geometry.sets {
                for w in bank.array.iter_set(set) {
                    out.push((
                        LlcLocation {
                            bank: BankId::new(b),
                            set,
                            way: w.way,
                        },
                        *w.state,
                    ));
                }
            }
        }
        out
    }

    /// Rank order of a set under the bank's policy (diagnostics). The
    /// order is written into the caller-provided `out` buffer so repeated
    /// queries reuse one allocation.
    pub fn rank_of_set(&mut self, bank: BankId, set: SetIdx, out: &mut Vec<WayIdx>) {
        let ctx = neutral_ctx();
        self.banks[bank.index()].policy.rank(set, &ctx, out);
    }
}

#[derive(Debug)]
enum ZivChoice {
    /// Evict this way normally (not privately cached, or defensive
    /// fallback).
    Evict(WayIdx),
    /// The baseline victim was relocated; its way is now free.
    Relocated { vacated_way: WayIdx },
}
