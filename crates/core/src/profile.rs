//! A lightweight wall-clock self-profiler for the simulator itself
//! (`--profile`): scoped spans around the hierarchy, replacement,
//! directory, DRAM, and auditor sections, reporting where *simulator*
//! time (not simulated time) goes. Purely observational — timing reads
//! never feed back into simulation state, so results are byte-identical
//! with the profiler on or off; the report itself is wall-clock data
//! and therefore nondeterministic, like the BENCH files.

use std::time::Duration;
use ziv_common::json::JsonValue;

/// One instrumented section of the simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileSection {
    /// The whole `CacheHierarchy::access` call (includes the nested
    /// sections below; this is the end-to-end model cost per access).
    Hierarchy,
    /// LLC victim selection + fill (`SharedLlc::fill`), including ZIV
    /// relocation work.
    Replacement,
    /// Sparse-directory fills and sharer updates.
    Directory,
    /// The DRAM timing model.
    Dram,
    /// Invariant-audit walks (only nonzero when `--audit` is on).
    Audit,
}

/// Number of sections.
pub const NUM_SECTIONS: usize = 5;

impl ProfileSection {
    /// Every section, in report order.
    pub const ALL: [ProfileSection; NUM_SECTIONS] = [
        ProfileSection::Hierarchy,
        ProfileSection::Replacement,
        ProfileSection::Directory,
        ProfileSection::Dram,
        ProfileSection::Audit,
    ];

    /// Stable name used in `profile.json` and the CLI table.
    pub fn label(self) -> &'static str {
        match self {
            ProfileSection::Hierarchy => "hierarchy",
            ProfileSection::Replacement => "replacement",
            ProfileSection::Directory => "directory",
            ProfileSection::Dram => "dram",
            ProfileSection::Audit => "audit",
        }
    }

    fn index(self) -> usize {
        match self {
            ProfileSection::Hierarchy => 0,
            ProfileSection::Replacement => 1,
            ProfileSection::Directory => 2,
            ProfileSection::Dram => 3,
            ProfileSection::Audit => 4,
        }
    }
}

/// Accumulates span durations per section.
#[derive(Debug, Default)]
pub struct SelfProfiler {
    nanos: [u64; NUM_SECTIONS],
    calls: [u64; NUM_SECTIONS],
}

impl SelfProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        SelfProfiler::default()
    }

    /// Adds one completed span to a section.
    #[inline]
    pub fn add(&mut self, section: ProfileSection, elapsed: Duration) {
        let i = section.index();
        self.nanos[i] += elapsed.as_nanos() as u64;
        self.calls[i] += 1;
    }

    /// Seals the accumulated spans into a report.
    pub fn report(&self) -> ProfileReport {
        ProfileReport {
            nanos: self.nanos,
            calls: self.calls,
        }
    }
}

/// Per-section simulator wall time, carried in
/// [`crate::observe::Observations`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Nanoseconds accumulated per section, indexed like
    /// [`ProfileSection::ALL`].
    pub nanos: [u64; NUM_SECTIONS],
    /// Spans recorded per section.
    pub calls: [u64; NUM_SECTIONS],
}

impl ProfileReport {
    /// One section's accumulated time.
    pub fn nanos(&self, s: ProfileSection) -> u64 {
        self.nanos[s.index()]
    }

    /// One section's span count.
    pub fn calls(&self, s: ProfileSection) -> u64 {
        self.calls[s.index()]
    }

    /// Adds another report into this one (for campaign aggregation).
    pub fn merge(&mut self, other: &ProfileReport) {
        for i in 0..NUM_SECTIONS {
            self.nanos[i] += other.nanos[i];
            self.calls[i] += other.calls[i];
        }
    }

    /// Serializes as `{"<section>": {"nanos": N, "calls": C}, ...}`.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::Obj(
            ProfileSection::ALL
                .iter()
                .map(|&s| {
                    (
                        s.label().to_string(),
                        JsonValue::Obj(vec![
                            ("nanos".into(), JsonValue::u64(self.nanos(s))),
                            ("calls".into(), JsonValue::u64(self.calls(s))),
                        ]),
                    )
                })
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_accumulate_per_section() {
        let mut p = SelfProfiler::new();
        p.add(ProfileSection::Dram, Duration::from_nanos(100));
        p.add(ProfileSection::Dram, Duration::from_nanos(50));
        p.add(ProfileSection::Hierarchy, Duration::from_micros(1));
        let r = p.report();
        assert_eq!(r.nanos(ProfileSection::Dram), 150);
        assert_eq!(r.calls(ProfileSection::Dram), 2);
        assert_eq!(r.nanos(ProfileSection::Hierarchy), 1_000);
        assert_eq!(r.calls(ProfileSection::Audit), 0);
    }

    #[test]
    fn merge_adds_reports() {
        let mut p = SelfProfiler::new();
        p.add(ProfileSection::Directory, Duration::from_nanos(10));
        let mut a = p.report();
        let b = p.report();
        a.merge(&b);
        assert_eq!(a.nanos(ProfileSection::Directory), 20);
        assert_eq!(a.calls(ProfileSection::Directory), 2);
    }

    #[test]
    fn json_covers_every_section() {
        let r = SelfProfiler::new().report();
        let text = r.to_json().to_string();
        let doc = ziv_common::json::parse(&text).expect("valid JSON");
        for s in ProfileSection::ALL {
            let sec = doc.get(s.label()).expect("section present");
            assert_eq!(sec.get("nanos").and_then(JsonValue::as_u64), Some(0));
            assert_eq!(sec.get("calls").and_then(JsonValue::as_u64), Some(0));
        }
    }
}
