//! The leakage observatory: attacker-observable signal accounting for
//! the side-channel attack evaluation (DESIGN.md §"Security
//! evaluation").
//!
//! Under an inclusive LLC, every cross-core back-invalidation is an
//! attacker-visible event: a prime+probe attacker that owns the LLC
//! sets a victim's lines map to learns, from its probe latencies, that
//! the victim touched those sets. This observatory counts exactly that
//! channel:
//!
//! - per-core **back-invalidations suffered**, split by whether the
//!   evicted line mapped to an attacker-probed set — the victim-core,
//!   probed-set slice is the attacker-observable *signal*, every other
//!   core's slice is *noise* the attacker cannot distinguish;
//! - the attacker's **probe depth distribution** (how many of its own
//!   accesses were still private-cache resident vs evicted), the
//!   latency-distinguishability side of the same channel;
//! - **SHARP alarm counts**, the defense-side detector.
//!
//! Like the latency observatory it rides the [`FlightRecorder`]
//! (`crate::observe::FlightRecorder`): never digested, never in the
//! result ledger, and conserving exactly against
//! [`Metrics::inclusion_victims`](crate::Metrics) — the observatory's
//! total back-invalidation count equals the aggregate metric, which the
//! invariant tests pin. ZIV modes therefore report *exactly zero*
//! leakage, not approximately zero.

use crate::latency::AccessClass;
use ziv_common::{CoreId, LineAddr};

/// Per-core leakage counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreLeakage {
    /// Inclusion-victim back-invalidations this core suffered.
    pub back_invalidations: u64,
    /// The subset whose line mapped to an attacker-probed LLC set.
    pub probed_back_invalidations: u64,
    /// Attacker-core accesses to probed sets whose latency showed the
    /// line still cached somewhere on chip (the "fast probe" outcome:
    /// nobody displaced it).
    pub probe_hits: u64,
    /// Attacker-core accesses to probed sets served from memory — the
    /// "slow probe" outcome the attacker keys on: the line was evicted
    /// since the attacker last touched it.
    pub probe_evictions_seen: u64,
}

/// Counts attacker-observable events during a run. Constructed from an
/// attack workload's [`AttackPlan`]-equivalent role lists by the
/// driver; the hierarchy feeds it from the same emission sites as the
/// event ring and the latency observatory.
#[derive(Debug)]
pub struct LeakageObservatory {
    banks: usize,
    sets_per_bank: usize,
    attacker: Vec<bool>,
    victim: Vec<bool>,
    /// Flat `(bank, set)` membership of the probed sets.
    probed: Vec<bool>,
    per_core: Vec<CoreLeakage>,
    sharp_alarms: u64,
}

impl LeakageObservatory {
    /// Creates an observatory for a `cores`-core system with a
    /// `banks × sets_per_bank` LLC (both powers of two). `probe_lines`
    /// holds one representative raw line address per probed set; any
    /// line congruent to one of them (same home bank and set) counts
    /// as probed.
    pub fn new(
        cores: usize,
        banks: usize,
        sets_per_bank: usize,
        attacker_cores: &[usize],
        victim_cores: &[usize],
        probe_lines: &[u64],
    ) -> Self {
        debug_assert!(banks.is_power_of_two() && sets_per_bank.is_power_of_two());
        let mut obs = LeakageObservatory {
            banks,
            sets_per_bank,
            attacker: vec![false; cores],
            victim: vec![false; cores],
            probed: vec![false; banks * sets_per_bank],
            per_core: vec![CoreLeakage::default(); cores],
            sharp_alarms: 0,
        };
        for &c in attacker_cores {
            if c < cores {
                obs.attacker[c] = true;
            }
        }
        for &c in victim_cores {
            if c < cores {
                obs.victim[c] = true;
            }
        }
        for &line in probe_lines {
            let flat = obs.flat_set(line);
            obs.probed[flat] = true;
        }
        obs
    }

    /// The flat `(bank, set)` index of a raw line address — the same
    /// mapping `LlcConfig::bank_of`/`set_of` use (bank bits low, set
    /// bits above them).
    #[inline]
    fn flat_set(&self, line: u64) -> usize {
        let bank = (line as usize) & (self.banks - 1);
        let set = ((line >> self.banks.trailing_zeros()) as usize) & (self.sets_per_bank - 1);
        bank * self.sets_per_bank + set
    }

    /// Records one inclusion-victim back-invalidation of `line` out of
    /// `core`'s private caches (called from both the inclusive-eviction
    /// and the ECI early-invalidate paths — exactly the sites that bump
    /// `Metrics::inclusion_victims`).
    #[inline]
    pub fn note_back_invalidation(&mut self, core: CoreId, line: LineAddr) {
        let flat = self.flat_set(line.raw());
        let c = &mut self.per_core[core.index()];
        c.back_invalidations += 1;
        if self.probed[flat] {
            c.probed_back_invalidations += 1;
        }
    }

    /// Records the service depth of one access. Only attacker-core
    /// accesses to *probed* sets accumulate (flusher and housekeeping
    /// traffic off the probed sets is the attacker's own, not a
    /// measurement). An access served from memory means the line was
    /// evicted since the attacker last touched it — the distinguishable
    /// "slow probe"; anything still on chip reads as fast.
    #[inline]
    pub fn record_access(&mut self, core: CoreId, line: LineAddr, class: AccessClass) {
        if !self.attacker[core.index()] {
            return;
        }
        let flat = self.flat_set(line.raw());
        if !self.probed[flat] {
            return;
        }
        let c = &mut self.per_core[core.index()];
        match class {
            AccessClass::LlcMissSupplied
            | AccessClass::LlcMissDram
            | AccessClass::InclusionVictimRefetch => c.probe_evictions_seen += 1,
            _ => c.probe_hits += 1,
        }
    }

    /// Records one SHARP cross-core eviction alarm.
    #[inline]
    pub fn note_sharp_alarm(&mut self) {
        self.sharp_alarms += 1;
    }

    /// Drains the observatory into its report; `cycles` is filled in by
    /// the driver (the co-run window length).
    pub fn finish(self) -> LeakageReport {
        let attacker_cores = flags_to_indices(&self.attacker);
        let victim_cores = flags_to_indices(&self.victim);
        LeakageReport {
            per_core: self.per_core,
            attacker_cores,
            victim_cores,
            probed_sets: self.probed.iter().filter(|&&p| p).count(),
            sharp_alarms: self.sharp_alarms,
            cycles: 0,
        }
    }
}

fn flags_to_indices(flags: &[bool]) -> Vec<usize> {
    flags
        .iter()
        .enumerate()
        .filter_map(|(i, &f)| f.then_some(i))
        .collect()
}

/// The end-of-run leakage summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeakageReport {
    /// Per-core counters (indexed by core).
    pub per_core: Vec<CoreLeakage>,
    /// Cores that ran the attacker pattern.
    pub attacker_cores: Vec<usize>,
    /// Cores that ran the secret-dependent victim pattern.
    pub victim_cores: Vec<usize>,
    /// Number of distinct LLC sets the attacker probed.
    pub probed_sets: usize,
    /// SHARP cross-core eviction alarms raised during the run.
    pub sharp_alarms: u64,
    /// Co-run window length in cycles (the slowest core's clock),
    /// filled by the driver after the run completes.
    pub cycles: u64,
}

impl LeakageReport {
    /// Total back-invalidations across every core — conserves exactly
    /// against `Metrics::inclusion_victims`.
    pub fn total_back_invalidations(&self) -> u64 {
        self.per_core.iter().map(|c| c.back_invalidations).sum()
    }

    /// The **signal**: victim-core lines back-invalidated out of
    /// attacker-probed sets — each one an attacker-observable victim
    /// eviction.
    pub fn observable_victim_evictions(&self) -> u64 {
        self.victim_cores
            .iter()
            .map(|&c| self.per_core[c].probed_back_invalidations)
            .sum()
    }

    /// The **noise**: non-victim lines back-invalidated out of probed
    /// sets (background traffic the attacker cannot tell apart from
    /// the victim).
    pub fn noise_evictions(&self) -> u64 {
        self.per_core
            .iter()
            .enumerate()
            .filter(|(c, _)| !self.victim_cores.contains(c))
            .map(|(_, l)| l.probed_back_invalidations)
            .sum()
    }

    /// Attacker probed-set accesses served from memory — the line had
    /// been evicted since the last touch (summed over attacker cores).
    pub fn probe_evictions_seen(&self) -> u64 {
        self.attacker_cores
            .iter()
            .map(|&c| self.per_core[c].probe_evictions_seen)
            .sum()
    }

    /// Attacker probed-set accesses still served on chip.
    pub fn probe_hits(&self) -> u64 {
        self.attacker_cores
            .iter()
            .map(|&c| self.per_core[c].probe_hits)
            .sum()
    }

    /// Fraction of attacker probed-set accesses whose latency
    /// distinguished an eviction (0 when the attacker issued nothing).
    pub fn probe_eviction_rate(&self) -> f64 {
        let seen = self.probe_evictions_seen();
        let total = seen + self.probe_hits();
        if total == 0 {
            0.0
        } else {
            seen as f64 / total as f64
        }
    }

    /// The headline metric: attacker-observable victim evictions per
    /// million cycles of co-run (0 when the window is empty).
    pub fn observable_per_mcycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.observable_victim_evictions() as f64 * 1e6 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(bank: u64, set: u64, banks: u64, tag: u64) -> LineAddr {
        // Compose a line that homes at (bank, set): bank bits low, set
        // bits above, tag above those.
        ziv_common::Addr::new((bank | (set << banks.trailing_zeros()) | (tag << 40)) << 6).line()
    }

    fn obs() -> LeakageObservatory {
        // 4 banks × 16 sets; probe the set that line 5 homes at
        // (bank 1, set 1) and the one line 36 homes at (bank 0, set 9).
        LeakageObservatory::new(4, 4, 16, &[0], &[1], &[5, 36])
    }

    #[test]
    fn probed_membership_is_congruence_not_identity() {
        let mut o = obs();
        // Same (bank, set) as representative line 5, different tag.
        o.note_back_invalidation(CoreId::new(1), line(1, 1, 4, 7));
        // Unprobed set.
        o.note_back_invalidation(CoreId::new(1), line(2, 3, 4, 7));
        // Noise core in a probed set.
        o.note_back_invalidation(CoreId::new(2), line(0, 9, 4, 1));
        let r = o.finish();
        assert_eq!(r.total_back_invalidations(), 3);
        assert_eq!(r.observable_victim_evictions(), 1);
        assert_eq!(r.noise_evictions(), 1);
        assert_eq!(r.probed_sets, 2);
    }

    #[test]
    fn probe_depth_counts_only_attacker_accesses_to_probed_sets() {
        let mut o = obs();
        let probed = line(1, 1, 4, 7);
        let unprobed = line(2, 3, 4, 7);
        o.record_access(CoreId::new(0), probed, AccessClass::LlcHit);
        o.record_access(CoreId::new(0), probed, AccessClass::LlcMissDram);
        o.record_access(CoreId::new(0), probed, AccessClass::InclusionVictimRefetch);
        // Attacker traffic off the probed sets (flushers) is ignored.
        o.record_access(CoreId::new(0), unprobed, AccessClass::LlcMissDram);
        // Victim and noise accesses do not pollute the probe counters.
        o.record_access(CoreId::new(1), probed, AccessClass::LlcMissDram);
        o.record_access(CoreId::new(3), probed, AccessClass::L2Hit);
        let r = o.finish();
        assert_eq!(r.probe_hits(), 1);
        assert_eq!(r.probe_evictions_seen(), 2);
        assert!((r.probe_eviction_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn rate_metrics_handle_empty_windows() {
        let r = obs().finish();
        assert_eq!(r.observable_per_mcycle(), 0.0);
        assert_eq!(r.probe_eviction_rate(), 0.0);
        assert_eq!(r.sharp_alarms, 0);
        assert_eq!(r.attacker_cores, vec![0]);
        assert_eq!(r.victim_cores, vec![1]);
    }

    #[test]
    fn per_mcycle_uses_the_filled_window() {
        let mut o = obs();
        o.note_back_invalidation(CoreId::new(1), line(1, 1, 4, 2));
        o.note_sharp_alarm();
        let mut r = o.finish();
        r.cycles = 2_000_000;
        assert!((r.observable_per_mcycle() - 0.5).abs() < 1e-12);
        assert_eq!(r.sharp_alarms, 1);
    }
}
