//! The forensics observatory: per-line provenance, causal chains, and
//! the instigator × victim blame matrix (DESIGN.md §15).
//!
//! The paper's argument is causal — an LLC replacement decision reaches
//! into a private cache and forces a victim that later pays a re-fetch —
//! but the other observatories only record *that* victims happen. This
//! module records *which allocating access caused them* and *who paid*:
//!
//! * a bounded, direct-mapped **provenance table** stamps each LLC line
//!   at fill time with its allocating access (access index, cycle, core,
//!   home location, and the replacement policy's
//!   [`VictimReason`](crate::llc::VictimReason));
//! * every inclusive back-invalidation or ECI tear-out that victimizes
//!   at least one private copy emits a **causal chain**: instigator
//!   access → eviction decision → per-core victims → (via the same
//!   bounded victim tables the latency observatory uses) the eventual
//!   re-fetch and its cycle cost;
//! * chains aggregate into a **blame matrix** (instigator core × victim
//!   core) plus per-set and per-phase rollups.
//!
//! Conservation is exact and pinned by tests: the matrix's victim total
//! equals [`Metrics::inclusion_victims`](crate::Metrics) (chain victims
//! are noted at exactly the sites that bump the counter), and — because
//! the victim tables replicate the latency observatory's direct-mapped
//! slot/overwrite/clear semantics bit for bit — the matrix's re-fetch
//! cycle total equals
//! [`LatencyReport::inclusion_victim_refetch_cycles`](crate::latency::LatencyReport::inclusion_victim_refetch_cycles)
//! whenever both observatories run. ZIV modes never back-invalidate, so
//! they report exactly zero chains.
//!
//! Like every observatory the forensics layer rides the
//! [`FlightRecorder`](crate::observe::FlightRecorder): never digested,
//! never in the result ledger, one never-taken branch per eviction site
//! when off.

use crate::latency::VICTIM_TABLE_SLOTS;
use crate::llc::VictimReason;
use ziv_common::{CoreId, Cycle, LineAddr};

/// Slots in the direct-mapped provenance table. Like the victim tables,
/// a collision overwrites the older stamp, so a chain's allocation
/// provenance is a floor: when present it is exact, when absent the
/// stamp was displaced by a congruent later fill.
pub const PROVENANCE_SLOTS: usize = 4096;

/// Causal chains retained per run, flight-recorder style (the *last* K
/// chains survive; aggregate counters are never dropped).
pub const CHAIN_RING_CAPACITY: usize = 256;

/// Accesses per workload-phase bucket in the per-phase victim rollup.
pub const PHASE_ACCESSES: u64 = 8192;

/// How a line came to be allocated: the fill-time stamp the provenance
/// table keeps per resident line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProvenanceStamp {
    /// 0-based index of the allocating access.
    pub access_index: u64,
    /// Simulation clock at the fill.
    pub cycle: Cycle,
    /// The core whose access filled the line.
    pub core: CoreId,
    /// Home LLC bank of the fill.
    pub bank: u16,
    /// Home set within the bank.
    pub set: u32,
    /// Way the line was installed into.
    pub way: u8,
    /// Why the victim-selection machinery freed that way.
    pub reason: VictimReason,
}

/// Which eviction mechanism triggered a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainKind {
    /// An inclusive LLC eviction back-invalidated private copies.
    Inclusive,
    /// An ECI early invalidation tore private copies out ahead of the
    /// block's eviction.
    Eci,
}

impl ChainKind {
    /// Stable lowercase label (CSV / trace export).
    pub fn label(self) -> &'static str {
        match self {
            ChainKind::Inclusive => "inclusive",
            ChainKind::Eci => "eci",
        }
    }
}

/// One complete causal chain: instigator access → eviction decision →
/// private-copy victims → (eventually) their re-fetch cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CausalChain {
    /// 0-based chain sequence number (stable instigation order).
    pub seq: u64,
    /// The eviction mechanism.
    pub kind: ChainKind,
    /// The core whose fill instigated the eviction.
    pub instigator_core: CoreId,
    /// 0-based index of the instigating access.
    pub instigator_access: u64,
    /// Simulation clock at the eviction decision.
    pub cycle: Cycle,
    /// The line whose private copies were invalidated.
    pub line: LineAddr,
    /// Home bank of the victimized line.
    pub bank: u16,
    /// Home set of the victimized line.
    pub set: u32,
    /// The instigating fill's victim-choice reason.
    pub reason: VictimReason,
    /// How the victimized line was originally allocated, when its
    /// provenance stamp survived in the bounded table.
    pub alloc: Option<ProvenanceStamp>,
    /// Bitmask of victim cores (bit `c` set ⇔ core `c` lost a copy).
    pub victim_mask: u64,
    /// Private copies invalidated — one per sharer core.
    pub victim_count: u32,
    /// Re-fetches of this line so far attributed back to this chain.
    pub refetches: u32,
    /// Cycles those re-fetches cost (each one's full access latency).
    pub refetch_cycles: u64,
}

/// One per-core victim-table entry: the victimized line plus the chain
/// that caused it, so a later re-fetch can be attributed.
#[derive(Debug, Clone, Copy)]
struct VictimEntry {
    line_raw: u64,
    instigator: CoreId,
    chain_seq: u64,
}

const EMPTY_VICTIM: VictimEntry = VictimEntry {
    line_raw: u64::MAX,
    instigator: CoreId::new(0),
    chain_seq: 0,
};

/// The live observatory, attached to the flight recorder.
#[derive(Debug)]
pub struct ForensicsObservatory {
    cores: usize,
    banks: usize,
    sets_per_bank: usize,
    /// Direct-mapped provenance stamps: `(line_raw, stamp)`, sentinel
    /// `u64::MAX` for empty.
    provenance: Vec<(u64, ProvenanceStamp)>,
    /// Per-core recently-victimized tables — identical slot, overwrite,
    /// and clear semantics as the latency observatory's, so both attribute
    /// the same set of re-fetches.
    victims: Vec<Vec<VictimEntry>>,
    /// Last-K chain ring (same discipline as `EventRing`).
    chains: Vec<CausalChain>,
    chain_head: usize,
    chains_recorded: u64,
    /// A chain opened by the current eviction, not yet closed. Discarded
    /// at close when no victim materialized (ZIV stays chain-free).
    pending: Option<CausalChain>,
    /// Flat `cores × cores` victim counts, `[instigator * cores + victim]`.
    victim_matrix: Vec<u64>,
    /// Flat `cores × cores` re-fetch counts.
    refetch_matrix: Vec<u64>,
    /// Flat `cores × cores` re-fetch cycles.
    refetch_cycle_matrix: Vec<u64>,
    /// Per-(bank, set) victim counts, flat `bank * sets_per_bank + set`.
    set_victims: Vec<u64>,
    /// Victims per [`PHASE_ACCESSES`]-access phase of the run.
    phase_victims: Vec<u64>,
    fills_stamped: u64,
    inclusive_chains: u64,
    eci_chains: u64,
}

impl ForensicsObservatory {
    /// Creates an empty observatory for a `cores`-core system with a
    /// `banks × sets_per_bank` LLC (both powers of two, matching the
    /// leakage observatory's flat-set mapping).
    pub fn new(cores: usize, banks: usize, sets_per_bank: usize) -> Self {
        debug_assert!(banks.is_power_of_two() && sets_per_bank.is_power_of_two());
        debug_assert!(cores <= 64, "victim masks hold at most 64 cores");
        let empty_stamp = ProvenanceStamp {
            access_index: 0,
            cycle: 0,
            core: CoreId::new(0),
            bank: 0,
            set: 0,
            way: 0,
            reason: VictimReason::InvalidWay,
        };
        ForensicsObservatory {
            cores,
            banks,
            sets_per_bank,
            provenance: vec![(u64::MAX, empty_stamp); PROVENANCE_SLOTS],
            victims: vec![vec![EMPTY_VICTIM; VICTIM_TABLE_SLOTS]; cores],
            chains: Vec::with_capacity(CHAIN_RING_CAPACITY),
            chain_head: 0,
            chains_recorded: 0,
            pending: None,
            victim_matrix: vec![0; cores * cores],
            refetch_matrix: vec![0; cores * cores],
            refetch_cycle_matrix: vec![0; cores * cores],
            set_victims: vec![0; banks * sets_per_bank],
            phase_victims: Vec::new(),
            fills_stamped: 0,
            inclusive_chains: 0,
            eci_chains: 0,
        }
    }

    /// The flat `(bank, set)` index of a raw line address — the same
    /// bank-bits-low mapping `LlcConfig::bank_of`/`set_of` use.
    #[inline]
    fn flat_set(&self, line: u64) -> usize {
        let bank = (line as usize) & (self.banks - 1);
        let set = ((line >> self.banks.trailing_zeros()) as usize) & (self.sets_per_bank - 1);
        bank * self.sets_per_bank + set
    }

    /// Stamps a freshly filled line with its allocating access.
    #[inline]
    pub fn stamp_fill(&mut self, line: LineAddr, stamp: ProvenanceStamp) {
        let slot = line.raw() as usize & (PROVENANCE_SLOTS - 1);
        self.provenance[slot] = (line.raw(), stamp);
        self.fills_stamped += 1;
    }

    /// Looks up (without clearing) the provenance of a resident line.
    #[inline]
    fn provenance_peek(&self, line: LineAddr) -> Option<ProvenanceStamp> {
        let slot = line.raw() as usize & (PROVENANCE_SLOTS - 1);
        let (raw, stamp) = self.provenance[slot];
        (raw == line.raw()).then_some(stamp)
    }

    /// Takes (and clears) the provenance of a line leaving the LLC.
    #[inline]
    fn provenance_take(&mut self, line: LineAddr) -> Option<ProvenanceStamp> {
        let slot = line.raw() as usize & (PROVENANCE_SLOTS - 1);
        let (raw, stamp) = self.provenance[slot];
        if raw == line.raw() {
            self.provenance[slot].0 = u64::MAX;
            Some(stamp)
        } else {
            None
        }
    }

    /// Opens a chain for one eviction decision. The chain is kept only
    /// if [`chain_victim`](Self::chain_victim) records at least one
    /// private-copy victim before [`close_chain`](Self::close_chain);
    /// otherwise it is discarded, which is how ZIV modes (whose
    /// relocation-set evictions are provably never privately cached)
    /// stay at exactly zero chains. An inclusive eviction removes the
    /// line, so its provenance stamp is consumed; an ECI tear-out leaves
    /// the LLC copy resident and only peeks.
    #[allow(clippy::too_many_arguments)]
    pub fn open_chain(
        &mut self,
        kind: ChainKind,
        instigator_core: CoreId,
        instigator_access: u64,
        cycle: Cycle,
        line: LineAddr,
        reason: VictimReason,
    ) {
        debug_assert!(self.pending.is_none(), "chains never nest");
        let alloc = match kind {
            ChainKind::Inclusive => self.provenance_take(line),
            ChainKind::Eci => self.provenance_peek(line),
        };
        let flat = self.flat_set(line.raw());
        self.pending = Some(CausalChain {
            seq: self.chains_recorded,
            kind,
            instigator_core,
            instigator_access,
            cycle,
            line,
            bank: (flat / self.sets_per_bank) as u16,
            set: (flat % self.sets_per_bank) as u32,
            reason,
            alloc,
            victim_mask: 0,
            victim_count: 0,
            refetches: 0,
            refetch_cycles: 0,
        });
    }

    /// Records one private-copy victim of the open chain — called from
    /// exactly the sites that bump `Metrics::inclusion_victims`, which
    /// is what makes the victim total conserve.
    #[inline]
    pub fn chain_victim(&mut self, victim: CoreId) {
        let chain = self
            .pending
            .as_mut()
            .expect("chain_victim outside an open chain");
        chain.victim_mask |= 1 << victim.index().min(63);
        chain.victim_count += 1;
        let seq = chain.seq;
        let instigator = chain.instigator_core;
        let line = chain.line;
        let phase = (chain.instigator_access / PHASE_ACCESSES) as usize;
        let flat = self.flat_set(line.raw());
        self.victim_matrix[instigator.index() * self.cores + victim.index()] += 1;
        self.set_victims[flat] += 1;
        if self.phase_victims.len() <= phase {
            self.phase_victims.resize(phase + 1, 0);
        }
        self.phase_victims[phase] += 1;
        // Remember the victimization so the core's next miss on the line
        // can be attributed back to this chain — same direct-mapped
        // slot/overwrite discipline as the latency observatory.
        let slot = line.raw() as usize & (VICTIM_TABLE_SLOTS - 1);
        self.victims[victim.index()][slot] = VictimEntry {
            line_raw: line.raw(),
            instigator,
            chain_seq: seq,
        };
    }

    /// Closes the chain opened by the current eviction, retaining it
    /// only when it victimized at least one private copy.
    pub fn close_chain(&mut self) {
        let chain = self.pending.take().expect("close_chain without open_chain");
        if chain.victim_count == 0 {
            return;
        }
        match chain.kind {
            ChainKind::Inclusive => self.inclusive_chains += 1,
            ChainKind::Eci => self.eci_chains += 1,
        }
        if self.chains.len() < CHAIN_RING_CAPACITY {
            self.chains.push(chain);
        } else {
            self.chains[self.chain_head] = chain;
            self.chain_head = (self.chain_head + 1) % CHAIN_RING_CAPACITY;
        }
        self.chains_recorded += 1;
    }

    /// Whether `core`'s miss on `line` re-fetches a recently victimized
    /// copy; clears the entry (one victimization explains at most one
    /// re-fetch) and returns the instigating `(core, chain seq)`.
    ///
    /// Mirrors `LatencyObservatory::take_victim` exactly: when both
    /// observatories run, they note and take the same sequence of
    /// entries, so their re-fetch attributions agree bit for bit.
    #[inline]
    pub fn take_victim(&mut self, core: CoreId, line: LineAddr) -> Option<(CoreId, u64)> {
        let slot = line.raw() as usize & (VICTIM_TABLE_SLOTS - 1);
        let entry = &mut self.victims[core.index()][slot];
        if entry.line_raw == line.raw() {
            let hit = (entry.instigator, entry.chain_seq);
            *entry = EMPTY_VICTIM;
            Some(hit)
        } else {
            None
        }
    }

    /// Attributes one completed re-fetch (full access latency `cycles`)
    /// back to the chain `take_victim` identified. The blame matrix is
    /// updated unconditionally; the chain record itself only if it still
    /// sits in the bounded ring.
    pub fn record_refetch(&mut self, instigator: CoreId, victim: CoreId, seq: u64, cycles: Cycle) {
        let cell = instigator.index() * self.cores + victim.index();
        self.refetch_matrix[cell] += 1;
        self.refetch_cycle_matrix[cell] += cycles;
        if let Some(chain) = self.chains.iter_mut().find(|c| c.seq == seq) {
            chain.refetches += 1;
            chain.refetch_cycles += cycles;
        }
    }

    /// Seals the observatory into its report.
    pub fn finish(mut self) -> ForensicsReport {
        debug_assert!(self.pending.is_none(), "run ended mid-chain");
        // Unroll the ring into instigation order.
        let mut chains = Vec::with_capacity(self.chains.len());
        chains.extend_from_slice(&self.chains[self.chain_head..]);
        chains.extend_from_slice(&self.chains[..self.chain_head]);
        self.chains.clear();
        ForensicsReport {
            cores: self.cores,
            banks: self.banks,
            sets_per_bank: self.sets_per_bank,
            victim_matrix: self.victim_matrix,
            refetch_matrix: self.refetch_matrix,
            refetch_cycle_matrix: self.refetch_cycle_matrix,
            set_victims: self.set_victims,
            phase_victims: self.phase_victims,
            chains,
            chains_recorded: self.chains_recorded,
            inclusive_chains: self.inclusive_chains,
            eci_chains: self.eci_chains,
            fills_stamped: self.fills_stamped,
        }
    }
}

/// The end-of-run forensics payload, carried in
/// [`Observations`](crate::observe::Observations).
#[derive(Debug, Clone, PartialEq)]
pub struct ForensicsReport {
    /// Core count (matrix dimension).
    pub cores: usize,
    /// LLC banks (per-set rollup rows).
    pub banks: usize,
    /// Sets per bank (per-set rollup columns).
    pub sets_per_bank: usize,
    /// Flat `cores × cores` victim counts,
    /// `[instigator * cores + victim]`.
    pub victim_matrix: Vec<u64>,
    /// Flat `cores × cores` re-fetch counts.
    pub refetch_matrix: Vec<u64>,
    /// Flat `cores × cores` re-fetch cycles.
    pub refetch_cycle_matrix: Vec<u64>,
    /// Per-(bank, set) victim counts, flat `bank * sets + set`.
    pub set_victims: Vec<u64>,
    /// Victims per [`PHASE_ACCESSES`]-access phase.
    pub phase_victims: Vec<u64>,
    /// The last [`CHAIN_RING_CAPACITY`] chains, instigation order.
    pub chains: Vec<CausalChain>,
    /// Chains ever recorded (including ring-overwritten ones).
    pub chains_recorded: u64,
    /// Chains whose mechanism was an inclusive eviction.
    pub inclusive_chains: u64,
    /// Chains whose mechanism was an ECI early invalidation.
    pub eci_chains: u64,
    /// Fills stamped into the provenance table.
    pub fills_stamped: u64,
}

impl ForensicsReport {
    /// One blame cell's victim count.
    pub fn victims(&self, instigator: usize, victim: usize) -> u64 {
        self.victim_matrix[instigator * self.cores + victim]
    }

    /// One blame cell's re-fetch count.
    pub fn refetches(&self, instigator: usize, victim: usize) -> u64 {
        self.refetch_matrix[instigator * self.cores + victim]
    }

    /// One blame cell's re-fetch cycles.
    pub fn refetch_cycles(&self, instigator: usize, victim: usize) -> u64 {
        self.refetch_cycle_matrix[instigator * self.cores + victim]
    }

    /// Total victims across the matrix — conserves exactly against
    /// `Metrics::inclusion_victims`.
    pub fn total_victims(&self) -> u64 {
        self.victim_matrix.iter().sum()
    }

    /// Total attributed re-fetches.
    pub fn total_refetches(&self) -> u64 {
        self.refetch_matrix.iter().sum()
    }

    /// Total attributed re-fetch cycles — equals
    /// `LatencyReport::inclusion_victim_refetch_cycles()` when the
    /// latency observatory ran alongside.
    pub fn total_refetch_cycles(&self) -> u64 {
        self.refetch_cycle_matrix.iter().sum()
    }

    /// Victims instigated by `core` against *other* cores (the
    /// cross-core slice an isolation defense eliminates).
    pub fn cross_core_victims(&self, core: usize) -> u64 {
        (0..self.cores)
            .filter(|&v| v != core)
            .map(|v| self.victims(core, v))
            .sum()
    }

    /// The retained chains ordered most-damaging first: by victim
    /// count, then re-fetch cycles, then earliest sequence — a total
    /// order, so the `blame` table is deterministic across thread
    /// counts.
    pub fn top_chains(&self, k: usize) -> Vec<&CausalChain> {
        let mut ordered: Vec<&CausalChain> = self.chains.iter().collect();
        ordered.sort_by(|a, b| {
            b.victim_count
                .cmp(&a.victim_count)
                .then(b.refetch_cycles.cmp(&a.refetch_cycles))
                .then(a.seq.cmp(&b.seq))
        });
        ordered.truncate(k);
        ordered
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp(access: u64, core: usize) -> ProvenanceStamp {
        ProvenanceStamp {
            access_index: access,
            cycle: access * 10,
            core: CoreId::new(core),
            bank: 0,
            set: 1,
            way: 2,
            reason: VictimReason::Baseline,
        }
    }

    fn line(raw: u64) -> LineAddr {
        LineAddr::new(raw)
    }

    #[test]
    fn chain_records_victims_and_provenance() {
        let mut f = ForensicsObservatory::new(4, 4, 16);
        f.stamp_fill(line(0x55), stamp(3, 2));
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(0),
            10,
            100,
            line(0x55),
            VictimReason::QbsFallback,
        );
        f.chain_victim(CoreId::new(1));
        f.chain_victim(CoreId::new(2));
        f.close_chain();
        let r = f.finish();
        assert_eq!(r.total_victims(), 2);
        assert_eq!(r.victims(0, 1), 1);
        assert_eq!(r.victims(0, 2), 1);
        assert_eq!(r.chains_recorded, 1);
        assert_eq!(r.inclusive_chains, 1);
        let c = &r.chains[0];
        assert_eq!(c.victim_count, 2);
        assert_eq!(c.victim_mask, 0b110);
        assert_eq!(c.reason, VictimReason::QbsFallback);
        assert_eq!(c.alloc.unwrap().access_index, 3);
        assert_eq!(c.alloc.unwrap().core.index(), 2);
        assert_eq!(r.cross_core_victims(0), 2);
        assert_eq!(r.phase_victims, vec![2]);
    }

    #[test]
    fn victimless_chains_are_discarded() {
        let mut f = ForensicsObservatory::new(2, 4, 16);
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(0),
            0,
            0,
            line(0x10),
            VictimReason::ZivRelocation,
        );
        f.close_chain();
        let r = f.finish();
        assert_eq!(r.chains_recorded, 0);
        assert_eq!(r.total_victims(), 0);
        assert!(r.chains.is_empty());
    }

    #[test]
    fn inclusive_chain_consumes_provenance_eci_peeks() {
        let mut f = ForensicsObservatory::new(2, 4, 16);
        f.stamp_fill(line(0x20), stamp(1, 0));
        // ECI tear-out leaves the LLC copy (and its stamp) resident.
        f.open_chain(
            ChainKind::Eci,
            CoreId::new(0),
            5,
            50,
            line(0x20),
            VictimReason::Baseline,
        );
        f.chain_victim(CoreId::new(1));
        f.close_chain();
        // The later inclusive eviction still sees the stamp, then
        // consumes it.
        f.open_chain(
            ChainKind::Inclusive,
            CoreId::new(1),
            9,
            90,
            line(0x20),
            VictimReason::Baseline,
        );
        f.chain_victim(CoreId::new(0));
        f.close_chain();
        let r = f.finish();
        assert_eq!(r.eci_chains, 1);
        assert_eq!(r.inclusive_chains, 1);
        assert!(r.chains[0].alloc.is_some());
        assert!(r.chains[1].alloc.is_some());
    }

    #[test]
    fn refetch_attribution_mirrors_latency_table_semantics() {
        use crate::latency::LatencyObservatory;
        let mut f = ForensicsObservatory::new(2, 4, 16);
        let mut l = LatencyObservatory::new(2);
        let a = line(0x7);
        let b = line(0x7 + VICTIM_TABLE_SLOTS as u64); // same slot as `a`
        for (victim_line, seq_access) in [(a, 0), (b, 1)] {
            f.open_chain(
                ChainKind::Inclusive,
                CoreId::new(0),
                seq_access,
                0,
                victim_line,
                VictimReason::Baseline,
            );
            f.chain_victim(CoreId::new(1));
            f.close_chain();
            l.note_back_invalidation(CoreId::new(1), victim_line);
        }
        // The collision overwrote `a` in *both* tables.
        assert!(!l.take_victim(CoreId::new(1), a));
        assert!(f.take_victim(CoreId::new(1), a).is_none());
        let hit = f.take_victim(CoreId::new(1), b).expect("b remembered");
        assert!(l.take_victim(CoreId::new(1), b));
        assert_eq!(hit.0.index(), 0);
        f.record_refetch(hit.0, CoreId::new(1), hit.1, 123);
        // Taking clears: a second miss on the line is not a re-fetch.
        assert!(f.take_victim(CoreId::new(1), b).is_none());
        let r = f.finish();
        assert_eq!(r.total_refetches(), 1);
        assert_eq!(r.total_refetch_cycles(), 123);
        assert_eq!(r.refetch_cycles(0, 1), 123);
        let back = r.chains.iter().find(|c| c.seq == hit.1).unwrap();
        assert_eq!(back.refetch_cycles, 123);
        assert_eq!(back.refetches, 1);
    }

    #[test]
    fn chain_ring_keeps_last_k_but_counters_keep_everything() {
        let mut f = ForensicsObservatory::new(2, 4, 16);
        let n = CHAIN_RING_CAPACITY as u64 + 10;
        for i in 0..n {
            f.open_chain(
                ChainKind::Inclusive,
                CoreId::new(0),
                i,
                i,
                line(0x40 + i),
                VictimReason::Baseline,
            );
            f.chain_victim(CoreId::new(1));
            f.close_chain();
        }
        let r = f.finish();
        assert_eq!(r.chains_recorded, n);
        assert_eq!(r.total_victims(), n, "aggregates survive ring overwrite");
        assert_eq!(r.chains.len(), CHAIN_RING_CAPACITY);
        assert_eq!(r.chains[0].seq, 10, "oldest retained chain");
        assert_eq!(r.chains.last().unwrap().seq, n - 1);
    }

    #[test]
    fn top_chains_order_is_total_and_deterministic() {
        let mut f = ForensicsObservatory::new(4, 4, 16);
        for (i, victims) in [2u32, 1, 2].iter().enumerate() {
            f.open_chain(
                ChainKind::Inclusive,
                CoreId::new(0),
                i as u64,
                0,
                line(0x100 + i as u64),
                VictimReason::Baseline,
            );
            for v in 0..*victims {
                f.chain_victim(CoreId::new(1 + v as usize));
            }
            f.close_chain();
        }
        let r = f.finish();
        let top: Vec<u64> = r.top_chains(2).iter().map(|c| c.seq).collect();
        // Ties on victim count and cycles break by earliest sequence.
        assert_eq!(top, vec![0, 2]);
        assert_eq!(r.top_chains(10).len(), 3);
    }

    #[test]
    fn phase_rollup_buckets_by_instigator_access() {
        let mut f = ForensicsObservatory::new(2, 4, 16);
        for access in [0, PHASE_ACCESSES - 1, PHASE_ACCESSES * 2] {
            f.open_chain(
                ChainKind::Inclusive,
                CoreId::new(0),
                access,
                0,
                line(0x40 + access),
                VictimReason::Baseline,
            );
            f.chain_victim(CoreId::new(1));
            f.close_chain();
        }
        let r = f.finish();
        assert_eq!(r.phase_victims, vec![2, 0, 1]);
        assert_eq!(r.set_victims.iter().sum::<u64>(), r.total_victims());
    }
}
