//! The full CMP cache hierarchy: per-core private caches, the shared
//! LLC (in any of the seven modes), the sparse directory, the CHAR
//! engine, the mesh, and main memory — orchestrated access by access.

use crate::audit::FaultInjection;
use crate::forensics::{ChainKind, ProvenanceStamp};
use crate::latency::{AccessClass, LatencyBreakdown};
use crate::llc::{EvictedBlock, FillOutcome, LlcMode, SharedLlc, VictimReason, ZivProperty};
use crate::metrics::Metrics;
use crate::observe::{EventKind, FlightRecorder, TraceEvent};
use crate::prefetch::{PrefetchConfig, StridePrefetcher};
use crate::private::{EvictionNotice, PrivLookup, PrivateHierarchy};
use crate::profile::{ProfileSection, SelfProfiler};
use std::rc::Rc;
use std::time::Instant;
use ziv_char::{CharConfig, CharEngine};
use ziv_common::config::SystemConfig;
use ziv_common::{Addr, CoreId, Cycle, LineAddr};
use ziv_directory::{DirectoryMode, EvictedEntry, LlcLocation, RemovalOutcome, SparseDirectory};
use ziv_dram::DramModel;
use ziv_noc::Mesh;
use ziv_replacement::{AccessCtx, FutureKnowledge, PolicyKind};

/// One demand access from a core.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Issuing core.
    pub core: CoreId,
    /// Byte address.
    pub addr: Addr,
    /// Program counter (feeds Hawkeye's predictor).
    pub pc: u64,
    /// Whether this is a store.
    pub is_write: bool,
    /// Whether this is an instruction fetch.
    pub is_instr: bool,
}

impl Access {
    /// A data read.
    pub fn read(core: CoreId, addr: Addr, pc: u64) -> Self {
        Access {
            core,
            addr,
            pc,
            is_write: false,
            is_instr: false,
        }
    }

    /// A data write.
    pub fn write(core: CoreId, addr: Addr, pc: u64) -> Self {
        Access {
            core,
            addr,
            pc,
            is_write: true,
            is_instr: false,
        }
    }

    /// An instruction fetch.
    pub fn ifetch(core: CoreId, addr: Addr, pc: u64) -> Self {
        Access {
            core,
            addr,
            pc,
            is_write: false,
            is_instr: true,
        }
    }
}

/// Configuration for building a [`CacheHierarchy`].
#[derive(Debug, Clone)]
pub struct HierarchyConfig {
    /// The machine (Table I).
    pub system: SystemConfig,
    /// LLC management mode.
    pub mode: LlcMode,
    /// Baseline LLC replacement policy.
    pub policy: PolicyKind,
    /// Sparse-directory eviction handling.
    pub dir_mode: DirectoryMode,
    /// CHAR tuning.
    pub char_cfg: CharConfig,
    /// Seed for the (rare) randomized choices (SHARP step 3).
    pub seed: u64,
    /// Future knowledge for the MIN oracle policy.
    pub future: Option<Rc<dyn FutureKnowledge>>,
    /// Optional per-core stride prefetcher (the prefetching × inclusion
    /// extension study; Table I's machine has none).
    pub prefetch: Option<PrefetchConfig>,
    /// Optional deliberate fault injection (mutation tests and campaign
    /// fault-isolation tests). `None` in every real experiment.
    pub fault: Option<FaultInjection>,
}

impl HierarchyConfig {
    /// Default configuration: inclusive LLC, LRU, MESI directory.
    pub fn new(system: SystemConfig) -> Self {
        HierarchyConfig {
            system,
            mode: LlcMode::Inclusive,
            policy: PolicyKind::Lru,
            dir_mode: DirectoryMode::Mesi,
            char_cfg: CharConfig::default(),
            seed: 0x5eed,
            future: None,
            prefetch: None,
            fault: None,
        }
    }

    /// Sets the LLC mode.
    pub fn with_mode(mut self, mode: LlcMode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the baseline replacement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the directory mode (Fig 15's ZeroDEV arm).
    pub fn with_dir_mode(mut self, dir_mode: DirectoryMode) -> Self {
        self.dir_mode = dir_mode;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Supplies future knowledge (required for [`PolicyKind::Min`]).
    pub fn with_future(mut self, future: Rc<dyn FutureKnowledge>) -> Self {
        self.future = Some(future);
        self
    }

    /// Sets CHAR tuning.
    pub fn with_char(mut self, char_cfg: CharConfig) -> Self {
        self.char_cfg = char_cfg;
        self
    }

    /// Enables per-core stride prefetching.
    pub fn with_prefetch(mut self, prefetch: PrefetchConfig) -> Self {
        self.prefetch = Some(prefetch);
        self
    }

    /// Arms a deliberate fault (see [`FaultInjection`]).
    pub fn with_fault(mut self, fault: FaultInjection) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// The simulated cache hierarchy.
#[derive(Debug)]
pub struct CacheHierarchy {
    cfg: SystemConfig,
    mode: LlcMode,
    cores: Vec<PrivateHierarchy>,
    llc: SharedLlc,
    dir: SparseDirectory,
    char_engine: CharEngine,
    dram: DramModel,
    mesh: Mesh,
    metrics: Metrics,
    notice_buf: Vec<EvictionNotice>,
    prefetchers: Option<Vec<StridePrefetcher>>,
    /// Per-core private-hit counters for TLH hint sampling.
    tlh_counters: Vec<u32>,
    /// Armed fault injection; cleared once a one-shot fault is applied.
    fault: Option<FaultInjection>,
    /// Demand accesses performed (drives fault timing; also the access
    /// index reported by [`CacheHierarchy::verify_invariants`]).
    accesses_done: u64,
    /// When set, the next inclusive back-invalidation is "lost"
    /// ([`FaultInjection::SkipBackInvalidation`]).
    skip_next_back_invalidation: bool,
    /// Set when an injected [`FaultInjection::HangCore`] fires: the
    /// model is wedged and will make no further progress. The driver
    /// polls [`CacheHierarchy::is_hung`] and parks the cell until the
    /// supervisor cancels it.
    hung: bool,
    /// Attached flight recorder (events/heatmaps). `None` in every
    /// untraced run: each emission site pays one branch and nothing
    /// else, keeping the hot path allocation-free.
    recorder: Option<Box<FlightRecorder>>,
    /// Attached wall-clock self-profiler (`--profile`). `None` in every
    /// unprofiled run: each span pays one branch and never reads the
    /// clock, so timing cannot perturb simulation results.
    profiler: Option<Box<SelfProfiler>>,
    /// Set between [`CacheHierarchy::begin_warmup`] and
    /// [`CacheHierarchy::end_warmup`]: the metrics snapshot to restore
    /// plus the observability hooks parked for the duration, making
    /// functional warmup provably metric-silent.
    warmup: Option<Box<WarmupSnapshot>>,
}

/// State parked by [`CacheHierarchy::begin_warmup`].
#[derive(Debug)]
struct WarmupSnapshot {
    metrics: Metrics,
    recorder: Option<Box<FlightRecorder>>,
    profiler: Option<Box<SelfProfiler>>,
}

impl CacheHierarchy {
    /// Builds the hierarchy.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.policy` is [`PolicyKind::Min`] and no future
    /// knowledge was supplied, or if a `MaxRRPV*` ZIV property is paired
    /// with a policy that has no RRPVs.
    pub fn new(cfg: &HierarchyConfig) -> Self {
        if let LlcMode::Ziv(p @ (ZivProperty::MaxRrpvNotInPrC | ZivProperty::MaxRrpvLikelyDead)) =
            cfg.mode
        {
            assert!(
                cfg.policy.is_rrpv_based(),
                "{} requires an RRPV-graded policy (SRRIP/Hawkeye)",
                p.label()
            );
        }
        let sys = &cfg.system;
        let cores = (0..sys.cores)
            .map(|_| PrivateHierarchy::new(sys.l1i, sys.l1d, sys.l2))
            .collect();
        let future = cfg.future.clone();
        let policy_kind = cfg.policy;
        let seed = cfg.seed;
        let llc = SharedLlc::new(
            sys.llc,
            cfg.mode,
            policy_kind,
            |b| {
                policy_kind.build_with_future(
                    sys.llc.bank_geometry,
                    seed ^ b as u64,
                    future.clone(),
                )
            },
            seed,
        );
        let mut h = CacheHierarchy {
            cfg: sys.clone(),
            mode: cfg.mode,
            cores,
            llc,
            dir: SparseDirectory::new(sys, cfg.dir_mode),
            char_engine: CharEngine::new(sys.cores, sys.llc.banks, cfg.char_cfg),
            dram: DramModel::new(sys.dram),
            mesh: Mesh::new(sys.cores, sys.llc.banks, sys.noc),
            metrics: Metrics::new(sys.cores),
            notice_buf: Vec::new(),
            prefetchers: cfg
                .prefetch
                .map(|p| (0..sys.cores).map(|_| StridePrefetcher::new(p)).collect()),
            tlh_counters: vec![0; sys.cores],
            fault: cfg.fault,
            accesses_done: 0,
            skip_next_back_invalidation: false,
            hung: false,
            recorder: None,
            profiler: None,
            warmup: None,
        };
        if let LlcMode::WayPartitioned = cfg.mode {
            let parts = sys.cores.min(sys.llc.bank_geometry.ways as usize);
            h.llc.set_partitions(parts);
        }
        h
    }

    /// The system configuration.
    pub fn system(&self) -> &SystemConfig {
        &self.cfg
    }

    /// The LLC mode.
    pub fn mode(&self) -> LlcMode {
        self.mode
    }

    /// The accumulated statistics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable statistics (the driving simulator records instructions
    /// and cycles here).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Attaches a flight recorder; subsequent accesses emit events
    /// and/or heatmap counts into it. Recording never alters simulation
    /// behavior or metrics.
    pub fn attach_recorder(&mut self, recorder: Box<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// Detaches the flight recorder for draining, if one was attached.
    pub fn take_recorder(&mut self) -> Option<Box<FlightRecorder>> {
        self.recorder.take()
    }

    /// Attaches a wall-clock self-profiler; subsequent accesses time the
    /// instrumented subsystems into it. Profiling never alters
    /// simulation behavior or metrics.
    pub fn attach_profiler(&mut self, profiler: Box<SelfProfiler>) {
        self.profiler = Some(profiler);
    }

    /// Detaches the self-profiler for reporting, if one was attached.
    pub fn take_profiler(&mut self) -> Option<Box<SelfProfiler>> {
        self.profiler.take()
    }

    /// Enters **functional warmup**: subsequent [`CacheHierarchy::access`]
    /// calls update every piece of microarchitectural state (caches,
    /// directory, replacement, CHAR, DRAM row state) exactly as usual,
    /// but the timing [`Metrics`] are restored verbatim when
    /// [`CacheHierarchy::end_warmup`] closes the scope, and the flight
    /// recorder / self-profiler are parked so observability sees
    /// nothing. This is the sampling engine's fast-forward primitive:
    /// state gets warmed, statistics stay silent.
    ///
    /// # Panics
    ///
    /// Panics if a warmup scope is already open.
    pub fn begin_warmup(&mut self) {
        assert!(self.warmup.is_none(), "warmup scope is already open");
        self.warmup = Some(Box::new(WarmupSnapshot {
            metrics: self.metrics.clone(),
            recorder: self.recorder.take(),
            profiler: self.profiler.take(),
        }));
    }

    /// Leaves functional warmup: restores the [`Metrics`] snapshot taken
    /// by [`CacheHierarchy::begin_warmup`] and re-attaches any parked
    /// observability hooks. Microarchitectural state keeps everything
    /// the warm accesses taught it.
    ///
    /// # Panics
    ///
    /// Panics if no warmup scope is open.
    pub fn end_warmup(&mut self) {
        let snap = self.warmup.take().expect("no warmup scope is open");
        self.metrics = snap.metrics;
        self.recorder = snap.recorder;
        self.profiler = snap.profiler;
    }

    /// Whether a functional-warmup scope is currently open.
    pub fn is_warming(&self) -> bool {
        self.warmup.is_some()
    }

    /// Adds one externally-timed span (the driver uses this for the
    /// whole-access and audit sections); a no-op without a profiler.
    #[inline]
    pub fn profile_add(&mut self, section: ProfileSection, elapsed: std::time::Duration) {
        if let Some(p) = self.profiler.as_mut() {
            p.add(section, elapsed);
        }
    }

    /// Starts a span: reads the clock only when a profiler is attached.
    #[inline]
    fn span_start(&self) -> Option<Instant> {
        self.profiler.is_some().then(Instant::now)
    }

    /// Ends a span started by [`Self::span_start`].
    #[inline]
    fn span_end(&mut self, t0: Option<Instant>, section: ProfileSection) {
        if let Some(t0) = t0 {
            if let Some(p) = self.profiler.as_mut() {
                p.add(section, t0.elapsed());
            }
        }
    }

    /// Records an audit violation into the attached recorder (no-op
    /// without one); the driver calls this before aborting a run so the
    /// ring retains the verdict alongside the events leading up to it.
    pub fn record_audit_violation(&mut self, v: &ziv_common::AuditViolation, now: Cycle) {
        if let Some(rec) = self.recorder.as_mut() {
            rec.record_violation(v, now);
        }
    }

    /// Emits one typed event at the current access index; a single
    /// branch when no recorder is attached.
    #[inline]
    fn emit_event(
        &mut self,
        kind: EventKind,
        now: Cycle,
        line: LineAddr,
        core: Option<CoreId>,
        loc: Option<LlcLocation>,
    ) {
        let Some(rec) = self.recorder.as_mut() else {
            return;
        };
        rec.record(TraceEvent {
            kind,
            access_index: self.accesses_done.saturating_sub(1),
            cycle: now,
            line: line.raw(),
            core: core.map(|c| c.index() as u16),
            bank: loc.map(|l| l.bank.index() as u16),
            set: loc.map(|l| l.set),
            way: loc.map(|l| l.way),
        });
    }

    /// The DRAM model (energy/row-hit diagnostics).
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// The CHAR engine (threshold diagnostics).
    pub fn char_engine(&self) -> &CharEngine {
        &self.char_engine
    }

    /// The sparse directory (occupancy diagnostics, tests).
    pub fn directory(&self) -> &SparseDirectory {
        &self.dir
    }

    /// The shared LLC (tests).
    pub fn llc(&self) -> &SharedLlc {
        &self.llc
    }

    /// Merges per-bank relocation-interval histograms into the metrics
    /// (call once at end of simulation; Fig 18).
    pub fn finalize(&mut self) {
        for b in 0..self.llc.bank_count() {
            let hist = self
                .llc
                .bank(ziv_common::BankId::new(b))
                .relocation_intervals
                .clone();
            self.metrics.relocation_intervals.merge(&hist);
        }
        self.metrics.dram_energy_pj = self.dram.total_energy_pj();
    }

    /// Performs one demand access at cycle `now` with global stream
    /// position `seq`; returns the access latency in cycles.
    ///
    /// Every returned latency is the sum of a per-component
    /// [`LatencyBreakdown`], and that same sum is accumulated into
    /// [`Metrics::access_latency_cycles`] — the conservation anchor the
    /// latency observatory reconciles against. Injected fault stalls
    /// bypass both.
    pub fn access(&mut self, a: &Access, now: Cycle, seq: u64) -> Cycle {
        let access_index = self.accesses_done;
        self.accesses_done += 1;
        if self.fault.is_some() {
            if let Some(stall) = self.apply_fault(access_index, a.core) {
                return stall;
            }
        }
        let line = a.addr.line();
        let ci = a.core.index();
        self.metrics.per_core[ci].accesses += 1;
        let outcome = self.cores[ci].access(line, a.is_instr, a.is_write, &mut self.notice_buf);
        let mut forensic_refetch = None;
        let (breakdown, class) = match outcome {
            PrivLookup::L1Hit => {
                self.drain_notices(a.core, now);
                if a.is_write {
                    self.ensure_exclusive(line, a.core, now);
                }
                self.maybe_send_tlh_hint(a, line, now, seq);
                let b = LatencyBreakdown {
                    l1: self.cfg.l1_latency.max(1),
                    ..LatencyBreakdown::default()
                };
                (b, AccessClass::L1Hit)
            }
            PrivLookup::L2Hit => {
                self.metrics.per_core[ci].l1_misses += 1;
                self.metrics.l2_energy_events += 1;
                self.drain_notices(a.core, now);
                if a.is_write {
                    self.ensure_exclusive(line, a.core, now);
                }
                self.maybe_send_tlh_hint(a, line, now, seq);
                self.issue_prefetches(a, line, now, seq);
                let b = LatencyBreakdown {
                    l2: self.cfg.l2_latency,
                    ..LatencyBreakdown::default()
                };
                (b, AccessClass::L2Hit)
            }
            PrivLookup::Miss => {
                self.metrics.per_core[ci].l1_misses += 1;
                self.metrics.per_core[ci].l2_misses += 1;
                self.metrics.l2_energy_events += 1;
                // A prior back-invalidation of this very line from this
                // core's private caches makes this miss an inclusion-
                // victim re-fetch: its whole latency is the inclusion
                // cost the paper's Fig 2 describes.
                let refetch = self
                    .recorder
                    .as_mut()
                    .and_then(|r| r.latency_mut())
                    .is_some_and(|l| l.take_victim(a.core, line));
                // The forensics table mirrors the latency table entry for
                // entry, but also remembers *who* instigated the
                // victimization, closing the causal chain.
                forensic_refetch = self
                    .recorder
                    .as_mut()
                    .and_then(|r| r.forensics_mut())
                    .and_then(|f| f.take_victim(a.core, line));
                let (b, mut class) = self.llc_access(a, line, now, seq);
                if refetch {
                    class = AccessClass::InclusionVictimRefetch;
                }
                self.issue_prefetches(a, line, now, seq);
                (b, class)
            }
        };
        let lat = breakdown.total();
        self.metrics.access_latency_cycles += lat;
        if let Some((instigator, chain_seq)) = forensic_refetch {
            if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                f.record_refetch(instigator, a.core, chain_seq, lat);
            }
        }
        if let Some(obs) = self.recorder.as_mut().and_then(|r| r.latency_mut()) {
            obs.record(a.core, class, &breakdown);
        }
        if let Some(obs) = self.recorder.as_mut().and_then(|r| r.leakage_mut()) {
            obs.record_access(a.core, line, class);
        }
        lat
    }

    /// TLH (Jaleel et al. MICRO 2010): every `hint_one_in`-th private-
    /// cache hit informs the LLC so the block's replacement state stays
    /// fresh despite the hit being invisible to the LLC.
    fn maybe_send_tlh_hint(&mut self, a: &Access, line: LineAddr, now: Cycle, seq: u64) {
        let LlcMode::Tlh { hint_one_in } = self.mode else {
            return;
        };
        let ci = a.core.index();
        self.tlh_counters[ci] += 1;
        if self.tlh_counters[ci] < hint_one_in {
            return;
        }
        self.tlh_counters[ci] = 0;
        if let Some(loc) = self.llc.probe(line) {
            let ctx = AccessCtx {
                line,
                pc: a.pc,
                core: a.core,
                now,
                seq,
                is_write: false,
            };
            self.llc.on_hit(loc, &ctx);
            self.metrics.tlh_hints += 1;
        }
    }

    /// Trains the core's stride prefetcher on the L1-miss stream and
    /// performs the resulting prefetch fills (off the critical path: no
    /// latency is charged to the core).
    fn issue_prefetches(&mut self, a: &Access, line: LineAddr, now: Cycle, seq: u64) {
        let Some(prefetchers) = self.prefetchers.as_mut() else {
            return;
        };
        let candidates = prefetchers[a.core.index()].train(a.pc, line);
        for cand in candidates {
            self.metrics.prefetches_issued += 1;
            self.prefetch_one(a.core, cand, a.pc, now, seq);
        }
    }

    /// Prefetches `line` into `core`'s L2 (and the LLC, per the paper's
    /// first inclusion action). Dropped when already resident or when a
    /// dirty remote owner would need downgrading.
    fn prefetch_one(&mut self, core: CoreId, line: LineAddr, pc: u64, now: Cycle, seq: u64) {
        if self.cores[core.index()].contains(line) {
            self.metrics.prefetch_drops += 1;
            return;
        }
        if self
            .dir
            .probe(line)
            .is_some_and(|e| e.dirty_owner.is_some())
        {
            self.metrics.prefetch_drops += 1;
            return;
        }
        let ctx = AccessCtx {
            line,
            pc,
            core,
            now,
            seq,
            is_write: false,
        };
        let from_llc_hit = if let Some(loc) = self.llc.probe(line) {
            self.llc.on_hit(loc, &ctx);
            true
        } else if let Some(rloc) = self.dir.relocated_location(line) {
            self.llc.on_relocated_hit(rloc, &ctx);
            true
        } else if self.dir.is_privately_cached(line) {
            // The non-inclusive fourth case: not worth a prefetch.
            self.metrics.prefetch_drops += 1;
            return;
        } else {
            let t0 = self.span_start();
            let fill = self.llc.fill(line, &ctx, &self.dir, core, now);
            self.span_end(t0, ProfileSection::Replacement);
            self.metrics.llc_writes_energy_events += 1;
            self.emit_event(EventKind::Fill, now, line, Some(core), Some(fill.loc));
            self.apply_fill_outcome(line, fill, core, now);
            let t0 = self.span_start();
            let _ = self.dram.access(line, now, false);
            self.span_end(t0, ProfileSection::Dram);
            self.metrics.dram_accesses += 1;
            false
        };
        let t0 = self.span_start();
        let dir_ev = self.dir.record_fill(line, core);
        self.span_end(t0, ProfileSection::Directory);
        if let Some(ev) = dir_ev {
            self.handle_dir_eviction(ev, now);
        }
        self.cores[core.index()].prefetch_fill(line, from_llc_hit, &mut self.notice_buf);
        self.drain_notices(core, now);
        self.metrics.prefetch_fills += 1;
    }

    /// The LLC + directory stage of a private miss; returns the
    /// per-component latency breakdown and the access class it lands in.
    fn llc_access(
        &mut self,
        a: &Access,
        line: LineAddr,
        now: Cycle,
        seq: u64,
    ) -> (LatencyBreakdown, AccessClass) {
        let ci = a.core.index();
        let home = self.cfg.home_bank(line);
        let mut b = LatencyBreakdown {
            noc: self.mesh.round_trip(a.core, home),
            llc_tag: self.cfg.llc.tag_latency,
            llc_data: self.cfg.llc.data_latency,
            ..LatencyBreakdown::default()
        };
        let base = b.total();
        let ctx = AccessCtx {
            line,
            pc: a.pc,
            core: a.core,
            now,
            seq,
            is_write: a.is_write,
        };
        self.metrics.llc_accesses += 1;
        self.metrics.dir_energy_events += 1;
        if let Some(rec) = self.recorder.as_mut() {
            if let Some(hm) = rec.heatmap_mut() {
                hm.accesses
                    .inc(home.index(), self.cfg.llc.set_of(line) as usize);
            }
        }

        // Case 1: hit on a non-relocated block.
        if let Some(loc) = self.llc.probe(line) {
            self.metrics.llc_hits += 1;
            self.metrics.llc_reads_energy_events += 1;
            let extra = self.coherence_data_fetch(line, a.core, home, Some(loc));
            if a.is_write {
                self.ensure_exclusive(line, a.core, now);
            }
            if let Some((owner, group)) = self.llc.on_hit(loc, &ctx) {
                if owner as usize == ci {
                    self.char_engine.on_recall(ci, group);
                }
            }
            self.fill_private_and_dir(line, a, true, now);
            b.noc += extra;
            return (b, AccessClass::LlcHit);
        }

        // Case 2: hit on a relocated block, found through the directory
        // (Section III-C1: only ever reached by a new sharer core).
        if let Some(rloc) = self.dir.relocated_location(line) {
            self.metrics.llc_hits += 1;
            self.metrics.relocated_hits += 1;
            self.metrics.llc_reads_energy_events += 1;
            let extra = self.coherence_data_fetch(line, a.core, home, Some(rloc));
            if a.is_write {
                self.ensure_exclusive(line, a.core, now);
            }
            self.llc.on_relocated_hit(rloc, &ctx);
            self.fill_private_and_dir(line, a, true, now);
            // The relocated-access penalty is the directory indirection
            // (Section III-C1); the detour hops ride the NoC.
            b.directory += self.cfg.relocated_access_penalty();
            b.noc += 2 * self.mesh.detour(home, rloc.bank) + extra;
            return (b, AccessClass::LlcRelocatedHit);
        }

        // Case 3: directory hit but LLC miss — the "fourth case" that
        // only a non-inclusive hierarchy must handle (Section I-A).
        if self.dir.is_privately_cached(line) {
            debug_assert!(
                self.mode.allows_llc_miss_under_dir_hit(),
                "inclusive invariant violated: directory hit without an LLC copy for {line}"
            );
            self.metrics.llc_misses += 1;
            self.metrics.per_core[ci].llc_misses += 1;
            // A special sharer supplies the data (extra protocol hop).
            let supplier = self
                .dir
                .probe(line)
                .and_then(|s| s.sharers.iter().next())
                .unwrap_or(a.core);
            let owner_dirty = self.dir.probe(line).and_then(|s| s.dirty_owner).is_some();
            let extra = self.mesh.round_trip(supplier, home);
            if owner_dirty {
                if let Some(owner) = self.dir.probe(line).and_then(|s| s.dirty_owner) {
                    self.cores[owner.index()].clean(line);
                }
                if let Some(e) = self.dir.probe_mut(line) {
                    e.dirty_owner = None;
                }
            }
            let t0 = self.span_start();
            let fill = self.llc.fill(line, &ctx, &self.dir, a.core, now);
            self.span_end(t0, ProfileSection::Replacement);
            self.metrics.llc_writes_energy_events += 1;
            self.metrics.llc_demand_fills += 1;
            self.emit_event(EventKind::Fill, now, line, Some(a.core), Some(fill.loc));
            self.apply_fill_outcome(line, fill, a.core, now);
            if owner_dirty {
                self.llc.update_state(fill.loc, |s| s.dirty = true);
            }
            if a.is_write {
                self.ensure_exclusive(line, a.core, now);
            }
            self.fill_private_and_dir(line, a, false, now);
            b.noc += extra;
            return (b, AccessClass::LlcMissSupplied);
        }

        // Case 4: miss everywhere — go to memory.
        self.metrics.llc_misses += 1;
        self.metrics.per_core[ci].llc_misses += 1;
        let t0 = self.span_start();
        let fill = self.llc.fill(line, &ctx, &self.dir, a.core, now);
        self.span_end(t0, ProfileSection::Replacement);
        self.metrics.llc_writes_energy_events += 1;
        self.metrics.llc_demand_fills += 1;
        self.emit_event(EventKind::Fill, now, line, Some(a.core), Some(fill.loc));
        self.apply_fill_outcome(line, fill, a.core, now);
        let t0 = self.span_start();
        let mem = self.dram.access(line, now + base, false);
        self.span_end(t0, ProfileSection::Dram);
        self.metrics.dram_accesses += 1;
        self.fill_private_and_dir(line, a, false, now);
        b.dram = mem.ready_at - (now + base);
        (b, AccessClass::LlcMissDram)
    }

    /// If another core owns `line` dirty, fetch the data from it
    /// (downgrading the owner and refreshing the LLC copy). Returns the
    /// extra latency.
    fn coherence_data_fetch(
        &mut self,
        line: LineAddr,
        requester: CoreId,
        home: ziv_common::BankId,
        llc_loc: Option<ziv_directory::LlcLocation>,
    ) -> Cycle {
        let owner = match self.dir.probe(line).and_then(|s| s.dirty_owner) {
            Some(o) if o != requester => o,
            _ => return 0,
        };
        self.cores[owner.index()].clean(line);
        if let Some(loc) = llc_loc {
            self.llc.update_state(loc, |s| s.dirty = true);
        }
        if let Some(e) = self.dir.probe_mut(line) {
            e.dirty_owner = None;
        }
        self.mesh.round_trip(owner, home)
    }

    /// Invalidate every other sharer's private copy before a write
    /// (MESI upgrade). These are coherence invalidations, not inclusion
    /// victims.
    fn ensure_exclusive(&mut self, line: LineAddr, writer: CoreId, now: Cycle) {
        // Sharer sets are `Copy` (a u128 bitvector): snapshot the set out
        // of the directory entry so the cores can be mutated while
        // iterating it — no per-access `Vec<CoreId>` (DESIGN.md §8).
        let mut others = match self.dir.probe(line) {
            Some(e) => e.sharers,
            None => return,
        };
        others.remove(writer);
        let mut any_dirty = false;
        for s in others.iter() {
            if let Some(dirty) = self.cores[s.index()].invalidate(line) {
                any_dirty |= dirty;
                self.metrics.coherence_invalidations += 1;
            }
        }
        if !others.is_empty() {
            if let Some(e) = self.dir.probe_mut(line) {
                for s in others.iter() {
                    e.sharers.remove(s);
                }
                if e.dirty_owner.is_some_and(|o| o != writer) {
                    e.dirty_owner = None;
                }
            }
            if any_dirty {
                // Merge the invalidated dirty data into the LLC copy.
                if let Some(loc) = self.llc.probe(line) {
                    self.llc.update_state(loc, |s| s.dirty = true);
                } else if let Some(loc) = self.dir.relocated_location(line) {
                    self.llc.update_state(loc, |s| s.dirty = true);
                } else {
                    self.writeback_to_memory(line, now);
                }
            }
        }
        if let Some(e) = self.dir.probe_mut(line) {
            if e.sharers.contains(writer) {
                e.dirty_owner = Some(writer);
            }
        }
    }

    /// Applies the side effects of a [`FillOutcome`]: evictions (with
    /// back-invalidations where the mode demands them), relocations, and
    /// their statistics. `core` is the core whose access performed the
    /// fill — the *instigator* any resulting inclusion victims are blamed
    /// on.
    fn apply_fill_outcome(&mut self, line: LineAddr, fill: FillOutcome, core: CoreId, now: Cycle) {
        // Forensics: stamp the freshly allocated line with its
        // provenance — which access filled it, and why its way was free.
        if self.recorder.is_some() {
            let idx = self.accesses_done.saturating_sub(1);
            if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                f.stamp_fill(
                    line,
                    ProvenanceStamp {
                        access_index: idx,
                        cycle: now,
                        core,
                        bank: fill.loc.bank.index() as u16,
                        set: fill.loc.set,
                        way: fill.loc.way,
                        reason: fill.victim_reason,
                    },
                );
            }
        }
        self.metrics.qbs_queries += fill.qbs_queries;
        if fill.sharp_alarm {
            self.metrics.sharp_alarms += 1;
            if let Some(obs) = self.recorder.as_mut().and_then(|r| r.leakage_mut()) {
                obs.note_sharp_alarm();
            }
        }
        if fill.in_set_alternate {
            self.metrics.in_set_alternate_victims += 1;
        }
        if fill.ziv_fallback {
            self.metrics.ziv_guarantee_fallbacks += 1;
        }
        if fill.likely_dead_pv_empty {
            // Section III-D6: an empty LikelyDeadNotInPrC PV at
            // relocation time asks the bank to lower CHAR's threshold.
            let bank = self.cfg.home_bank(line);
            self.char_engine.request_lower_threshold(bank.index());
        }
        if let Some(candidate) = fill.eci_candidate {
            self.eci_early_invalidate(candidate, core, fill.victim_reason, now);
        }
        if let Some(rel) = fill.relocation {
            self.metrics.relocations += 1;
            if rel.cross_bank {
                self.metrics.cross_bank_relocations += 1;
            }
            self.metrics.dir_energy_events += 1;
            self.dir.set_relocated(rel.moved_line, Some(rel.to));
            if self.recorder.is_some() {
                self.emit_event(
                    EventKind::Relocation,
                    now,
                    rel.moved_line,
                    None,
                    Some(rel.to),
                );
                if let Some(hm) = self.recorder.as_mut().and_then(|r| r.heatmap_mut()) {
                    hm.relocations.inc(rel.to.bank.index(), rel.to.set as usize);
                }
            }
            if let Some(ev) = rel.evicted_from_rs {
                debug_assert!(!self.dir.is_privately_cached(ev.line));
                self.handle_llc_eviction(ev, rel.to, core, fill.victim_reason, now);
            }
        }
        if let Some(ev) = fill.evicted {
            self.handle_llc_eviction(ev, fill.loc, core, fill.victim_reason, now);
        }
    }

    /// ECI: invalidate the next victim candidate's private copies while
    /// its LLC copy stays, making its future reuse visible to the LLC.
    /// These forced invalidations are inclusion victims. `instigator` is
    /// the core whose fill surfaced the candidate; `reason` its
    /// victim-choice reason.
    fn eci_early_invalidate(
        &mut self,
        line: LineAddr,
        instigator: CoreId,
        reason: VictimReason,
        now: Cycle,
    ) {
        let sharers = match self.dir.probe(line) {
            Some(e) => e.sharers,
            None => return,
        };
        if sharers.is_empty() {
            return;
        }
        let event_loc = if self.recorder.is_some() {
            self.llc.probe(line)
        } else {
            None
        };
        // Forensics: every sharer tear-out below is one chain victim —
        // the note sites pair 1:1 with the `inclusion_victims` bumps, so
        // the blame matrix conserves exactly.
        let idx = self.accesses_done.saturating_sub(1);
        if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
            f.open_chain(ChainKind::Eci, instigator, idx, now, line, reason);
        }
        let mut any_dirty = false;
        for s in sharers.iter() {
            if self.cores[s.index()].invalidate(line).is_some_and(|d| d) {
                any_dirty = true;
            }
            self.metrics.inclusion_victims += 1;
            self.metrics.per_core[s.index()].inclusion_victims_suffered += 1;
            self.metrics.eci_early_invalidations += 1;
            self.emit_event(EventKind::BackInvalidation, now, line, Some(s), event_loc);
            if let Some(obs) = self.recorder.as_mut().and_then(|r| r.latency_mut()) {
                obs.note_back_invalidation(s, line);
            }
            if let Some(obs) = self.recorder.as_mut().and_then(|r| r.leakage_mut()) {
                obs.note_back_invalidation(s, line);
            }
            if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                f.chain_victim(s);
            }
        }
        if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
            f.close_chain();
        }
        self.dir.free_line(line);
        if let Some(loc) = self.llc.probe(line) {
            self.llc.update_state(loc, |st| {
                st.not_in_prc = true;
                st.dirty |= any_dirty;
            });
        } else if any_dirty {
            self.writeback_to_memory(line, now);
        }
    }

    /// Handles a block leaving the LLC; `loc` is the (bank, set, way)
    /// the block occupied (the fill's target location, or the
    /// relocation destination for relocation-set evictions).
    /// `instigator` is the core whose fill forced the eviction and
    /// `reason` its victim-choice reason (forensics).
    fn handle_llc_eviction(
        &mut self,
        ev: EvictedBlock,
        loc: LlcLocation,
        instigator: CoreId,
        reason: VictimReason,
        now: Cycle,
    ) {
        if self.recorder.is_some() {
            self.emit_event(EventKind::Eviction, now, ev.line, None, Some(loc));
            if let Some(hm) = self.recorder.as_mut().and_then(|r| r.heatmap_mut()) {
                hm.evictions.inc(loc.bank.index(), loc.set as usize);
            }
        }
        if ev.was_relocated {
            // Only the defensive ZIV fallback can evict a relocated
            // block; drop its directory pointer before back-invalidating.
            self.dir.set_relocated(ev.line, None);
        }
        if self.dir.is_privately_cached(ev.line) {
            if self.mode == LlcMode::Ric {
                // Relaxed inclusion: never-written blocks skip the
                // back-invalidation (their private copies cannot diverge
                // from memory). "Never written" here: the LLC copy is
                // clean and no core owns the block dirty.
                let written = ev.dirty
                    || self
                        .dir
                        .probe(ev.line)
                        .and_then(|e| e.dirty_owner)
                        .is_some();
                if !written {
                    self.metrics.ric_relaxations += 1;
                    return;
                }
            }
            if self.mode.is_inclusive() {
                // Back-invalidation: the inclusion victims of Fig 2. The
                // sharer bitvector is iterated straight off the directory
                // snapshot — the hot path allocates nothing.
                let sharers = self
                    .dir
                    .probe(ev.line)
                    .map(|e| e.sharers)
                    .unwrap_or_default();
                if self.skip_next_back_invalidation && !sharers.is_empty() {
                    // Injected fault: the back-invalidation message is
                    // "lost". The private copies and directory entry
                    // survive with no LLC copy — an inclusion hole the
                    // auditor must catch. Sharerless evictions don't
                    // consume the fault: there is no message to lose.
                    self.skip_next_back_invalidation = false;
                    self.fault = None;
                    return;
                }
                // Forensics: one causal chain per victimizing eviction,
                // its victim notes paired 1:1 with the
                // `inclusion_victims` bumps below (the conservation the
                // tests pin). The fault path above returns before any
                // bump, so a "lost" back-invalidation emits no chain.
                let idx = self.accesses_done.saturating_sub(1);
                if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                    f.open_chain(ChainKind::Inclusive, instigator, idx, now, ev.line, reason);
                }
                let mut any_dirty = ev.dirty;
                for s in sharers.iter() {
                    if self.cores[s.index()].invalidate(ev.line).is_some_and(|d| d) {
                        any_dirty = true;
                    }
                    self.metrics.inclusion_victims += 1;
                    self.metrics.per_core[s.index()].inclusion_victims_suffered += 1;
                    self.emit_event(
                        EventKind::BackInvalidation,
                        now,
                        ev.line,
                        Some(s),
                        Some(loc),
                    );
                    if let Some(obs) = self.recorder.as_mut().and_then(|r| r.latency_mut()) {
                        obs.note_back_invalidation(s, ev.line);
                    }
                    if let Some(obs) = self.recorder.as_mut().and_then(|r| r.leakage_mut()) {
                        obs.note_back_invalidation(s, ev.line);
                    }
                    if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                        f.chain_victim(s);
                    }
                }
                if let Some(f) = self.recorder.as_mut().and_then(|r| r.forensics_mut()) {
                    f.close_chain();
                }
                self.metrics.inclusion_victim_events += 1;
                self.dir.free_line(ev.line);
                if any_dirty {
                    self.writeback_to_memory(ev.line, now);
                }
            } else {
                // Non-inclusive: the LLC copy simply departs; the
                // directory keeps tracking the private copies.
                if ev.dirty {
                    self.writeback_to_memory(ev.line, now);
                }
            }
        } else if ev.dirty {
            self.writeback_to_memory(ev.line, now);
        }
    }

    fn writeback_to_memory(&mut self, line: LineAddr, now: Cycle) {
        self.metrics.llc_writebacks += 1;
        self.metrics.dram_accesses += 1;
        let t0 = self.span_start();
        let _ = self.dram.access(line, now, true);
        self.span_end(t0, ProfileSection::Dram);
    }

    /// Records the fill into the requesting core's private caches and
    /// the directory, then drains any resulting eviction notices.
    fn fill_private_and_dir(&mut self, line: LineAddr, a: &Access, from_llc_hit: bool, now: Cycle) {
        let t0 = self.span_start();
        let dir_ev = self.dir.record_fill(line, a.core);
        self.span_end(t0, ProfileSection::Directory);
        if let Some(ev) = dir_ev {
            self.handle_dir_eviction(ev, now);
        }
        if a.is_write {
            if let Some(e) = self.dir.probe_mut(line) {
                e.set_dirty_owner(a.core);
            }
        }
        self.cores[a.core.index()].fill_from_shared(
            line,
            a.is_instr,
            a.is_write,
            from_llc_hit,
            &mut self.notice_buf,
        );
        self.drain_notices(a.core, now);
    }

    /// Handles a sparse-directory eviction (MESI mode): back-invalidate
    /// the tracked sharers; invalidate the relocated LLC block if the
    /// entry was tracking one (Section III-F).
    fn handle_dir_eviction(&mut self, ev: EvictedEntry, now: Cycle) {
        if self.recorder.is_some() {
            let bank = self.cfg.home_bank(ev.line);
            let idx = self.accesses_done.saturating_sub(1);
            if let Some(rec) = self.recorder.as_mut() {
                rec.record(TraceEvent {
                    kind: EventKind::DirectoryVictim,
                    access_index: idx,
                    cycle: now,
                    line: ev.line.raw(),
                    core: None,
                    bank: Some(bank.index() as u16),
                    set: None,
                    way: None,
                });
            }
        }
        let mut any_dirty = false;
        for s in ev.state.sharers.iter() {
            if self.cores[s.index()].invalidate(ev.line).is_some_and(|d| d) {
                any_dirty = true;
            }
            self.metrics.directory_back_invalidations += 1;
        }
        if let Some(loc) = ev.state.relocated {
            if let Some(st) = self.llc.invalidate(loc) {
                debug_assert!(st.relocated);
                if st.dirty || any_dirty {
                    self.metrics.relocated_writebacks += 1;
                    self.writeback_to_memory(ev.line, now);
                }
            }
        } else if let Some(loc) = self.llc.probe(ev.line) {
            self.llc.update_state(loc, |s| {
                s.not_in_prc = true;
                s.dirty |= any_dirty;
            });
        } else if any_dirty {
            self.writeback_to_memory(ev.line, now);
        }
    }

    /// Drains pending private-cache eviction notices from `core`.
    fn drain_notices(&mut self, core: CoreId, now: Cycle) {
        while let Some(n) = self.notice_buf.pop() {
            self.process_notice(core, n, now);
        }
    }

    /// Processes one eviction notice / writeback at the home bank
    /// (Sections III-A, III-C2, III-D6).
    fn process_notice(&mut self, core: CoreId, n: EvictionNotice, now: Cycle) {
        let ci = core.index();
        let bank = self.cfg.home_bank(n.line);
        self.metrics.dir_energy_events += 1;
        if n.dirty {
            self.metrics.private_writebacks += 1;
        }
        // CHAR: dead inference rides the notice; the ack may piggyback a
        // new threshold.
        let group = CharEngine::classify(&n.meta, n.dirty);
        let dead = self.char_engine.infer_dead(ci, group);
        if let Some(d) = self.char_engine.bank_notice(bank.index(), ci) {
            self.char_engine.core_receive_d(ci, d);
        }

        let t0 = self.span_start();
        let removal = self.dir.remove_sharer(n.line, core);
        self.span_end(t0, ProfileSection::Directory);
        match removal {
            RemovalOutcome::LastCopy(state) => {
                if let Some(loc) = state.relocated {
                    // The relocated block's life ends (Section III-C2);
                    // dirty data goes straight to the memory controller.
                    if let Some(st) = self.llc.invalidate(loc) {
                        debug_assert!(st.relocated);
                        if st.dirty || n.dirty {
                            self.metrics.relocated_writebacks += 1;
                            self.writeback_to_memory(n.line, now);
                        }
                    }
                } else if let Some(loc) = self.llc.probe(n.line) {
                    let uses_char = matches!(self.mode, LlcMode::CharOnBase)
                        || matches!(self.mode, LlcMode::Ziv(p) if p.uses_char());
                    self.llc.update_state(loc, |s| {
                        s.not_in_prc = true;
                        s.dirty |= n.dirty;
                        s.likely_dead = dead && uses_char;
                        s.evict_group = Some((ci as u16, group));
                    });
                } else {
                    debug_assert!(self.mode.allows_llc_miss_under_dir_hit());
                    if n.dirty {
                        self.writeback_to_memory(n.line, now);
                    }
                }
            }
            RemovalOutcome::StillShared => {
                if n.dirty {
                    if let Some(loc) = self.llc.probe(n.line) {
                        self.llc.update_state(loc, |s| s.dirty = true);
                    } else if let Some(loc) = self.dir.relocated_location(n.line) {
                        self.llc.update_state(loc, |s| s.dirty = true);
                    } else {
                        self.writeback_to_memory(n.line, now);
                    }
                }
            }
            RemovalOutcome::NotTracked => {
                if n.dirty {
                    self.writeback_to_memory(n.line, now);
                }
            }
        }
    }

    /// The per-core private hierarchies (audit walks, tests).
    pub fn private_cores(&self) -> &[PrivateHierarchy] {
        &self.cores
    }

    /// Demand accesses performed so far (the auditor's access index).
    pub fn accesses_done(&self) -> u64 {
        self.accesses_done
    }

    /// Applies an armed fault at access `idx`. Returns a latency when
    /// the fault hijacks the access itself (`StallCore`).
    fn apply_fault(&mut self, idx: u64, requester: CoreId) -> Option<Cycle> {
        match self.fault? {
            FaultInjection::CorruptDirectory { at_access } if idx >= at_access => {
                // Clear one live sharer bit, preferring a line owned by a
                // core other than the requester (whose access this cycle
                // could otherwise coincidentally repair the damage).
                let mut target = None;
                for (ci, core) in self.cores.iter().enumerate() {
                    if ci == requester.index() {
                        continue;
                    }
                    if let Some(line) = core.resident_lines().into_iter().next() {
                        target = Some((ci, line));
                        break;
                    }
                }
                if target.is_none() {
                    target = self.cores[requester.index()]
                        .resident_lines()
                        .into_iter()
                        .next()
                        .map(|line| (requester.index(), line));
                }
                if let Some((ci, line)) = target {
                    if let Some(e) = self.dir.probe_mut(line) {
                        e.sharers.remove(CoreId::new(ci));
                        self.fault = None; // one-shot, applied
                    }
                }
                None
            }
            FaultInjection::SkipBackInvalidation { at_access } if idx >= at_access => {
                // Armed until an inclusive back-invalidation consumes it
                // (see handle_llc_eviction).
                self.skip_next_back_invalidation = true;
                None
            }
            FaultInjection::StallCore { at_access } if idx >= at_access => {
                // The livelock scenario: the access never completes in
                // any reasonable time. Modeled as an astronomical
                // latency so the per-cell watchdog budget trips.
                Some(1 << 32)
            }
            FaultInjection::HangCore { at_access } if idx >= at_access => {
                // The wall-clock hang scenario: the model wedges. The
                // driver sees `is_hung` after this access and parks the
                // cell; only the supervisor's cancellation token can
                // end it.
                self.hung = true;
                self.fault = None; // one-shot, applied
                Some(1)
            }
            FaultInjection::PanicCore { at_access } if idx >= at_access => {
                // The internal-bug scenario: a real defect would panic
                // deep inside the model, exactly like this.
                panic!(
                    "injected panic-core fault: simulated internal defect \
                     at access {idx}"
                );
            }
            _ => None,
        }
    }

    /// Whether an injected [`FaultInjection::HangCore`] has wedged the
    /// model. Once true, further accesses would make no progress; the
    /// driver must stop issuing and wait for supervision.
    pub fn is_hung(&self) -> bool {
        self.hung
    }

    /// Checks the hierarchy's structural invariants; returns a
    /// description of the first violation. Used by tests and debug runs.
    ///
    /// This is the [`crate::audit::Auditor`]'s structural walk
    /// (inclusion, directory ↔ LLC ↔ private consistency, the ZIV
    /// guarantee) rendered as a string; use
    /// [`crate::audit::Auditor::check_structure`] directly for the typed
    /// [`ziv_common::AuditViolation`].
    pub fn verify_invariants(&self) -> Result<(), String> {
        crate::audit::Auditor::check_structure(self, self.accesses_done).map_err(|v| v.to_string())
    }

    /// Total inclusion victims (convenience for the ZIV guarantee tests).
    pub fn inclusion_victims(&self) -> u64 {
        self.metrics.inclusion_victims
    }
}
