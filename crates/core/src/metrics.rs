//! Simulation statistics and the on-chip energy model backing the
//! paper's figures (miss counts for Figs 2–4/10/13, inclusion victims
//! for Fig 2, relocation statistics for Fig 18, energy for Fig 19).

use ziv_common::json::JsonValue;
use ziv_common::stats::Log2Histogram;

/// Energy of one LLC data-array read (64 B, 1 MB-class bank, 22 nm),
/// in picojoules (CACTI-class constant; DESIGN.md §5.5).
pub const LLC_READ_PJ: f64 = 220.0;

/// Energy of one LLC data-array write, in picojoules.
pub const LLC_WRITE_PJ: f64 = 260.0;

/// Energy of one L2 access, in picojoules.
pub const L2_ACCESS_PJ: f64 = 60.0;

/// Energy of one sparse-directory lookup/update in the ZIV-widened
/// directory, in picojoules.
pub const DIR_ACCESS_PJ: f64 = 18.0;

/// Per-core counters.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct CoreMetrics {
    /// Demand accesses issued by the core.
    pub accesses: u64,
    /// L1 misses (instruction + data).
    pub l1_misses: u64,
    /// Private L2 misses.
    pub l2_misses: u64,
    /// LLC misses attributed to this core.
    pub llc_misses: u64,
    /// Private blocks of this core invalidated as inclusion victims.
    pub inclusion_victims_suffered: u64,
    /// Total cycles accumulated by the core's access stream (set by the
    /// driving simulator).
    pub cycles: u64,
    /// Instructions retired (set by the driving simulator).
    pub instructions: u64,
}

/// All counters for one simulation run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    /// Per-core breakdown.
    pub per_core: Vec<CoreMetrics>,
    /// Total LLC lookups.
    pub llc_accesses: u64,
    /// Total LLC hits (including hits on relocated blocks).
    pub llc_hits: u64,
    /// Hits served from relocated blocks (pay the Section III-C1 delta).
    pub relocated_hits: u64,
    /// Total LLC misses.
    pub llc_misses: u64,
    /// LLC fills performed on the demand path. Conservation law checked
    /// by the auditor: every demand miss fills, so this must equal
    /// `llc_misses` at all times during a run.
    pub llc_demand_fills: u64,
    /// Private cache blocks invalidated because their LLC copy was
    /// evicted — **the inclusion victims of Fig 2** (one count per core
    /// whose private hierarchy lost the block).
    pub inclusion_victims: u64,
    /// LLC evictions that generated at least one inclusion victim.
    pub inclusion_victim_events: u64,
    /// Private blocks invalidated by sparse-directory evictions
    /// (Fig 15's mechanism; zero under ZeroDEV).
    pub directory_back_invalidations: u64,
    /// Private copies invalidated by coherent writes (not inclusion
    /// victims).
    pub coherence_invalidations: u64,
    /// ZIV relocations performed.
    pub relocations: u64,
    /// Relocations that crossed banks (Section III-D1 fallback).
    pub cross_bank_relocations: u64,
    /// ZIV fills that found an alternate victim in the original set
    /// (no relocation needed).
    pub in_set_alternate_victims: u64,
    /// Inclusive-mode fallback evictions in ZIV mode when no
    /// `NotInPrC` block existed anywhere (impossible under the paper's
    /// capacity invariant; counted defensively).
    pub ziv_guarantee_fallbacks: u64,
    /// QBS directory queries issued.
    pub qbs_queries: u64,
    /// SHARP random-eviction alarms (step 3).
    pub sharp_alarms: u64,
    /// Writebacks from the LLC to memory.
    pub llc_writebacks: u64,
    /// Writebacks sent directly to memory for relocated blocks
    /// (Section III-C2).
    pub relocated_writebacks: u64,
    /// Dirty private evictions merged into the LLC.
    pub private_writebacks: u64,
    /// DRAM reads + writes.
    pub dram_accesses: u64,
    /// Prefetches issued by the (optional) stride prefetchers.
    pub prefetches_issued: u64,
    /// Prefetches that actually filled a new L2/LLC block.
    pub prefetch_fills: u64,
    /// Prefetches dropped (already resident, or coherence conflicts).
    pub prefetch_drops: u64,
    /// TLH temporal-locality hints delivered to the LLC.
    pub tlh_hints: u64,
    /// ECI early core invalidations performed.
    pub eci_early_invalidations: u64,
    /// RIC evictions that skipped back-invalidation (read-only blocks).
    pub ric_relaxations: u64,
    /// Total latency (cycles) returned by every demand access, summed
    /// across cores. The conservation anchor for the latency
    /// observatory: the per-component attribution must sum to exactly
    /// this value. Injected fault stalls are excluded (they are not
    /// access latency). Never rewound at end-of-run, unlike the
    /// per-core counters.
    pub access_latency_cycles: u64,
    /// Per-bank relocation-interval histogram (log2 cycles) — Fig 18.
    pub relocation_intervals: Log2Histogram,
    /// LLC data-array reads (energy accounting).
    pub llc_reads_energy_events: u64,
    /// LLC data-array writes (energy accounting).
    pub llc_writes_energy_events: u64,
    /// L2 accesses (energy accounting).
    pub l2_energy_events: u64,
    /// Directory accesses (energy accounting).
    pub dir_energy_events: u64,
    /// DRAM energy accumulated, picojoules.
    pub dram_energy_pj: f64,
}

impl Metrics {
    /// Creates metrics for `cores` cores.
    pub fn new(cores: usize) -> Self {
        Metrics {
            per_core: vec![CoreMetrics::default(); cores],
            ..Default::default()
        }
    }

    /// Total instructions across cores.
    pub fn total_instructions(&self) -> u64 {
        self.per_core.iter().map(|c| c.instructions).sum()
    }

    /// Total L2 misses across cores (Figs 4/10/13 lower panels).
    pub fn total_l2_misses(&self) -> u64 {
        self.per_core.iter().map(|c| c.l2_misses).sum()
    }

    /// Energy spent on relocations, in picojoules: each relocation reads
    /// the block out of the LLC, writes it into the relocation set, and
    /// updates the widened sparse directory (Fig 19's primary component).
    pub fn relocation_energy_pj(&self) -> f64 {
        self.relocations as f64 * (LLC_READ_PJ + LLC_WRITE_PJ + DIR_ACCESS_PJ)
    }

    /// Relocation energy per instruction, in picojoules (Fig 19's
    /// y-axis). Returns 0 when no instructions were recorded.
    pub fn relocation_epi_pj(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            0.0
        } else {
            self.relocation_energy_pj() / instr as f64
        }
    }

    /// Total on-chip + DRAM energy per instruction, picojoules
    /// (the Fig 19 comparison of costs vs savings).
    pub fn total_epi_pj(&self) -> f64 {
        let instr = self.total_instructions();
        if instr == 0 {
            return 0.0;
        }
        let on_chip = self.llc_reads_energy_events as f64 * LLC_READ_PJ
            + self.llc_writes_energy_events as f64 * LLC_WRITE_PJ
            + self.l2_energy_events as f64 * L2_ACCESS_PJ
            + self.dir_energy_events as f64 * DIR_ACCESS_PJ;
        (on_chip + self.dram_energy_pj) / instr as f64
    }

    /// Fraction of LLC misses that required a relocation (the paper
    /// reports 12% on average, max 33%, for ZIV-LikelyDead at 512 KB).
    pub fn relocation_rate(&self) -> f64 {
        if self.llc_misses == 0 {
            0.0
        } else {
            self.relocations as f64 / self.llc_misses as f64
        }
    }
}

/// Expands a macro over every scalar `u64` counter of [`CoreMetrics`].
macro_rules! core_metrics_u64_fields {
    ($mac:ident!($($extra:tt)*)) => {
        $mac!($($extra)* accesses, l1_misses, l2_misses, llc_misses,
              inclusion_victims_suffered, cycles, instructions)
    };
}

/// Expands a macro over every scalar `u64` counter of [`Metrics`], so
/// the JSON serializer and parser below cannot drift apart (adding a
/// counter without updating the ledger schema is a compile error in
/// exactly one place).
macro_rules! metrics_u64_fields {
    ($mac:ident!($($extra:tt)*)) => {
        $mac!($($extra)* llc_accesses, llc_hits, relocated_hits, llc_misses,
              llc_demand_fills, inclusion_victims, inclusion_victim_events,
              directory_back_invalidations, coherence_invalidations,
              relocations, cross_bank_relocations, in_set_alternate_victims,
              ziv_guarantee_fallbacks, qbs_queries, sharp_alarms,
              llc_writebacks, relocated_writebacks, private_writebacks,
              dram_accesses, prefetches_issued, prefetch_fills,
              prefetch_drops, tlh_hints, eci_early_invalidations,
              ric_relaxations, access_latency_cycles,
              llc_reads_energy_events, llc_writes_energy_events,
              l2_energy_events, dir_energy_events)
    };
}

// Shared with `crate::observe` so the epoch slicer's column names and
// delta extraction enumerate exactly the same fields as the ledger
// serializer — the time-series cannot drift from the JSON schema.
pub(crate) use core_metrics_u64_fields;
pub(crate) use metrics_u64_fields;

fn req_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| format!("missing u64 field '{key}'"))
}

impl CoreMetrics {
    /// Serializes the counters as a JSON object.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = Vec::new();
        macro_rules! put {
            ($($f:ident),*) => {
                $(fields.push((stringify!($f).to_string(), JsonValue::u64(self.$f)));)*
            };
        }
        core_metrics_u64_fields!(put!());
        JsonValue::Obj(fields)
    }

    /// Rebuilds the counters from [`CoreMetrics::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let mut m = CoreMetrics::default();
        macro_rules! get {
            ($($f:ident),*) => {
                $(m.$f = req_u64(v, stringify!($f))?;)*
            };
        }
        core_metrics_u64_fields!(get!());
        Ok(m)
    }
}

impl Metrics {
    /// Serializes all counters (including the per-core breakdown and
    /// the relocation-interval histogram) as a JSON object that
    /// [`Metrics::from_json`] reverses exactly.
    pub fn to_json(&self) -> JsonValue {
        let mut fields = vec![(
            "per_core".to_string(),
            JsonValue::Arr(self.per_core.iter().map(CoreMetrics::to_json).collect()),
        )];
        macro_rules! put {
            ($($f:ident),*) => {
                $(fields.push((stringify!($f).to_string(), JsonValue::u64(self.$f)));)*
            };
        }
        metrics_u64_fields!(put!());
        let hist = self.relocation_intervals.buckets();
        let used = hist.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
        fields.push((
            "relocation_intervals".to_string(),
            JsonValue::Arr(hist[..used].iter().map(|&c| JsonValue::u64(c)).collect()),
        ));
        fields.push((
            "dram_energy_pj".to_string(),
            JsonValue::f64(self.dram_energy_pj),
        ));
        JsonValue::Obj(fields)
    }

    /// Rebuilds metrics from [`Metrics::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first missing or mistyped field.
    pub fn from_json(v: &JsonValue) -> Result<Self, String> {
        let mut m = Metrics {
            per_core: v
                .get("per_core")
                .and_then(JsonValue::as_array)
                .ok_or("missing array field 'per_core'")?
                .iter()
                .map(CoreMetrics::from_json)
                .collect::<Result<_, _>>()?,
            ..Metrics::default()
        };
        macro_rules! get {
            ($($f:ident),*) => {
                $(m.$f = req_u64(v, stringify!($f))?;)*
            };
        }
        metrics_u64_fields!(get!());
        let buckets = v
            .get("relocation_intervals")
            .and_then(JsonValue::as_array)
            .ok_or("missing array field 'relocation_intervals'")?
            .iter()
            .map(|b| {
                b.as_u64()
                    .ok_or_else(|| "non-integer histogram bucket".to_string())
            })
            .collect::<Result<Vec<u64>, _>>()?;
        if buckets.len() > 64 {
            return Err("relocation_intervals has more than 64 buckets".into());
        }
        m.relocation_intervals = Log2Histogram::from_buckets(&buckets);
        m.dram_energy_pj = v
            .get("dram_energy_pj")
            .and_then(JsonValue::as_f64)
            .ok_or("missing f64 field 'dram_energy_pj'")?;
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_sizes_per_core() {
        let m = Metrics::new(8);
        assert_eq!(m.per_core.len(), 8);
        assert_eq!(m.total_instructions(), 0);
    }

    #[test]
    fn relocation_energy_scales_with_count() {
        let mut m = Metrics::new(1);
        m.relocations = 10;
        m.per_core[0].instructions = 1000;
        let epi = m.relocation_epi_pj();
        assert!((epi - 10.0 * (LLC_READ_PJ + LLC_WRITE_PJ + DIR_ACCESS_PJ) / 1000.0).abs() < 1e-9);
    }

    #[test]
    fn epi_zero_without_instructions() {
        let m = Metrics::new(1);
        assert_eq!(m.relocation_epi_pj(), 0.0);
        assert_eq!(m.total_epi_pj(), 0.0);
    }

    #[test]
    fn relocation_rate_guards_division() {
        let mut m = Metrics::new(1);
        assert_eq!(m.relocation_rate(), 0.0);
        m.llc_misses = 100;
        m.relocations = 12;
        assert!((m.relocation_rate() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn json_round_trip_preserves_every_field() {
        let mut m = Metrics::new(2);
        m.per_core[0].accesses = 10;
        m.per_core[0].l1_misses = 3;
        m.per_core[1].l2_misses = 4;
        m.per_core[1].cycles = u64::MAX; // exercise exact u64 range
        m.llc_accesses = 123;
        m.llc_hits = 100;
        m.relocated_hits = 7;
        m.llc_misses = 23;
        m.inclusion_victims = 5;
        m.relocations = 9;
        m.dram_energy_pj = 1234.5678e3;
        m.relocation_intervals.record(5);
        m.relocation_intervals.record(1024);
        let back = Metrics::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn json_parse_reports_missing_fields() {
        let mut m = Metrics::new(1);
        m.llc_hits = 2;
        let text = m.to_json().to_string().replace("\"llc_hits\":2,", "");
        let v = ziv_common::json::parse(&text).unwrap();
        let err = Metrics::from_json(&v).unwrap_err();
        assert!(err.contains("llc_hits"), "{err}");
    }

    #[test]
    fn total_l2_misses_sums_cores() {
        let mut m = Metrics::new(2);
        m.per_core[0].l2_misses = 3;
        m.per_core[1].l2_misses = 4;
        assert_eq!(m.total_l2_misses(), 7);
    }
}
