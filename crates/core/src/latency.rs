//! The latency attribution observatory (DESIGN.md §"Observability").
//!
//! Decomposes the latency every [`crate::CacheHierarchy::access`] call
//! returns into per-component cycles (L1, L2, LLC tag/data, directory,
//! NoC, DRAM), accumulated per core × per access class, with a
//! [`Log2Histogram`] of total latency per class. Conservation is exact
//! and checked by tests: summed over every `(core, class)` cell, the
//! attributed cycles equal the aggregate
//! `Metrics::access_latency_cycles` counter bit-for-bit.
//!
//! The observatory also tracks **inclusion-victim cost** — the
//! phenomenon the ZIV paper eliminates. Lines back-invalidated out of a
//! core's private hierarchy by an inclusive LLC eviction (or an ECI
//! early invalidation) are remembered in a bounded per-core table;
//! when that core next misses on such a line, the miss's full latency
//! lands in the [`AccessClass::InclusionVictimRefetch`] class. ZIV
//! modes generate no inclusion victims, so they report exactly zero
//! re-fetch cycles.

use ziv_common::stats::Log2Histogram;
use ziv_common::{CoreId, Cycle, LineAddr};

/// One architectural component an access's cycles can be attributed to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LatencyComponent {
    /// L1 lookup.
    L1,
    /// Private L2 lookup.
    L2,
    /// LLC tag array.
    LlcTag,
    /// LLC data array.
    LlcData,
    /// Sparse-directory indirection (relocated-block pointer chase).
    Directory,
    /// Network-on-chip hops (requester↔home round trips, detours,
    /// coherence forwards).
    Noc,
    /// DRAM service time beyond the on-chip path.
    Dram,
}

impl LatencyComponent {
    /// Every component, in the order the CSV columns use.
    pub const ALL: [LatencyComponent; 7] = [
        LatencyComponent::L1,
        LatencyComponent::L2,
        LatencyComponent::LlcTag,
        LatencyComponent::LlcData,
        LatencyComponent::Directory,
        LatencyComponent::Noc,
        LatencyComponent::Dram,
    ];

    /// Stable column-name form.
    pub fn label(self) -> &'static str {
        match self {
            LatencyComponent::L1 => "l1",
            LatencyComponent::L2 => "l2",
            LatencyComponent::LlcTag => "llc_tag",
            LatencyComponent::LlcData => "llc_data",
            LatencyComponent::Directory => "directory",
            LatencyComponent::Noc => "noc",
            LatencyComponent::Dram => "dram",
        }
    }

    fn index(self) -> usize {
        match self {
            LatencyComponent::L1 => 0,
            LatencyComponent::L2 => 1,
            LatencyComponent::LlcTag => 2,
            LatencyComponent::LlcData => 3,
            LatencyComponent::Directory => 4,
            LatencyComponent::Noc => 5,
            LatencyComponent::Dram => 6,
        }
    }
}

/// Where an access was ultimately served from — the class axis of the
/// attribution matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// Served by the core's L1.
    L1Hit,
    /// Served by the core's private L2.
    L2Hit,
    /// Served by the LLC home bank (including coherence forwards).
    LlcHit,
    /// Served by a ZIV-relocated LLC block (pays the directory
    /// indirection plus detour hops).
    LlcRelocatedHit,
    /// LLC miss supplied by another core's private cache.
    LlcMissSupplied,
    /// LLC miss served from DRAM.
    LlcMissDram,
    /// A miss on a line recently back-invalidated out of this core's
    /// private hierarchy by an inclusive LLC eviction — the re-fetch
    /// cost of an inclusion victim, regardless of where the line was
    /// re-fetched from. Exactly zero under ZIV modes.
    InclusionVictimRefetch,
}

/// Number of access classes.
pub const NUM_CLASSES: usize = 7;

impl AccessClass {
    /// Every class, in the order the CSV rows use.
    pub const ALL: [AccessClass; NUM_CLASSES] = [
        AccessClass::L1Hit,
        AccessClass::L2Hit,
        AccessClass::LlcHit,
        AccessClass::LlcRelocatedHit,
        AccessClass::LlcMissSupplied,
        AccessClass::LlcMissDram,
        AccessClass::InclusionVictimRefetch,
    ];

    /// Stable row-name form.
    pub fn label(self) -> &'static str {
        match self {
            AccessClass::L1Hit => "l1_hit",
            AccessClass::L2Hit => "l2_hit",
            AccessClass::LlcHit => "llc_hit",
            AccessClass::LlcRelocatedHit => "llc_relocated_hit",
            AccessClass::LlcMissSupplied => "llc_miss_supplied",
            AccessClass::LlcMissDram => "llc_miss_dram",
            AccessClass::InclusionVictimRefetch => "inclusion_victim_refetch",
        }
    }

    fn index(self) -> usize {
        match self {
            AccessClass::L1Hit => 0,
            AccessClass::L2Hit => 1,
            AccessClass::LlcHit => 2,
            AccessClass::LlcRelocatedHit => 3,
            AccessClass::LlcMissSupplied => 4,
            AccessClass::LlcMissDram => 5,
            AccessClass::InclusionVictimRefetch => 6,
        }
    }
}

/// One access's latency split by component. Built unconditionally on
/// the hot path (it is seven `Copy` integers; the observatory itself is
/// the optional part), and its [`total`](LatencyBreakdown::total) *is*
/// the latency the hierarchy returns — the decomposition cannot drift
/// from the aggregate because the aggregate is derived from it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    /// L1 lookup cycles.
    pub l1: Cycle,
    /// L2 lookup cycles.
    pub l2: Cycle,
    /// LLC tag-array cycles.
    pub llc_tag: Cycle,
    /// LLC data-array cycles.
    pub llc_data: Cycle,
    /// Directory-indirection cycles.
    pub directory: Cycle,
    /// NoC hop cycles.
    pub noc: Cycle,
    /// DRAM cycles.
    pub dram: Cycle,
}

impl LatencyBreakdown {
    /// The access's total latency — the value `access()` returns.
    #[inline]
    pub fn total(&self) -> Cycle {
        self.l1 + self.l2 + self.llc_tag + self.llc_data + self.directory + self.noc + self.dram
    }

    /// One component's cycles.
    pub fn component(&self, c: LatencyComponent) -> Cycle {
        match c {
            LatencyComponent::L1 => self.l1,
            LatencyComponent::L2 => self.l2,
            LatencyComponent::LlcTag => self.llc_tag,
            LatencyComponent::LlcData => self.llc_data,
            LatencyComponent::Directory => self.directory,
            LatencyComponent::Noc => self.noc,
            LatencyComponent::Dram => self.dram,
        }
    }
}

/// The accumulated cells for one `(core, class)` pair.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassCells {
    /// Accesses attributed to this class.
    pub count: u64,
    /// Total cycles attributed to this class.
    pub cycles: u64,
    /// Per-component cycles, indexed like [`LatencyComponent::ALL`].
    /// Invariant: sums to `cycles`.
    pub components: [u64; 7],
}

impl ClassCells {
    fn add(&mut self, b: &LatencyBreakdown) {
        self.count += 1;
        self.cycles += b.total();
        for (slot, c) in self.components.iter_mut().zip(LatencyComponent::ALL) {
            *slot += b.component(c);
        }
    }

    fn merge(&mut self, other: &ClassCells) {
        self.count += other.count;
        self.cycles += other.cycles;
        for (a, b) in self.components.iter_mut().zip(other.components) {
            *a += b;
        }
    }
}

/// Slots in each core's recently-back-invalidated table. Direct-mapped
/// on the line address's low bits; a collision overwrites the older
/// entry (the same bounded-memory spirit as the event ring), so the
/// re-fetch attribution is a floor, never an overcount: every access
/// classified as a re-fetch really did lose its line to an inclusion
/// victim.
pub const VICTIM_TABLE_SLOTS: usize = 1024;

/// The observatory: per-core × per-class attribution cells, per-class
/// latency histograms, and the bounded recently-victimized line tables.
#[derive(Debug)]
pub struct LatencyObservatory {
    per_core: Vec<[ClassCells; NUM_CLASSES]>,
    histograms: Vec<Log2Histogram>,
    victims: Vec<Vec<u64>>,
    victims_noted: u64,
}

impl LatencyObservatory {
    /// Creates an empty observatory for `cores` cores.
    pub fn new(cores: usize) -> Self {
        LatencyObservatory {
            per_core: vec![[ClassCells::default(); NUM_CLASSES]; cores],
            histograms: (0..NUM_CLASSES).map(|_| Log2Histogram::new()).collect(),
            victims: vec![vec![u64::MAX; VICTIM_TABLE_SLOTS]; cores],
            victims_noted: 0,
        }
    }

    /// Remembers that `line` was just back-invalidated out of `core`'s
    /// private hierarchy by an inclusive LLC eviction.
    ///
    /// Mirror contract: the forensics observatory
    /// (`crate::forensics::ForensicsObservatory`) keeps an identically
    /// sized, identically indexed table written at exactly the same
    /// call sites. The slot formula, the overwrite-on-collision
    /// behavior, and the clear-on-take discipline below must stay bit
    /// for bit in sync with it — that equivalence is what makes
    /// `ForensicsReport::total_refetch_cycles()` conserve against
    /// [`LatencyReport::inclusion_victim_refetch_cycles`]
    /// (asserted per mode in `tests/forensics.rs`).
    #[inline]
    pub fn note_back_invalidation(&mut self, core: CoreId, line: LineAddr) {
        let slot = line.raw() as usize & (VICTIM_TABLE_SLOTS - 1);
        self.victims[core.index()][slot] = line.raw();
        self.victims_noted += 1;
    }

    /// Whether `core` recently lost `line` to a back-invalidation;
    /// clears the entry so one victimization explains at most one
    /// re-fetch.
    #[inline]
    pub fn take_victim(&mut self, core: CoreId, line: LineAddr) -> bool {
        let slot = line.raw() as usize & (VICTIM_TABLE_SLOTS - 1);
        let entry = &mut self.victims[core.index()][slot];
        if *entry == line.raw() {
            *entry = u64::MAX;
            true
        } else {
            false
        }
    }

    /// Records one finished access.
    #[inline]
    pub fn record(&mut self, core: CoreId, class: AccessClass, b: &LatencyBreakdown) {
        self.per_core[core.index()][class.index()].add(b);
        self.histograms[class.index()].record(b.total());
    }

    /// Seals the observatory into its report.
    pub fn finish(self) -> LatencyReport {
        LatencyReport {
            per_core: self.per_core,
            histograms: self.histograms,
            victims_noted: self.victims_noted,
        }
    }
}

/// The observatory's final payload, carried in
/// [`crate::observe::Observations`].
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyReport {
    /// Attribution cells, indexed `[core][class]` (class order is
    /// [`AccessClass::ALL`]).
    pub per_core: Vec<[ClassCells; NUM_CLASSES]>,
    /// Per-class histograms of total access latency (global across
    /// cores), indexed like [`AccessClass::ALL`].
    pub histograms: Vec<Log2Histogram>,
    /// Back-invalidations noted into the victim tables (table
    /// collisions overwrite, so this can exceed the re-fetches seen).
    pub victims_noted: u64,
}

impl LatencyReport {
    /// One class's cells summed over every core.
    pub fn class_total(&self, class: AccessClass) -> ClassCells {
        let mut out = ClassCells::default();
        for core in &self.per_core {
            out.merge(&core[class.index()]);
        }
        out
    }

    /// Total attributed cycles across every `(core, class)` cell — must
    /// equal `Metrics::access_latency_cycles` exactly.
    pub fn total_cycles(&self) -> u64 {
        self.per_core
            .iter()
            .flat_map(|cells| cells.iter())
            .map(|c| c.cycles)
            .sum()
    }

    /// One component's cycles summed over every cell.
    pub fn component_total(&self, comp: LatencyComponent) -> u64 {
        let i = comp.index();
        self.per_core
            .iter()
            .flat_map(|cells| cells.iter())
            .map(|c| c.components[i])
            .sum()
    }

    /// Cycles attributed to inclusion-victim re-fetches — the cost the
    /// ZIV paper eliminates; zero under any ZIV mode.
    pub fn inclusion_victim_refetch_cycles(&self) -> u64 {
        self.class_total(AccessClass::InclusionVictimRefetch).cycles
    }

    /// The class's latency histogram.
    pub fn histogram(&self, class: AccessClass) -> &Log2Histogram {
        &self.histograms[class.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breakdown(l2: Cycle, noc: Cycle, dram: Cycle) -> LatencyBreakdown {
        LatencyBreakdown {
            l2,
            noc,
            dram,
            ..LatencyBreakdown::default()
        }
    }

    #[test]
    fn breakdown_total_sums_components() {
        let b = LatencyBreakdown {
            l1: 1,
            l2: 2,
            llc_tag: 3,
            llc_data: 4,
            directory: 5,
            noc: 6,
            dram: 7,
        };
        assert_eq!(b.total(), 28);
        let comp_sum: Cycle = LatencyComponent::ALL.iter().map(|&c| b.component(c)).sum();
        assert_eq!(comp_sum, b.total());
    }

    #[test]
    fn record_conserves_cycles_per_cell() {
        let mut obs = LatencyObservatory::new(2);
        obs.record(CoreId::new(0), AccessClass::L2Hit, &breakdown(9, 0, 0));
        obs.record(
            CoreId::new(1),
            AccessClass::LlcMissDram,
            &breakdown(0, 8, 100),
        );
        obs.record(
            CoreId::new(1),
            AccessClass::LlcMissDram,
            &breakdown(0, 8, 50),
        );
        let report = obs.finish();
        assert_eq!(report.total_cycles(), 9 + 108 + 58);
        let dram_cells = report.class_total(AccessClass::LlcMissDram);
        assert_eq!(dram_cells.count, 2);
        assert_eq!(dram_cells.cycles, 166);
        assert_eq!(dram_cells.components.iter().sum::<u64>(), 166);
        assert_eq!(report.component_total(LatencyComponent::Dram), 150);
        assert_eq!(report.histogram(AccessClass::LlcMissDram).total(), 2);
        assert_eq!(report.inclusion_victim_refetch_cycles(), 0);
    }

    #[test]
    fn victim_table_remembers_and_clears() {
        let mut obs = LatencyObservatory::new(2);
        let line = LineAddr::new(0x40);
        let c0 = CoreId::new(0);
        let c1 = CoreId::new(1);
        assert!(!obs.take_victim(c0, line), "nothing noted yet");
        obs.note_back_invalidation(c0, line);
        assert!(!obs.take_victim(c1, line), "tables are per-core");
        assert!(obs.take_victim(c0, line));
        assert!(!obs.take_victim(c0, line), "taking clears the entry");
        assert_eq!(obs.finish().victims_noted, 1);
    }

    #[test]
    fn victim_table_collisions_overwrite() {
        let mut obs = LatencyObservatory::new(1);
        let c = CoreId::new(0);
        let a = LineAddr::new(0x7);
        let b = LineAddr::new(0x7 + VICTIM_TABLE_SLOTS as u64);
        obs.note_back_invalidation(c, a);
        obs.note_back_invalidation(c, b); // same slot, evicts `a`
        assert!(!obs.take_victim(c, a), "older colliding entry forgotten");
        assert!(obs.take_victim(c, b));
    }

    #[test]
    fn labels_are_unique_and_stable() {
        let class_labels: Vec<&str> = AccessClass::ALL.iter().map(|c| c.label()).collect();
        let comp_labels: Vec<&str> = LatencyComponent::ALL.iter().map(|c| c.label()).collect();
        for labels in [&class_labels, &comp_labels] {
            for (i, l) in labels.iter().enumerate() {
                assert!(!labels[..i].contains(l), "duplicate label '{l}'");
            }
        }
        assert!(class_labels.contains(&"inclusion_victim_refetch"));
        assert_eq!(AccessClass::ALL.len(), NUM_CLASSES);
    }
}
